/**
 * @file
 * Load-speculation demo: why stride-based address prediction works on
 * array code and fails on pointer chains.
 *
 * Builds two small programs -- an array-summing loop (strided
 * addresses) and a linked-list walk (scattered addresses) -- and runs
 * both through the two-delta predictor and through configurations A, B
 * and E.  Prints the per-class load breakdown the paper reports in
 * Tables 3 and 4 and the resulting speedups.
 */

#include <cstdio>

#include "core/scheduler.hh"
#include "masm/assembler.hh"
#include "vm/vm.hh"

namespace
{

// Array walk: the load address advances by 4 each iteration.  The
// index is produced by a multiply so the address operand arrives late
// and the load actually needs speculation.
const char kArrayWalk[] = R"(
main:
    la   r1, data
    mov  r2, 0             ; index
    mov  r3, 0             ; sum
    mov  r9, 1
loop:
    mul  r4, r2, 4         ; late address operand (2-cycle multiply)
    add  r5, r1, r4
    ldw  r6, [r5]
    add  r3, r3, r6
    add  r2, r2, r9
    cmp  r2, 256
    blt  loop
    mov  r25, r3
    halt
.data
data: .space 1024
)";

// Pointer chain: each cell holds the address of the next, laid out by
// a full-period LCG walk so the deltas never repeat.
const char kPointerChain[] = R"(
main:
    la   r1, heap
    li   r22, 1103515245
    li   r23, 12345
    mov  r6, 0             ; slot
    mov  r2, 0             ; i
build:
    sll  r9, r6, 3
    add  r7, r1, r9
    stw  r2, [r7]          ; car = i
    mul  r8, r6, r22
    add  r8, r8, r23
    and  r8, r8, 255       ; 256 slots
    add  r9, r2, 1
    cmp  r9, 256
    beq  last
    sll  r9, r8, 3
    add  r9, r1, r9
    stw  r9, [r7 + 4]
    ba   linked
last:
    stw  r0, [r7 + 4]
linked:
    mov  r6, r8
    add  r2, r2, 1
    cmp  r2, 256
    blt  build
    ; walk it a few times
    mov  r3, 0
    mov  r10, 0
round:
    mov  r7, r1
walk:
    cmp  r7, 0
    beq  walked
    ldw  r9, [r7]
    add  r3, r3, r9
    ldw  r7, [r7 + 4]      ; the pointer-chasing load
    ba   walk
walked:
    add  r10, r10, 1
    cmp  r10, 8
    blt  round
    mov  r25, r3
    halt
.data
heap: .space 2048
)";

void
analyze(const char *name, const char *source)
{
    using namespace ddsc;
    const Program program = assembleOrDie(source);
    VectorTraceSource trace;
    VectorTraceSink sink(trace);
    Vm vm(program);
    vm.run(&sink);

    std::printf("--- %s (%zu dynamic instructions) ---\n", name,
                trace.size());

    trace.reset();
    LimitScheduler base(MachineConfig::paper('A', 8));
    const SchedStats a = base.run(trace);

    trace.reset();
    LimitScheduler spec(MachineConfig::paper('B', 8));
    const SchedStats b = spec.run(trace);

    trace.reset();
    LimitScheduler ideal(MachineConfig::paper('E', 8));
    const SchedStats e = ideal.run(trace);

    std::printf("  IPC: base %.2f | real load-spec %.2f | "
                "collapse+ideal %.2f\n", a.ipc(), b.ipc(), e.ipc());
    std::printf("  load classes under B:");
    for (unsigned c = 0; c < kNumLoadClasses; ++c) {
        std::printf("  %s %.1f%%",
                    std::string(loadClassName(
                        static_cast<LoadClass>(c))).c_str(),
                    b.loadClassPct(static_cast<LoadClass>(c)));
    }
    std::printf("\n\n");
}

} // anonymous namespace

int
main()
{
    analyze("array walk (strided)", kArrayWalk);
    analyze("pointer chain (scattered)", kPointerChain);
    std::printf("Expectation (paper section 5.2): the stride table "
                "predicts the array walk\nbut not the pointer chain, "
                "so real load-speculation only helps the former.\n");
    return 0;
}
