/**
 * @file
 * Dependence-collapsing explorer.
 *
 * Recreates the paper's Section 1/Section 3 walk-through on a concrete
 * code fragment: assembles it, shows the dynamic dependence graph the
 * scheduler sees, then simulates with and without d-collapsing and
 * reports which dependences collapsed (category, signature, distance)
 * and what happened to the critical path.
 */

#include <cstdio>

#include "core/scheduler.hh"
#include "masm/assembler.hh"
#include "vm/vm.hh"

namespace
{

// The flavour of the paper's running example: address arithmetic
// feeding a load, a shifted index, and a cc-setting compare feeding a
// branch.  Executed once (no loop) so the graph is easy to read.
const char kFragment[] = R"(
main:
    mov  r1, 5             ; Ra = 5
    sll  r2, r1, 3         ; Rb = Ra << 3
    add  r3, r2, 64        ; Rc = Rb + 64            (collapses w/ sll)
    la   r4, buf
    add  r5, r4, r3        ; address = buf + Rc
    ldw  r6, [r5 + 8]      ; Re = [8 + address]      (addr-gen collapse)
    add  r7, r6, 1         ; Rf = Re + 1
    cmp  r7, 42            ; cc = Rf - 42            (collapses w/ branch)
    beq  done
    mov  r25, 1
done:
    halt
.data
buf: .space 256
)";

} // anonymous namespace

int
main()
{
    using namespace ddsc;

    const Program program = assembleOrDie(kFragment);
    std::printf("fragment:\n");
    for (std::size_t i = 0; i < program.text.size(); ++i) {
        std::printf("  %2zu: %s\n", i,
                    program.text[i].toString().c_str());
    }

    VectorTraceSource trace;
    VectorTraceSink sink(trace);
    Vm vm(program);
    vm.run(&sink);

    std::printf("\ndynamic dependence graph (producer -> consumer):\n");
    // Walk the trace and print RAW arcs the same way the scheduler
    // derives them.
    std::uint64_t last_writer[kNumRegs] = {};
    std::uint64_t last_cc = 0;
    const auto &records = trace.records();
    for (std::size_t i = 0; i < records.size(); ++i) {
        const TraceRecord &rec = records[i];
        auto arc = [&](std::uint64_t from, const char *kind) {
            if (from != 0) {
                std::printf("  %llu -> %zu  (%s)\n",
                            static_cast<unsigned long long>(from - 1), i,
                            kind);
            }
        };
        for (const int reg : rec.dataSources()) {
            if (reg >= 0)
                arc(last_writer[reg], "data");
        }
        for (const int reg : rec.addressSources()) {
            if (reg >= 0)
                arc(last_writer[reg], "address");
        }
        if (rec.readsCC())
            arc(last_cc, "cc");
        if (const int dest = rec.destReg(); dest >= 0)
            last_writer[dest] = i + 1;
        if (rec.setsCC())
            last_cc = i + 1;
    }

    for (const bool collapsing : {false, true}) {
        trace.reset();
        MachineConfig config = MachineConfig::paper(
            collapsing ? 'C' : 'A', 8);
        LimitScheduler scheduler(config);
        const SchedStats stats = scheduler.run(trace);
        std::printf("\n%s: %llu instructions in %llu cycles (IPC %.2f)\n",
                    collapsing ? "with d-collapsing" : "base machine",
                    static_cast<unsigned long long>(stats.instructions),
                    static_cast<unsigned long long>(stats.cycles),
                    stats.ipc());
        if (collapsing) {
            std::printf("collapse events: %llu  (3-1: %llu, 4-1: %llu, "
                        "0-op: %llu)\n",
                        static_cast<unsigned long long>(
                            stats.collapse.events()),
                        static_cast<unsigned long long>(
                            stats.collapse.eventsOf(
                                CollapseCategory::ThreeOne)),
                        static_cast<unsigned long long>(
                            stats.collapse.eventsOf(
                                CollapseCategory::FourOne)),
                        static_cast<unsigned long long>(
                            stats.collapse.eventsOf(
                                CollapseCategory::ZeroOp)));
            std::printf("collapsed signatures:\n");
            for (const auto &[sig, count] :
                     stats.collapse.pairSignatures()) {
                std::printf("  pair   %-18s x%llu\n", sig.c_str(),
                            static_cast<unsigned long long>(count));
            }
            for (const auto &[sig, count] :
                     stats.collapse.tripleSignatures()) {
                std::printf("  triple %-18s x%llu\n", sig.c_str(),
                            static_cast<unsigned long long>(count));
            }
        }
    }
    return 0;
}
