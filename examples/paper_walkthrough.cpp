/**
 * @file
 * A guided tour through the exact examples in Section 3 of the paper,
 * executed on the real machinery: the 3-1 / 4-1 dependence
 * expressions, the Rb+Rb four-operand pair, and the zero-operand
 * detection case.
 */

#include <cstdio>

#include "collapse/rules.hh"
#include "core/scheduler.hh"
#include "test_helpers_example.hh"

namespace
{

using namespace ddsc;

void
judgeAndPrint(const char *label, const ExprSize &expr,
              const CollapseRules &rules)
{
    CollapseCategory category;
    const bool legal = rules.judge(expr, category);
    std::printf("  %-46s %u instrs, %u ops (%u non-zero) -> %s\n",
                label, expr.instructions, expr.rawOperands,
                expr.nonZeroOperands,
                legal ? std::string(collapseCategoryName(category)).c_str()
                      : "not collapsible");
}

} // anonymous namespace

int
main()
{
    using namespace ddsc;
    CollapseRules rules;    // the paper's defaults: 3-1/4-1, 0-op on

    std::printf("Section 3, first example:\n");
    std::printf("  1. Rb = Rd << Rh\n  2. Rg = Rb + Re\n"
                "  3. Ra = Rf - Rg\n\n");

    // Build the records and compose the dependence expressions the
    // way the scheduler does.
    const TraceRecord shift = ex::alu(Opcode::SLL, 2, 4, 8);   // Rb
    const TraceRecord add = ex::alu(Opcode::ADD, 7, 2, 5);     // Rg
    const TraceRecord sub = ex::alu(Opcode::SUB, 1, 6, 7);     // Ra

    const ExprSize pair = ExprSize::substitute(
        ExprSize::of(add), ExprSize::of(shift), 1);
    judgeAndPrint("Rg = (Rd << Rh) + Re", pair, rules);

    const ExprSize triple = ExprSize::substitute(
        ExprSize::of(sub), pair, 1);
    judgeAndPrint("Ra = Rf - ((Rd << Rh) + Re)", triple, rules);

    std::printf("\nThe Rb + Rb wide pair (Rb = Ra + Rd; Rc = Rb + Rb):\n");
    const TraceRecord prod = ex::alu(Opcode::ADD, 2, 1, 4);
    const TraceRecord wide = ex::alu(Opcode::ADD, 3, 2, 2);
    const ExprSize wide_pair = ExprSize::substitute(
        ExprSize::of(wide), ExprSize::of(prod), 2);
    judgeAndPrint("Rc = (Ra + Rd) + (Ra + Rd)", wide_pair, rules);

    std::printf("\nZero-operand detection (Section 3's ld example):\n");
    std::printf("  1. Rf = Rg or 0x288\n  2. Rh = Ra - 1\n"
                "  3. Rd = Rf >> Rh\n  4. Ra = [Rd + 0]\n\n");
    const TraceRecord or_op = ex::aluImm(Opcode::OR, 6, 7, 0x288);
    const TraceRecord sub1 = ex::aluImm(Opcode::SUB, 8, 1, 1);
    const TraceRecord srl_op = ex::alu(Opcode::SRL, 4, 6, 8);
    const TraceRecord ld = ex::load(1, 4, 0, 0x1000);

    // Collapse the shift's two producers, then the load.
    ExprSize shift_expr = ExprSize::substitute(
        ExprSize::of(srl_op), ExprSize::of(or_op), 1);
    shift_expr = ExprSize::substitute(shift_expr, ExprSize::of(sub1), 1);
    judgeAndPrint("Rd = (Rg|0x288) >> (Ra-1)  [3 instrs]",
                  shift_expr, rules);

    const ExprSize with_load = ExprSize::substitute(
        ExprSize::of(ld), ExprSize::of(srl_op), 1);
    judgeAndPrint("Ra = [(Rf >> Rh) + 0]  (pair w/ zero offset)",
                  with_load, rules);

    CollapseRules no_zero = rules;
    no_zero.zeroOpDetection = false;
    std::printf("\n  ...and with zero-operand detection disabled:\n");
    judgeAndPrint("Ra = [(Rf >> Rh) + 0]", with_load, no_zero);

    // Finally: run the first example through the scheduler and show
    // the timing effect the paper's Figure 1 illustrates.
    std::printf("\nScheduling the three-instruction chain "
                "(width 8):\n");
    for (const bool collapse : {false, true}) {
        VectorTraceSource trace({shift, add, sub});
        LimitScheduler scheduler(
            MachineConfig::paper(collapse ? 'C' : 'A', 8));
        const SchedStats stats = scheduler.run(trace);
        std::printf("  %-18s %llu cycle(s)\n",
                    collapse ? "with collapsing:" : "base machine:",
                    static_cast<unsigned long long>(stats.cycles));
    }
    std::printf("\nAs in the paper: the serial 3-chain becomes fully "
                "parallel once the 3-1 and\n4-1 expressions execute as "
                "compound operations.\n");
    return 0;
}
