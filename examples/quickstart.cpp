/**
 * @file
 * Quickstart: assemble a small program, trace it on the VM, and
 * simulate it under the base machine (A) and the full
 * collapsing + load-speculation machine (D).
 *
 *     $ ./examples/quickstart
 *
 * Walks through the whole public API surface in ~80 lines: the
 * assembler (masm), the functional emulator (vm), trace sources
 * (trace), machine configuration and the limit scheduler (core).
 */

#include <cstdio>

#include "core/scheduler.hh"
#include "masm/assembler.hh"
#include "vm/vm.hh"

namespace
{

// A little loop: strided loads, address arithmetic feeding them, and a
// compare feeding a conditional branch -- all three collapse/speculate
// opportunities the paper studies.
const char kProgram[] = R"(
main:
    la   r1, data          ; base pointer
    mov  r2, 0             ; index
    mov  r3, 0             ; sum
loop:
    sll  r4, r2, 2         ; byte offset      (collapses into the load)
    add  r5, r1, r4        ; address
    ldw  r6, [r5]          ; strided load     (address-predictable)
    add  r3, r3, r6        ; accumulate
    add  r2, r2, 1
    cmp  r2, 64            ; cc generation    (collapses into branch)
    blt  loop
    mov  r25, r3           ; checksum convention
    halt
.data
data: .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
      .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
      .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
      .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
)";

} // anonymous namespace

int
main()
{
    using namespace ddsc;

    // 1. Assemble.
    const Program program = assembleOrDie(kProgram);
    std::printf("assembled %zu instructions\n", program.text.size());

    // 2. Execute on the functional emulator, capturing the trace.
    VectorTraceSource trace;
    VectorTraceSink sink(trace);
    Vm vm(program);
    const Vm::RunResult run = vm.run(&sink);
    std::printf("executed  %llu dynamic instructions, checksum r25=%u\n",
                static_cast<unsigned long long>(run.instructions),
                vm.reg(25));

    // 3. Simulate the trace under two machines from the paper.
    for (const char config : {'A', 'D'}) {
        trace.reset();
        LimitScheduler scheduler(MachineConfig::paper(config, 8));
        const SchedStats stats = scheduler.run(trace);
        std::printf("config %c (width 8): IPC %.2f over %llu cycles",
                    config, stats.ipc(),
                    static_cast<unsigned long long>(stats.cycles));
        if (config == 'D') {
            std::printf(", %.0f%% of instructions collapsed",
                        stats.pctCollapsed());
        }
        std::printf("\n");
    }
    return 0;
}
