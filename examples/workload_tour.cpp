/**
 * @file
 * Workload tour: runs every built-in benchmark analogue at test scale,
 * prints its instruction mix, branch behaviour, and how each paper
 * mechanism affects it.  A quick way to see what the six programs
 * actually do before committing to the full experiment matrix.
 */

#include <cstdio>

#include "bpred/bpred.hh"
#include "core/scheduler.hh"
#include "support/table.hh"
#include "trace/trace_stats.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace ddsc;

    TextTable table;
    table.header({"workload", "instrs", "%ld", "%st", "%br", "br-acc%",
                  "IPC A", "IPC D", "IPC E", "%collapsed"});

    for (const WorkloadSpec &spec : allWorkloads()) {
        // Small-scale trace so the tour finishes in seconds.
        VectorTraceSource trace = traceWorkload(spec, spec.testScale * 4);

        TraceStats mix;
        auto predictor = makePaperPredictor();
        std::uint64_t branches = 0, correct = 0;
        TraceRecord rec;
        while (trace.next(rec)) {
            mix.account(rec);
            if (rec.isCondBranch()) {
                ++branches;
                if (predictor->predictAndUpdate(rec.pc, rec.taken))
                    ++correct;
            }
        }

        double ipc[3];
        double collapsed = 0.0;
        const char configs[] = {'A', 'D', 'E'};
        for (int i = 0; i < 3; ++i) {
            trace.reset();
            LimitScheduler scheduler(MachineConfig::paper(configs[i], 16));
            const SchedStats stats = scheduler.run(trace);
            ipc[i] = stats.ipc();
            if (configs[i] == 'D')
                collapsed = stats.pctCollapsed();
        }

        table.row({
            spec.name,
            std::to_string(mix.instructions()),
            TextTable::num(mix.pctLoads(), 1),
            TextTable::num(mix.pctOf(OpClass::Store), 1),
            TextTable::num(mix.pctCondBranches(), 1),
            TextTable::num(branches == 0 ? 0.0
                           : 100.0 * static_cast<double>(correct) /
                             static_cast<double>(branches), 1),
            TextTable::num(ipc[0]),
            TextTable::num(ipc[1]),
            TextTable::num(ipc[2]),
            TextTable::num(collapsed, 1),
        });
    }

    std::printf("%s", table.render().c_str());
    std::printf("\n(width 16, test-scale traces; see bench/ for the "
                "full experiment matrix)\n");
    return 0;
}
