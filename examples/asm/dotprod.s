; Dot product of two 64-element vectors.
;
;   ddsc-asm examples/asm/dotprod.s -o dotprod.trc --list
;   ddsc-sim --trace dotprod.trc --config D --width 8
;
; The inner loop carries the three collapse opportunities the paper
; studies: shifted indexing into the loads (addr-gen collapse), the
; accumulate chain, and the cmp feeding the loop branch.

main:
    la   r1, vec_a
    la   r2, vec_b
    mov  r3, 0             ; i
    mov  r4, 0             ; sum
loop:
    sll  r5, r3, 2
    add  r6, r1, r5
    ldw  r7, [r6]          ; a[i]
    add  r6, r2, r5
    ldw  r8, [r6]          ; b[i]
    mul  r9, r7, r8
    add  r4, r4, r9
    add  r3, r3, 1
    cmp  r3, 64
    blt  loop
    mov  r25, r4           ; checksum convention
    halt

.data
vec_a:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
vec_b:
    .word 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2
    .word 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3
    .word 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2
    .word 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3
