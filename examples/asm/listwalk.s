; Build and repeatedly walk a scattered linked list: the pointer-chasing
; pattern that defeats the paper's stride-based load speculation.
;
;   ddsc-asm examples/asm/listwalk.s -o listwalk.trc
;   ddsc-sim --trace listwalk.trc --config B --width 8
;   ddsc-sim --trace listwalk.trc --config E --width 8
;
; Compare the two runs: realistic load-speculation (B) gains nothing
; (every cdr load is classed not-predicted), while ideal speculation
; (E) rips through the chain.

main:
    la   r1, heap
    li   r22, 1103515245   ; full-period LCG walk: slot' = slot*a + c
    li   r23, 12345
    mov  r6, 0             ; current slot
    mov  r2, 0             ; i
build:
    sll  r9, r6, 3
    add  r7, r1, r9
    stw  r2, [r7]          ; car = i
    mul  r8, r6, r22
    add  r8, r8, r23
    and  r8, r8, 127       ; 128 cells
    add  r9, r2, 1
    cmp  r9, 128
    beq  last
    sll  r9, r8, 3
    add  r9, r1, r9
    stw  r9, [r7 + 4]      ; cdr
    ba   linked
last:
    stw  r0, [r7 + 4]      ; nil
linked:
    mov  r6, r8
    add  r2, r2, 1
    cmp  r2, 128
    blt  build

    mov  r4, 0             ; sum
    mov  r10, 0            ; round
round:
    mov  r7, r1            ; head is slot 0
walk:
    cmp  r7, 0
    beq  walked
    ldw  r9, [r7]
    add  r4, r4, r9
    ldw  r7, [r7 + 4]      ; the chasing load
    ba   walk
walked:
    add  r10, r10, 1
    cmp  r10, 16
    blt  round
    mov  r25, r4
    halt

.data
.align 8
heap: .space 1024
