/**
 * @file
 * Tiny record builders for the example programs (a reduced version of
 * the test suite's helpers, kept separate so examples only depend on
 * public headers).
 */

#ifndef DDSC_EXAMPLES_TEST_HELPERS_EXAMPLE_HH
#define DDSC_EXAMPLES_TEST_HELPERS_EXAMPLE_HH

#include <cstdint>

#include "trace/record.hh"

namespace ddsc::ex
{

inline TraceRecord
alu(Opcode op, unsigned rd, unsigned rs1, unsigned rs2,
    std::uint64_t pc = 0x10000)
{
    TraceRecord rec;
    rec.op = op;
    rec.pc = pc;
    rec.rd = static_cast<std::uint8_t>(rd);
    rec.rs1 = static_cast<std::uint8_t>(rs1);
    rec.rs2 = static_cast<std::uint8_t>(rs2);
    return rec;
}

inline TraceRecord
aluImm(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm,
       std::uint64_t pc = 0x10000)
{
    TraceRecord rec;
    rec.op = op;
    rec.pc = pc;
    rec.rd = static_cast<std::uint8_t>(rd);
    rec.rs1 = static_cast<std::uint8_t>(rs1);
    rec.useImm = true;
    rec.imm = imm;
    return rec;
}

inline TraceRecord
load(unsigned rd, unsigned rs1, std::int32_t imm, std::uint64_t ea,
     std::uint64_t pc = 0x10000)
{
    TraceRecord rec;
    rec.op = Opcode::LDW;
    rec.pc = pc;
    rec.rd = static_cast<std::uint8_t>(rd);
    rec.rs1 = static_cast<std::uint8_t>(rs1);
    rec.useImm = true;
    rec.imm = imm;
    rec.ea = ea;
    return rec;
}

} // namespace ddsc::ex

#endif // DDSC_EXAMPLES_TEST_HELPERS_EXAMPLE_HH
