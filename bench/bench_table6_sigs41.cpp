/**
 * @file
 * Table 6 reproduction: the most frequently collapsed triple (4-1
 * style) dependence sequences under configuration D, as a percentage
 * of all collapsed triples, by issue width.
 *
 * Paper's top rows: arri-arri-arri (18% at 2k, vanishing at w=4),
 * lgr0-lgr0-arrr, arri-arri-ldrr, arrr-arrr-arrr, arrr-shri-arrr, ...
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Table 6: Collapsed 4-1 (triple) Dependences, "
                  "% of all collapsed triples (configuration D)", driver);
    bench::printSignatureTable(driver, 3, 13);
    std::printf("\npaper top rows (at 2k): arri-arri-arri 18.0, "
                "lgr0-lgr0-arrr 6.6, arri-arri-ldrr 6.2, "
                "arrr-arrr-arrr 6.0\n");
    return 0;
}
