/**
 * @file
 * Table 3 reproduction: load-speculation behaviour for the
 * pointer-chasing benchmarks under configuration D (mean percentage of
 * dynamic loads per class, by issue width).
 *
 * Paper: ready 30-40%, predicted-correctly 12-27% (falling with
 * width), predicted-incorrectly ~5%, not-predicted 38-44%.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Table 3: Load-Speculation Behavior for Pointer "
                  "Chasing Benchmarks with Configuration D", driver);
    bench::printLoadSpecTable(driver, workloadSubset(true));
    std::printf("\npaper (w4 row): ready 30.2, correct 26.7, "
                "incorrect 4.8, not-predicted 38.3\n");
    return 0;
}
