/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the
 * branch predictors, the stride address predictor, collapse-rule
 * evaluation, the assembler, the VM, and the limit scheduler itself.
 * These guard against performance regressions in the simulation
 * engine; they reproduce no paper result.
 */

#include <benchmark/benchmark.h>

#include "addrpred/addrpred.hh"
#include "bpred/bpred.hh"
#include "collapse/rules.hh"
#include "core/scheduler.hh"
#include "masm/assembler.hh"
#include "sim/experiment.hh"
#include "trace/synthetic.hh"
#include "vm/vm.hh"
#include "workloads/workloads.hh"

namespace ddsc
{
namespace
{

void
BM_CombiningPredictor(benchmark::State &state)
{
    CombiningPredictor pred(13);
    std::uint64_t pc = 0x10000;
    bool taken = false;
    for (auto _ : state) {
        taken = !taken;
        pc = 0x10000 + ((pc * 29) & 0xfffc);
        benchmark::DoNotOptimize(pred.predictAndUpdate(pc, taken));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CombiningPredictor);

void
BM_StridePredictor(benchmark::State &state)
{
    StrideAddressPredictor pred;
    std::uint64_t addr = 0x40000000;
    for (auto _ : state) {
        addr += 16;
        benchmark::DoNotOptimize(pred.predict(0x10040));
        pred.update(0x10040, addr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StridePredictor);

void
BM_CollapseJudge(benchmark::State &state)
{
    CollapseRules rules;
    ExprSize expr;
    expr.rawOperands = 5;
    expr.nonZeroOperands = 4;
    expr.instructions = 3;
    for (auto _ : state) {
        CollapseCategory category;
        benchmark::DoNotOptimize(rules.judge(expr, category));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CollapseJudge);

void
BM_Assembler(benchmark::State &state)
{
    const WorkloadSpec &spec = compressWorkload();
    for (auto _ : state) {
        benchmark::DoNotOptimize(buildWorkload(spec, 100));
    }
}
BENCHMARK(BM_Assembler);

void
BM_VmExecution(benchmark::State &state)
{
    const Program program = buildWorkload(espressoWorkload(), 50);
    Vm vm(program);
    for (auto _ : state) {
        vm.reset();
        const auto result = vm.run(nullptr);
        benchmark::DoNotOptimize(result.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(
                                    result.instructions));
    }
}
BENCHMARK(BM_VmExecution);

void
BM_SchedulerInstructionsPerSecond(benchmark::State &state)
{
    SyntheticTraceConfig config;
    config.instructions = 100000;
    VectorTraceSource trace = generateSynthetic(config);
    const auto width = static_cast<unsigned>(state.range(0));
    LimitScheduler scheduler(MachineConfig::paper('D', width));
    for (auto _ : state) {
        trace.reset();
        const SchedStats stats = scheduler.run(trace);
        benchmark::DoNotOptimize(stats.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(
                                    stats.instructions));
    }
}
BENCHMARK(BM_SchedulerInstructionsPerSecond)
    ->Arg(4)->Arg(32)->Arg(2048)->Unit(benchmark::kMillisecond);

} // anonymous namespace
} // namespace ddsc

BENCHMARK_MAIN();
