/**
 * @file
 * Extension bench: load-value prediction (paper Figure 1.d).
 *
 * The paper evaluates address prediction only; its introduction notes
 * that d-speculation "can also be used to predict data values such as
 * those loaded from memory".  This bench adds a last-value load-value
 * predictor on top of configuration D and reports, per issue width,
 * the harmonic-mean IPC with and without value prediction plus the
 * hit/wrong rates -- and contrasts against ideal address speculation
 * (E), which value prediction can beat when values are invariant.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Extension: load-value prediction on top of "
                  "configuration D", driver);

    TextTable table;
    table.header({"width", "IPC D", "IPC D+VP", "speedup", "IPC E",
                  "VP hit %", "VP wrong %"});

    for (const unsigned w : MachineConfig::paperWidths()) {
        MachineConfig vp_config = MachineConfig::paper('D', w);
        vp_config.loadValuePrediction = true;
        const std::string key = "vp/" + std::to_string(w);

        std::vector<double> d_ipcs, vp_ipcs, e_ipcs;
        std::uint64_t hits = 0, wrong = 0, loads = 0;
        for (const WorkloadSpec &spec : allWorkloads()) {
            d_ipcs.push_back(driver.stats(spec, 'D', w).ipc());
            e_ipcs.push_back(driver.stats(spec, 'E', w).ipc());
            const SchedStats &vp = driver.statsFor(spec, vp_config, key);
            vp_ipcs.push_back(vp.ipc());
            hits += vp.valuePredHits;
            wrong += vp.valuePredWrong;
            loads += vp.loads;
        }
        const double d = harmonicMean(d_ipcs);
        const double vp = harmonicMean(vp_ipcs);
        table.row({
            MachineConfig::widthLabel(w),
            TextTable::num(d),
            TextTable::num(vp),
            TextTable::num(vp / d, 3),
            TextTable::num(harmonicMean(e_ipcs)),
            TextTable::num(percent(static_cast<double>(hits),
                                   static_cast<double>(loads)), 1),
            TextTable::num(percent(static_cast<double>(wrong),
                                   static_cast<double>(loads)), 1),
        });
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
