/**
 * @file
 * Figure 6 reproduction: harmonic-mean IPC for the non-pointer-chasing
 * benchmarks (compress, espresso, eqntott, ijpeg).
 */

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Figure 6: IPC for the non \"Pointer Chasing\" "
                  "Benchmarks (compress, espresso, eqntott, ijpeg)",
                  driver);
    bench::printLegend();
    bench::printIpcMatrix(driver, workloadSubset(false));
    return 0;
}
