/**
 * @file
 * Figure 10 reproduction: distance between collapsed instructions
 * under configuration D, bucketed as in the paper's discussion
 * (consecutive, short-range, and >= 8).
 *
 * Paper: at widths > 8 the majority of collapsed pairs are not
 * consecutive, yet the distance is almost always below 8 even at 2k.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Figure 10: Distance between D-Collapsed Instructions "
                  "for the D Configuration", driver);

    const std::uint64_t edges[] = {1, 2, 4, 8, 16};
    TextTable table;
    table.header({"width", "d=1 (%)", "d=2-3 (%)", "d=4-7 (%)",
                  "d=8-15 (%)", "d>=16 (%)", "cum<8 (%)"});
    const auto set = ExperimentDriver::everything();
    for (const unsigned w : MachineConfig::paperWidths()) {
        const CollapseStats merged = driver.mergedCollapse(set, 'D', w);
        const auto fractions = merged.distances().bucketFractions(edges);
        table.row({
            MachineConfig::widthLabel(w),
            TextTable::num(100.0 * fractions[0], 1),
            TextTable::num(100.0 * fractions[1], 1),
            TextTable::num(100.0 * fractions[2], 1),
            TextTable::num(100.0 * fractions[3], 1),
            TextTable::num(100.0 * fractions[4], 1),
            TextTable::num(100.0 * merged.distances().cumulativeAt(7), 1),
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: majority non-consecutive for widths > 8, but "
                "distance < 8 almost always, even at 2k\n");
    return 0;
}
