/**
 * @file
 * Ablation bench: quantifies the design choices DESIGN.md calls out,
 * all at issue width 16 on the full benchmark set (harmonic-mean IPC):
 *
 *  - zero-operand detection on/off (how much 0-op buys);
 *  - triples on/off (pairs-only collapsing, the prior-work model);
 *  - a 3-1-only device (maxOperands = 3);
 *  - address-prediction confidence threshold 0/1/3 ("always use a
 *    prediction" vs the paper's ">1" vs "fully saturated only");
 *  - window/width ratio 1x/2x/4x (the paper fixes 2x);
 *  - branch predictor size 2 kB vs 8 kB vs perfect-sized 64 kB.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace ddsc;

double
hmeanIpcFor(ExperimentDriver &driver, const MachineConfig &config,
            const std::string &key)
{
    std::vector<double> ipcs;
    for (const WorkloadSpec &spec : allWorkloads())
        ipcs.push_back(driver.statsFor(spec, config, key).ipc());
    return harmonicMean(ipcs);
}

} // anonymous namespace

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Ablations (configuration D, width 16, harmonic-mean "
                  "IPC over all benchmarks)", driver);

    constexpr unsigned kWidth = 16;
    TextTable table;
    table.header({"variant", "IPC", "vs paper-D"});

    const MachineConfig base_d = MachineConfig::paper('D', kWidth);
    const double d_ipc = hmeanIpcFor(driver, base_d, "abl/D");
    auto report = [&](const std::string &name,
                      const MachineConfig &config) {
        const double ipc = hmeanIpcFor(driver, config, "abl/" + name);
        table.row({name, TextTable::num(ipc),
                   TextTable::num(ipc / d_ipc, 3)});
    };

    table.row({"paper D (reference)", TextTable::num(d_ipc), "1.000"});

    {
        MachineConfig cfg = base_d;
        cfg.rules.zeroOpDetection = false;
        report("no zero-operand detection", cfg);
    }
    {
        MachineConfig cfg = base_d;
        cfg.rules.maxInstructions = 2;
        report("pairs only (no triples)", cfg);
    }
    {
        MachineConfig cfg = base_d;
        cfg.rules.maxOperands = 3;
        report("3-1 device only", cfg);
    }
    {
        MachineConfig cfg = base_d;
        cfg.addrConfidenceThreshold = 0;
        report("confidence threshold 0", cfg);
    }
    {
        MachineConfig cfg = base_d;
        cfg.addrConfidenceThreshold = 2;
        report("confidence threshold 2", cfg);
    }
    {
        MachineConfig cfg = base_d;
        cfg.windowSize = kWidth;
        report("window = 1x width", cfg);
    }
    {
        MachineConfig cfg = base_d;
        cfg.windowSize = 4 * kWidth;
        report("window = 4x width", cfg);
    }
    {
        MachineConfig cfg = base_d;
        cfg.bpredIndexBits = 11;
        report("2 kB branch predictor", cfg);
    }
    {
        MachineConfig cfg = base_d;
        cfg.bpredIndexBits = 16;
        report("64 kB branch predictor", cfg);
    }

    std::printf("%s", table.render().c_str());
    return 0;
}
