/**
 * @file
 * Table 2 reproduction: benchmark branch characteristics.
 *
 * Paper: per benchmark, the percentage of conditional branches in the
 * trace and the fraction predicted correctly by the 8 kByte
 * bimodal13/gshare14 combining predictor.
 */

#include <cstdio>

#include "bench_common.hh"
#include "bpred/bpred.hh"
#include "trace/trace_stats.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Table 2: Benchmark Branch Characteristics", driver);

    TextTable table;
    table.header({"Name", "Conditional Branches (%)",
                  "Predicted Correctly (%)"});
    for (const WorkloadSpec &spec : allWorkloads()) {
        const std::unique_ptr<TraceSource> trace =
            driver.trace(spec).cursor();
        TraceStats mix;
        auto predictor = makePaperPredictor();
        std::uint64_t branches = 0, correct = 0;
        TraceRecord rec;
        while (trace->next(rec)) {
            mix.account(rec);
            if (rec.isCondBranch()) {
                ++branches;
                if (predictor->predictAndUpdate(rec.pc, rec.taken))
                    ++correct;
            }
        }
        table.row({
            spec.name,
            TextTable::num(mix.pctCondBranches(), 1),
            TextTable::num(branches == 0 ? 0.0
                           : 100.0 * static_cast<double>(correct) /
                             static_cast<double>(branches), 1),
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: compress 13.2%%/89.7%%, espresso 18.5%%/94.1%%, "
                "eqntott 27.5%%/96.0%%, li 15.8%%/96.8%%, "
                "go 13.5%%/83.7%%, ijpeg 8.97%%/92.8%%\n");
    return 0;
}
