/**
 * @file
 * Scheduler-throughput microbenchmark over the test-scale experiment
 * matrix.  Unlike the figure/table benches (which reproduce paper
 * numbers), this one records how fast the simulator itself runs, so
 * the perf trajectory of the core is tracked across PRs:
 *
 *   bench_sched [output.json]        (default BENCH_sched.json)
 *
 * The JSON reports cells/sec and instrs/sec over the whole matrix,
 * per-cell wallNanos, and a per-cell digest folding every
 * deterministic SchedStats field (everything except wallNanos) so two
 * builds can be compared for bit-identical simulation results.
 *
 * Two series run over the same matrix: `event` is the historical
 * cell-at-a-time path (setBatched(false), one private front-end per
 * cell, bound-heap promotion), and `batched` is the one-pass path
 * (one shared front-end per (workload, front-end fingerprint) group
 * feeding wakeup-list back-ends).  The JSON's top-level throughput
 * numbers stay the event series for cross-PR comparability; the
 * "batched" object reports the new path and its speedupOverEvent.
 * A third `mapped` series re-runs the matrix with the traces spilled
 * to DDSCTRC v4 files and swept through mmap'd zero-copy cursors —
 * its per-cell digests must also equal the event series', and its
 * instrs/sec lands in the JSON so a regression on the mapped path is
 * visible (and its digest gate fatal) in the CI bench smoke job.
 *
 * It also cross-checks a subset of cells between the event-driven and
 * the naive reference engine — including a value-prediction-only
 * configuration, which the paper matrix never exercises — and exits
 * nonzero on any stats mismatch *or* on any per-cell digest divergence
 * between the batched and event series.  The CI bench smoke job
 * relies on that exit code.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/scheduler.hh"
#include "sim/experiment.hh"

namespace ddsc
{
namespace
{

const std::string kConfigs = "ABCDE";
const std::vector<unsigned> kTimedWidths = {4, 8, 16, 2048};
const std::vector<unsigned> kVerifyWidths = {4, 16};

/** Digest every deterministic field of @p s (wallNanos excluded). */
std::uint64_t
digest(const SchedStats &s)
{
    return digestSchedStats(s);
}

/** Compare two runs field by field, reporting the first difference. */
bool
sameStats(const SchedStats &a, const SchedStats &b, const char *what)
{
    if (digest(a) == digest(b))
        return true;
    std::fprintf(stderr,
                 "MISMATCH %s: event {cycles=%" PRIu64 " loads=%" PRIu64
                 " vpredHits=%" PRIu64 "} naive {cycles=%" PRIu64
                 " loads=%" PRIu64 " vpredHits=%" PRIu64 "}\n",
                 what, a.cycles, a.loads, a.valuePredHits,
                 b.cycles, b.loads, b.valuePredWrong);
    return false;
}

SchedStats
runOnce(const SharedTrace &trace, const MachineConfig &config)
{
    const std::unique_ptr<TraceSource> view = trace.cursor();
    LimitScheduler scheduler(config);
    return scheduler.run(*view);
}

/** The extension configuration the paper matrix never covers: value
 *  prediction without address speculation. */
MachineConfig
valuePredOnly(unsigned width)
{
    MachineConfig config = MachineConfig::paper('A', width);
    config.name = "VP";
    config.loadValuePrediction = true;
    return config;
}

} // anonymous namespace
} // namespace ddsc

int
main(int argc, char **argv)
{
    using namespace ddsc;
    using Clock = std::chrono::steady_clock;

    const char *out_path = argc > 1 ? argv[1] : "BENCH_sched.json";
    ExperimentDriver driver(0, /*test_scale=*/true);
    // The event series is the cross-PR baseline: the historical
    // cell-at-a-time path, one private front-end per cell.
    driver.setBatched(false);

    std::printf("=== scheduler throughput (test-scale matrix) ===\n");
    std::printf("configs %s, widths", kConfigs.c_str());
    for (const unsigned w : kTimedWidths)
        std::printf(" %s", MachineConfig::widthLabel(w).c_str());
    std::printf(", %u jobs\n", driver.jobs());

    // Materialize the traces up front so the timed region measures the
    // scheduler, not the VM generating traces.
    for (const WorkloadSpec *spec : ExperimentDriver::everything())
        driver.trace(*spec);

    const auto cells = ExperimentDriver::cellsFor(
        ExperimentDriver::everything(), kConfigs, kTimedWidths);
    const auto start = Clock::now();
    driver.prefetch(cells);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    // Aggregate over the matrix.  instrs/sec uses the summed per-cell
    // wall time, not the elapsed time, so the metric measures engine
    // speed independent of the worker-thread count.
    struct CellReport
    {
        std::string key;
        std::uint64_t instructions;
        std::uint64_t cycles;
        std::uint64_t wallNanos;
        std::uint64_t digest;
    };
    std::vector<CellReport> reports;
    std::uint64_t total_instrs = 0;
    std::uint64_t total_nanos = 0;
    for (const ExperimentCell &cell : cells) {
        const SchedStats &s =
            driver.stats(*cell.spec, cell.config, cell.width);
        const std::string key = cell.spec->name + "/" + cell.config +
            "/" + MachineConfig::widthLabel(cell.width);
        reports.push_back({key, s.instructions, s.cycles, s.wallNanos,
                           digest(s)});
        total_instrs += s.instructions;
        total_nanos += s.wallNanos;
    }
    const double cell_seconds =
        static_cast<double>(total_nanos) * 1e-9;
    const double instrs_per_sec = cell_seconds > 0.0
        ? static_cast<double>(total_instrs) / cell_seconds : 0.0;
    const double cells_per_sec = elapsed > 0.0
        ? static_cast<double>(cells.size()) / elapsed : 0.0;

    std::printf("%zu cells, %" PRIu64 " instrs in %.2fs cell time "
                "(%.2fs elapsed)\n",
                cells.size(), total_instrs, cell_seconds, elapsed);
    std::printf("%.0f instrs/sec, %.1f cells/sec\n",
                instrs_per_sec, cells_per_sec);

    // Naive-vs-event cross-check on the small widths (the naive engine
    // is O(window) per cycle), plus the value-prediction-only
    // configuration the matrix never covers.
    unsigned checked = 0, mismatches = 0;
    for (const WorkloadSpec *spec : ExperimentDriver::everything()) {
        const SharedTrace &trace = driver.trace(*spec);
        std::vector<MachineConfig> configs;
        for (const char c : kConfigs)
            for (const unsigned w : kVerifyWidths)
                configs.push_back(MachineConfig::paper(c, w));
        configs.push_back(valuePredOnly(8));
        for (const MachineConfig &config : configs) {
            MachineConfig naive = config;
            naive.naiveEngine = true;
            const SchedStats fast = runOnce(trace, config);
            const SchedStats slow = runOnce(trace, naive);
            const std::string what = spec->name + "/" + config.name +
                "/" + std::to_string(config.issueWidth);
            ++checked;
            if (!sameStats(fast, slow, what.c_str()))
                ++mismatches;
        }
    }
    std::printf("naive/event cross-check: %u cells, %u mismatches\n",
                checked, mismatches);

    // Batched series: the same matrix through the one-pass path on a
    // fresh driver (own cache, batched prefetch on by default).  Its
    // traces are materialized outside the timed region like the event
    // series', and every cell digest must equal the event series' —
    // a divergence fails the bench (and with it the CI smoke job).
    ExperimentDriver batched_driver(0, /*test_scale=*/true);
    for (const WorkloadSpec *spec : ExperimentDriver::everything())
        batched_driver.trace(*spec);
    const auto batched_start = Clock::now();
    batched_driver.prefetch(cells);
    const double batched_elapsed =
        std::chrono::duration<double>(Clock::now() - batched_start)
            .count();

    std::vector<CellReport> batched_reports;
    std::uint64_t batched_nanos = 0;
    unsigned batched_mismatches = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ExperimentCell &cell = cells[i];
        const SchedStats &s =
            batched_driver.stats(*cell.spec, cell.config, cell.width);
        batched_reports.push_back({reports[i].key, s.instructions,
                                   s.cycles, s.wallNanos, digest(s)});
        batched_nanos += s.wallNanos;
        if (digest(s) != reports[i].digest) {
            ++batched_mismatches;
            std::fprintf(stderr,
                         "MISMATCH %s: batched digest %016" PRIx64
                         " != event digest %016" PRIx64 "\n",
                         reports[i].key.c_str(), digest(s),
                         reports[i].digest);
        }
    }
    const double batched_cell_seconds =
        static_cast<double>(batched_nanos) * 1e-9;
    const double batched_instrs_per_sec = batched_cell_seconds > 0.0
        ? static_cast<double>(total_instrs) / batched_cell_seconds
        : 0.0;
    const double batched_cells_per_sec = batched_elapsed > 0.0
        ? static_cast<double>(cells.size()) / batched_elapsed : 0.0;
    const double speedup_over_event = batched_cell_seconds > 0.0
        ? cell_seconds / batched_cell_seconds : 0.0;
    std::printf("batched: %.2fs cell time (%.2fs elapsed), "
                "%.0f instrs/sec, %.2fx over event, %u digest "
                "mismatches\n",
                batched_cell_seconds, batched_elapsed,
                batched_instrs_per_sec, speedup_over_event,
                batched_mismatches);

    // Mapped series: the same matrix again, but the traces are
    // spilled once to DDSCTRC v4 files and every cell reads them
    // through mmap'd zero-copy cursors.  Spilling happens outside the
    // timed region (it is a one-time cost the server pays at first
    // touch); the digests must match the event series bit for bit.
    const std::string mapped_dir =
        (std::filesystem::temp_directory_path() /
         "ddsc_bench_sched_traces").string();
    std::filesystem::remove_all(mapped_dir);
    ExperimentDriver mapped_driver(0, /*test_scale=*/true);
    mapped_driver.setTraceDir(mapped_dir);
    for (const WorkloadSpec *spec : ExperimentDriver::everything())
        mapped_driver.trace(*spec);
    const auto mapped_start = Clock::now();
    mapped_driver.prefetch(cells);
    const double mapped_elapsed =
        std::chrono::duration<double>(Clock::now() - mapped_start)
            .count();

    std::uint64_t mapped_nanos = 0;
    unsigned mapped_mismatches = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ExperimentCell &cell = cells[i];
        const SchedStats &s =
            mapped_driver.stats(*cell.spec, cell.config, cell.width);
        mapped_nanos += s.wallNanos;
        if (digest(s) != reports[i].digest) {
            ++mapped_mismatches;
            std::fprintf(stderr,
                         "MISMATCH %s: mapped digest %016" PRIx64
                         " != event digest %016" PRIx64 "\n",
                         reports[i].key.c_str(), digest(s),
                         reports[i].digest);
        }
    }
    std::filesystem::remove_all(mapped_dir);
    const double mapped_cell_seconds =
        static_cast<double>(mapped_nanos) * 1e-9;
    const double mapped_instrs_per_sec = mapped_cell_seconds > 0.0
        ? static_cast<double>(total_instrs) / mapped_cell_seconds
        : 0.0;
    const double mapped_over_event = mapped_cell_seconds > 0.0
        ? cell_seconds / mapped_cell_seconds : 0.0;
    std::printf("mapped: %.2fs cell time (%.2fs elapsed), "
                "%.0f instrs/sec, %.2fx over event, %u digest "
                "mismatches\n",
                mapped_cell_seconds, mapped_elapsed,
                mapped_instrs_per_sec, mapped_over_event,
                mapped_mismatches);

    // Module-sweep series: the speculation-module configurations
    // (F = predicted memory disambiguation, G = FCM/stride value
    // prediction) over the same matrix through the default batched
    // path.  The A-E series above stay the untouched cross-PR
    // baseline; this series tracks the new modules' simulation cost
    // and pins their engine equivalence — every module cell is
    // re-run on the event path and on the naive reference engine,
    // and any digest divergence fails the bench like the gates above.
    const std::string module_configs = "FG";
    const auto module_cells = ExperimentDriver::cellsFor(
        ExperimentDriver::everything(), module_configs, kTimedWidths);
    ExperimentDriver module_driver(0, /*test_scale=*/true);
    for (const WorkloadSpec *spec : ExperimentDriver::everything())
        module_driver.trace(*spec);
    const auto module_start = Clock::now();
    module_driver.prefetch(module_cells);
    const double module_elapsed =
        std::chrono::duration<double>(Clock::now() - module_start)
            .count();

    std::vector<CellReport> module_reports;
    std::uint64_t module_instrs = 0;
    std::uint64_t module_nanos = 0;
    unsigned module_mismatches = 0;
    for (const ExperimentCell &cell : module_cells) {
        const SchedStats &s =
            module_driver.stats(*cell.spec, cell.config, cell.width);
        const std::string key = cell.spec->name + "/" + cell.config +
            "/" + MachineConfig::widthLabel(cell.width);
        module_reports.push_back({key, s.instructions, s.cycles,
                                  s.wallNanos, digest(s)});
        module_instrs += s.instructions;
        module_nanos += s.wallNanos;
        if (cell.width > kVerifyWidths.back())
            continue;       // the naive engine is O(window)/cycle
        const SharedTrace &trace = module_driver.trace(*cell.spec);
        const MachineConfig config =
            MachineConfig::paper(cell.config, cell.width);
        MachineConfig naive = config;
        naive.naiveEngine = true;
        const SchedStats fast = runOnce(trace, config);
        const SchedStats slow = runOnce(trace, naive);
        if (digest(fast) != digest(s) ||
            !sameStats(fast, slow, key.c_str())) {
            ++module_mismatches;
            std::fprintf(stderr,
                         "MISMATCH %s: module series batched %016"
                         PRIx64 " event %016" PRIx64 "\n",
                         key.c_str(), digest(s), digest(fast));
        }
    }
    const double module_cell_seconds =
        static_cast<double>(module_nanos) * 1e-9;
    const double module_instrs_per_sec = module_cell_seconds > 0.0
        ? static_cast<double>(module_instrs) / module_cell_seconds
        : 0.0;
    std::printf("modules (%s): %zu cells, %.2fs cell time (%.2fs "
                "elapsed), %.0f instrs/sec, %u digest mismatches\n",
                module_configs.c_str(), module_cells.size(),
                module_cell_seconds, module_elapsed,
                module_instrs_per_sec, module_mismatches);

    std::FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"matrix\": {\"workloads\": 6, "
                 "\"configs\": \"%s\", \"widths\": [", kConfigs.c_str());
    for (std::size_t i = 0; i < kTimedWidths.size(); ++i)
        std::fprintf(out, "%s%u", i ? ", " : "", kTimedWidths[i]);
    std::fprintf(out, "]},\n");
    std::fprintf(out, "  \"jobs\": %u,\n", driver.jobs());
    std::fprintf(out, "  \"cells\": %zu,\n", cells.size());
    std::fprintf(out, "  \"instructions\": %" PRIu64 ",\n", total_instrs);
    std::fprintf(out, "  \"elapsedSeconds\": %.6f,\n", elapsed);
    std::fprintf(out, "  \"cellSeconds\": %.6f,\n", cell_seconds);
    std::fprintf(out, "  \"cellsPerSec\": %.3f,\n", cells_per_sec);
    std::fprintf(out, "  \"instrsPerSec\": %.0f,\n", instrs_per_sec);
    std::fprintf(out, "  \"verify\": {\"checked\": %u, "
                 "\"mismatches\": %u},\n", checked, mismatches);
    std::fprintf(out, "  \"batched\": {\"cellSeconds\": %.6f, "
                 "\"elapsedSeconds\": %.6f, \"cellsPerSec\": %.3f, "
                 "\"instrsPerSec\": %.0f, \"speedupOverEvent\": %.3f, "
                 "\"digestMismatches\": %u},\n",
                 batched_cell_seconds, batched_elapsed,
                 batched_cells_per_sec, batched_instrs_per_sec,
                 speedup_over_event, batched_mismatches);
    std::fprintf(out, "  \"mapped\": {\"cellSeconds\": %.6f, "
                 "\"elapsedSeconds\": %.6f, "
                 "\"instrsPerSec\": %.0f, \"speedupOverEvent\": %.3f, "
                 "\"digestMismatches\": %u},\n",
                 mapped_cell_seconds, mapped_elapsed,
                 mapped_instrs_per_sec, mapped_over_event,
                 mapped_mismatches);
    std::fprintf(out, "  \"modules\": {\"configs\": \"%s\", "
                 "\"cells\": %zu, \"cellSeconds\": %.6f, "
                 "\"elapsedSeconds\": %.6f, \"instrsPerSec\": %.0f, "
                 "\"digestMismatches\": %u},\n",
                 module_configs.c_str(), module_cells.size(),
                 module_cell_seconds, module_elapsed,
                 module_instrs_per_sec, module_mismatches);
    std::fprintf(out, "  \"perCell\": [\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const CellReport &r = reports[i];
        std::fprintf(out,
                     "    {\"cell\": \"%s\", \"instructions\": %" PRIu64
                     ", \"cycles\": %" PRIu64 ", \"wallNanos\": %" PRIu64
                     ", \"digest\": \"%016" PRIx64 "\"}%s\n",
                     r.key.c_str(), r.instructions, r.cycles,
                     r.wallNanos, r.digest,
                     i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"perCellModules\": [\n");
    for (std::size_t i = 0; i < module_reports.size(); ++i) {
        const CellReport &r = module_reports[i];
        std::fprintf(out,
                     "    {\"cell\": \"%s\", \"instructions\": %" PRIu64
                     ", \"cycles\": %" PRIu64 ", \"wallNanos\": %" PRIu64
                     ", \"digest\": \"%016" PRIx64 "\"}%s\n",
                     r.key.c_str(), r.instructions, r.cycles,
                     r.wallNanos, r.digest,
                     i + 1 < module_reports.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"perCellBatched\": [\n");
    for (std::size_t i = 0; i < batched_reports.size(); ++i) {
        const CellReport &r = batched_reports[i];
        std::fprintf(out,
                     "    {\"cell\": \"%s\", \"wallNanos\": %" PRIu64
                     "}%s\n",
                     r.key.c_str(), r.wallNanos,
                     i + 1 < batched_reports.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    return mismatches == 0 && batched_mismatches == 0 &&
                   mapped_mismatches == 0 && module_mismatches == 0
               ? 0
               : 1;
}
