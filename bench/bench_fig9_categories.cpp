/**
 * @file
 * Figure 9 reproduction: contribution of the three collapsing
 * mechanisms (3-1, 4-1, zero-operand detection) under configuration D.
 *
 * Paper: 3-1 dominates with 65-82% at widths <= 32; 4-1 contributes
 * 13-30%; 0-op detection 5-10%.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Figure 9: Contribution of the three Collapsing "
                  "Mechanisms for the D Configuration", driver);

    TextTable table;
    std::vector<std::string> header = {"category"};
    for (const unsigned w : MachineConfig::paperWidths())
        header.push_back("w=" + MachineConfig::widthLabel(w));
    table.header(std::move(header));

    const auto set = ExperimentDriver::everything();
    for (unsigned c = 0; c < kNumCollapseCategories; ++c) {
        const auto category = static_cast<CollapseCategory>(c);
        std::vector<std::string> row{
            std::string(collapseCategoryName(category))};
        for (const unsigned w : MachineConfig::paperWidths()) {
            const CollapseStats merged =
                driver.mergedCollapse(set, 'D', w);
            row.push_back(TextTable::num(merged.pctOf(category), 1));
        }
        table.row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: 3-1 65-82%% (w<=32), 4-1 13-30%%, 0-op "
                "5-10%%\n");
    return 0;
}
