/**
 * @file
 * Ablation bench: what is the paper's "all other branches and jumps
 * are assumed to be always predicted correctly" idealization worth?
 *
 * Runs configuration D with realistic return/indirect prediction (a
 * 16-entry return-address stack and a 512-entry last-target buffer)
 * and reports the harmonic-mean IPC against the idealized machine,
 * plus the CTI misprediction rates, per issue width.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Ablation: realistic call/return/indirect prediction "
                  "(vs the paper's perfect-CTI assumption)", driver);

    TextTable table;
    table.header({"width", "IPC D (perfect CTI)", "IPC D (real CTI)",
                  "ratio", "CTI mispredict %"});

    for (const unsigned w : MachineConfig::paperWidths()) {
        MachineConfig real = MachineConfig::paper('D', w);
        real.realCtiPrediction = true;
        const std::string key = "cti/" + std::to_string(w);

        std::vector<double> ideal_ipcs, real_ipcs;
        std::uint64_t predictions = 0, mispredicts = 0;
        for (const WorkloadSpec &spec : allWorkloads()) {
            ideal_ipcs.push_back(driver.stats(spec, 'D', w).ipc());
            const SchedStats &stats = driver.statsFor(spec, real, key);
            real_ipcs.push_back(stats.ipc());
            predictions += stats.ctiPredictions;
            mispredicts += stats.ctiMispredicts;
        }
        const double ideal = harmonicMean(ideal_ipcs);
        const double realistic = harmonicMean(real_ipcs);
        table.row({
            MachineConfig::widthLabel(w),
            TextTable::num(ideal),
            TextTable::num(realistic),
            TextTable::num(realistic / ideal, 3),
            TextTable::num(percent(static_cast<double>(mispredicts),
                                   static_cast<double>(predictions)),
                           2),
        });
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
