/**
 * @file
 * Table 5 reproduction: the most frequently collapsed pair (3-1 style)
 * dependence sequences under configuration D, as a percentage of all
 * collapsed pairs, by issue width.
 *
 * Paper's top rows: arrr-brc and arri-brc (~12-17%), arri-arri,
 * arr0-brc, shri-ldrr, mvi-lgri, mvi-ldri, arrr-arrr, ...
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Table 5: Collapsed 3-1 (pair) Dependences, "
                  "% of all collapsed pairs (configuration D)", driver);
    bench::printSignatureTable(driver, 2, 12);
    std::printf("\npaper top rows: arrr-brc 12.7, arri-brc 12.4, "
                "arri-arri 8.0, arr0-brc 7.1, shri-ldrr 5.1, "
                "mvi-lgri 5.0 (at 2k)\n");
    return 0;
}
