/**
 * @file
 * Figure 5 reproduction: speedup over base for the pointer-chasing
 * benchmarks (go, li).
 *
 * Paper anchors: realistic load-speculation alone (B) gains only
 * 5-9% at widths 4-32; collapsing gains are smaller than on the full
 * set; the drop from ideal (E) to realistic (D) is pronounced.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Figure 5: SpeedUp over Base for the \"Pointer "
                  "Chasing\" Benchmarks (go, li)", driver);
    bench::printLegend();
    bench::printSpeedupMatrix(driver, workloadSubset(true));
    std::printf("\npaper anchors: B gains only 1.05-1.09 at widths "
                "4-32 on this subset\n");
    return 0;
}
