/**
 * @file
 * Predictor-comparison bench: accuracy of the component predictors
 * (bimodal, gshare, local, combining) on every benchmark's conditional
 * branch stream, all at roughly the paper's 8 kByte budget.  Explains
 * why the paper picked the combining scheme and quantifies what the
 * harder go/eqntott streams cost each design.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "bpred/bpred.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Branch predictor comparison at ~8 kB "
                  "(conditional branches only)", driver);

    TextTable table;
    table.header({"benchmark", "bimodal15", "gshare15", "local",
                  "bimodal13/gshare14"});

    for (const WorkloadSpec &spec : allWorkloads()) {
        // Fresh predictors per benchmark, sized near 8 kBytes:
        // 2^15 2-bit counters = 8 kB for the single-table designs;
        // local uses 2^12 10-bit histories (5 kB) + 2^10 counters.
        std::vector<std::unique_ptr<BranchPredictor>> preds;
        preds.push_back(std::make_unique<BimodalPredictor>(15));
        preds.push_back(std::make_unique<GsharePredictor>(15));
        preds.push_back(std::make_unique<LocalPredictor>(10, 12));
        preds.push_back(std::make_unique<CombiningPredictor>(13));

        std::vector<std::uint64_t> hits(preds.size(), 0);
        std::uint64_t branches = 0;

        const std::unique_ptr<TraceSource> trace =
            driver.trace(spec).cursor();
        TraceRecord rec;
        while (trace->next(rec)) {
            if (!rec.isCondBranch())
                continue;
            ++branches;
            for (std::size_t p = 0; p < preds.size(); ++p) {
                if (preds[p]->predictAndUpdate(rec.pc, rec.taken))
                    ++hits[p];
            }
        }

        std::vector<std::string> row = {spec.name};
        for (const std::uint64_t h : hits) {
            row.push_back(TextTable::num(
                branches == 0 ? 0.0
                : 100.0 * static_cast<double>(h) /
                  static_cast<double>(branches), 2));
        }
        table.row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
