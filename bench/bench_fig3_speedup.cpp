/**
 * @file
 * Figure 3 reproduction: harmonic-mean speedup over the base
 * superscalar machine (A) for configurations B..E at widths 4..2k.
 *
 * Paper anchors: D reaches 1.20 / 1.35 / 1.51 / 1.66 at widths
 * 4/8/16/32 and ~1.9 at 2k; E spans 1.25 (w=4) to 2.95 (w=2k); the
 * speedup of D roughly equals the sum of the separate gains of B and
 * C; collapsing (C) contributes the majority.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Figure 3: SpeedUp over the Superscalar Base Machine "
                  "(all benchmarks, harmonic mean)", driver);
    bench::printLegend();
    bench::printSpeedupMatrix(driver, ExperimentDriver::everything());
    std::printf("\npaper anchors (D): 1.20 @w4, 1.35 @w8, 1.51 @w16, "
                "1.66 @w32; (E): 1.25 @w4 .. 2.95 @w2k\n");
    return 0;
}
