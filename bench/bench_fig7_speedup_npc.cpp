/**
 * @file
 * Figure 7 reproduction: speedup over base for the non-pointer-chasing
 * benchmarks.
 *
 * Paper anchors: D reaches 1.23-1.8 at widths 4-32 on this subset;
 * speedups from realistic load-speculation are higher than on the full
 * mix; the E-D gap is smaller than for the pointer-chasing programs;
 * collapsing still contributes the majority.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Figure 7: SpeedUp over Base for the non \"Pointer "
                  "Chasing\" Benchmarks", driver);
    bench::printLegend();
    bench::printSpeedupMatrix(driver, workloadSubset(false));
    std::printf("\npaper anchors (D): 1.23-1.8 at widths 4-32\n");
    return 0;
}
