/**
 * @file
 * Extension bench: node elimination (paper Figure 1.f).
 *
 * The paper observes that a collapsed-away producer whose result is
 * not needed elsewhere "need not be executed".  This bench quantifies
 * that: configuration D with and without node elimination, per issue
 * width over all benchmarks -- harmonic-mean IPC plus the fraction of
 * dynamic instructions eliminated.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Extension: node elimination on top of "
                  "configuration D", driver);

    TextTable table;
    table.header({"width", "IPC D", "IPC D+elim", "speedup",
                  "eliminated (%)"});

    for (const unsigned w : MachineConfig::paperWidths()) {
        MachineConfig elim_config = MachineConfig::paper('D', w);
        elim_config.nodeElimination = true;
        const std::string key = "elim/" + std::to_string(w);

        std::vector<double> base_ipcs, elim_ipcs;
        std::uint64_t eliminated = 0, total = 0;
        for (const WorkloadSpec &spec : allWorkloads()) {
            base_ipcs.push_back(driver.stats(spec, 'D', w).ipc());
            const SchedStats &elim = driver.statsFor(spec, elim_config,
                                                     key);
            elim_ipcs.push_back(elim.ipc());
            eliminated += elim.eliminatedInstructions;
            total += elim.instructions;
        }
        const double base = harmonicMean(base_ipcs);
        const double with_elim = harmonicMean(elim_ipcs);
        table.row({
            MachineConfig::widthLabel(w),
            TextTable::num(base),
            TextTable::num(with_elim),
            TextTable::num(with_elim / base, 3),
            TextTable::num(percent(static_cast<double>(eliminated),
                                   static_cast<double>(total)), 2),
        });
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
