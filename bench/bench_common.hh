/**
 * @file
 * Shared plumbing for the experiment-reproduction benches.  Each bench
 * binary regenerates one table or figure of the paper and prints it in
 * the same shape (rows = the paper's rows, columns = the paper's
 * columns) so EXPERIMENTS.md can record paper-vs-measured side by side.
 *
 * Set DDSC_TRACE_LIMIT=<n> to truncate traces for quick runs.
 * Cells are simulated in parallel (DDSC_JOBS worker threads, default
 * hardware concurrency) with results bit-identical to a serial run;
 * see tests/parallel_equiv_test.cpp.
 */

#ifndef DDSC_BENCH_BENCH_COMMON_HH
#define DDSC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "support/table.hh"

namespace ddsc::bench
{

inline const std::vector<char> kConfigs = {'A', 'B', 'C', 'D', 'E'};

inline void
banner(const std::string &what, const ExperimentDriver &driver)
{
    std::printf("=== %s ===\n", what.c_str());
    if (driver.traceLimit() != 0) {
        std::printf("(traces truncated to %llu instructions via "
                    "DDSC_TRACE_LIMIT)\n",
                    static_cast<unsigned long long>(driver.traceLimit()));
    }
    if (driver.jobs() > 1)
        std::printf("(cells simulated on %u worker threads)\n",
                    driver.jobs());
}

/** Simulate all of @p configs x the paper widths for @p set up front,
 *  in parallel, so the table printers below only hit the cache. */
inline void
prefetchMatrix(ExperimentDriver &driver,
               const std::vector<const WorkloadSpec *> &set,
               const std::string &configs)
{
    driver.prefetch(ExperimentDriver::cellsFor(
        set, configs, MachineConfig::paperWidths()));
}

/** Describe a configuration letter as in the paper's Section 4. */
inline const char *
configLegend(char config)
{
    switch (config) {
      case 'A': return "base";
      case 'B': return "base + real load-speculation";
      case 'C': return "base + d-collapsing";
      case 'D': return "base + d-collapsing + real load-spec";
      case 'E': return "base + d-collapsing + ideal load-spec";
      default: return "?";
    }
}

inline void
printLegend()
{
    for (const char c : kConfigs)
        std::printf("  %c: %s\n", c, configLegend(c));
    std::printf("\n");
}

/** Figures 2/4/6: harmonic-mean IPC, configs x widths. */
inline void
printIpcMatrix(ExperimentDriver &driver,
               const std::vector<const WorkloadSpec *> &set)
{
    prefetchMatrix(driver, set, std::string(kConfigs.begin(),
                                            kConfigs.end()));
    TextTable table;
    std::vector<std::string> header = {"config"};
    for (const unsigned w : MachineConfig::paperWidths())
        header.push_back("w=" + MachineConfig::widthLabel(w));
    table.header(std::move(header));
    for (const char config : kConfigs) {
        std::vector<std::string> row = {std::string(1, config)};
        for (const unsigned w : MachineConfig::paperWidths())
            row.push_back(TextTable::num(driver.hmeanIpc(set, config, w)));
        table.row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
}

/** Figures 3/5/7: harmonic-mean speedup over A, configs x widths. */
inline void
printSpeedupMatrix(ExperimentDriver &driver,
                   const std::vector<const WorkloadSpec *> &set)
{
    prefetchMatrix(driver, set, std::string(kConfigs.begin(),
                                            kConfigs.end()));
    TextTable table;
    std::vector<std::string> header = {"config"};
    for (const unsigned w : MachineConfig::paperWidths())
        header.push_back("w=" + MachineConfig::widthLabel(w));
    table.header(std::move(header));
    for (const char config : kConfigs) {
        std::vector<std::string> row = {std::string(1, config)};
        for (const unsigned w : MachineConfig::paperWidths()) {
            row.push_back(
                TextTable::num(driver.hmeanSpeedup(set, config, w)));
        }
        table.row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
}

/** Tables 3/4: load-speculation behaviour under configuration D. */
inline void
printLoadSpecTable(ExperimentDriver &driver,
                   const std::vector<const WorkloadSpec *> &set)
{
    prefetchMatrix(driver, set, "D");
    TextTable table;
    table.header({"Issue Width", "Ready (%)", "Predicted Correctly (%)",
                  "Predicted Incorrectly (%)", "Not Predicted (%)"});
    for (const unsigned w : MachineConfig::paperWidths()) {
        table.row({
            MachineConfig::widthLabel(w),
            TextTable::num(driver.meanLoadClassPct(
                set, 'D', w, LoadClass::Ready)),
            TextTable::num(driver.meanLoadClassPct(
                set, 'D', w, LoadClass::PredictedCorrect)),
            TextTable::num(driver.meanLoadClassPct(
                set, 'D', w, LoadClass::PredictedIncorrect)),
            TextTable::num(driver.meanLoadClassPct(
                set, 'D', w, LoadClass::NotPredicted)),
        });
    }
    std::printf("%s", table.render().c_str());
}

/** Tables 5/6: top collapsed signatures by width for configuration D. */
inline void
printSignatureTable(ExperimentDriver &driver, unsigned group_size,
                    std::size_t top_n)
{
    // Rank by the widest machine, then report that signature across
    // all widths, mirroring the tables' layout.
    const auto set = ExperimentDriver::everything();
    prefetchMatrix(driver, set, "D");
    const CollapseStats widest =
        driver.mergedCollapse(set, 'D', 2048);
    const auto ranked = widest.topSignatures(group_size, top_n);

    TextTable table;
    std::vector<std::string> header = {"Operation Types"};
    for (const unsigned w : {2048u, 32u, 16u, 8u, 4u})
        header.push_back(MachineConfig::widthLabel(w));
    table.header(std::move(header));

    for (const auto &[signature, pct_widest] : ranked) {
        std::vector<std::string> row = {signature};
        for (const unsigned w : {2048u, 32u, 16u, 8u, 4u}) {
            const CollapseStats merged =
                driver.mergedCollapse(set, 'D', w);
            const auto &sig_map = group_size == 2
                ? merged.pairSignatures() : merged.tripleSignatures();
            const auto total = group_size == 2
                ? merged.pairEvents() : merged.tripleEvents();
            const auto it = sig_map.find(signature);
            const double pct = (it == sig_map.end() || total == 0)
                ? 0.0
                : 100.0 * static_cast<double>(it->second) /
                  static_cast<double>(total);
            row.push_back(TextTable::num(pct));
        }
        table.row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
}

} // namespace ddsc::bench

#endif // DDSC_BENCH_BENCH_COMMON_HH
