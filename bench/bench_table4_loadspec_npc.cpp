/**
 * @file
 * Table 4 reproduction: load-speculation behaviour for the
 * non-pointer-chasing benchmarks under configuration D.
 *
 * Paper: many more loads predicted correctly (28-57%) and far fewer
 * not predicted (~20%) than for the pointer-chasing subset; the ready
 * fraction grows with window size as address generation collapses.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Table 4: Load-Speculation Behavior for non-Chasing "
                  "Pointer Benchmarks with Configuration D", driver);
    bench::printLoadSpecTable(driver, workloadSubset(false));
    std::printf("\npaper (w4 row): ready 20.7, correct 57.0, "
                "incorrect 2.2, not-predicted 20.2\n");
    return 0;
}
