/**
 * @file
 * Prior-work comparison bench.
 *
 * The interlock-collapsing studies the paper builds on ([10, 18])
 * restricted collapsing to *consecutive instructions within a single
 * basic block*.  This bench quantifies what the paper's relaxations
 * buy, running configuration D at each issue width under four
 * collapsing regimes:
 *
 *   full          the paper's model (any distance, across blocks)
 *   within-bb     cross-basic-block collapsing disabled
 *   consecutive   only adjacent dynamic instructions may collapse
 *   prior work    both restrictions (the [10, 18] model)
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace ddsc;

double
hmean(ExperimentDriver &driver, const MachineConfig &config,
      const std::string &key)
{
    std::vector<double> ipcs;
    for (const WorkloadSpec &spec : allWorkloads())
        ipcs.push_back(driver.statsFor(spec, config, key).ipc());
    return harmonicMean(ipcs);
}

} // anonymous namespace

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Prior-work comparison: collapsing restrictions "
                  "(configuration D, harmonic-mean IPC)", driver);

    TextTable table;
    table.header({"width", "full (paper)", "within-bb", "consecutive",
                  "consecutive+bb", "paper gain"});

    for (const unsigned w : MachineConfig::paperWidths()) {
        const MachineConfig full = MachineConfig::paper('D', w);

        MachineConfig bb_only = full;
        bb_only.rules.sameBasicBlockOnly = true;

        MachineConfig adjacent = full;
        adjacent.rules.maxCollapseDistance = 1;

        MachineConfig prior = full;
        prior.rules.sameBasicBlockOnly = true;
        prior.rules.maxCollapseDistance = 1;

        const std::string ws = std::to_string(w);
        const double ipc_full = hmean(driver, full, "pw/full/" + ws);
        const double ipc_bb = hmean(driver, bb_only, "pw/bb/" + ws);
        const double ipc_adj = hmean(driver, adjacent, "pw/adj/" + ws);
        const double ipc_prior = hmean(driver, prior, "pw/prior/" + ws);

        table.row({
            MachineConfig::widthLabel(w),
            TextTable::num(ipc_full),
            TextTable::num(ipc_bb),
            TextTable::num(ipc_adj),
            TextTable::num(ipc_prior),
            TextTable::num(ipc_full / ipc_prior, 3),
        });
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n'paper gain' is the paper's model over the [10,18] "
                "restrictions; the paper\npredicts the advantage grows "
                "with width (figure 10: most collapsed pairs are\n"
                "non-consecutive beyond width 8).\n");
    return 0;
}
