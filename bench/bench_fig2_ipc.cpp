/**
 * @file
 * Figure 2 reproduction: harmonic-mean IPC of configurations A..E at
 * issue widths 4, 8, 16, 32, and 2k over all six benchmarks.
 *
 * Expected shape (paper): E > D > C > B > A at every width; B adds
 * little over A at small widths; the E-D gap grows with width (ideal
 * vs realistic address prediction).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Figure 2: IPC for the Different Configurations and "
                  "Issue Widths (all benchmarks, harmonic mean)", driver);
    bench::printLegend();
    bench::printIpcMatrix(driver, ExperimentDriver::everything());
    return 0;
}
