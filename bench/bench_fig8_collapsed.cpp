/**
 * @file
 * Figure 8 reproduction: percentage of dynamic instructions collapsed
 * under configuration D, by issue width, per benchmark and aggregate.
 *
 * Paper: 29-47% of instructions collapse, growing with issue width.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Figure 8: Instructions D-Collapsed (configuration D)",
                  driver);

    TextTable table;
    std::vector<std::string> header = {"benchmark"};
    for (const unsigned w : MachineConfig::paperWidths())
        header.push_back("w=" + MachineConfig::widthLabel(w));
    table.header(std::move(header));

    for (const WorkloadSpec &spec : allWorkloads()) {
        std::vector<std::string> row = {spec.name};
        for (const unsigned w : MachineConfig::paperWidths()) {
            row.push_back(TextTable::num(
                driver.stats(spec, 'D', w).pctCollapsed(), 1));
        }
        table.row(std::move(row));
    }
    std::vector<std::string> all_row = {"ALL"};
    for (const unsigned w : MachineConfig::paperWidths()) {
        all_row.push_back(TextTable::num(
            driver.pctCollapsed(ExperimentDriver::everything(), 'D', w),
            1));
    }
    table.row(std::move(all_row));
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: 29%% at the narrow widths rising to 47%% at "
                "2k\n");
    return 0;
}
