/**
 * @file
 * Figure 4 reproduction: harmonic-mean IPC for the pointer-chasing
 * benchmarks (go, li), configurations A..E, widths 4..2k.
 *
 * Expected shape: realistic load-speculation is nearly useless here
 * (stride prediction fails on pointer chains) while ideal speculation
 * still gains substantially.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Figure 4: IPC for the \"Pointer Chasing\" Benchmarks "
                  "(go, li)", driver);
    bench::printLegend();
    bench::printIpcMatrix(driver, workloadSubset(true));
    return 0;
}
