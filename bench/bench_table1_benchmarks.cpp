/**
 * @file
 * Table 1 reproduction: benchmark characteristics.
 *
 * Paper: benchmark name, input file, flags, trace size (millions).
 * Here: the analogue's name, what it models, whether it is in the
 * pointer-chasing subset, and the dynamic trace length at default
 * scale.  Paper trace sizes were 88-250M; ours are scaled down to
 * keep a full matrix runnable in minutes but preserve the behaviours
 * the mechanisms key on.
 */

#include <cstdio>

#include "bench_common.hh"
#include "trace/trace_stats.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Table 1: Benchmark Characteristics", driver);

    TextTable table;
    table.header({"Name", "Paper Name", "Pointer-Chasing",
                  "Trace Size (K)", "Checksum"});
    for (const WorkloadSpec &spec : allWorkloads()) {
        std::uint32_t checksum = 0;
        VectorTraceSource trace = traceWorkload(spec, 0, &checksum);
        table.row({
            spec.name,
            spec.paperName,
            spec.pointerChasing ? "yes" : "no",
            TextTable::num(static_cast<double>(trace.size()) / 1000.0, 0),
            std::to_string(checksum),
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: 026.compress 88M, 008.espresso 250M, "
                "023.eqntott 250M, 022.li 207M, 099.go 122M, "
                "132.ijpeg 250M (truncated at 250M)\n");
    return 0;
}
