/**
 * @file
 * Future-work bench: alternative load-address predictors.
 *
 * The paper's conclusion calls for load-speculation mechanisms that
 * work on both pointer-chasing and non-pointer-chasing codes.  This
 * bench swaps the two-delta stride table for a last-value predictor
 * and an order-2 context (FCM) predictor and reports, per benchmark at
 * width 16 under configuration D, the predicted-correctly load share
 * and the IPC.  Ideal speculation (E) bounds the attainable gain.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ddsc;
    ExperimentDriver driver;
    bench::banner("Future work: load-address predictor alternatives "
                  "(configuration D, width 16)", driver);

    constexpr unsigned kWidth = 16;
    const AddrPredKind kinds[] = {
        AddrPredKind::LastValue,
        AddrPredKind::TwoDelta,
        AddrPredKind::Context,
    };

    TextTable table;
    table.header({"benchmark",
                  "last-val corr%", "IPC",
                  "two-delta corr%", "IPC",
                  "context corr%", "IPC",
                  "ideal IPC"});

    for (const WorkloadSpec &spec : allWorkloads()) {
        std::vector<std::string> row = {spec.name};
        for (const AddrPredKind kind : kinds) {
            MachineConfig config = MachineConfig::paper('D', kWidth);
            config.addrPredKind = kind;
            const std::string key =
                "future/" + std::string(addrPredKindName(kind));
            const SchedStats &stats = driver.statsFor(spec, config, key);
            row.push_back(TextTable::num(
                stats.loadClassPct(LoadClass::PredictedCorrect), 1));
            row.push_back(TextTable::num(stats.ipc()));
        }
        row.push_back(TextTable::num(
            driver.stats(spec, 'E', kWidth).ipc()));
        table.row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected: context >= two-delta >= last-value on "
                "regular codes; all far below ideal on pointer "
                "chasing.\n");
    return 0;
}
