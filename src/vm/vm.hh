/**
 * @file
 * Functional emulator for the ddsc mini ISA.
 *
 * Executes an assembled Program and optionally emits the dynamic
 * instruction trace that the limit simulator consumes.  This plays the
 * role qpt2 played for the paper: user-level tracing with nops excluded.
 */

#ifndef DDSC_VM_VM_HH
#define DDSC_VM_VM_HH

#include <cstdint>
#include <limits>

#include "isa/instruction.hh"
#include "trace/source.hh"
#include "vm/memory.hh"

namespace ddsc
{

/**
 * Integer condition codes (SPARC icc-style N/Z/V/C).
 */
struct CondCodes
{
    bool n = false;     ///< negative
    bool z = false;     ///< zero
    bool v = false;     ///< signed overflow
    bool c = false;     ///< carry / unsigned borrow

    /** Evaluate a branch condition against these flags. */
    bool test(Cond cond) const;
};

/**
 * The emulator.
 */
class Vm
{
  public:
    struct RunResult
    {
        std::uint64_t instructions = 0; ///< traced (non-nop) instructions
        bool halted = false;            ///< reached a halt instruction
    };

    /** Bind to a program; registers and memory are reset. */
    explicit Vm(const Program &program);

    /**
     * Run until halt or until @p max_instructions have been traced.
     * @param sink receives one record per traced instruction (may be
     *        null for functional-only runs).
     */
    RunResult run(TraceSink *sink = nullptr,
                  std::uint64_t max_instructions =
                      std::numeric_limits<std::uint64_t>::max());

    /** Reset registers, flags, memory, and pc to the initial state. */
    void reset();

    /** Architected register value (r0 reads as zero). */
    std::uint32_t reg(unsigned index) const;

    /** Set a register (for test setup); writes to r0 are ignored. */
    void setReg(unsigned index, std::uint32_t value);

    /** Current pc. */
    std::uint64_t pc() const { return pc_; }

    /** Condition codes (for tests). */
    const CondCodes &cc() const { return cc_; }

    /** Memory inspection. */
    std::uint32_t loadWord(std::uint64_t addr) const
    {
        return mem_.readWord(addr);
    }
    std::uint8_t loadByte(std::uint64_t addr) const
    {
        return mem_.readByte(addr);
    }

    /** Memory poke (for test setup). */
    void storeWord(std::uint64_t addr, std::uint32_t value)
    {
        mem_.writeWord(addr, value);
    }

  private:
    /** Execute one instruction; returns false on halt. */
    bool step(TraceSink *sink, bool &traced);

    const Program &program_;
    SparseMemory mem_;
    std::uint32_t regs_[kNumRegs] = {};
    CondCodes cc_;
    std::uint64_t pc_ = 0;
};

/**
 * Convenience: assemble-free helper that runs @p program to completion
 * and returns the trace in memory.  fatal()s if the program does not
 * halt within @p max_instructions.
 */
VectorTraceSource traceProgram(const Program &program,
                               std::uint64_t max_instructions = 500'000'000);

} // namespace ddsc

#endif // DDSC_VM_VM_HH
