#include "vm.hh"

#include "support/logging.hh"

namespace ddsc
{

bool
CondCodes::test(Cond cond) const
{
    switch (cond) {
      case Cond::EQ:  return z;
      case Cond::NE:  return !z;
      case Cond::LT:  return n != v;
      case Cond::GE:  return n == v;
      case Cond::LE:  return z || (n != v);
      case Cond::GT:  return !z && (n == v);
      case Cond::LTU: return c;
      case Cond::GEU: return !c;
      case Cond::LEU: return c || z;
      case Cond::GTU: return !c && !z;
      case Cond::NEG: return n;
      case Cond::POS: return !n;
    }
    return false;
}

Vm::Vm(const Program &program)
    : program_(program)
{
    reset();
}

void
Vm::reset()
{
    mem_.clear();
    for (auto &r : regs_)
        r = 0;
    cc_ = CondCodes{};
    pc_ = program_.entry;
    regs_[kRegSp] = static_cast<std::uint32_t>(kStackTop);
    for (std::size_t i = 0; i < program_.data.size(); ++i)
        mem_.writeByte(kDataBase + i, program_.data[i]);
}

std::uint32_t
Vm::reg(unsigned index) const
{
    ddsc_assert(index < kNumRegs, "register %u out of range", index);
    return index == kRegZero ? 0 : regs_[index];
}

void
Vm::setReg(unsigned index, std::uint32_t value)
{
    ddsc_assert(index < kNumRegs, "register %u out of range", index);
    if (index != kRegZero)
        regs_[index] = value;
}

Vm::RunResult
Vm::run(TraceSink *sink, std::uint64_t max_instructions)
{
    RunResult result;
    while (result.instructions < max_instructions) {
        bool traced = false;
        const bool keep_going = step(sink, traced);
        if (traced)
            ++result.instructions;
        if (!keep_going) {
            result.halted = true;
            break;
        }
    }
    return result;
}

bool
Vm::step(TraceSink *sink, bool &traced)
{
    if (!program_.contains(pc_))
        ddsc_fatal("pc 0x%llx escaped the text segment",
                   static_cast<unsigned long long>(pc_));
    const Instruction &inst = program_.text[Program::indexOf(pc_)];
    const OpClass cls = opTraits(inst.op).cls;

    // Nops execute but are never traced, matching the paper's
    // methodology ("Nop operations were ignored").  The artificial halt
    // marker is likewise excluded from the trace.
    traced = cls != OpClass::Nop && cls != OpClass::Halt;

    TraceRecord rec;
    rec.pc = pc_;
    rec.op = inst.op;
    rec.cond = inst.cond;
    rec.rd = inst.rd;
    rec.rs1 = inst.rs1;
    rec.rs2 = inst.rs2;
    rec.useImm = inst.useImm;
    rec.imm = inst.imm;

    const std::uint32_t a = reg(inst.rs1);
    const std::uint32_t b = inst.useImm
        ? static_cast<std::uint32_t>(inst.imm) : reg(inst.rs2);
    std::uint64_t next_pc = pc_ + 4;
    bool keep_going = true;

    switch (inst.op) {
      case Opcode::ADD:
        setReg(inst.rd, a + b);
        break;
      case Opcode::SUB:
        setReg(inst.rd, a - b);
        break;
      case Opcode::ADDCC: {
        const std::uint64_t wide = std::uint64_t{a} + b;
        const auto res = static_cast<std::uint32_t>(wide);
        cc_.n = (res >> 31) != 0;
        cc_.z = res == 0;
        cc_.c = (wide >> 32) != 0;
        cc_.v = (~(a ^ b) & (a ^ res) & 0x80000000u) != 0;
        setReg(inst.rd, res);
        break;
      }
      case Opcode::SUBCC: {
        const std::uint32_t res = a - b;
        cc_.n = (res >> 31) != 0;
        cc_.z = res == 0;
        cc_.c = a < b;  // unsigned borrow
        cc_.v = ((a ^ b) & (a ^ res) & 0x80000000u) != 0;
        setReg(inst.rd, res);
        break;
      }
      case Opcode::AND:
        setReg(inst.rd, a & b);
        break;
      case Opcode::OR:
        setReg(inst.rd, a | b);
        break;
      case Opcode::XOR:
        setReg(inst.rd, a ^ b);
        break;
      case Opcode::ANDN:
        setReg(inst.rd, a & ~b);
        break;
      case Opcode::ANDCC:
      case Opcode::ORCC:
      case Opcode::XORCC: {
        const std::uint32_t res = inst.op == Opcode::ANDCC ? (a & b)
            : inst.op == Opcode::ORCC ? (a | b) : (a ^ b);
        cc_.n = (res >> 31) != 0;
        cc_.z = res == 0;
        cc_.c = false;
        cc_.v = false;
        setReg(inst.rd, res);
        break;
      }
      case Opcode::SLL:
        setReg(inst.rd, a << (b & 31));
        break;
      case Opcode::SRL:
        setReg(inst.rd, a >> (b & 31));
        break;
      case Opcode::SRA:
        setReg(inst.rd, static_cast<std::uint32_t>(
                   static_cast<std::int32_t>(a) >> (b & 31)));
        break;
      case Opcode::MOV:
        setReg(inst.rd, b);
        break;
      case Opcode::SETHI:
        setReg(inst.rd, static_cast<std::uint32_t>(inst.imm) << 12);
        break;
      case Opcode::MUL:
        setReg(inst.rd, a * b);
        break;
      case Opcode::DIV:
        if (b == 0)
            ddsc_fatal("division by zero at pc 0x%llx",
                       static_cast<unsigned long long>(pc_));
        setReg(inst.rd, a / b);
        break;
      case Opcode::LDW: {
        const std::uint64_t ea = (a + b) & 0xffffffffu;
        rec.ea = ea;
        rec.memValue = mem_.readWord(ea);
        setReg(inst.rd, rec.memValue);
        break;
      }
      case Opcode::LDB: {
        const std::uint64_t ea = (a + b) & 0xffffffffu;
        rec.ea = ea;
        rec.memValue = mem_.readByte(ea);
        setReg(inst.rd, rec.memValue);
        break;
      }
      case Opcode::STW: {
        const std::uint64_t ea = (a + b) & 0xffffffffu;
        rec.ea = ea;
        rec.memValue = reg(inst.rd);
        mem_.writeWord(ea, rec.memValue);
        break;
      }
      case Opcode::STB: {
        const std::uint64_t ea = (a + b) & 0xffffffffu;
        rec.ea = ea;
        rec.memValue = static_cast<std::uint8_t>(reg(inst.rd));
        mem_.writeByte(ea, static_cast<std::uint8_t>(rec.memValue));
        break;
      }
      case Opcode::BCC:
        rec.taken = cc_.test(inst.cond);
        if (rec.taken)
            next_pc = inst.target;
        break;
      case Opcode::BA:
        rec.taken = true;
        next_pc = inst.target;
        break;
      case Opcode::JMPI:
        rec.taken = true;
        rec.ea = (a + b) & 0xffffffffu;
        next_pc = (a + b) & 0xffffffffu;
        break;
      case Opcode::CALL:
        rec.taken = true;
        setReg(kRegLink, static_cast<std::uint32_t>(pc_ + 4));
        next_pc = inst.target;
        break;
      case Opcode::CALLI:
        rec.taken = true;
        rec.ea = (a + b) & 0xffffffffu;
        setReg(kRegLink, static_cast<std::uint32_t>(pc_ + 4));
        next_pc = (a + b) & 0xffffffffu;
        break;
      case Opcode::RET:
        rec.taken = true;
        next_pc = reg(kRegLink);
        break;
      case Opcode::HALT:
        keep_going = false;
        break;
      case Opcode::NOP:
        break;
    }

    rec.target = next_pc;
    pc_ = next_pc;

    if (traced && sink)
        sink->emit(rec);
    return keep_going;
}

VectorTraceSource
traceProgram(const Program &program, std::uint64_t max_instructions)
{
    VectorTraceSource trace;
    VectorTraceSink sink(trace);
    Vm vm(program);
    const Vm::RunResult result = vm.run(&sink, max_instructions);
    if (!result.halted)
        ddsc_fatal("program did not halt within %llu instructions",
                   static_cast<unsigned long long>(max_instructions));
    return trace;
}

} // namespace ddsc
