/**
 * @file
 * Sparse byte-addressed memory for the functional emulator.
 */

#ifndef DDSC_VM_MEMORY_HH
#define DDSC_VM_MEMORY_HH

#include <array>
#include <cstdint>
#include <unordered_map>

namespace ddsc
{

/**
 * Demand-allocated paged memory.  Reads of untouched bytes return zero,
 * which lets workloads use .space-style zero-initialized regions and a
 * downward-growing stack without explicit mapping.
 */
class SparseMemory
{
  public:
    static constexpr std::size_t kPageBytes = 4096;

    /** Read one byte. */
    std::uint8_t
    readByte(std::uint64_t addr) const
    {
        const auto it = pages_.find(addr / kPageBytes);
        if (it == pages_.end())
            return 0;
        return it->second[addr % kPageBytes];
    }

    /** Write one byte. */
    void
    writeByte(std::uint64_t addr, std::uint8_t value)
    {
        pages_[addr / kPageBytes][addr % kPageBytes] = value;
    }

    /** Read a little-endian 32-bit word (no alignment requirement). */
    std::uint32_t
    readWord(std::uint64_t addr) const
    {
        return static_cast<std::uint32_t>(readByte(addr)) |
            (static_cast<std::uint32_t>(readByte(addr + 1)) << 8) |
            (static_cast<std::uint32_t>(readByte(addr + 2)) << 16) |
            (static_cast<std::uint32_t>(readByte(addr + 3)) << 24);
    }

    /** Write a little-endian 32-bit word. */
    void
    writeWord(std::uint64_t addr, std::uint32_t value)
    {
        writeByte(addr, static_cast<std::uint8_t>(value));
        writeByte(addr + 1, static_cast<std::uint8_t>(value >> 8));
        writeByte(addr + 2, static_cast<std::uint8_t>(value >> 16));
        writeByte(addr + 3, static_cast<std::uint8_t>(value >> 24));
    }

    /** Drop all contents. */
    void clear() { pages_.clear(); }

    /** Number of resident pages (for tests and stats). */
    std::size_t residentPages() const { return pages_.size(); }

  private:
    std::unordered_map<std::uint64_t,
                       std::array<std::uint8_t, kPageBytes>> pages_;
};

} // namespace ddsc

#endif // DDSC_VM_MEMORY_HH
