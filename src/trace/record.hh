/**
 * @file
 * Dynamic trace records.
 *
 * A trace record carries everything the limit simulator needs about one
 * dynamic instruction: identity (pc, opcode, operand kinds), the true
 * register/cc dependences, the effective address of memory operations,
 * and the resolved outcome of control transfers.  This mirrors what the
 * paper extracted from qpt2-generated SPARC traces.
 */

#ifndef DDSC_TRACE_RECORD_HH
#define DDSC_TRACE_RECORD_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/instruction.hh"
#include "isa/opcodes.hh"

namespace ddsc
{

/**
 * One dynamic instruction.
 */
struct TraceRecord
{
    std::uint64_t pc = 0;
    std::uint64_t ea = 0;       ///< effective address of loads/stores
    std::uint64_t target = 0;   ///< actual successor pc of control ops
    /** The value loaded or stored by memory operations; enables the
     *  value-prediction extension (paper Figure 1.d). */
    std::uint32_t memValue = 0;
    std::int32_t imm = 0;
    Opcode op = Opcode::NOP;
    Cond cond = Cond::EQ;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    bool useImm = false;
    bool taken = false;         ///< conditional branch outcome

    /** Operation class shorthand. */
    OpClass cls() const { return opTraits(op).cls; }

    bool isLoad() const { return cls() == OpClass::Load; }
    bool isStore() const { return cls() == OpClass::Store; }
    bool isCondBranch() const { return cls() == OpClass::Branch; }
    bool setsCC() const { return opTraits(op).setsCC; }
    bool readsCC() const { return opTraits(op).readsCC; }

    /** Number of memory bytes touched by loads/stores (1 or 4). */
    unsigned
    memSize() const
    {
        return (op == Opcode::LDB || op == Opcode::STB) ? 1 : 4;
    }

    /**
     * Destination register, or -1 when none is written.  Writes to r0
     * are discarded and create no dependence.
     */
    int
    destReg() const
    {
        const OpClass c = cls();
        if (!writesRegister(c))
            return -1;
        const std::uint8_t dst =
            (c == OpClass::Call || c == OpClass::CallIndirect)
                ? kRegLink : rd;
        return dst == kRegZero ? -1 : dst;
    }

    /**
     * Register sources that feed *address generation*.  Only loads,
     * stores, and indirect jumps have these.  r0 never appears.
     */
    std::array<int, 2>
    addressSources() const
    {
        std::array<int, 2> srcs = {-1, -1};
        const OpClass c = cls();
        if (c != OpClass::Load && c != OpClass::Store &&
            c != OpClass::IndirectJump && c != OpClass::CallIndirect) {
            return srcs;
        }
        int n = 0;
        if (rs1 != kRegZero)
            srcs[n++] = rs1;
        if (!useImm && rs2 != kRegZero)
            srcs[n++] = rs2;
        return srcs;
    }

    /**
     * Register sources *other than* address generation: ALU operands,
     * store data, and the link register for returns.  r0 never appears.
     */
    std::array<int, 2>
    dataSources() const
    {
        std::array<int, 2> srcs = {-1, -1};
        int n = 0;
        switch (cls()) {
          case OpClass::Arith:
          case OpClass::Logic:
          case OpClass::Shift:
          case OpClass::Mul:
          case OpClass::Div:
            if (rs1 != kRegZero)
                srcs[n++] = rs1;
            if (!useImm && rs2 != kRegZero)
                srcs[n++] = rs2;
            break;
          case OpClass::Move:
            if (op == Opcode::MOV && !useImm && rs2 != kRegZero)
                srcs[n++] = rs2;
            break;
          case OpClass::Store:
            if (rd != kRegZero)
                srcs[n++] = rd;    // the value being stored
            break;
          case OpClass::Ret:
            srcs[n++] = kRegLink;
            break;
          default:
            break;
        }
        return srcs;
    }

    /**
     * Count of non-zero source operands (registers plus a non-zero
     * immediate), the quantity that sizes a dependence expression for
     * collapsing.  A zero immediate and reads of r0 are "zero operands"
     * the paper's 0-op detection discards.
     */
    unsigned nonZeroOperandCount() const;

    /** True when the instruction has a zero operand that 0-op detection
     * could discard (r0 source or zero immediate in an operand slot). */
    bool hasZeroOperand() const;
};

/**
 * Incremental FNV-1a digest over the architectural fields of a record
 * stream.  Feeding records in order produces exactly the value
 * digestRecords() computes over the same sequence — the trace file
 * writer uses this to stamp the stream digest into the v4 header
 * without a second pass, and mapped traces serve it back in O(1).
 */
class RecordDigest
{
  public:
    /** Fold one record into the running digest. */
    void add(const TraceRecord &rec);

    /** Digest of everything added so far (empty stream: the FNV offset
     *  basis). */
    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 14695981039346656037ull;
};

/**
 * FNV-1a digest over every architectural field of @p records, in
 * order.  Two traces digest equal iff they would drive the simulator
 * identically; the persistent result cache keys cached cells on it so
 * a rebuilt or truncated trace invalidates stale results.
 */
std::uint64_t digestRecords(const std::vector<TraceRecord> &records);

} // namespace ddsc

#endif // DDSC_TRACE_RECORD_HH
