/**
 * @file
 * mmap'd zero-copy trace reading and page-cache residency accounting.
 *
 * MappedTraceSource maps a DDSCTRC v4 file read-only and serves it
 * through allocation-free cursors: the structural metadata (header
 * CRC, footer CRC table, size/count cross-check) is validated eagerly
 * at open in O(blocks), but each data block's record CRC is verified
 * lazily, the first time any cursor crosses into it.  Opening a 10 GB
 * corpus is cheap; a sweep that reads 1% of it checksums 1% of it;
 * and corruption still fails loudly with a block-accurate diagnosis
 * before a single corrupt record reaches the simulator.
 *
 * TraceResidencyManager implements the server's --trace-budget-mb:
 * an LRU over mapped traces that releases the coldest trace's pages
 * (madvise MADV_DONTNEED) when the charged total exceeds the budget.
 * Eviction is safe mid-read — dropped file-backed pages refault from
 * disk with identical bytes, and the lazy-CRC "already verified"
 * flags stay valid because they describe the file, not the page.
 */

#ifndef DDSC_TRACE_MAPPED_HH
#define DDSC_TRACE_MAPPED_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "trace/source.hh"

namespace ddsc
{

/**
 * A DDSCTRC v4 trace file mapped into the address space.
 *
 * Immutable and safe to share: any number of cursors may read
 * concurrently; block validation races are benign (idempotent CRC
 * checks settling one atomic flag).  The file's pages are shared with
 * the page cache, so RSS grows only with the blocks actually read and
 * shrinks again under evict().
 */
class MappedTraceSource : public SharedTrace
{
  public:
    /** Map and structurally validate @p path; fatal() with a
     *  diagnosis on any mismatch (see trace_file.cc for the checks —
     *  all but the per-block record CRCs, which are lazy here). */
    explicit MappedTraceSource(const std::string &path);
    ~MappedTraceSource() override;

    MappedTraceSource(const MappedTraceSource &) = delete;
    MappedTraceSource &operator=(const MappedTraceSource &) = delete;

    std::unique_ptr<TraceSource> cursor() const override;
    std::uint64_t recordCount() const override { return count_; }

    /** O(1): the stream digest the writer stamped into the header,
     *  bit-identical to digestRecords over the same records. */
    std::uint64_t digest() const override { return digest_; }

    std::uint64_t mappedBytes() const override { return size_; }

    /** Drop resident pages (madvise MADV_DONTNEED).  Safe while
     *  cursors are mid-read; they refault identical bytes. */
    void evict() const override;

    const std::string &path() const { return path_; }
    std::uint32_t blockSize() const { return blockSize_; }
    std::uint64_t blocks() const { return numBlocks_; }

    /** Times evict() dropped this trace's pages. */
    std::uint64_t evictions() const { return evictions_.load(); }

    /**
     * Non-fatal peek at @p path: true iff it starts with a valid v4
     * header (magic, version, header CRC, record size), filling
     * @p digest / @p count from it.  Used to decide whether an
     * existing spill file can be reused without re-writing it.
     */
    static bool probe(const std::string &path,
                      std::uint64_t *digest = nullptr,
                      std::uint64_t *count = nullptr);

    /** Verify block @p block's record CRC once (lazy, idempotent);
     *  fatal() naming the block, record range, and byte offset on
     *  mismatch.  Called by cursors on block entry. */
    void validateBlock(std::uint64_t block) const;

    /** Start of block @p block's record bytes. */
    const unsigned char *
    blockData(std::uint64_t block) const
    {
        return base_ + headerBytes() + block * blockSize_;
    }

    /** Records held by block @p block (perBlock, or the final
     *  partial block's remainder). */
    std::uint64_t recordsInBlock(std::uint64_t block) const;

    std::uint64_t recordsPerBlock() const { return perBlock_; }

  private:
    static std::uint32_t headerBytes();

    std::string path_;
    const unsigned char *base_ = nullptr;
    std::uint64_t size_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t digest_ = 0;
    std::uint32_t blockSize_ = 0;
    std::uint64_t perBlock_ = 0;
    std::uint64_t numBlocks_ = 0;
    const std::uint32_t *blockCrcs_ = nullptr;  ///< points into the map
    /** 0 = unverified, 1 = verified; settled once per block for the
     *  lifetime of the mapping. */
    mutable std::unique_ptr<std::atomic<std::uint8_t>[]> blockState_;
    mutable std::atomic<std::uint64_t> evictions_{0};
};

/**
 * LRU residency budget over mapped traces.
 *
 * Callers touch() a trace before sweeping it; when the sum of
 * resident mapped bytes exceeds the budget, the least-recently
 * touched traces are evicted until it fits (the just-touched trace is
 * never evicted to make room for itself).  Purely in-memory traces
 * (mappedBytes() == 0) are ignored.  Counters are estimates — the
 * kernel repopulates evicted pages on demand without telling us — but
 * they bound what this manager has *charged*, which is what the
 * health endpoint reports.
 */
class TraceResidencyManager
{
  public:
    struct Counters
    {
        std::uint64_t budgetBytes = 0;
        std::uint64_t mappedBytes = 0;    ///< all registered traces
        std::uint64_t residentBytes = 0;  ///< charged (not yet evicted)
        std::uint64_t evictions = 0;      ///< whole-trace evictions
    };

    /** 0 = unlimited (nothing is ever evicted). */
    void setBudgetBytes(std::uint64_t budget);

    /** Mark @p trace most-recently-used and charged; evict colder
     *  traces until the budget holds. */
    void touch(const SharedTrace &trace);

    /** Unregister @p trace (it is about to be destroyed). */
    void forget(const SharedTrace &trace);

    Counters counters() const;

  private:
    struct Entry
    {
        const SharedTrace *trace;
        bool resident;
    };

    mutable std::mutex mutex_;
    std::uint64_t budget_ = 0;
    std::uint64_t evictions_ = 0;
    std::list<Entry> lru_;      ///< front = most recently touched
    std::unordered_map<const SharedTrace *, std::list<Entry>::iterator>
        index_;
};

} // namespace ddsc

#endif // DDSC_TRACE_MAPPED_HH
