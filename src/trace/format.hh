/**
 * @file
 * On-disk DDSCTRC trace layouts, shared by the streaming reader/writer
 * (trace_file.cc) and the mmap'd reader (mapped.cc).
 *
 * All three versions store fixed-size packed structs in little-endian
 * byte order.  v2/v3 predate the mmap path and were historically
 * written as native-endian struct fwrites while the format comment
 * claimed little-endian; the compile-time assert below resolves that
 * contradiction by refusing to build the raw-struct I/O on a
 * big-endian host at all.  v4 inherits the same record struct, so the
 * assert also pins the mmap'd in-place reinterpretation: on every
 * platform this code compiles on, the bytes in the file *are*
 * little-endian.
 *
 * v2/v3 layout (stream-only):
 *   FileHeader   24 B   magic "DDSCTRC1", version u32, pad, count u64
 *   DiskRecord   40 B   x count
 *   FileFooter   16 B   magic "DDSCEOF1", crc32(all records), pad
 *                       (v3 only; v2 files end after the records)
 *
 * v4 layout (mmap'able, page-aligned, CRC-per-block):
 *   V4Header     40 B   at offset 0, inside a 4096 B zero-padded
 *                       header page; magic "DDSCTRC1", version=4,
 *                       blockSize u32 (multiple of 4096), count u64,
 *                       digest u64 (FNV-1a record digest, see
 *                       RecordDigest), recordBytes u32 (=40),
 *                       headerCrc u32 (crc32 of the preceding 36 B)
 *   data blocks  blockSize B each, starting at offset 4096; block i
 *                holds records [i*perBlock, ...) packed back-to-back,
 *                zero-padded to blockSize (records never straddle a
 *                block boundary); perBlock = blockSize / 40
 *   V4FooterHead 16 B   magic "DDSCEOF1", blockCount u32, pad
 *   crc table    blockCount x u32   crc32 of each block's *record*
 *                bytes (padding excluded, so the final partial block
 *                checksums only what it holds)
 *   tableCrc     u32    crc32 of the crc table bytes
 *
 * count, digest, and headerCrc are back-patched on close; the footer
 * is written last.  A crash mid-write leaves count == 0 with a valid
 * headerCrc, which readers reject as a size/count mismatch.
 */

#ifndef DDSC_TRACE_FORMAT_HH
#define DDSC_TRACE_FORMAT_HH

#include <bit>
#include <cstdint>

#include "trace/record.hh"

namespace ddsc::trace_format
{

// Raw structs are both fwritten and mmap-reinterpreted in place; the
// format is defined as little-endian, so big-endian hosts would need a
// byte-swapping reader that nobody has written.  Fail the build, not
// the user's data.
static_assert(std::endian::native == std::endian::little,
              "DDSCTRC layouts are little-endian on disk; raw-struct "
              "trace I/O requires a little-endian host");

constexpr char kMagic[8] = {'D', 'D', 'S', 'C', 'T', 'R', 'C', '1'};
constexpr char kFooterMagic[8] =
    {'D', 'D', 'S', 'C', 'E', 'O', 'F', '1'};

/** v2/v3 file header. */
struct FileHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t pad;
    std::uint64_t count;
};

/** v3 file footer. */
struct FileFooter
{
    char magic[8];
    std::uint32_t crc;
    std::uint32_t pad;
};

static_assert(sizeof(FileHeader) == 24, "header layout changed");
static_assert(sizeof(FileFooter) == 16, "footer layout changed");

/** On-disk record; kept packed and explicitly sized.  Shared by every
 *  format version. */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t ea;
    std::uint64_t target;
    std::uint32_t memValue;
    std::int32_t imm;
    std::uint8_t op;
    std::uint8_t cond;
    std::uint8_t rd;
    std::uint8_t rs1;
    std::uint8_t rs2;
    std::uint8_t flags;     // bit0: useImm, bit1: taken
    std::uint8_t pad[2];
};

static_assert(sizeof(DiskRecord) == 40, "disk record layout changed");

/** v4 header; lives at offset 0 of a kV4HeaderBytes page. */
struct V4Header
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t blockSize;
    std::uint64_t count;
    std::uint64_t digest;
    std::uint32_t recordBytes;
    std::uint32_t headerCrc;    ///< crc32 of the 36 bytes before it
};

static_assert(sizeof(V4Header) == 40, "v4 header layout changed");

/** Fixed prefix of the v4 footer; the CRC table and tableCrc follow. */
struct V4FooterHead
{
    char magic[8];
    std::uint32_t blockCount;
    std::uint32_t pad;
};

static_assert(sizeof(V4FooterHead) == 16, "v4 footer layout changed");

/** Size of the zero-padded v4 header page (and the block alignment
 *  quantum blockSize must be a multiple of). */
constexpr std::uint32_t kV4HeaderBytes = 4096;

/** Default v4 block size: 256 KiB => 6553 records per block. */
constexpr std::uint32_t kV4DefaultBlockSize = 256 * 1024;

/** Largest blockSize a reader accepts; a limit this generous is never
 *  the binding constraint, it just keeps a corrupt header from driving
 *  huge allocations. */
constexpr std::uint32_t kV4MaxBlockSize = 1u << 30;

/** Records per block for @p blockSize (>= 1 for any accepted size). */
constexpr std::uint64_t
v4RecordsPerBlock(std::uint32_t blockSize)
{
    return blockSize / sizeof(DiskRecord);
}

inline DiskRecord
pack(const TraceRecord &rec)
{
    DiskRecord d = {};
    d.pc = rec.pc;
    d.ea = rec.ea;
    d.target = rec.target;
    d.memValue = rec.memValue;
    d.imm = rec.imm;
    d.op = static_cast<std::uint8_t>(rec.op);
    d.cond = static_cast<std::uint8_t>(rec.cond);
    d.rd = rec.rd;
    d.rs1 = rec.rs1;
    d.rs2 = rec.rs2;
    d.flags = (rec.useImm ? 1 : 0) | (rec.taken ? 2 : 0);
    return d;
}

inline TraceRecord
unpack(const DiskRecord &d)
{
    TraceRecord rec;
    rec.pc = d.pc;
    rec.ea = d.ea;
    rec.target = d.target;
    rec.memValue = d.memValue;
    rec.imm = d.imm;
    rec.op = static_cast<Opcode>(d.op);
    rec.cond = static_cast<Cond>(d.cond);
    rec.rd = d.rd;
    rec.rs1 = d.rs1;
    rec.rs2 = d.rs2;
    rec.useImm = (d.flags & 1) != 0;
    rec.taken = (d.flags & 2) != 0;
    return rec;
}

} // namespace ddsc::trace_format

#endif // DDSC_TRACE_FORMAT_HH
