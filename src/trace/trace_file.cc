/**
 * @file
 * Streaming binary trace file I/O.
 *
 * The on-disk layouts (DDSCTRC v2/v3 flat records, v4 page-aligned
 * CRC-per-block) live in trace/format.hh, shared with the mmap'd
 * reader in mapped.cc.  This file holds the buffered writer and the
 * streaming reader:
 *
 *  - The writer defaults to v4 and can still emit v3.  count (and for
 *    v4 the stream digest and header CRC) are back-patched on close
 *    and the footer is written last, so an interrupted write is
 *    detectable: a zero count, a size/count mismatch, or a CRC
 *    mismatch.  close() checks fflush and fclose — an ENOSPC that
 *    only surfaces when buffered bytes hit the disk is still a torn
 *    trace and must not report success.
 *
 *  - The reader accepts v2 (no footer), v3 (one trailing CRC), and v4
 *    (per-block CRCs verified as the stream crosses each block).  The
 *    header count is distrusted: counts whose byte span would
 *    overflow u64 or exceed the stat'd file size are rejected before
 *    any offset arithmetic.  Unknown versions are rejected with a
 *    rebuild hint rather than misparsed.
 */

#include "source.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <sys/stat.h>

#include "support/fault.hh"
#include "support/logging.hh"
#include "support/version.hh"
#include "support/wire.hh"
#include "trace/format.hh"

namespace ddsc
{

namespace
{

using namespace trace_format;

// The format numbers live in support/version.hh so every tool's
// --version banner is guaranteed to match what this file writes.
constexpr std::uint32_t kVersion = support::version::kTraceFormat;
constexpr std::uint32_t kStreamVersion =
    support::version::kTraceStreamFormat;
constexpr std::uint32_t kLegacyVersion =
    support::version::kTraceLegacyFormat;

/** Byte offset of record @p index within a v2/v3 trace file. */
std::uint64_t
recordOffset(std::uint64_t index)
{
    return sizeof(FileHeader) + index * sizeof(DiskRecord);
}

/** Byte offset of v4 block @p block. */
std::uint64_t
v4BlockOffset(std::uint64_t block, std::uint32_t blockSize)
{
    return kV4HeaderBytes + block * blockSize;
}

/** Size of @p file in bytes via fstat (the file stays open). */
std::uint64_t
fileSize(std::FILE *file, const std::string &path)
{
    struct stat st;
    if (fstat(fileno(file), &st) != 0)
        ddsc_fatal("cannot stat trace file '%s'", path.c_str());
    return static_cast<std::uint64_t>(st.st_size);
}

/**
 * Reject a header record count whose byte span cannot be represented
 * in a u64 — before any multiplication, so a length-bomb count near
 * 2^64 cannot wrap recordOffset()/expected-size arithmetic into a
 * small value the size cross-check then accepts (and the checksum
 * loop spins on).  Counts that fit in u64 but exceed the stat'd file
 * size flow on to the precise truncation diagnostics instead.
 * The divisor leaves generous headroom for header, block padding, and
 * footer-table overhead on top of the 40 record bytes.
 */
void
rejectLengthBomb(const std::string &path, std::uint64_t count)
{
    constexpr std::uint64_t kMaxRepresentable =
        std::numeric_limits<std::uint64_t>::max() /
        (sizeof(DiskRecord) * 4);
    if (count > kMaxRepresentable) {
        ddsc_fatal("trace file '%s': header promises %llu records, "
                   "whose byte span overflows a 64-bit offset; the "
                   "count field is corrupt (length bomb) and is "
                   "rejected before any offset arithmetic",
                   path.c_str(),
                   static_cast<unsigned long long>(count));
    }
}

} // anonymous namespace

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 std::uint32_t version,
                                 std::uint32_t blockSize)
    : path_(path),
      version_(version == 0 ? kVersion : version)
{
    if (version_ != kVersion && version_ != kStreamVersion) {
        ddsc_fatal("trace writer for '%s': unsupported version %u "
                   "(can write v%u and v%u)",
                   path.c_str(), version_, kStreamVersion, kVersion);
    }
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        ddsc_fatal("cannot open trace file '%s' for writing", path.c_str());
    if (version_ == kVersion) {
        blockSize_ = blockSize == 0 ? kV4DefaultBlockSize : blockSize;
        if (blockSize_ % kV4HeaderBytes != 0 ||
            blockSize_ > kV4MaxBlockSize) {
            ddsc_fatal("trace writer for '%s': block size %u must be "
                       "a multiple of %u and at most %u",
                       path.c_str(), blockSize_, kV4HeaderBytes,
                       kV4MaxBlockSize);
        }
        perBlock_ = v4RecordsPerBlock(blockSize_);
        block_.assign(blockSize_, 0);
        // The header page goes out now with count/digest zero and a
        // CRC that matches those zeros: a never-closed file parses as
        // an empty header over a size mismatch, which readers reject.
        std::vector<unsigned char> page(kV4HeaderBytes, 0);
        V4Header hdr = {};
        std::memcpy(hdr.magic, kMagic, sizeof kMagic);
        hdr.version = version_;
        hdr.blockSize = blockSize_;
        hdr.recordBytes = sizeof(DiskRecord);
        hdr.headerCrc = support::wire::crc32(
            &hdr, offsetof(V4Header, headerCrc), 0);
        std::memcpy(page.data(), &hdr, sizeof hdr);
        if (std::fwrite(page.data(), page.size(), 1, file_) != 1)
            ddsc_fatal("cannot write trace header to '%s'",
                       path.c_str());
    } else {
        FileHeader hdr = {};
        std::memcpy(hdr.magic, kMagic, sizeof kMagic);
        hdr.version = version_;
        hdr.count = 0;
        if (std::fwrite(&hdr, sizeof hdr, 1, file_) != 1)
            ddsc_fatal("cannot write trace header to '%s'",
                       path.c_str());
    }
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::emit(const TraceRecord &rec)
{
    ddsc_assert(file_ != nullptr, "emit() after close()");
    const DiskRecord d = pack(rec);
    if (version_ == kVersion) {
        std::memcpy(block_.data() + inBlock_ * sizeof(DiskRecord), &d,
                    sizeof d);
        digest_.add(rec);
        ++count_;
        if (++inBlock_ == perBlock_)
            flushBlock();
        return;
    }
    // The injection point models fwrite() writing fewer bytes than one
    // record (disk full, quota, signal): the same diagnostic the real
    // short write would produce must fire.
    const bool injected = support::faultShouldFire("trace-short-write");
    if (injected || std::fwrite(&d, sizeof d, 1, file_) != 1) {
        ddsc_fatal("short write to trace file '%s': record %llu "
                   "(byte offset %llu) was not fully written%s",
                   path_.c_str(),
                   static_cast<unsigned long long>(count_),
                   static_cast<unsigned long long>(recordOffset(count_)),
                   injected ? " [injected fault]" : "");
    }
    crc_ = support::wire::crc32(&d, sizeof d, crc_);
    digest_.add(rec);
    ++count_;
}

void
TraceFileWriter::flushBlock()
{
    const std::uint64_t block = blockCrcs_.size();
    const std::uint64_t bytes = inBlock_ * sizeof(DiskRecord);
    // The CRC covers only the records present: the final partial
    // block's zero padding is structure, not payload.
    blockCrcs_.push_back(
        support::wire::crc32(block_.data(), bytes, 0));
    const bool injected = support::faultShouldFire("trace-short-write");
    if (injected ||
        std::fwrite(block_.data(), blockSize_, 1, file_) != 1) {
        ddsc_fatal("short write to trace file '%s': block %llu "
                   "(records %llu..%llu, byte offset %llu) was not "
                   "fully written%s",
                   path_.c_str(),
                   static_cast<unsigned long long>(block),
                   static_cast<unsigned long long>(count_ - inBlock_),
                   static_cast<unsigned long long>(count_ - 1),
                   static_cast<unsigned long long>(
                       v4BlockOffset(block, blockSize_)),
                   injected ? " [injected fault]" : "");
    }
    std::fill(block_.begin(), block_.end(), 0);
    inBlock_ = 0;
}

void
TraceFileWriter::close()
{
    if (!file_)
        return;
    std::uint64_t end = 0;
    if (version_ == kVersion) {
        if (inBlock_ > 0)
            flushBlock();
        // Footer: block CRC table, self-checksummed so a torn footer
        // is distinguishable from a corrupt block.
        V4FooterHead head = {};
        std::memcpy(head.magic, kFooterMagic, sizeof kFooterMagic);
        head.blockCount = static_cast<std::uint32_t>(blockCrcs_.size());
        if (std::fwrite(&head, sizeof head, 1, file_) != 1)
            ddsc_fatal("cannot write trace footer to '%s'",
                       path_.c_str());
        const std::uint64_t tableBytes =
            blockCrcs_.size() * sizeof(std::uint32_t);
        if (tableBytes > 0 &&
            std::fwrite(blockCrcs_.data(), tableBytes, 1, file_) != 1)
            ddsc_fatal("cannot write trace CRC table to '%s'",
                       path_.c_str());
        const std::uint32_t tableCrc = support::wire::crc32(
            blockCrcs_.data(), tableBytes, 0);
        if (std::fwrite(&tableCrc, sizeof tableCrc, 1, file_) != 1)
            ddsc_fatal("cannot write trace CRC table checksum to '%s'",
                       path_.c_str());
        // Back-patch count, digest, and the header CRC over both.
        V4Header hdr = {};
        std::memcpy(hdr.magic, kMagic, sizeof kMagic);
        hdr.version = version_;
        hdr.blockSize = blockSize_;
        hdr.count = count_;
        hdr.digest = digest_.value();
        hdr.recordBytes = sizeof(DiskRecord);
        hdr.headerCrc = support::wire::crc32(
            &hdr, offsetof(V4Header, headerCrc), 0);
        if (std::fseek(file_, 0, SEEK_SET) != 0)
            ddsc_fatal("cannot seek to trace header of '%s'",
                       path_.c_str());
        if (std::fwrite(&hdr, sizeof hdr, 1, file_) != 1)
            ddsc_fatal("cannot finalize trace header of '%s'",
                       path_.c_str());
        end = v4BlockOffset(blockCrcs_.size(), blockSize_) +
              sizeof(V4FooterHead) + tableBytes + sizeof tableCrc;
    } else {
        // Records, then footer, then the back-patched count: a crash
        // before this point leaves count == 0 (or a short file), both
        // of which the reader rejects with a diagnosis.
        FileFooter footer = {};
        std::memcpy(footer.magic, kFooterMagic, sizeof kFooterMagic);
        footer.crc = crc_;
        if (std::fwrite(&footer, sizeof footer, 1, file_) != 1)
            ddsc_fatal("cannot write trace footer to '%s'",
                       path_.c_str());
        if (std::fseek(file_, offsetof(FileHeader, count),
                       SEEK_SET) != 0)
            ddsc_fatal("cannot seek to trace header of '%s'",
                       path_.c_str());
        if (std::fwrite(&count_, sizeof count_, 1, file_) != 1)
            ddsc_fatal("cannot finalize trace header of '%s'",
                       path_.c_str());
        end = recordOffset(count_) + sizeof(FileFooter);
    }
    // Everything above went through stdio's buffer; the bytes may not
    // have reached the kernel yet.  A flush or close failure here is
    // ENOSPC/EIO surfacing late — the trace on disk is torn and the
    // caller must not be told it was written.  The injection point
    // models exactly that late failure.
    const bool injected = support::faultShouldFire("trace-close-fail");
    if (injected || std::fflush(file_) != 0) {
        ddsc_fatal("trace file '%s' torn at close: flushing %llu "
                   "records (%llu bytes) failed%s",
                   path_.c_str(),
                   static_cast<unsigned long long>(count_),
                   static_cast<unsigned long long>(end),
                   injected ? " [injected fault]" : "");
    }
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) {
        ddsc_fatal("trace file '%s' torn at close: fclose failed "
                   "after %llu records (%llu bytes)",
                   path_.c_str(),
                   static_cast<unsigned long long>(count_),
                   static_cast<unsigned long long>(end));
    }
}

TraceFileSource::TraceFileSource(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        ddsc_fatal("cannot open trace file '%s'", path.c_str());
    FileHeader hdr = {};
    if (std::fread(&hdr, sizeof hdr, 1, file_) != 1)
        ddsc_fatal("'%s' is too small for a trace header (%llu bytes "
                   "needed)", path.c_str(),
                   static_cast<unsigned long long>(sizeof hdr));
    if (std::memcmp(hdr.magic, kMagic, sizeof kMagic) != 0)
        ddsc_fatal("'%s' is not a ddsc trace file", path.c_str());
    if (hdr.version != kVersion && hdr.version != kStreamVersion &&
        hdr.version != kLegacyVersion) {
        ddsc_fatal("trace file '%s' has version %u but this reader "
                   "knows only v%u, v%u, and v%u; rebuild the trace "
                   "with ddsc-asm", path.c_str(), hdr.version,
                   kLegacyVersion, kStreamVersion, kVersion);
    }
    version_ = hdr.version;
    const std::uint64_t size = fileSize(file_, path);

    if (version_ == kVersion) {
        // v4: re-read the full 40-byte header (the 24-byte probe above
        // only covers the v2/v3 prefix).
        V4Header v4 = {};
        if (std::fseek(file_, 0, SEEK_SET) != 0 ||
            std::fread(&v4, sizeof v4, 1, file_) != 1)
            ddsc_fatal("'%s' is too small for a v4 trace header "
                       "(%llu bytes needed)", path.c_str(),
                       static_cast<unsigned long long>(sizeof v4));
        if (v4.headerCrc != support::wire::crc32(
                &v4, offsetof(V4Header, headerCrc), 0))
            ddsc_fatal("trace file '%s': header CRC mismatch; the "
                       "header is corrupt", path.c_str());
        if (v4.recordBytes != sizeof(DiskRecord))
            ddsc_fatal("trace file '%s': header says %u-byte records "
                       "but this build uses %llu-byte records",
                       path.c_str(), v4.recordBytes,
                       static_cast<unsigned long long>(
                           sizeof(DiskRecord)));
        if (v4.blockSize == 0 ||
            v4.blockSize % kV4HeaderBytes != 0 ||
            v4.blockSize > kV4MaxBlockSize)
            ddsc_fatal("trace file '%s': invalid block size %u (must "
                       "be a nonzero multiple of %u, at most %u)",
                       path.c_str(), v4.blockSize, kV4HeaderBytes,
                       kV4MaxBlockSize);
        if (size < kV4HeaderBytes)
            ddsc_fatal("trace file '%s' truncated inside its header "
                       "page: %llu of %u bytes", path.c_str(),
                       static_cast<unsigned long long>(size),
                       kV4HeaderBytes);
        rejectLengthBomb(path, v4.count);
        blockSize_ = v4.blockSize;
        perBlock_ = v4RecordsPerBlock(blockSize_);
        count_ = v4.count;
        headerDigest_ = v4.digest;

        const std::uint64_t numBlocks =
            count_ == 0 ? 0 : (count_ + perBlock_ - 1) / perBlock_;
        const std::uint64_t footerOff =
            v4BlockOffset(numBlocks, blockSize_);
        const std::uint64_t expected =
            footerOff + sizeof(V4FooterHead) +
            numBlocks * sizeof(std::uint32_t) + sizeof(std::uint32_t);
        if (size < expected) {
            if (size < footerOff) {
                const std::uint64_t block =
                    (size - kV4HeaderBytes) / blockSize_;
                const std::uint64_t firstRec = block * perBlock_;
                ddsc_fatal(
                    "trace file '%s' truncated: header promises %llu "
                    "records in %llu blocks (%llu bytes) but the file "
                    "ends at byte offset %llu, inside block %llu "
                    "(records %llu..%llu)",
                    path.c_str(),
                    static_cast<unsigned long long>(count_),
                    static_cast<unsigned long long>(numBlocks),
                    static_cast<unsigned long long>(expected),
                    static_cast<unsigned long long>(size),
                    static_cast<unsigned long long>(block),
                    static_cast<unsigned long long>(firstRec),
                    static_cast<unsigned long long>(
                        std::min(count_, firstRec + perBlock_) - 1));
            }
            ddsc_fatal("trace file '%s' truncated inside its footer: "
                       "the CRC table needs bytes %llu..%llu but the "
                       "file ends at %llu",
                       path.c_str(),
                       static_cast<unsigned long long>(footerOff),
                       static_cast<unsigned long long>(expected),
                       static_cast<unsigned long long>(size));
        }
        if (size > expected) {
            ddsc_fatal("trace file '%s' has %llu bytes of trailing "
                       "garbage after its footer (byte offset %llu); "
                       "the count field and file size disagree",
                       path.c_str(),
                       static_cast<unsigned long long>(size - expected),
                       static_cast<unsigned long long>(expected));
        }

        // Read and verify the CRC table now; individual blocks are
        // checked lazily as the stream crosses them.
        if (std::fseek(file_, static_cast<long>(footerOff),
                       SEEK_SET) != 0)
            ddsc_fatal("cannot seek to footer of trace file '%s'",
                       path.c_str());
        V4FooterHead head = {};
        if (std::fread(&head, sizeof head, 1, file_) != 1)
            ddsc_fatal("trace file '%s': cannot read footer",
                       path.c_str());
        if (std::memcmp(head.magic, kFooterMagic,
                        sizeof kFooterMagic) != 0)
            ddsc_fatal("trace file '%s': footer magic missing at byte "
                       "offset %llu; the file was not finalized",
                       path.c_str(),
                       static_cast<unsigned long long>(footerOff));
        if (head.blockCount != numBlocks)
            ddsc_fatal("trace file '%s': footer lists %u blocks but "
                       "the header count implies %llu",
                       path.c_str(), head.blockCount,
                       static_cast<unsigned long long>(numBlocks));
        blockCrcs_.resize(numBlocks);
        if (numBlocks > 0 &&
            std::fread(blockCrcs_.data(),
                       numBlocks * sizeof(std::uint32_t), 1,
                       file_) != 1)
            ddsc_fatal("trace file '%s': cannot read block CRC table",
                       path.c_str());
        std::uint32_t tableCrc = 0;
        if (std::fread(&tableCrc, sizeof tableCrc, 1, file_) != 1)
            ddsc_fatal("trace file '%s': cannot read CRC table "
                       "checksum", path.c_str());
        if (tableCrc != support::wire::crc32(
                blockCrcs_.data(),
                numBlocks * sizeof(std::uint32_t), 0))
            ddsc_fatal("trace file '%s': block CRC table is corrupt "
                       "(table checksum mismatch)", path.c_str());
        reset();
        return;
    }

    count_ = hdr.count;

    // Cross-check the count field against the actual file size before
    // serving a single record, so a torn or truncated file fails here
    // with a byte-accurate diagnosis instead of mid-simulation.  The
    // length-bomb guard runs first: a count near 2^64 would wrap
    // recordOffset() into a small value the checks below accept.
    rejectLengthBomb(path, count_);
    const std::uint64_t footer_bytes =
        version_ == kStreamVersion ? sizeof(FileFooter) : 0;
    const std::uint64_t expected = recordOffset(count_) + footer_bytes;
    if (size < expected) {
        const std::uint64_t record_bytes =
            size < sizeof(FileHeader) ? 0 : size - sizeof(FileHeader);
        ddsc_fatal("trace file '%s' truncated: header promises %llu "
                   "records (%llu bytes) but the file ends at byte "
                   "offset %llu, inside record %llu",
                   path.c_str(),
                   static_cast<unsigned long long>(count_),
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(size),
                   static_cast<unsigned long long>(
                       record_bytes / sizeof(DiskRecord)));
    }
    if (size > expected) {
        ddsc_fatal("trace file '%s' has %llu bytes of trailing garbage "
                   "after record %llu (byte offset %llu); the count "
                   "field and file size disagree",
                   path.c_str(),
                   static_cast<unsigned long long>(size - expected),
                   static_cast<unsigned long long>(count_),
                   static_cast<unsigned long long>(expected));
    }

    if (version_ == kStreamVersion) {
        // Verify the footer CRC over every record byte up front; the
        // one extra streaming pass is what makes a bit flip a loud
        // open-time failure instead of silently skewed results.
        std::uint32_t crc = 0;
        DiskRecord d;
        for (std::uint64_t i = 0; i < count_; ++i) {
            if (std::fread(&d, sizeof d, 1, file_) != 1)
                ddsc_fatal("trace file '%s': short read at byte offset "
                           "%llu while checksumming record %llu of %llu",
                           path.c_str(),
                           static_cast<unsigned long long>(
                               recordOffset(i)),
                           static_cast<unsigned long long>(i),
                           static_cast<unsigned long long>(count_));
            crc = support::wire::crc32(&d, sizeof d, crc);
        }
        FileFooter footer = {};
        if (std::fread(&footer, sizeof footer, 1, file_) != 1)
            ddsc_fatal("trace file '%s': cannot read footer",
                       path.c_str());
        if (std::memcmp(footer.magic, kFooterMagic,
                        sizeof kFooterMagic) != 0)
            ddsc_fatal("trace file '%s': footer magic missing at byte "
                       "offset %llu; the file was not finalized",
                       path.c_str(),
                       static_cast<unsigned long long>(
                           recordOffset(count_)));
        if (footer.crc != crc)
            ddsc_fatal("trace file '%s' is corrupt: footer CRC32 "
                       "0x%08x but records checksum to 0x%08x",
                       path.c_str(), footer.crc, crc);
    }
    reset();
}

TraceFileSource::~TraceFileSource()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileSource::next(TraceRecord &rec)
{
    if (read_ >= count_)
        return false;
    DiskRecord d;
    const std::uint64_t offset =
        version_ == kVersion
            ? v4BlockOffset(read_ / perBlock_, blockSize_) +
                  inBlock_ * sizeof(DiskRecord)
            : recordOffset(read_);
    // Injection point for fread() returning short (I/O error, file
    // shrunk underneath us after the open-time validation).
    const bool injected = support::faultShouldFire("trace-short-read");
    if (injected || std::fread(&d, sizeof d, 1, file_) != 1) {
        ddsc_fatal("trace file '%s': short read at byte offset %llu "
                   "(record %llu of %llu)%s",
                   path_.c_str(),
                   static_cast<unsigned long long>(offset),
                   static_cast<unsigned long long>(read_),
                   static_cast<unsigned long long>(count_),
                   injected ? " [injected fault]" : "");
    }
    rec = unpack(d);
    ++read_;
    if (version_ == kVersion) {
        blockCrc_ = support::wire::crc32(&d, sizeof d, blockCrc_);
        ++inBlock_;
        const std::uint64_t block = (read_ - 1) / perBlock_;
        const std::uint64_t inThisBlock =
            std::min(perBlock_, count_ - block * perBlock_);
        if (inBlock_ == inThisBlock) {
            // Block complete: settle its CRC before serving anything
            // from the next one, so corruption is pinned to a block.
            if (blockCrc_ != blockCrcs_[block])
                ddsc_fatal("trace file '%s' is corrupt: block %llu "
                           "(records %llu..%llu, byte offset %llu) "
                           "checksums to 0x%08x but the footer table "
                           "says 0x%08x",
                           path_.c_str(),
                           static_cast<unsigned long long>(block),
                           static_cast<unsigned long long>(
                               block * perBlock_),
                           static_cast<unsigned long long>(read_ - 1),
                           static_cast<unsigned long long>(
                               v4BlockOffset(block, blockSize_)),
                           blockCrc_, blockCrcs_[block]);
            blockCrc_ = 0;
            inBlock_ = 0;
            if (read_ < count_ &&
                std::fseek(file_,
                           static_cast<long>(
                               v4BlockOffset(block + 1, blockSize_)),
                           SEEK_SET) != 0)
                ddsc_fatal("cannot seek to block %llu of trace file "
                           "'%s'",
                           static_cast<unsigned long long>(block + 1),
                           path_.c_str());
        }
    }
    return true;
}

void
TraceFileSource::reset()
{
    const long start = version_ == kVersion
                           ? static_cast<long>(kV4HeaderBytes)
                           : static_cast<long>(sizeof(FileHeader));
    if (std::fseek(file_, start, SEEK_SET) != 0)
        ddsc_fatal("cannot rewind trace file '%s'", path_.c_str());
    read_ = 0;
    inBlock_ = 0;
    blockCrc_ = 0;
}

} // namespace ddsc
