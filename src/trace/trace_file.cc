/**
 * @file
 * Binary trace file I/O.
 *
 * Layout: a 24-byte header (magic "DDSCTRC1", version u32, pad u32,
 * record count u64) followed by packed records.  The count field is
 * back-patched on close so interrupted writes are detectable.
 */

#include "source.hh"

#include <cstring>

#include "support/logging.hh"

namespace ddsc
{

namespace
{

constexpr char kMagic[8] = {'D', 'D', 'S', 'C', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kVersion = 2;   // v2 added memValue

struct FileHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t pad;
    std::uint64_t count;
};

/** On-disk record; kept packed and explicitly sized. */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t ea;
    std::uint64_t target;
    std::uint32_t memValue;
    std::int32_t imm;
    std::uint8_t op;
    std::uint8_t cond;
    std::uint8_t rd;
    std::uint8_t rs1;
    std::uint8_t rs2;
    std::uint8_t flags;     // bit0: useImm, bit1: taken
    std::uint8_t pad[2];
};

static_assert(sizeof(DiskRecord) == 40, "disk record layout changed");

DiskRecord
pack(const TraceRecord &rec)
{
    DiskRecord d = {};
    d.pc = rec.pc;
    d.ea = rec.ea;
    d.target = rec.target;
    d.memValue = rec.memValue;
    d.imm = rec.imm;
    d.op = static_cast<std::uint8_t>(rec.op);
    d.cond = static_cast<std::uint8_t>(rec.cond);
    d.rd = rec.rd;
    d.rs1 = rec.rs1;
    d.rs2 = rec.rs2;
    d.flags = (rec.useImm ? 1 : 0) | (rec.taken ? 2 : 0);
    return d;
}

TraceRecord
unpack(const DiskRecord &d)
{
    TraceRecord rec;
    rec.pc = d.pc;
    rec.ea = d.ea;
    rec.target = d.target;
    rec.memValue = d.memValue;
    rec.imm = d.imm;
    rec.op = static_cast<Opcode>(d.op);
    rec.cond = static_cast<Cond>(d.cond);
    rec.rd = d.rd;
    rec.rs1 = d.rs1;
    rec.rs2 = d.rs2;
    rec.useImm = (d.flags & 1) != 0;
    rec.taken = (d.flags & 2) != 0;
    return rec;
}

} // anonymous namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        ddsc_fatal("cannot open trace file '%s' for writing", path.c_str());
    FileHeader hdr = {};
    std::memcpy(hdr.magic, kMagic, sizeof kMagic);
    hdr.version = kVersion;
    hdr.count = 0;
    if (std::fwrite(&hdr, sizeof hdr, 1, file_) != 1)
        ddsc_fatal("cannot write trace header to '%s'", path.c_str());
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::emit(const TraceRecord &rec)
{
    ddsc_assert(file_ != nullptr, "emit() after close()");
    const DiskRecord d = pack(rec);
    if (std::fwrite(&d, sizeof d, 1, file_) != 1)
        ddsc_fatal("short write to trace file");
    ++count_;
}

void
TraceFileWriter::close()
{
    if (!file_)
        return;
    // Back-patch the record count.
    if (std::fseek(file_, offsetof(FileHeader, count), SEEK_SET) != 0)
        ddsc_fatal("cannot seek to trace header");
    if (std::fwrite(&count_, sizeof count_, 1, file_) != 1)
        ddsc_fatal("cannot finalize trace header");
    std::fclose(file_);
    file_ = nullptr;
}

TraceFileSource::TraceFileSource(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        ddsc_fatal("cannot open trace file '%s'", path.c_str());
    FileHeader hdr = {};
    if (std::fread(&hdr, sizeof hdr, 1, file_) != 1)
        ddsc_fatal("cannot read trace header from '%s'", path.c_str());
    if (std::memcmp(hdr.magic, kMagic, sizeof kMagic) != 0)
        ddsc_fatal("'%s' is not a ddsc trace file", path.c_str());
    if (hdr.version != kVersion)
        ddsc_fatal("trace file version %u unsupported", hdr.version);
    count_ = hdr.count;
}

TraceFileSource::~TraceFileSource()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileSource::next(TraceRecord &rec)
{
    if (read_ >= count_)
        return false;
    DiskRecord d;
    if (std::fread(&d, sizeof d, 1, file_) != 1)
        ddsc_fatal("trace file truncated (read %llu of %llu records)",
                   static_cast<unsigned long long>(read_),
                   static_cast<unsigned long long>(count_));
    rec = unpack(d);
    ++read_;
    return true;
}

void
TraceFileSource::reset()
{
    if (std::fseek(file_, sizeof(FileHeader), SEEK_SET) != 0)
        ddsc_fatal("cannot rewind trace file");
    read_ = 0;
}

} // namespace ddsc
