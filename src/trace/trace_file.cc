/**
 * @file
 * Binary trace file I/O.
 *
 * Layout (DDSCTRC v3): a 24-byte header (magic "DDSCTRC1", version
 * u32, pad u32, record count u64), packed 40-byte records, then a
 * 16-byte footer (magic "DDSCEOF1", CRC32 of all record bytes, pad).
 * The count field is back-patched on close and the footer is written
 * last, so an interrupted write is detectable three ways: a zero
 * count, a file-size/count mismatch, or a CRC mismatch.
 *
 * v2 files (no footer) remain readable; v1 never shipped.  Unknown
 * versions are rejected with a rebuild hint rather than misparsed.
 */

#include "source.hh"

#include <cstring>
#include <sys/stat.h>

#include "support/fault.hh"
#include "support/logging.hh"
#include "support/version.hh"
#include "support/wire.hh"

namespace ddsc
{

namespace
{

constexpr char kMagic[8] = {'D', 'D', 'S', 'C', 'T', 'R', 'C', '1'};
constexpr char kFooterMagic[8] =
    {'D', 'D', 'S', 'C', 'E', 'O', 'F', '1'};
// The format numbers live in support/version.hh so every tool's
// --version banner is guaranteed to match what this file writes.
constexpr std::uint32_t kVersion = support::version::kTraceFormat;
constexpr std::uint32_t kLegacyVersion =
    support::version::kTraceLegacyFormat;

struct FileHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t pad;
    std::uint64_t count;
};

struct FileFooter
{
    char magic[8];
    std::uint32_t crc;
    std::uint32_t pad;
};

static_assert(sizeof(FileHeader) == 24, "header layout changed");
static_assert(sizeof(FileFooter) == 16, "footer layout changed");

/** On-disk record; kept packed and explicitly sized. */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t ea;
    std::uint64_t target;
    std::uint32_t memValue;
    std::int32_t imm;
    std::uint8_t op;
    std::uint8_t cond;
    std::uint8_t rd;
    std::uint8_t rs1;
    std::uint8_t rs2;
    std::uint8_t flags;     // bit0: useImm, bit1: taken
    std::uint8_t pad[2];
};

static_assert(sizeof(DiskRecord) == 40, "disk record layout changed");

DiskRecord
pack(const TraceRecord &rec)
{
    DiskRecord d = {};
    d.pc = rec.pc;
    d.ea = rec.ea;
    d.target = rec.target;
    d.memValue = rec.memValue;
    d.imm = rec.imm;
    d.op = static_cast<std::uint8_t>(rec.op);
    d.cond = static_cast<std::uint8_t>(rec.cond);
    d.rd = rec.rd;
    d.rs1 = rec.rs1;
    d.rs2 = rec.rs2;
    d.flags = (rec.useImm ? 1 : 0) | (rec.taken ? 2 : 0);
    return d;
}

TraceRecord
unpack(const DiskRecord &d)
{
    TraceRecord rec;
    rec.pc = d.pc;
    rec.ea = d.ea;
    rec.target = d.target;
    rec.memValue = d.memValue;
    rec.imm = d.imm;
    rec.op = static_cast<Opcode>(d.op);
    rec.cond = static_cast<Cond>(d.cond);
    rec.rd = d.rd;
    rec.rs1 = d.rs1;
    rec.rs2 = d.rs2;
    rec.useImm = (d.flags & 1) != 0;
    rec.taken = (d.flags & 2) != 0;
    return rec;
}

/** Byte offset of record @p index within a trace file. */
std::uint64_t
recordOffset(std::uint64_t index)
{
    return sizeof(FileHeader) + index * sizeof(DiskRecord);
}

/** Size of @p file in bytes via fstat (the file stays open). */
std::uint64_t
fileSize(std::FILE *file, const std::string &path)
{
    struct stat st;
    if (fstat(fileno(file), &st) != 0)
        ddsc_fatal("cannot stat trace file '%s'", path.c_str());
    return static_cast<std::uint64_t>(st.st_size);
}

} // anonymous namespace

TraceFileWriter::TraceFileWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        ddsc_fatal("cannot open trace file '%s' for writing", path.c_str());
    FileHeader hdr = {};
    std::memcpy(hdr.magic, kMagic, sizeof kMagic);
    hdr.version = kVersion;
    hdr.count = 0;
    if (std::fwrite(&hdr, sizeof hdr, 1, file_) != 1)
        ddsc_fatal("cannot write trace header to '%s'", path.c_str());
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::emit(const TraceRecord &rec)
{
    ddsc_assert(file_ != nullptr, "emit() after close()");
    const DiskRecord d = pack(rec);
    // The injection point models fwrite() writing fewer bytes than one
    // record (disk full, quota, signal): the same diagnostic the real
    // short write would produce must fire.
    const bool injected = support::faultShouldFire("trace-short-write");
    if (injected || std::fwrite(&d, sizeof d, 1, file_) != 1) {
        ddsc_fatal("short write to trace file '%s': record %llu "
                   "(byte offset %llu) was not fully written%s",
                   path_.c_str(),
                   static_cast<unsigned long long>(count_),
                   static_cast<unsigned long long>(recordOffset(count_)),
                   injected ? " [injected fault]" : "");
    }
    crc_ = support::wire::crc32(&d, sizeof d, crc_);
    ++count_;
}

void
TraceFileWriter::close()
{
    if (!file_)
        return;
    // Records, then footer, then the back-patched count: a crash
    // before this point leaves count == 0 (or a short file), both of
    // which the reader rejects with a diagnosis.
    FileFooter footer = {};
    std::memcpy(footer.magic, kFooterMagic, sizeof kFooterMagic);
    footer.crc = crc_;
    if (std::fwrite(&footer, sizeof footer, 1, file_) != 1)
        ddsc_fatal("cannot write trace footer to '%s'", path_.c_str());
    if (std::fseek(file_, offsetof(FileHeader, count), SEEK_SET) != 0)
        ddsc_fatal("cannot seek to trace header of '%s'", path_.c_str());
    if (std::fwrite(&count_, sizeof count_, 1, file_) != 1)
        ddsc_fatal("cannot finalize trace header of '%s'", path_.c_str());
    std::fclose(file_);
    file_ = nullptr;
}

TraceFileSource::TraceFileSource(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        ddsc_fatal("cannot open trace file '%s'", path.c_str());
    FileHeader hdr = {};
    if (std::fread(&hdr, sizeof hdr, 1, file_) != 1)
        ddsc_fatal("'%s' is too small for a trace header (%llu bytes "
                   "needed)", path.c_str(),
                   static_cast<unsigned long long>(sizeof hdr));
    if (std::memcmp(hdr.magic, kMagic, sizeof kMagic) != 0)
        ddsc_fatal("'%s' is not a ddsc trace file", path.c_str());
    if (hdr.version != kVersion && hdr.version != kLegacyVersion) {
        ddsc_fatal("trace file '%s' has version %u but this reader "
                   "knows only v%u and v%u; rebuild the trace with "
                   "ddsc-asm", path.c_str(), hdr.version,
                   kLegacyVersion, kVersion);
    }
    count_ = hdr.count;
    version_ = hdr.version;

    // Cross-check the count field against the actual file size before
    // serving a single record, so a torn or truncated file fails here
    // with a byte-accurate diagnosis instead of mid-simulation.
    const std::uint64_t size = fileSize(file_, path);
    const std::uint64_t footer_bytes =
        version_ == kVersion ? sizeof(FileFooter) : 0;
    const std::uint64_t expected = recordOffset(count_) + footer_bytes;
    if (size < expected) {
        const std::uint64_t record_bytes =
            size < sizeof(FileHeader) ? 0 : size - sizeof(FileHeader);
        ddsc_fatal("trace file '%s' truncated: header promises %llu "
                   "records (%llu bytes) but the file ends at byte "
                   "offset %llu, inside record %llu",
                   path.c_str(),
                   static_cast<unsigned long long>(count_),
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(size),
                   static_cast<unsigned long long>(
                       record_bytes / sizeof(DiskRecord)));
    }
    if (size > expected) {
        ddsc_fatal("trace file '%s' has %llu bytes of trailing garbage "
                   "after record %llu (byte offset %llu); the count "
                   "field and file size disagree",
                   path.c_str(),
                   static_cast<unsigned long long>(size - expected),
                   static_cast<unsigned long long>(count_),
                   static_cast<unsigned long long>(expected));
    }

    if (version_ == kVersion) {
        // Verify the footer CRC over every record byte up front; the
        // one extra streaming pass is what makes a bit flip a loud
        // open-time failure instead of silently skewed results.
        std::uint32_t crc = 0;
        DiskRecord d;
        for (std::uint64_t i = 0; i < count_; ++i) {
            if (std::fread(&d, sizeof d, 1, file_) != 1)
                ddsc_fatal("trace file '%s': short read at byte offset "
                           "%llu while checksumming record %llu of %llu",
                           path.c_str(),
                           static_cast<unsigned long long>(
                               recordOffset(i)),
                           static_cast<unsigned long long>(i),
                           static_cast<unsigned long long>(count_));
            crc = support::wire::crc32(&d, sizeof d, crc);
        }
        FileFooter footer = {};
        if (std::fread(&footer, sizeof footer, 1, file_) != 1)
            ddsc_fatal("trace file '%s': cannot read footer",
                       path.c_str());
        if (std::memcmp(footer.magic, kFooterMagic,
                        sizeof kFooterMagic) != 0)
            ddsc_fatal("trace file '%s': footer magic missing at byte "
                       "offset %llu; the file was not finalized",
                       path.c_str(),
                       static_cast<unsigned long long>(
                           recordOffset(count_)));
        if (footer.crc != crc)
            ddsc_fatal("trace file '%s' is corrupt: footer CRC32 "
                       "0x%08x but records checksum to 0x%08x",
                       path.c_str(), footer.crc, crc);
    }
    reset();
}

TraceFileSource::~TraceFileSource()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileSource::next(TraceRecord &rec)
{
    if (read_ >= count_)
        return false;
    DiskRecord d;
    // Injection point for fread() returning short (I/O error, file
    // shrunk underneath us after the open-time validation).
    const bool injected = support::faultShouldFire("trace-short-read");
    if (injected || std::fread(&d, sizeof d, 1, file_) != 1) {
        ddsc_fatal("trace file '%s': short read at byte offset %llu "
                   "(record %llu of %llu)%s",
                   path_.c_str(),
                   static_cast<unsigned long long>(recordOffset(read_)),
                   static_cast<unsigned long long>(read_),
                   static_cast<unsigned long long>(count_),
                   injected ? " [injected fault]" : "");
    }
    rec = unpack(d);
    ++read_;
    return true;
}

void
TraceFileSource::reset()
{
    if (std::fseek(file_, sizeof(FileHeader), SEEK_SET) != 0)
        ddsc_fatal("cannot rewind trace file '%s'", path_.c_str());
    read_ = 0;
}

} // namespace ddsc
