/**
 * @file
 * Trace sources: the interface through which the simulator consumes
 * dynamic instruction streams, with in-memory and file-backed
 * implementations.
 */

#ifndef DDSC_TRACE_SOURCE_HH
#define DDSC_TRACE_SOURCE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace ddsc
{

/**
 * Abstract pull-based stream of trace records.
 *
 * Sources are rewindable because one trace is fed to many machine
 * configurations (A..E at five issue widths).
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Fetch the next record; @return false at end of trace. */
    virtual bool next(TraceRecord &rec) = 0;

    /** Rewind to the beginning of the trace. */
    virtual void reset() = 0;
};

/**
 * A trace held entirely in memory.
 */
class VectorTraceSource : public TraceSource
{
  public:
    VectorTraceSource() = default;
    explicit VectorTraceSource(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {}

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    /** Append a record (used by the VM and by tests). */
    void push(const TraceRecord &rec) { records_.push_back(rec); }

    std::size_t size() const { return records_.size(); }
    const std::vector<TraceRecord> &records() const { return records_; }

    /** Content digest (see digestRecords); keys the persistent result
     *  cache.  O(n) — callers cache it per trace. */
    std::uint64_t digest() const { return digestRecords(records_); }

  private:
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

/**
 * A read-only cursor over another VectorTraceSource's records.
 *
 * VectorTraceSource carries its iteration position, so one instance
 * cannot feed two simulations at once.  Views share the underlying
 * immutable record vector but own their position, which is what lets
 * the parallel experiment engine run many LimitSchedulers over one
 * cached trace concurrently.  The viewed source must outlive the view
 * and must not be mutated (push) while views exist.
 */
class VectorTraceView : public TraceSource
{
  public:
    explicit VectorTraceView(const VectorTraceSource &source)
        : records_(&source.records())
    {}

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= records_->size())
            return false;
        rec = (*records_)[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

  private:
    const std::vector<TraceRecord> *records_;
    std::size_t pos_ = 0;
};

/**
 * Sink interface for trace producers (the VM writes through this).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const TraceRecord &rec) = 0;
};

/** Sink that appends into a VectorTraceSource. */
class VectorTraceSink : public TraceSink
{
  public:
    explicit VectorTraceSink(VectorTraceSource &dest) : dest_(dest) {}
    void emit(const TraceRecord &rec) override { dest_.push(rec); }

  private:
    VectorTraceSource &dest_;
};

/**
 * Binary trace file writer.  The format is a fixed header followed by
 * packed little-endian records and (since DDSCTRC v3) a CRC32 footer;
 * see trace_file.cc for the layout.
 */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void emit(const TraceRecord &rec) override;

    /** Write the CRC footer and finalize the header; called by the
     *  destructor too. */
    void close();

    std::uint64_t count() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint32_t crc_ = 0;     ///< running CRC32 over record bytes
};

/**
 * Streaming reader for files produced by TraceFileWriter.
 *
 * The constructor validates the whole file before the first next():
 * magic and version (v2 legacy and v3 accepted), the count field
 * against the actual file size (truncations are reported with the
 * offending byte offset and record index), and — for v3 — the CRC32
 * footer over every record byte.
 */
class TraceFileSource : public TraceSource
{
  public:
    /** Open and validate @p path; fatal() with a diagnosis on any
     *  mismatch. */
    explicit TraceFileSource(const std::string &path);
    ~TraceFileSource() override;

    TraceFileSource(const TraceFileSource &) = delete;
    TraceFileSource &operator=(const TraceFileSource &) = delete;

    bool next(TraceRecord &rec) override;
    void reset() override;

    std::uint64_t count() const { return count_; }

    /** Header version of the file being read (2 or 3). */
    std::uint32_t version() const { return version_; }

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    std::uint32_t version_ = 0;
};

/**
 * A bounding adaptor that truncates an underlying source after N
 * records, mirroring the paper's "first 250 million instructions"
 * truncation rule.
 */
class BoundedTraceSource : public TraceSource
{
  public:
    BoundedTraceSource(TraceSource &inner, std::uint64_t limit)
        : inner_(inner), limit_(limit)
    {}

    bool
    next(TraceRecord &rec) override
    {
        if (served_ >= limit_)
            return false;
        if (!inner_.next(rec))
            return false;
        ++served_;
        return true;
    }

    void
    reset() override
    {
        inner_.reset();
        served_ = 0;
    }

  private:
    TraceSource &inner_;
    std::uint64_t limit_;
    std::uint64_t served_ = 0;
};

} // namespace ddsc

#endif // DDSC_TRACE_SOURCE_HH
