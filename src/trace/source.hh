/**
 * @file
 * Trace sources: the interface through which the simulator consumes
 * dynamic instruction streams, with in-memory and file-backed
 * implementations.
 */

#ifndef DDSC_TRACE_SOURCE_HH
#define DDSC_TRACE_SOURCE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace ddsc
{

/**
 * Abstract pull-based stream of trace records.
 *
 * Sources are rewindable because one trace is fed to many machine
 * configurations (A..E at five issue widths).
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Fetch the next record; @return false at end of trace. */
    virtual bool next(TraceRecord &rec) = 0;

    /** Rewind to the beginning of the trace. */
    virtual void reset() = 0;
};

/**
 * A shareable, immutable trace that many consumers read concurrently.
 *
 * This is the contract the experiment driver, the batched runner, and
 * the serving layer hold a trace by: mint as many independent cursors
 * as there are concurrent simulations, ask for the record count and
 * content digest, and (for storage-backed implementations) account
 * for and release page-cache residency.  VectorTraceSource implements
 * it for in-memory traces; MappedTraceSource (trace/mapped.hh) for
 * mmap'd DDSCTRC v4 files.
 */
class SharedTrace
{
  public:
    virtual ~SharedTrace() = default;

    /** A fresh independent cursor positioned at the first record.
     *  Cursors are cheap, allocation-free after construction, and safe
     *  to advance concurrently with any number of siblings; the trace
     *  must outlive them. */
    virtual std::unique_ptr<TraceSource> cursor() const = 0;

    /** Number of records a cursor will yield. */
    virtual std::uint64_t recordCount() const = 0;

    /** Content digest (see digestRecords); keys the persistent result
     *  cache.  May be O(n) for in-memory traces — callers memoize —
     *  and is O(1) for mapped traces (served from the v4 header). */
    virtual std::uint64_t digest() const = 0;

    /** Bytes of address space this trace holds mapped, 0 for purely
     *  in-memory traces.  The residency budget charges this. */
    virtual std::uint64_t mappedBytes() const { return 0; }

    /** Hint that resident pages may be dropped (madvise for mapped
     *  traces; no-op in memory).  Safe while cursors are mid-read:
     *  file-backed pages refault with identical bytes. */
    virtual void evict() const {}
};

/**
 * A trace held entirely in memory.
 */
class VectorTraceSource : public TraceSource, public SharedTrace
{
  public:
    VectorTraceSource() = default;
    explicit VectorTraceSource(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {}

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    /** Append a record (used by the VM and by tests). */
    void push(const TraceRecord &rec) { records_.push_back(rec); }

    std::size_t size() const { return records_.size(); }
    const std::vector<TraceRecord> &records() const { return records_; }

    std::unique_ptr<TraceSource> cursor() const override;

    std::uint64_t recordCount() const override { return records_.size(); }

    std::uint64_t digest() const override
    {
        return digestRecords(records_);
    }

  private:
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

/**
 * A read-only cursor over another VectorTraceSource's records.
 *
 * VectorTraceSource carries its iteration position, so one instance
 * cannot feed two simulations at once.  Views share the underlying
 * immutable record vector but own their position, which is what lets
 * the parallel experiment engine run many LimitSchedulers over one
 * cached trace concurrently.  The viewed source must outlive the view
 * and must not be mutated (push) while views exist.
 */
class VectorTraceView : public TraceSource
{
  public:
    explicit VectorTraceView(const VectorTraceSource &source)
        : records_(&source.records())
    {}

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= records_->size())
            return false;
        rec = (*records_)[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

  private:
    const std::vector<TraceRecord> *records_;
    std::size_t pos_ = 0;
};

inline std::unique_ptr<TraceSource>
VectorTraceSource::cursor() const
{
    return std::make_unique<VectorTraceView>(*this);
}

/**
 * Sink interface for trace producers (the VM writes through this).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const TraceRecord &rec) = 0;
};

/** Sink that appends into a VectorTraceSource. */
class VectorTraceSink : public TraceSink
{
  public:
    explicit VectorTraceSink(VectorTraceSource &dest) : dest_(dest) {}
    void emit(const TraceRecord &rec) override { dest_.push(rec); }

  private:
    VectorTraceSource &dest_;
};

/**
 * Binary trace file writer.  Writes packed little-endian records (the
 * layouts are pinned LE by a compile-time assert in trace/format.hh).
 * The default output is DDSCTRC v4: a page-aligned, CRC-per-block,
 * mmap'able layout whose header carries the record count and FNV-1a
 * stream digest.  Version 3 (flat records + one trailing CRC32
 * footer) can still be requested for compatibility; see format.hh for
 * both layouts.
 */
class TraceFileWriter : public TraceSink
{
  public:
    /**
     * Open @p path for writing; fatal() on failure.
     *
     * @param version   0 for the current default (v4), or an explicit
     *                  3 / 4.
     * @param blockSize v4 block size in bytes; 0 for the default.
     *                  Must be a multiple of 4096.  Ignored for v3.
     */
    explicit TraceFileWriter(const std::string &path,
                             std::uint32_t version = 0,
                             std::uint32_t blockSize = 0);
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void emit(const TraceRecord &rec) override;

    /**
     * Flush buffered records, write the footer, back-patch the header,
     * and fflush+fclose with both return values checked — an ENOSPC
     * surfacing only at flush/close time is still a torn trace and
     * must not report success.  Called by the destructor too.
     */
    void close();

    std::uint64_t count() const { return count_; }

    /** FNV-1a digest of everything emitted so far (matches
     *  digestRecords over the same sequence). */
    std::uint64_t digest() const { return digest_.value(); }

  private:
    void flushBlock();

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint32_t version_ = 0;
    std::uint32_t crc_ = 0;     ///< v3: running CRC32 over record bytes
    RecordDigest digest_;
    // v4 state: one block buffered in memory, per-block CRC table
    // accumulated for the footer.
    std::uint32_t blockSize_ = 0;
    std::uint64_t perBlock_ = 0;
    std::uint64_t inBlock_ = 0;
    std::vector<unsigned char> block_;
    std::vector<std::uint32_t> blockCrcs_;
};

/**
 * Streaming reader for files produced by TraceFileWriter.
 *
 * The constructor validates structure before the first next(): magic
 * and version (v2, v3, and v4 accepted), and the count field against
 * the actual file size — counts whose byte span would overflow or
 * exceed the stat'd size are rejected before any offset arithmetic,
 * so a length-bomb header cannot wrap the cross-check or spin the
 * checksum loop.  Truncations are reported with the offending byte
 * offset and record index.  For v3 the CRC32 footer is verified over
 * every record byte up front; for v4 each block's CRC is verified as
 * the stream crosses it, so open() stays O(1) in trace length.
 */
class TraceFileSource : public TraceSource
{
  public:
    /** Open and validate @p path; fatal() with a diagnosis on any
     *  mismatch. */
    explicit TraceFileSource(const std::string &path);
    ~TraceFileSource() override;

    TraceFileSource(const TraceFileSource &) = delete;
    TraceFileSource &operator=(const TraceFileSource &) = delete;

    bool next(TraceRecord &rec) override;
    void reset() override;

    std::uint64_t count() const { return count_; }

    /** Header version of the file being read (2, 3, or 4). */
    std::uint32_t version() const { return version_; }

    /** v4 header digest (0 for v2/v3, whose headers carry none). */
    std::uint64_t headerDigest() const { return headerDigest_; }

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    std::uint32_t version_ = 0;
    std::uint64_t headerDigest_ = 0;
    // v4 streaming state: block geometry, the footer CRC table read at
    // open, and the running CRC of the block being crossed.
    std::uint32_t blockSize_ = 0;
    std::uint64_t perBlock_ = 0;
    std::uint64_t inBlock_ = 0;
    std::uint32_t blockCrc_ = 0;
    std::vector<std::uint32_t> blockCrcs_;
};

/**
 * A bounding adaptor that truncates an underlying source after N
 * records, mirroring the paper's "first 250 million instructions"
 * truncation rule.
 */
class BoundedTraceSource : public TraceSource
{
  public:
    BoundedTraceSource(TraceSource &inner, std::uint64_t limit)
        : inner_(inner), limit_(limit)
    {}

    bool
    next(TraceRecord &rec) override
    {
        if (served_ >= limit_)
            return false;
        if (!inner_.next(rec))
            return false;
        ++served_;
        return true;
    }

    void
    reset() override
    {
        inner_.reset();
        served_ = 0;
    }

  private:
    TraceSource &inner_;
    std::uint64_t limit_;
    std::uint64_t served_ = 0;
};

} // namespace ddsc

#endif // DDSC_TRACE_SOURCE_HH
