#include "synthetic.hh"

#include <vector>

#include "support/random.hh"

namespace ddsc
{

namespace
{

/** Static description of one loop-body slot. */
struct Slot
{
    Opcode op;
    Cond cond;
    std::uint8_t rd, rs1, rs2;
    bool useImm;
    std::int32_t imm;
    bool strided;           // memory slots
    std::uint64_t base;     // memory base or chain seed
    std::uint64_t stride;
    double takenP;          // branch slots
};

std::uint8_t
randomReg(Rng &rng)
{
    // r1..r13: plenty of reuse so dependences actually form.
    return static_cast<std::uint8_t>(1 + rng.below(13));
}

} // anonymous namespace

VectorTraceSource
generateSynthetic(const SyntheticTraceConfig &config)
{
    Rng rng(config.seed);

    // Build a static loop body.
    std::vector<Slot> body;
    body.reserve(config.staticInstructions);
    while (body.size() < config.staticInstructions) {
        Slot slot = {};
        const double pick = static_cast<double>(rng.below(1000)) / 1000.0;
        double acc = 0.0;

        auto in = [&](double fraction) {
            acc += fraction;
            return pick < acc;
        };

        slot.rd = randomReg(rng);
        slot.rs1 = randomReg(rng);
        slot.rs2 = randomReg(rng);
        slot.useImm = rng.chance(config.immFraction);
        slot.imm = slot.useImm
            ? (rng.chance(config.zeroImmFraction)
               ? 0 : static_cast<std::int32_t>(rng.range(1, 255)))
            : 0;

        if (in(config.branchFraction)) {
            // Emit a cmp/branch pair (needs two slots).
            if (body.size() + 2 > config.staticInstructions)
                continue;
            Slot cmp = slot;
            cmp.op = Opcode::SUBCC;
            cmp.rd = kRegZero;
            body.push_back(cmp);
            slot.op = Opcode::BCC;
            slot.cond = static_cast<Cond>(rng.below(kNumConds));
            slot.takenP = config.takenBias;
            body.push_back(slot);
            continue;
        }
        if (in(config.loadFraction)) {
            slot.op = rng.chance(0.85) ? Opcode::LDW : Opcode::LDB;
        } else if (in(config.storeFraction)) {
            slot.op = rng.chance(0.85) ? Opcode::STW : Opcode::STB;
        } else if (in(config.shiftFraction)) {
            constexpr Opcode kShifts[] = {Opcode::SLL, Opcode::SRL,
                                          Opcode::SRA};
            slot.op = kShifts[rng.below(3)];
            if (slot.useImm)
                slot.imm = static_cast<std::int32_t>(rng.below(31) + 1);
        } else if (in(config.logicFraction)) {
            constexpr Opcode kLogic[] = {Opcode::AND, Opcode::OR,
                                         Opcode::XOR, Opcode::ANDN};
            slot.op = kLogic[rng.below(4)];
        } else if (in(config.moveFraction)) {
            slot.op = rng.chance(0.5) ? Opcode::MOV : Opcode::SETHI;
            slot.useImm = true;
            slot.imm = static_cast<std::int32_t>(rng.below(4096));
        } else if (in(config.mulFraction)) {
            slot.op = Opcode::MUL;
        } else if (in(config.divFraction)) {
            slot.op = Opcode::DIV;
        } else {
            slot.op = rng.chance(0.5) ? Opcode::ADD : Opcode::SUB;
        }

        if (slot.op == Opcode::LDW || slot.op == Opcode::LDB ||
            slot.op == Opcode::STW || slot.op == Opcode::STB) {
            slot.strided = rng.chance(config.strideFraction);
            slot.base = 0x40000000 + rng.below(1 << 16) * 4;
            slot.stride = slot.strided ? (rng.below(4) + 1) * 4 : 0;
        }
        body.push_back(slot);
    }

    // Unroll dynamically.
    VectorTraceSource trace;
    std::uint64_t iteration = 0;
    std::uint64_t emitted = 0;
    // Per-slot pointer-chain state for non-strided memory slots.
    std::vector<std::uint64_t> chain(body.size());
    for (std::size_t i = 0; i < body.size(); ++i)
        chain[i] = body[i].base;

    while (emitted < config.instructions) {
        for (std::size_t i = 0;
             i < body.size() && emitted < config.instructions; ++i) {
            const Slot &slot = body[i];
            TraceRecord rec;
            rec.pc = kTextBase + 4 * i;
            rec.op = slot.op;
            rec.cond = slot.cond;
            rec.rd = slot.rd;
            rec.rs1 = slot.rs1;
            rec.rs2 = slot.rs2;
            rec.useImm = slot.useImm;
            rec.imm = slot.imm;

            switch (rec.cls()) {
              case OpClass::Load:
              case OpClass::Store:
                if (slot.strided) {
                    rec.ea = slot.base + iteration * slot.stride;
                } else {
                    // Deterministic pseudo-random walk per slot.
                    const std::uint64_t mixed =
                        chain[i] * 6364136223846793005ull +
                        1442695040888963407ull;
                    chain[i] = slot.base + (mixed >> 40) * 4;
                    rec.ea = chain[i];
                }
                rec.useImm = true;  // memory ops use base+imm form here
                rec.imm = 0;
                break;
              case OpClass::Branch:
                rec.taken = rng.chance(slot.takenP);
                rec.target = rec.taken
                    ? kTextBase : rec.pc + 4;
                break;
              default:
                break;
            }
            trace.push(rec);
            ++emitted;
        }
        ++iteration;
    }
    return trace;
}

} // namespace ddsc
