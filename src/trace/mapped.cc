#include "mapped.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/logging.hh"
#include "support/wire.hh"
#include "trace/format.hh"

namespace ddsc
{

namespace
{

using namespace trace_format;

/**
 * Allocation-free cursor over a MappedTraceSource.
 *
 * Holds a raw byte pointer into the current block and a countdown to
 * its end; advancing is a memcpy + pointer bump, with one atomic load
 * (the block's verified flag) per block crossing.
 */
class MappedTraceCursor : public TraceSource
{
  public:
    explicit MappedTraceCursor(const MappedTraceSource &src)
        : src_(&src)
    {
        reset();
    }

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= count_)
            return false;
        if (inBlock_ == blockRecords_)
            enterBlock(block_ + 1);
        DiskRecord d;
        std::memcpy(&d, cur_, sizeof d);
        rec = unpack(d);
        cur_ += sizeof d;
        ++inBlock_;
        ++pos_;
        return true;
    }

    void
    reset() override
    {
        pos_ = 0;
        count_ = src_->recordCount();
        if (count_ > 0) {
            enterBlock(0);
        } else {
            cur_ = nullptr;
            inBlock_ = 0;
            blockRecords_ = 0;
        }
    }

  private:
    void
    enterBlock(std::uint64_t block)
    {
        src_->validateBlock(block);
        block_ = block;
        cur_ = src_->blockData(block);
        inBlock_ = 0;
        blockRecords_ = src_->recordsInBlock(block);
    }

    const MappedTraceSource *src_;
    const unsigned char *cur_ = nullptr;
    std::uint64_t pos_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t block_ = 0;
    std::uint64_t inBlock_ = 0;
    std::uint64_t blockRecords_ = 0;
};

} // anonymous namespace

std::uint32_t
MappedTraceSource::headerBytes()
{
    return kV4HeaderBytes;
}

MappedTraceSource::MappedTraceSource(const std::string &path)
    : path_(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        ddsc_fatal("cannot open trace file '%s'", path.c_str());
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        ddsc_fatal("cannot stat trace file '%s'", path.c_str());
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
    if (size_ < sizeof(V4Header)) {
        ::close(fd);
        ddsc_fatal("'%s' is too small for a v4 trace header (%llu "
                   "bytes needed)", path.c_str(),
                   static_cast<unsigned long long>(sizeof(V4Header)));
    }
    void *map = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);     // the mapping keeps the file alive
    if (map == MAP_FAILED)
        ddsc_fatal("cannot mmap trace file '%s' (%llu bytes)",
                   path.c_str(),
                   static_cast<unsigned long long>(size_));
    base_ = static_cast<const unsigned char *>(map);

    // Structural validation, eager and O(blocks): everything the
    // streaming reader checks at open except the per-block record
    // CRCs, which validateBlock() settles lazily.
    V4Header hdr;
    std::memcpy(&hdr, base_, sizeof hdr);
    if (std::memcmp(hdr.magic, kMagic, sizeof kMagic) != 0)
        ddsc_fatal("'%s' is not a ddsc trace file", path.c_str());
    if (hdr.version != 4)
        ddsc_fatal("trace file '%s' has version %u but the mapped "
                   "reader serves only v4; use the streaming reader "
                   "or rebuild the trace with ddsc-asm",
                   path.c_str(), hdr.version);
    if (hdr.headerCrc != support::wire::crc32(
            &hdr, offsetof(V4Header, headerCrc), 0))
        ddsc_fatal("trace file '%s': header CRC mismatch; the header "
                   "is corrupt", path.c_str());
    if (hdr.recordBytes != sizeof(DiskRecord))
        ddsc_fatal("trace file '%s': header says %u-byte records but "
                   "this build uses %llu-byte records",
                   path.c_str(), hdr.recordBytes,
                   static_cast<unsigned long long>(sizeof(DiskRecord)));
    if (hdr.blockSize == 0 || hdr.blockSize % kV4HeaderBytes != 0 ||
        hdr.blockSize > kV4MaxBlockSize)
        ddsc_fatal("trace file '%s': invalid block size %u (must be a "
                   "nonzero multiple of %u, at most %u)",
                   path.c_str(), hdr.blockSize, kV4HeaderBytes,
                   kV4MaxBlockSize);
    if (size_ < kV4HeaderBytes)
        ddsc_fatal("trace file '%s' truncated inside its header page: "
                   "%llu of %u bytes", path.c_str(),
                   static_cast<unsigned long long>(size_),
                   kV4HeaderBytes);
    // Length-bomb guard before any offset arithmetic (same bound as
    // the streaming reader).
    constexpr std::uint64_t kMaxRepresentable =
        ~0ull / (sizeof(DiskRecord) * 4);
    if (hdr.count > kMaxRepresentable)
        ddsc_fatal("trace file '%s': header promises %llu records, "
                   "whose byte span overflows a 64-bit offset; the "
                   "count field is corrupt (length bomb) and is "
                   "rejected before any offset arithmetic",
                   path.c_str(),
                   static_cast<unsigned long long>(hdr.count));

    blockSize_ = hdr.blockSize;
    perBlock_ = v4RecordsPerBlock(blockSize_);
    count_ = hdr.count;
    digest_ = hdr.digest;
    numBlocks_ =
        count_ == 0 ? 0 : (count_ + perBlock_ - 1) / perBlock_;

    const std::uint64_t footerOff =
        kV4HeaderBytes + numBlocks_ * blockSize_;
    const std::uint64_t expected =
        footerOff + sizeof(V4FooterHead) +
        numBlocks_ * sizeof(std::uint32_t) + sizeof(std::uint32_t);
    if (size_ < expected) {
        if (size_ < footerOff) {
            const std::uint64_t block =
                (size_ - kV4HeaderBytes) / blockSize_;
            const std::uint64_t firstRec = block * perBlock_;
            ddsc_fatal("trace file '%s' truncated: header promises "
                       "%llu records in %llu blocks (%llu bytes) but "
                       "the file ends at byte offset %llu, inside "
                       "block %llu (records %llu..%llu)",
                       path.c_str(),
                       static_cast<unsigned long long>(count_),
                       static_cast<unsigned long long>(numBlocks_),
                       static_cast<unsigned long long>(expected),
                       static_cast<unsigned long long>(size_),
                       static_cast<unsigned long long>(block),
                       static_cast<unsigned long long>(firstRec),
                       static_cast<unsigned long long>(
                           std::min(count_, firstRec + perBlock_) - 1));
        }
        ddsc_fatal("trace file '%s' truncated inside its footer: the "
                   "CRC table needs bytes %llu..%llu but the file "
                   "ends at %llu",
                   path.c_str(),
                   static_cast<unsigned long long>(footerOff),
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(size_));
    }
    if (size_ > expected)
        ddsc_fatal("trace file '%s' has %llu bytes of trailing "
                   "garbage after its footer (byte offset %llu); the "
                   "count field and file size disagree",
                   path.c_str(),
                   static_cast<unsigned long long>(size_ - expected),
                   static_cast<unsigned long long>(expected));

    V4FooterHead head;
    std::memcpy(&head, base_ + footerOff, sizeof head);
    if (std::memcmp(head.magic, kFooterMagic, sizeof kFooterMagic) != 0)
        ddsc_fatal("trace file '%s': footer magic missing at byte "
                   "offset %llu; the file was not finalized",
                   path.c_str(),
                   static_cast<unsigned long long>(footerOff));
    if (head.blockCount != numBlocks_)
        ddsc_fatal("trace file '%s': footer lists %u blocks but the "
                   "header count implies %llu",
                   path.c_str(), head.blockCount,
                   static_cast<unsigned long long>(numBlocks_));
    // The CRC table is 4-byte aligned in the file (header page and
    // blocks are 4096-multiples, the footer head is 16 bytes), so it
    // can be pointed at in place.
    blockCrcs_ = reinterpret_cast<const std::uint32_t *>(
        base_ + footerOff + sizeof(V4FooterHead));
    std::uint32_t tableCrc;
    std::memcpy(&tableCrc,
                base_ + footerOff + sizeof(V4FooterHead) +
                    numBlocks_ * sizeof(std::uint32_t),
                sizeof tableCrc);
    if (tableCrc != support::wire::crc32(
            blockCrcs_, numBlocks_ * sizeof(std::uint32_t), 0))
        ddsc_fatal("trace file '%s': block CRC table is corrupt "
                   "(table checksum mismatch)", path.c_str());

    blockState_ =
        std::make_unique<std::atomic<std::uint8_t>[]>(numBlocks_);
    for (std::uint64_t i = 0; i < numBlocks_; ++i)
        blockState_[i].store(0, std::memory_order_relaxed);
}

MappedTraceSource::~MappedTraceSource()
{
    if (base_)
        ::munmap(const_cast<unsigned char *>(base_), size_);
}

std::unique_ptr<TraceSource>
MappedTraceSource::cursor() const
{
    return std::make_unique<MappedTraceCursor>(*this);
}

std::uint64_t
MappedTraceSource::recordsInBlock(std::uint64_t block) const
{
    return std::min(perBlock_, count_ - block * perBlock_);
}

void
MappedTraceSource::validateBlock(std::uint64_t block) const
{
    ddsc_assert(block < numBlocks_, "block index out of range");
    if (blockState_[block].load(std::memory_order_acquire) == 1)
        return;
    // Racing validators both compute the same CRC over the same
    // immutable bytes; whoever finishes settles the flag.
    const std::uint64_t bytes =
        recordsInBlock(block) * sizeof(DiskRecord);
    const std::uint32_t crc =
        support::wire::crc32(blockData(block), bytes, 0);
    if (crc != blockCrcs_[block])
        ddsc_fatal("trace file '%s' is corrupt: block %llu (records "
                   "%llu..%llu, byte offset %llu) checksums to 0x%08x "
                   "but the footer table says 0x%08x",
                   path_.c_str(),
                   static_cast<unsigned long long>(block),
                   static_cast<unsigned long long>(block * perBlock_),
                   static_cast<unsigned long long>(
                       block * perBlock_ + recordsInBlock(block) - 1),
                   static_cast<unsigned long long>(
                       kV4HeaderBytes + block * blockSize_),
                   crc, blockCrcs_[block]);
    blockState_[block].store(1, std::memory_order_release);
}

void
MappedTraceSource::evict() const
{
    if (!base_ || size_ == 0)
        return;
    // MADV_DONTNEED on a shared file mapping drops the pages from this
    // mapping; clean page-cache copies may survive, which is fine —
    // the point is releasing *charged* residency, and re-reads refault
    // identical bytes either way.
    ::madvise(const_cast<unsigned char *>(base_), size_, MADV_DONTNEED);
    evictions_.fetch_add(1, std::memory_order_relaxed);
}

bool
MappedTraceSource::probe(const std::string &path, std::uint64_t *digest,
                         std::uint64_t *count)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    V4Header hdr;
    const bool ok =
        std::fread(&hdr, sizeof hdr, 1, file) == 1 &&
        std::memcmp(hdr.magic, kMagic, sizeof kMagic) == 0 &&
        hdr.version == 4 &&
        hdr.recordBytes == sizeof(DiskRecord) &&
        hdr.headerCrc == support::wire::crc32(
            &hdr, offsetof(V4Header, headerCrc), 0);
    std::fclose(file);
    if (!ok)
        return false;
    if (digest)
        *digest = hdr.digest;
    if (count)
        *count = hdr.count;
    return true;
}

void
TraceResidencyManager::setBudgetBytes(std::uint64_t budget)
{
    std::lock_guard<std::mutex> lock(mutex_);
    budget_ = budget;
}

void
TraceResidencyManager::touch(const SharedTrace &trace)
{
    if (trace.mappedBytes() == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(&trace);
    if (it != index_.end()) {
        it->second->resident = true;
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.push_front(Entry{&trace, true});
        index_[&trace] = lru_.begin();
    }
    if (budget_ == 0)
        return;
    std::uint64_t charged = 0;
    for (const Entry &e : lru_) {
        if (e.resident)
            charged += e.trace->mappedBytes();
    }
    // Coldest first; the just-touched trace (front) is exempt so a
    // single over-budget trace still sweeps.
    for (auto rit = lru_.rbegin();
         charged > budget_ && rit != lru_.rend(); ++rit) {
        if (!rit->resident || rit->trace == &trace)
            continue;
        rit->trace->evict();
        rit->resident = false;
        ++evictions_;
        charged -= rit->trace->mappedBytes();
    }
}

void
TraceResidencyManager::forget(const SharedTrace &trace)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(&trace);
    if (it == index_.end())
        return;
    lru_.erase(it->second);
    index_.erase(it);
}

TraceResidencyManager::Counters
TraceResidencyManager::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Counters c;
    c.budgetBytes = budget_;
    c.evictions = evictions_;
    for (const Entry &e : lru_) {
        c.mappedBytes += e.trace->mappedBytes();
        if (e.resident)
            c.residentBytes += e.trace->mappedBytes();
    }
    return c;
}

} // namespace ddsc
