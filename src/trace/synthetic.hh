/**
 * @file
 * Deterministic synthetic trace generation.
 *
 * Used by property tests and microbenchmarks: produces a structurally
 * plausible dynamic trace (a loop of static instructions with stable
 * pcs, cc-setting compares in front of branches, strided or random load
 * addresses) without needing an assembled program.  The real
 * experiments use traces produced by the VM from the workload programs;
 * this generator exists so the scheduler can be exercised across a wide
 * parameter space quickly and reproducibly.
 */

#ifndef DDSC_TRACE_SYNTHETIC_HH
#define DDSC_TRACE_SYNTHETIC_HH

#include <cstdint>

#include "trace/source.hh"

namespace ddsc
{

/**
 * Parameters of the synthetic workload.  Fractions need not sum to 1;
 * the remainder becomes plain arithmetic.
 */
struct SyntheticTraceConfig
{
    std::uint64_t instructions = 10000;
    std::uint64_t seed = 1;

    /** Static loop body length (distinct pcs). */
    unsigned staticInstructions = 64;

    double loadFraction = 0.20;
    double storeFraction = 0.10;
    double branchFraction = 0.12;   ///< cmp+branch slot pairs
    double shiftFraction = 0.06;
    double logicFraction = 0.10;
    double moveFraction = 0.05;
    double mulFraction = 0.01;
    double divFraction = 0.005;

    /** Fraction of load/store slots with strided addresses; the rest
     *  walk a pseudo-random pointer chain. */
    double strideFraction = 0.7;

    /** Per-branch-slot probability that an iteration takes the branch. */
    double takenBias = 0.7;

    /** Fraction of ALU slots using an immediate second operand. */
    double immFraction = 0.5;

    /** Fraction of immediates that are zero (0-op fodder). */
    double zeroImmFraction = 0.1;
};

/** Generate a trace; same config => identical trace. */
VectorTraceSource generateSynthetic(const SyntheticTraceConfig &config);

} // namespace ddsc

#endif // DDSC_TRACE_SYNTHETIC_HH
