#include "trace_stats.hh"

#include "support/stats.hh"

namespace ddsc
{

void
TraceStats::account(const TraceRecord &rec)
{
    ++total_;
    ++byClass_[static_cast<unsigned>(rec.cls())];
    ++bbLen_;
    if (isControl(rec.cls()) || rec.cls() == OpClass::Halt) {
        bbSizes_.add(bbLen_);
        bbLen_ = 0;
    }
}

void
TraceStats::accountAll(TraceSource &src)
{
    TraceRecord rec;
    while (src.next(rec))
        account(rec);
}

double
TraceStats::pctOf(OpClass cls) const
{
    return percent(static_cast<double>(countOf(cls)),
                   static_cast<double>(total_));
}

} // namespace ddsc
