#include "record.hh"

namespace ddsc
{

namespace
{

/**
 * Enumerate the leaf source-operand slots of a record: each slot is
 * either a register (possibly r0) or an immediate.  The condition-code
 * input of a branch is not a slot here; it is the arc being collapsed.
 */
struct OperandSlots
{
    unsigned total = 0;
    unsigned zero = 0;

    void
    addReg(std::uint8_t reg)
    {
        ++total;
        if (reg == kRegZero)
            ++zero;
    }

    void
    addImm(std::int32_t imm)
    {
        ++total;
        if (imm == 0)
            ++zero;
    }
};

OperandSlots
slotsOf(const TraceRecord &rec)
{
    OperandSlots s;
    switch (rec.cls()) {
      case OpClass::Arith:
      case OpClass::Logic:
      case OpClass::Shift:
      case OpClass::Mul:
      case OpClass::Div:
        s.addReg(rec.rs1);
        if (rec.useImm)
            s.addImm(rec.imm);
        else
            s.addReg(rec.rs2);
        break;
      case OpClass::Move:
        if (rec.op == Opcode::SETHI) {
            s.addImm(rec.imm);
        } else if (rec.useImm) {
            s.addImm(rec.imm);
        } else {
            s.addReg(rec.rs2);
        }
        break;
      case OpClass::Load:
      case OpClass::IndirectJump:
        s.addReg(rec.rs1);
        if (rec.useImm)
            s.addImm(rec.imm);
        else
            s.addReg(rec.rs2);
        break;
      case OpClass::Store:
        s.addReg(rec.rs1);
        if (rec.useImm)
            s.addImm(rec.imm);
        else
            s.addReg(rec.rs2);
        s.addReg(rec.rd);      // store data
        break;
      case OpClass::Branch:
        // The cc input is the dependence arc itself, not a value slot.
        break;
      default:
        break;
    }
    return s;
}

} // anonymous namespace

unsigned
TraceRecord::nonZeroOperandCount() const
{
    const OperandSlots s = slotsOf(*this);
    return s.total - s.zero;
}

bool
TraceRecord::hasZeroOperand() const
{
    return slotsOf(*this).zero > 0;
}

void
RecordDigest::add(const TraceRecord &rec)
{
    auto fold = [this](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 1099511628211ull;
        }
    };
    fold(rec.pc);
    fold(rec.ea);
    fold(rec.target);
    fold(rec.memValue);
    fold(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(rec.imm)));
    fold(static_cast<std::uint64_t>(rec.op));
    fold(static_cast<std::uint64_t>(rec.cond));
    fold((static_cast<std::uint64_t>(rec.rd) << 16) |
         (static_cast<std::uint64_t>(rec.rs1) << 8) |
         static_cast<std::uint64_t>(rec.rs2));
    fold((rec.useImm ? 1u : 0u) | (rec.taken ? 2u : 0u));
}

std::uint64_t
digestRecords(const std::vector<TraceRecord> &records)
{
    RecordDigest digest;
    for (const TraceRecord &rec : records)
        digest.add(rec);
    return digest.value();
}

} // namespace ddsc
