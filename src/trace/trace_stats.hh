/**
 * @file
 * Static/dynamic trace statistics: instruction mix, conditional-branch
 * percentage (Table 2's first column), and basic-block sizes.
 */

#ifndef DDSC_TRACE_TRACE_STATS_HH
#define DDSC_TRACE_TRACE_STATS_HH

#include <array>
#include <cstdint>

#include "support/stats.hh"
#include "trace/record.hh"
#include "trace/source.hh"

namespace ddsc
{

/**
 * Accumulated per-trace statistics.
 */
class TraceStats
{
  public:
    /** Account one record. */
    void account(const TraceRecord &rec);

    /** Consume and account an entire source (leaves it at end). */
    void accountAll(TraceSource &src);

    std::uint64_t instructions() const { return total_; }

    /** Dynamic count of the given class. */
    std::uint64_t countOf(OpClass cls) const
    {
        return byClass_[static_cast<unsigned>(cls)];
    }

    /** Percentage of dynamic instructions in the given class. */
    double pctOf(OpClass cls) const;

    /** Percentage of conditional branches (paper Table 2). */
    double pctCondBranches() const { return pctOf(OpClass::Branch); }

    /** Fraction of loads among all instructions. */
    double pctLoads() const { return pctOf(OpClass::Load); }

    /** Distribution of dynamic basic-block sizes. */
    const Histogram &basicBlockSizes() const { return bbSizes_; }

  private:
    std::uint64_t total_ = 0;
    std::array<std::uint64_t, 16> byClass_ = {};
    std::uint64_t bbLen_ = 0;
    Histogram bbSizes_;
};

} // namespace ddsc

#endif // DDSC_TRACE_TRACE_STATS_HH
