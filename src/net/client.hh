/**
 * @file
 * Client library for ddsc-served: connect, handshake, and issue the
 * same queries ddsc-matrix answers locally.
 *
 * Errors split into two kinds the caller treats differently:
 *
 *  - TransportError: the connection failed, died mid-message, or the
 *    peer sent garbage.  The server's state is unknown; retrying on a
 *    fresh connection is reasonable.
 *  - ServerError: the server answered with a typed protocol error
 *    (ErrCode) — overloaded, draining, deadline expired, bad request,
 *    version mismatch.  The message got through; retrying the same
 *    request unchanged will usually fail the same way (except
 *    Overloaded/Draining, which are advice to come back later).
 */

#ifndef DDSC_NET_CLIENT_HH
#define DDSC_NET_CLIENT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/protocol.hh"
#include "net/socket.hh"
#include "sim/matrix_query.hh"

namespace ddsc::net
{

/** The connection failed or the byte stream broke. */
class TransportError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The server replied with a typed Error frame. */
class ServerError : public std::runtime_error
{
  public:
    ServerError(ErrCode code, const std::string &message)
        : std::runtime_error(std::string(errCodeName(code)) + ": " +
                             message),
          code(code)
    {}

    const ErrCode code;
};

/**
 * One connection to a ddsc-served instance.  Not thread-safe; open
 * one Client per thread (the server multiplexes sessions, not the
 * client).
 */
class Client
{
  public:
    /**
     * Connect to 127.0.0.1:@p port and run the version handshake.
     *
     * @param timeout_ms bounds every individual reply wait on this
     *        connection (-1 = wait forever).  A MatrixQuery deadline
     *        widens the wait for that request — the server is allowed
     *        the full deadline before answering.
     * @throws TransportError, ServerError (VersionMismatch).
     */
    explicit Client(std::uint16_t port, int timeout_ms = -1);

    /** Run one matrix query on the server.
     *  @throws TransportError, ServerError. */
    MatrixResult matrix(const MatrixQuery &query);

    /** Counters snapshot of the running server.
     *  @throws TransportError, ServerError. */
    ServerInfo info();

    /** Liveness probe.  @throws TransportError, ServerError. */
    void ping();

    /** The server's handshake versions. */
    const Hello &serverVersions() const { return serverVersions_; }

  private:
    /** Send @p request, read one frame, unwrap Error frames into
     *  ServerError, and check the reply type. */
    Frame roundTrip(MsgType request, std::string_view payload,
                    MsgType expected, int timeout_ms);

    Fd fd_;
    int timeoutMs_;
    Hello serverVersions_;
};

} // namespace ddsc::net

#endif // DDSC_NET_CLIENT_HH
