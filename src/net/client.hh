/**
 * @file
 * Client library for ddsc-served: connect, handshake, and issue the
 * same queries ddsc-matrix answers locally.
 *
 * Errors split into two kinds the caller treats differently:
 *
 *  - TransportError: the connection failed, died mid-message, or the
 *    peer sent garbage.  The server's state is unknown; retrying on a
 *    fresh connection is reasonable.
 *  - ServerError: the server answered with a typed protocol error
 *    (ErrCode) — overloaded, draining, stalled, deadline expired, bad
 *    request, version mismatch.  The message got through; whether a
 *    retry can help is a property of the code (errCodeRetryable()).
 *
 * Retries: a Client constructed with a RetryPolicy handles both kinds
 * itself — transport failures and retryable server errors are retried
 * on a *fresh* connection with capped exponential backoff and jitter,
 * up to the policy's attempt and wall-clock budgets.  Retrying a
 * matrix query is idempotent by construction: the server's
 * single-flight registry and durable store mean the retry is answered
 * from cache (or joins the in-flight computation) rather than paying
 * for the sweep twice, and the reply bytes are deterministic.
 * BadRequest and VersionMismatch are never retried — they fail the
 * same way forever.
 *
 * Poisoned connections: any failed read (timeout, torn frame,
 * garbage) closes the socket immediately.  The stream is
 * unsynchronized after a partial exchange — the next reply on that
 * socket could be the *previous* request's late answer — so the only
 * safe continuation is a reconnect, which the next request performs
 * lazily.  Combined with a port *provider* (re-read the server's
 * --port-file before each connect), this lets one Client ride across
 * supervised server restarts, where each generation binds a fresh
 * ephemeral port.
 */

#ifndef DDSC_NET_CLIENT_HH
#define DDSC_NET_CLIENT_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "net/protocol.hh"
#include "net/socket.hh"
#include "sim/matrix_query.hh"

namespace ddsc::net
{

/** The connection failed or the byte stream broke. */
class TransportError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The server replied with a typed Error frame. */
class ServerError : public std::runtime_error
{
  public:
    ServerError(ErrCode code, const std::string &message,
                std::uint64_t retry_after_ms = 0)
        : std::runtime_error(std::string(errCodeName(code)) + ": " +
                             message),
          code(code), retryAfterMs(retry_after_ms)
    {}

    const ErrCode code;
    /** The server's suggested wait before retrying (DDSN v5 sheds);
     *  0 = no hint. */
    const std::uint64_t retryAfterMs;
};

/** How hard a Client tries before surfacing a retryable failure. */
struct RetryPolicy
{
    /** Retries after the first attempt (0 = fail fast, the default —
     *  existing callers keep their one-shot semantics). */
    unsigned retries = 0;
    /** Wall-clock budget over all attempts, ms (0 = attempts only). */
    std::uint64_t budgetMs = 0;
    /** First backoff delay; doubles per retry up to maxDelayMs.  The
     *  actual sleep is jittered to 50-100% of the delay so a herd of
     *  shed clients does not return in lockstep.  When a retryable
     *  ServerError carries a retryAfterMs hint (DDSN v5 sheds), the
     *  sleep is hint + jittered(baseDelayMs) instead — the server
     *  knows its queue better than an exponential guess — and the
     *  doubling schedule is left untouched for hintless failures. */
    std::uint64_t baseDelayMs = 50;
    std::uint64_t maxDelayMs = 2000;
};

/**
 * One connection to a ddsc-served instance.  Not thread-safe; open
 * one Client per thread (the server multiplexes sessions, not the
 * client).
 */
class Client
{
  public:
    /**
     * Connect to 127.0.0.1:@p port and run the version handshake,
     * eagerly and without retries — a server at capacity sheds this
     * connect with ServerError(Overloaded) out of the constructor.
     *
     * @param timeout_ms bounds every individual reply wait on this
     *        connection (-1 = wait forever).  A MatrixQuery deadline
     *        widens the wait for that request — the server is allowed
     *        the full deadline before answering.
     * @throws TransportError, ServerError (VersionMismatch,
     *         Overloaded).
     */
    explicit Client(std::uint16_t port, int timeout_ms = -1);

    /**
     * Resolve the port through @p port_provider (called before every
     * connect — typically a --port-file re-read, so the client
     * follows a supervised server across restarts; returning 0 means
     * "not known yet" and counts as a retryable transport failure)
     * and retry per @p policy.  Connection is lazy: nothing happens
     * until the first request.
     */
    Client(std::function<std::uint16_t()> port_provider, int timeout_ms,
           const RetryPolicy &policy);

    /** Replace the retry policy (applies from the next request). */
    void setRetryPolicy(const RetryPolicy &policy) { policy_ = policy; }

    /** Run one matrix query on the server.
     *  @throws TransportError, ServerError. */
    MatrixResult matrix(const MatrixQuery &query);

    /** Resolve a raw cell batch (the fleet router's fan-out unit).
     *  @throws TransportError, ServerError. */
    CellsReplyMsg cells(const CellsBatch &batch);

    /** Counters snapshot of the running server.
     *  @throws TransportError, ServerError. */
    ServerInfo info();

    /** Readiness snapshot of the running server.
     *  @throws TransportError, ServerError. */
    HealthInfo health();

    /** Liveness probe.  @throws TransportError, ServerError. */
    void ping();

    /** The server's handshake versions (of the latest connection). */
    const Hello &serverVersions() const { return serverVersions_; }

    /** Attempts beyond the first spent over this client's lifetime —
     *  observability for tools and tests. */
    std::uint64_t retriesUsed() const { return retriesUsed_; }

  private:
    /** Connect + handshake now.  @throws on failure. */
    void connectNow();

    /** Connect + handshake unless already connected. */
    void ensureConnected();

    /** Run @p attempt with ensureConnected() and the retry policy
     *  around it. */
    template <typename Fn> auto withRetries(Fn &&attempt);

    /** Send @p request, read one frame, unwrap Error frames into
     *  ServerError, and check the reply type.  Any transport failure
     *  or desync *poisons* the connection (closes the fd) before
     *  throwing: after a failed exchange the stream may still carry
     *  the old reply, and reading it as the answer to a new request
     *  would hand back the wrong bytes. */
    Frame roundTrip(MsgType request, std::string_view payload,
                    MsgType expected, int timeout_ms);

    Fd fd_;
    int timeoutMs_;
    std::function<std::uint16_t()> portProvider_;
    RetryPolicy policy_;
    Hello serverVersions_;
    std::uint64_t retriesUsed_ = 0;
};

} // namespace ddsc::net

#endif // DDSC_NET_CLIENT_HH
