/**
 * @file
 * The DDSN wire protocol: length-prefixed, checksummed frames carrying
 * the serving layer's messages over a byte stream.
 *
 * Frame layout (all integers little-endian, per support/wire.hh):
 *
 *     offset  size  field
 *     ------  ----  --------------------------------------------
 *          0     4  magic "DDSN" (0x4E534444)
 *          4     1  message type (MsgType)
 *          5     4  payload length in bytes
 *          9     4  CRC32 of the payload (IEEE, zlib convention)
 *         13   len  payload (message-specific, support/wire.hh codec)
 *
 * Reading is defensive end to end: a frame with a bad magic, an
 * unknown type, a length above kMaxFramePayload, or a CRC mismatch is
 * rejected without allocating the claimed length, and a connection
 * that dies mid-frame surfaces as Torn rather than blocking forever
 * or yielding a half-parsed message.  Payload decoding then goes
 * through wire::Reader, which never throws and never overreads, so a
 * malicious or corrupted peer can at worst get its connection
 * dropped.
 *
 * Fault points (support/fault.hh):
 *
 *     net-torn-frame   writeFrame: emits roughly half the frame and
 *                      reports failure — the peer observes a torn
 *                      frame exactly as if the writer died mid-send
 *     net-disconnect   checked by the server session just before
 *                      writing a reply; the session closes instead,
 *                      so the client sees a mid-response hang-up
 */

#ifndef DDSC_NET_PROTOCOL_HH
#define DDSC_NET_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/sched_stats.hh"
#include "sim/experiment.hh"
#include "support/wire.hh"

namespace ddsc::net
{

/** "DDSN" read as a little-endian u32. */
constexpr std::uint32_t kMagic = 0x4E534444u;

/** Frames above this are rejected before allocation.  The full-matrix
 *  reply is a few KiB; 16 MiB is generous headroom, not a target. */
constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/** Bytes before the payload: magic + type + length + crc. */
constexpr std::size_t kFrameHeaderSize = 13;

enum class MsgType : std::uint8_t
{
    Hello = 1,          ///< client -> server: version handshake
    HelloOk = 2,        ///< server -> client: versions accepted
    MatrixRequest = 3,  ///< client -> server: MatrixQuery
    MatrixReply = 4,    ///< server -> client: MatrixResult
    Ping = 5,           ///< client -> server: liveness probe
    Pong = 6,           ///< server -> client: liveness answer
    InfoRequest = 7,    ///< client -> server: ask for ServerInfo
    InfoReply = 8,      ///< server -> client: ServerInfo
    Error = 9,          ///< server -> client: typed failure
    HealthRequest = 10, ///< client -> server: readiness probe
    HealthReply = 11,   ///< server -> client: HealthInfo
    CellsRequest = 12,  ///< router -> shard: resolve a cell batch
    CellsReply = 13,    ///< shard -> router: per-cell stats/failures
};

/** True for type bytes this protocol version defines. */
bool knownMsgType(std::uint8_t type);

enum class ErrCode : std::uint8_t
{
    BadRequest = 1,     ///< frame decoded but the query is invalid
    Overloaded = 2,     ///< session limit reached; retry later
    Deadline = 3,       ///< the request's deadline expired while
                        ///< waiting (the cells keep computing)
    VersionMismatch = 4,///< handshake versions incompatible
    Draining = 5,       ///< server is shutting down; not accepting
                        ///< new requests
    Internal = 6,       ///< unexpected server-side failure
    Stalled = 7,        ///< a cell this request waited on exceeded the
                        ///< watchdog budget; retry later (the owner
                        ///< may still finish and cache it)
    Cancelled = 8,      ///< since DDSN v5: the request's own budget
                        ///< expired (or it was explicitly cancelled)
                        ///< while *its* simulation ran; the partial
                        ///< work was discarded, nothing quarantined
};

/** True for codes a client may retry unchanged after a backoff: the
 *  condition is about the *server's current state* (capacity, drain,
 *  a stalled cell), not about the request itself. */
bool errCodeRetryable(ErrCode code);

/** Human-readable name for an error code ("?" for unknown bytes). */
const char *errCodeName(ErrCode code);

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::string payload;
};

/** Version handshake, sent by the client and echoed by the server.
 *  Every field must match for the session to proceed; the versions
 *  all come from support/version.hh. */
struct Hello
{
    std::uint32_t protocol = 0;
    std::uint32_t traceFormat = 0;
    std::uint32_t storeSchema = 0;
    std::uint32_t fingerprintSchema = 0;

    /** A Hello carrying this build's versions. */
    static Hello current();

    /** True when @p other can talk to us (exact match on all
     *  fields). */
    bool compatible(const Hello &other) const;

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/** Error payload.  Since DDSN v5 it carries a retry hint: how long
 *  the server suggests waiting before retrying a retryable code
 *  (0 = no hint, back off blindly).  Overload sheds derive it from
 *  the admission controller's observed cell-latency EWMA.  The field
 *  trails the v4 layout, and wire::Reader zero-fills past the end
 *  without erroring only when asked — decode() treats a missing
 *  trailer as hint 0, so a v5 reader still understands a v4 frame
 *  seen pre-handshake (the overload shed, which fires before version
 *  negotiation). */
struct ErrorMsg
{
    ErrCode code = ErrCode::Internal;
    std::string message;
    std::uint64_t retryAfterMs = 0;

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/** InfoReply payload: a counters snapshot of the running server. */
struct ServerInfo
{
    Hello versions;
    std::uint32_t jobs = 0;          ///< simulation worker threads
    std::uint64_t cachedCells = 0;   ///< cells resident in memory
    std::uint64_t simulated = 0;     ///< cells computed since start
    std::uint64_t storeHits = 0;     ///< cells served from the store
    std::uint64_t coalesced = 0;     ///< cells single-flighted onto
                                     ///< another request's simulation
    std::uint64_t requestsServed = 0;
    std::uint64_t activeSessions = 0;
    std::uint8_t hasStore = 0;
    std::string storePath;

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/**
 * One cell of the experiment matrix, by name — the wire form of an
 * ExperimentCell (which holds a WorkloadSpec pointer that cannot
 * cross a process boundary).
 */
struct CellRef
{
    std::string workload;   ///< WorkloadSpec name, e.g. "li"
    char config = 'A';      ///< paper configuration letter A..E
    std::uint32_t width = 4;

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/**
 * CellsRequest payload: the router's fan-out unit.  A shard resolves
 * the batch through its single-flight registry exactly like a
 * MatrixRequest's cell set — same store, same watchdog, same
 * quarantine semantics — but replies with raw per-cell SchedStats
 * instead of an aggregated grid, so the router can merge columns
 * owned by different shards into one byte-identical MatrixResult.
 */
struct CellsBatch
{
    std::vector<CellRef> cells;
    /** Since DDSN v5 this is the *remaining* end-to-end budget: the
     *  router copies MatrixQuery::deadlineMs, subtracts its own
     *  queueing/elapsed time per hop (never below a per-shard floor),
     *  and the shard treats it as both its wait bound and its own
     *  simulation cancel deadline.  0 = no budget (forever). */
    std::uint64_t deadlineMs = 0;

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/** One resolved cell in a CellsReply: stats on success, a typed
 *  failure (quarantine) otherwise. */
struct CellOutcome
{
    CellRef cell;
    std::uint8_t ok = 0;    ///< 1: stats valid; 0: failure valid
    SchedStats stats;
    CellFailure failure;

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/** CellsReply payload. */
struct CellsReplyMsg
{
    std::vector<CellOutcome> cells;
    /** This batch's serving counters (simulated/storeHits/coalesced),
     *  summed into the router's MatrixSummary. */
    std::uint64_t simulated = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t coalesced = 0;

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/** Per-shard slice of an aggregated fleet health reply. */
struct ShardHealth
{
    std::uint32_t index = 0;
    /** 0 = serving, 1 = restarting (between generations),
     *  2 = broken (flap breaker tripped; not coming back). */
    std::uint8_t state = 0;
    std::uint64_t generation = 0;   ///< restarts of this shard so far
    std::uint64_t restarts = 0;     ///< unclean deaths restarted
    std::uint64_t stalledCells = 0;
    std::uint64_t quarantinedCells = 0;
    std::uint64_t storeRecords = 0;
    std::uint32_t port = 0;         ///< 0 while down

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/** Names for ShardHealth::state. */
const char *shardStateName(std::uint8_t state);

/** HealthReply payload: the readiness/self-healing view of the server
 *  (InfoReply carries the workload counters; this carries what a
 *  supervisor or operator probes for). */
struct HealthInfo
{
    std::uint64_t uptimeMs = 0;      ///< since this process's Server
    std::uint64_t generation = 0;    ///< supervisor restart count
                                     ///< (0 = unsupervised)
    std::uint64_t liveSessions = 0;
    std::uint64_t quarantinedCells = 0;
    std::uint64_t registryDepth = 0; ///< cells in flight right now
    std::uint64_t stalledCells = 0;  ///< in-flight cells past the
                                     ///< watchdog budget
    std::uint64_t storeRecords = 0;  ///< durable cells in the store
    std::uint64_t watchdogBudgetMs = 0; ///< effective soft budget
                                     ///< (0 = adaptive with no
                                     ///< history yet)
    // Since DDSN v3: mapped-trace residency (--trace-dir /
    // --trace-budget-mb; all zero without a trace dir).
    std::uint64_t traceMappedBytes = 0;   ///< all mapped traces
    std::uint64_t traceResidentBytes = 0; ///< charged, not evicted
    std::uint64_t traceBudgetBytes = 0;   ///< 0 = unlimited
    std::uint64_t traceEvictions = 0;     ///< whole-trace evictions
    // Since DDSN v4: per-shard health when the reply comes from a
    // fleet router (empty from a single server; the scalar fields
    // above then aggregate across shards).
    std::vector<ShardHealth> shards;

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/** The full encoded frame for @p type and @p payload. */
std::string encodeFrame(MsgType type, std::string_view payload);

/**
 * Encode and send one frame.  False when the connection is dead —
 * including when the "net-torn-frame" fault point fires, in which
 * case only a prefix of the frame was sent first (the receiving side
 * then exercises its Torn path).
 */
bool writeFrame(int fd, MsgType type, std::string_view payload);

enum class ReadStatus
{
    Ok,       ///< frame delivered
    Eof,      ///< clean hang-up on a frame boundary
    Torn,     ///< connection died mid-frame
    Bad,      ///< magic/type/length/CRC rejected the frame
    Timeout,  ///< the deadline passed first
};

/**
 * Read one frame.  @p timeout_ms bounds the whole read (-1 = block
 * forever).  On anything but Ok the connection should be dropped;
 * Bad and Torn frames never hand partial payloads to the caller.
 */
ReadStatus readFrame(int fd, Frame &out, int timeout_ms = -1);

} // namespace ddsc::net

#endif // DDSC_NET_PROTOCOL_HH
