#include "client.hh"

namespace ddsc::net
{

namespace
{

const char *
readStatusName(ReadStatus status)
{
    switch (status) {
      case ReadStatus::Ok:      return "ok";
      case ReadStatus::Eof:     return "server closed the connection";
      case ReadStatus::Torn:    return "connection died mid-frame";
      case ReadStatus::Bad:     return "malformed frame from server";
      case ReadStatus::Timeout: return "timed out waiting for reply";
    }
    return "?";
}

} // anonymous namespace

Client::Client(std::uint16_t port, int timeout_ms)
    : fd_(connectLocal(port)), timeoutMs_(timeout_ms)
{
    if (!fd_.valid())
        throw TransportError("cannot connect to 127.0.0.1:" +
                             std::to_string(port) +
                             " (is ddsc-served running?)");
    std::string payload;
    Hello::current().encode(payload);
    const Frame reply = roundTrip(MsgType::Hello, payload,
                                  MsgType::HelloOk, timeoutMs_);
    support::wire::Reader reader(reply.payload);
    if (!serverVersions_.decode(reader))
        throw TransportError("malformed HelloOk payload");
}

MatrixResult
Client::matrix(const MatrixQuery &query)
{
    std::string payload;
    query.encode(payload);
    // The server may legitimately take the whole deadline before
    // replying Deadline; give it that plus slack.  With no deadline
    // the reply waits as long as the simulation takes.
    int wait = timeoutMs_;
    if (query.deadlineMs > 0) {
        const std::uint64_t budget = query.deadlineMs + 2000;
        if (wait < 0 || static_cast<std::uint64_t>(wait) < budget)
            wait = static_cast<int>(budget);
    }
    const Frame reply = roundTrip(MsgType::MatrixRequest, payload,
                                  MsgType::MatrixReply, wait);
    support::wire::Reader reader(reply.payload);
    MatrixResult result;
    if (!result.decode(reader))
        throw TransportError("malformed MatrixReply payload");
    return result;
}

ServerInfo
Client::info()
{
    const Frame reply = roundTrip(MsgType::InfoRequest, {},
                                  MsgType::InfoReply, timeoutMs_);
    support::wire::Reader reader(reply.payload);
    ServerInfo info;
    if (!info.decode(reader))
        throw TransportError("malformed InfoReply payload");
    return info;
}

void
Client::ping()
{
    roundTrip(MsgType::Ping, {}, MsgType::Pong, timeoutMs_);
}

Frame
Client::roundTrip(MsgType request, std::string_view payload,
                  MsgType expected, int timeout_ms)
{
    if (!writeFrame(fd_.get(), request, payload))
        throw TransportError("send failed: connection is dead");
    Frame reply;
    const ReadStatus status =
        readFrame(fd_.get(), reply, timeout_ms);
    if (status != ReadStatus::Ok)
        throw TransportError(readStatusName(status));
    if (reply.type == MsgType::Error) {
        ErrorMsg err;
        support::wire::Reader reader(reply.payload);
        if (!err.decode(reader))
            throw TransportError("malformed Error payload");
        throw ServerError(err.code, err.message);
    }
    if (reply.type != expected)
        throw TransportError("unexpected reply type " +
                             std::to_string(static_cast<unsigned>(
                                 reply.type)));
    return reply;
}

} // namespace ddsc::net
