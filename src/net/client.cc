#include "client.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <random>
#include <thread>

namespace ddsc::net
{

namespace
{

const char *
readStatusName(ReadStatus status)
{
    switch (status) {
      case ReadStatus::Ok:      return "ok";
      case ReadStatus::Eof:     return "server closed the connection";
      case ReadStatus::Torn:    return "connection died mid-frame";
      case ReadStatus::Bad:     return "malformed frame from server";
      case ReadStatus::Timeout: return "timed out waiting for reply";
    }
    return "?";
}

/** Jitter @p delay_ms to 50-100% of itself: shed clients that back
 *  off in lockstep would all reconnect into the same full server.
 *  $DDSC_TEST_SEED replaces the wall-clock seed so chaos tests that
 *  assert retry timing replay the same backoff sequence. */
std::uint64_t
jittered(std::uint64_t delay_ms)
{
    if (delay_ms <= 1)
        return delay_ms;
    thread_local std::uint64_t state = []() -> std::uint64_t {
        if (const char *seed = std::getenv("DDSC_TEST_SEED"))
            return std::strtoull(seed, nullptr, 10) | 1u;
        std::random_device rd;
        // Never zero (xorshift's fixed point).
        return (static_cast<std::uint64_t>(rd()) << 32 | rd()) | 1u;
    }();
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const std::uint64_t half = delay_ms / 2;
    return half + state % (delay_ms - half + 1);
}

} // anonymous namespace

Client::Client(std::uint16_t port, int timeout_ms)
    : timeoutMs_(timeout_ms),
      portProvider_([port]() { return port; })
{
    // Eager and one-shot: the test suite (and any caller without a
    // policy) sees connect-time failures — including an Overloaded
    // shed — from the constructor, exactly as before retries existed.
    connectNow();
}

Client::Client(std::function<std::uint16_t()> port_provider,
               int timeout_ms, const RetryPolicy &policy)
    : timeoutMs_(timeout_ms),
      portProvider_(std::move(port_provider)),
      policy_(policy)
{
}

void
Client::connectNow()
{
    const std::uint16_t port = portProvider_ ? portProvider_() : 0;
    if (port == 0)
        throw TransportError("server port not known yet (port file "
                             "missing or empty?)");
    fd_ = connectLocal(port);
    if (!fd_.valid())
        throw TransportError("cannot connect to 127.0.0.1:" +
                             std::to_string(port) +
                             " (is ddsc-served running?)");
    std::string payload;
    Hello::current().encode(payload);
    const Frame reply = roundTrip(MsgType::Hello, payload,
                                  MsgType::HelloOk, timeoutMs_);
    support::wire::Reader reader(reply.payload);
    if (!serverVersions_.decode(reader)) {
        fd_.reset();
        throw TransportError("malformed HelloOk payload");
    }
}

void
Client::ensureConnected()
{
    if (!fd_.valid())
        connectNow();
}

template <typename Fn>
auto
Client::withRetries(Fn &&attempt)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    std::uint64_t delay = policy_.baseDelayMs;
    for (unsigned tried = 0;; ++tried) {
        std::uint64_t hint = 0;
        try {
            ensureConnected();
            return attempt();
        } catch (const ServerError &e) {
            // A clean typed answer: the connection is synchronized,
            // but on a retryable code (Overloaded, Draining, Stalled)
            // the server wants us gone for now — reconnecting later
            // is cheap and also handles a shed connect, where the
            // server already closed its end.
            if (!errCodeRetryable(e.code) || tried >= policy_.retries)
                throw;
            hint = e.retryAfterMs;
            fd_.reset();
        } catch (const TransportError &) {
            // The stream state is unknown; roundTrip already poisoned
            // the fd (or the connect never succeeded).
            fd_.reset();
            if (tried >= policy_.retries)
                throw;
        }
        // A server-supplied retry hint beats the exponential guess:
        // wait what the shed said, plus a little jitter so hinted
        // clients still spread out.  The doubling schedule is only
        // consumed by hintless failures.
        const std::uint64_t sleep =
            hint > 0 ? hint + jittered(policy_.baseDelayMs)
                     : jittered(delay);
        if (policy_.budgetMs > 0) {
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - start);
            if (static_cast<std::uint64_t>(elapsed.count()) + sleep >
                policy_.budgetMs)
                throw TransportError(
                    "retry budget of " +
                    std::to_string(policy_.budgetMs) +
                    " ms exhausted after " + std::to_string(tried + 1) +
                    " attempts");
        }
        ++retriesUsed_;
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep));
        if (hint == 0)
            delay = std::min(delay * 2, policy_.maxDelayMs);
    }
}

MatrixResult
Client::matrix(const MatrixQuery &query)
{
    std::string payload;
    query.encode(payload);
    // The server may legitimately take the whole deadline before
    // replying Deadline; give it that plus slack, clamped so a huge
    // deadline cannot overflow into a tiny (or negative) poll
    // timeout.  With no deadline the reply waits as long as the
    // simulation takes.
    int wait = timeoutMs_;
    if (query.deadlineMs > 0) {
        const std::uint64_t budget = std::min<std::uint64_t>(
            query.deadlineMs + 2000,
            std::numeric_limits<int>::max());
        if (wait < 0 || static_cast<std::uint64_t>(wait) < budget)
            wait = static_cast<int>(budget);
    }
    return withRetries([&]() {
        const Frame reply = roundTrip(MsgType::MatrixRequest, payload,
                                      MsgType::MatrixReply, wait);
        support::wire::Reader reader(reply.payload);
        MatrixResult result;
        if (!result.decode(reader)) {
            fd_.reset();
            throw TransportError("malformed MatrixReply payload");
        }
        return result;
    });
}

CellsReplyMsg
Client::cells(const CellsBatch &batch)
{
    std::string payload;
    batch.encode(payload);
    // Same deadline slack rule (and overflow clamp) as matrix(): the
    // shard may take the whole deadline before answering Deadline.
    int wait = timeoutMs_;
    if (batch.deadlineMs > 0) {
        const std::uint64_t budget = std::min<std::uint64_t>(
            batch.deadlineMs + 2000,
            std::numeric_limits<int>::max());
        if (wait < 0 || static_cast<std::uint64_t>(wait) < budget)
            wait = static_cast<int>(budget);
    }
    return withRetries([&]() {
        const Frame reply = roundTrip(MsgType::CellsRequest, payload,
                                      MsgType::CellsReply, wait);
        support::wire::Reader reader(reply.payload);
        CellsReplyMsg result;
        if (!result.decode(reader)) {
            fd_.reset();
            throw TransportError("malformed CellsReply payload");
        }
        return result;
    });
}

ServerInfo
Client::info()
{
    return withRetries([&]() {
        const Frame reply = roundTrip(MsgType::InfoRequest, {},
                                      MsgType::InfoReply, timeoutMs_);
        support::wire::Reader reader(reply.payload);
        ServerInfo info;
        if (!info.decode(reader)) {
            fd_.reset();
            throw TransportError("malformed InfoReply payload");
        }
        return info;
    });
}

HealthInfo
Client::health()
{
    return withRetries([&]() {
        const Frame reply = roundTrip(MsgType::HealthRequest, {},
                                      MsgType::HealthReply, timeoutMs_);
        support::wire::Reader reader(reply.payload);
        HealthInfo health;
        if (!health.decode(reader)) {
            fd_.reset();
            throw TransportError("malformed HealthReply payload");
        }
        return health;
    });
}

void
Client::ping()
{
    withRetries([&]() {
        roundTrip(MsgType::Ping, {}, MsgType::Pong, timeoutMs_);
        return 0;
    });
}

Frame
Client::roundTrip(MsgType request, std::string_view payload,
                  MsgType expected, int timeout_ms)
{
    if (!writeFrame(fd_.get(), request, payload)) {
        fd_.reset();
        throw TransportError("send failed: connection is dead");
    }
    Frame reply;
    const ReadStatus status =
        readFrame(fd_.get(), reply, timeout_ms);
    if (status != ReadStatus::Ok) {
        // Poison the connection: after a timeout or torn read the
        // stream may still deliver the old reply later, and a future
        // request would read it as its own answer.  Only a reconnect
        // resynchronizes.
        fd_.reset();
        throw TransportError(readStatusName(status));
    }
    if (reply.type == MsgType::Error) {
        ErrorMsg err;
        support::wire::Reader reader(reply.payload);
        if (!err.decode(reader)) {
            fd_.reset();
            throw TransportError("malformed Error payload");
        }
        throw ServerError(err.code, err.message, err.retryAfterMs);
    }
    if (reply.type != expected) {
        fd_.reset();
        throw TransportError("unexpected reply type " +
                             std::to_string(static_cast<unsigned>(
                                 reply.type)));
    }
    return reply;
}

} // namespace ddsc::net
