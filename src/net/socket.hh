/**
 * @file
 * Minimal RAII TCP plumbing for the serving layer: an owned file
 * descriptor, a localhost listener, and exact send/recv loops with
 * optional deadlines.
 *
 * Everything binds and connects on 127.0.0.1 only — ddsc-served is a
 * local experiment daemon, not an internet service, and keeping the
 * listener loopback-only means no auth story is needed.  Errors are
 * reported by return value (an invalid Fd, false); nothing here
 * throws, so the serving loop can treat every peer failure as "drop
 * the connection" without exception plumbing.
 */

#ifndef DDSC_NET_SOCKET_HH
#define DDSC_NET_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

namespace ddsc::net
{

/** Owned file descriptor: closes on destruction, move-only. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    bool valid() const { return fd_ >= 0; }
    int get() const { return fd_; }

    /** Close now (idempotent). */
    void reset();

    /** Half-close the read side: the peer's next send still lands,
     *  our next recv sees EOF.  This is how the server drains a
     *  session — the in-flight request finishes and replies, then the
     *  request loop reads EOF and exits. */
    void shutdownRead() const;

    /** Shut down both directions (sends FIN) without closing the
     *  descriptor.  Lets a session thread hang up on its peer while
     *  another thread may still hold shutdownRead() on the same fd —
     *  close() here could race that call onto a recycled descriptor. */
    void shutdownBoth() const;

  private:
    int fd_ = -1;
};

/** Listening socket on 127.0.0.1. */
class TcpListener
{
  public:
    /** Bind and listen on 127.0.0.1:@p port (0 = kernel-assigned
     *  ephemeral port; read it back with port()).  Invalid on
     *  failure. */
    static TcpListener bindLocal(std::uint16_t port, int backlog);

    bool valid() const { return fd_.valid(); }
    int fd() const { return fd_.get(); }

    /** The actually-bound port (resolves port 0). */
    std::uint16_t port() const { return port_; }

    /** Accept one connection (blocking).  Invalid Fd on error or
     *  EINTR — the caller's poll loop decides what interrupted it. */
    Fd accept() const;

    /** Stop accepting: close the listening socket. */
    void close() { fd_.reset(); }

  private:
    Fd fd_;
    std::uint16_t port_ = 0;
};

/** Connect to 127.0.0.1:@p port.  Invalid Fd on failure. */
Fd connectLocal(std::uint16_t port);

/** Write all of @p data (handles short writes and EINTR; never raises
 *  SIGPIPE).  False on any error — the connection is then dead. */
bool sendAll(int fd, std::string_view data);

/**
 * Read exactly @p size bytes into @p buf.
 *
 * @param timeout_ms  -1 = block forever, otherwise the whole read
 *        must finish within this budget.
 * @return bytes actually read: @p size on success, less on EOF,
 *         timeout, or error.  (0 with size > 0 means clean EOF before
 *         anything arrived — how the request loop detects a hung-up
 *         or drained peer.)
 */
std::size_t recvExact(int fd, void *buf, std::size_t size,
                      int timeout_ms = -1);

} // namespace ddsc::net

#endif // DDSC_NET_SOCKET_HH
