#include "protocol.hh"

#include "sim/matrix_query.hh"
#include "sim/result_store.hh"
#include "socket.hh"
#include "support/fault.hh"
#include "support/version.hh"

namespace ddsc::net
{

namespace
{

/** Length-prefixed lists in fleet frames are capped so a corrupted
 *  count can never become a giant allocation (matches the matrix
 *  codecs' cap). */
constexpr std::uint32_t kMaxCells = 4096;

} // anonymous namespace

bool
knownMsgType(std::uint8_t type)
{
    return type >= static_cast<std::uint8_t>(MsgType::Hello) &&
           type <= static_cast<std::uint8_t>(MsgType::CellsReply);
}

const char *
errCodeName(ErrCode code)
{
    switch (code) {
      case ErrCode::BadRequest:      return "bad-request";
      case ErrCode::Overloaded:      return "overloaded";
      case ErrCode::Deadline:        return "deadline";
      case ErrCode::VersionMismatch: return "version-mismatch";
      case ErrCode::Draining:        return "draining";
      case ErrCode::Internal:        return "internal";
      case ErrCode::Stalled:         return "stalled";
      case ErrCode::Cancelled:       return "cancelled";
    }
    return "?";
}

bool
errCodeRetryable(ErrCode code)
{
    // BadRequest and VersionMismatch fail the same way forever;
    // Deadline means the *caller's* budget expired (retrying without
    // raising it is the caller's decision, not the transport's), and
    // Cancelled is the same condition observed mid-simulation instead
    // of mid-wait — a retry under the same budget would just cancel
    // again; Internal is a server bug a blind retry would repeat.
    return code == ErrCode::Overloaded || code == ErrCode::Draining ||
           code == ErrCode::Stalled;
}

Hello
Hello::current()
{
    Hello h;
    h.protocol = support::version::kProtocol;
    h.traceFormat = support::version::kTraceFormat;
    h.storeSchema = support::version::kStoreSchema;
    h.fingerprintSchema = support::version::kFingerprintSchema;
    return h;
}

bool
Hello::compatible(const Hello &other) const
{
    return protocol == other.protocol &&
           traceFormat == other.traceFormat &&
           storeSchema == other.storeSchema &&
           fingerprintSchema == other.fingerprintSchema;
}

void
Hello::encode(std::string &out) const
{
    using namespace support::wire;
    putU32(out, protocol);
    putU32(out, traceFormat);
    putU32(out, storeSchema);
    putU32(out, fingerprintSchema);
}

bool
Hello::decode(support::wire::Reader &in)
{
    protocol = in.u32();
    traceFormat = in.u32();
    storeSchema = in.u32();
    fingerprintSchema = in.u32();
    return in.ok();
}

void
ErrorMsg::encode(std::string &out) const
{
    support::wire::putU8(out, static_cast<std::uint8_t>(code));
    support::wire::putString(out, message);
    support::wire::putU64(out, retryAfterMs);
}

bool
ErrorMsg::decode(support::wire::Reader &in)
{
    code = static_cast<ErrCode>(in.u8());
    message = in.str();
    if (!in.ok())
        return false;
    // The retry hint trails the v4 layout; a v4 frame (possible
    // pre-handshake, where the overload shed is written before any
    // version negotiation) simply ends here and means "no hint".  A
    // frame ending 1-7 bytes after the message is neither layout —
    // a torn trailer — and is rejected, not rounded down to v4.
    const std::size_t rem = in.remaining();
    if (rem >= 8) {
        retryAfterMs = in.u64();
    } else if (rem == 0) {
        retryAfterMs = 0;
    } else {
        return false;
    }
    return in.ok();
}

void
ServerInfo::encode(std::string &out) const
{
    using namespace support::wire;
    versions.encode(out);
    putU32(out, jobs);
    putU64(out, cachedCells);
    putU64(out, simulated);
    putU64(out, storeHits);
    putU64(out, coalesced);
    putU64(out, requestsServed);
    putU64(out, activeSessions);
    putU8(out, hasStore);
    putString(out, storePath);
}

bool
ServerInfo::decode(support::wire::Reader &in)
{
    if (!versions.decode(in))
        return false;
    jobs = in.u32();
    cachedCells = in.u64();
    simulated = in.u64();
    storeHits = in.u64();
    coalesced = in.u64();
    requestsServed = in.u64();
    activeSessions = in.u64();
    hasStore = in.u8();
    storePath = in.str();
    return in.ok();
}

void
CellRef::encode(std::string &out) const
{
    using namespace support::wire;
    putString(out, workload);
    putU8(out, static_cast<std::uint8_t>(config));
    putU32(out, width);
}

bool
CellRef::decode(support::wire::Reader &in)
{
    workload = in.str();
    config = static_cast<char>(in.u8());
    width = in.u32();
    return in.ok();
}

void
CellsBatch::encode(std::string &out) const
{
    using namespace support::wire;
    putU32(out, static_cast<std::uint32_t>(cells.size()));
    for (const CellRef &cell : cells)
        cell.encode(out);
    putU64(out, deadlineMs);
}

bool
CellsBatch::decode(support::wire::Reader &in)
{
    const std::uint32_t n = in.u32();
    if (!in.ok() || n > kMaxCells)
        return false;
    cells.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        CellRef cell;
        if (!cell.decode(in))
            return false;
        cells.push_back(std::move(cell));
    }
    deadlineMs = in.u64();
    return in.ok();
}

void
CellOutcome::encode(std::string &out) const
{
    using namespace support::wire;
    cell.encode(out);
    putU8(out, ok);
    if (ok)
        encodeSchedStats(out, stats);
    else
        encodeCellFailure(out, failure);
}

bool
CellOutcome::decode(support::wire::Reader &in)
{
    if (!cell.decode(in))
        return false;
    ok = in.u8();
    if (!in.ok())
        return false;
    if (ok)
        return decodeSchedStats(in, stats);
    return decodeCellFailure(in, failure);
}

void
CellsReplyMsg::encode(std::string &out) const
{
    using namespace support::wire;
    putU32(out, static_cast<std::uint32_t>(cells.size()));
    for (const CellOutcome &cell : cells)
        cell.encode(out);
    putU64(out, simulated);
    putU64(out, storeHits);
    putU64(out, coalesced);
}

bool
CellsReplyMsg::decode(support::wire::Reader &in)
{
    const std::uint32_t n = in.u32();
    if (!in.ok() || n > kMaxCells)
        return false;
    cells.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        CellOutcome cell;
        if (!cell.decode(in))
            return false;
        cells.push_back(std::move(cell));
    }
    simulated = in.u64();
    storeHits = in.u64();
    coalesced = in.u64();
    return in.ok();
}

void
ShardHealth::encode(std::string &out) const
{
    using namespace support::wire;
    putU32(out, index);
    putU8(out, state);
    putU64(out, generation);
    putU64(out, restarts);
    putU64(out, stalledCells);
    putU64(out, quarantinedCells);
    putU64(out, storeRecords);
    putU32(out, port);
}

bool
ShardHealth::decode(support::wire::Reader &in)
{
    index = in.u32();
    state = in.u8();
    generation = in.u64();
    restarts = in.u64();
    stalledCells = in.u64();
    quarantinedCells = in.u64();
    storeRecords = in.u64();
    port = in.u32();
    return in.ok();
}

const char *
shardStateName(std::uint8_t state)
{
    switch (state) {
      case 0:   return "serving";
      case 1:   return "restarting";
      case 2:   return "broken";
    }
    return "?";
}

void
HealthInfo::encode(std::string &out) const
{
    using namespace support::wire;
    putU64(out, uptimeMs);
    putU64(out, generation);
    putU64(out, liveSessions);
    putU64(out, quarantinedCells);
    putU64(out, registryDepth);
    putU64(out, stalledCells);
    putU64(out, storeRecords);
    putU64(out, watchdogBudgetMs);
    putU64(out, traceMappedBytes);
    putU64(out, traceResidentBytes);
    putU64(out, traceBudgetBytes);
    putU64(out, traceEvictions);
    putU32(out, static_cast<std::uint32_t>(shards.size()));
    for (const ShardHealth &shard : shards)
        shard.encode(out);
}

bool
HealthInfo::decode(support::wire::Reader &in)
{
    uptimeMs = in.u64();
    generation = in.u64();
    liveSessions = in.u64();
    quarantinedCells = in.u64();
    registryDepth = in.u64();
    stalledCells = in.u64();
    storeRecords = in.u64();
    watchdogBudgetMs = in.u64();
    traceMappedBytes = in.u64();
    traceResidentBytes = in.u64();
    traceBudgetBytes = in.u64();
    traceEvictions = in.u64();
    const std::uint32_t n = in.u32();
    if (!in.ok() || n > kMaxCells)
        return false;
    shards.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        ShardHealth shard;
        if (!shard.decode(in))
            return false;
        shards.push_back(shard);
    }
    return in.ok();
}

std::string
encodeFrame(MsgType type, std::string_view payload)
{
    using namespace support::wire;
    std::string frame;
    frame.reserve(kFrameHeaderSize + payload.size());
    putU32(frame, kMagic);
    putU8(frame, static_cast<std::uint8_t>(type));
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    putU32(frame, crc32(payload.data(), payload.size()));
    frame.append(payload);
    return frame;
}

bool
writeFrame(int fd, MsgType type, std::string_view payload)
{
    const std::string frame = encodeFrame(type, payload);
    if (support::faultShouldFire("net-torn-frame")) {
        // Die mid-send: the peer gets a prefix and must handle the
        // torn tail.  Half the frame always cuts inside the header or
        // payload, never on a frame boundary.
        sendAll(fd, std::string_view(frame).substr(0, frame.size() / 2));
        return false;
    }
    return sendAll(fd, frame);
}

ReadStatus
readFrame(int fd, Frame &out, int timeout_ms)
{
    using namespace support::wire;
    char header[kFrameHeaderSize];
    const std::size_t got =
        recvExact(fd, header, sizeof header, timeout_ms);
    if (got == 0)
        return ReadStatus::Eof;
    if (got < sizeof header)
        return timeout_ms >= 0 ? ReadStatus::Timeout : ReadStatus::Torn;

    Reader reader(std::string_view(header, sizeof header));
    const std::uint32_t magic = reader.u32();
    const std::uint8_t type = reader.u8();
    const std::uint32_t len = reader.u32();
    const std::uint32_t crc = reader.u32();
    if (magic != kMagic || !knownMsgType(type) ||
        len > kMaxFramePayload)
        return ReadStatus::Bad;

    std::string payload(len, '\0');
    if (len > 0) {
        const std::size_t body =
            recvExact(fd, payload.data(), len, timeout_ms);
        if (body < len)
            return timeout_ms >= 0 ? ReadStatus::Timeout
                                   : ReadStatus::Torn;
    }
    if (crc32(payload.data(), payload.size()) != crc)
        return ReadStatus::Bad;

    out.type = static_cast<MsgType>(type);
    out.payload = std::move(payload);
    return ReadStatus::Ok;
}

} // namespace ddsc::net
