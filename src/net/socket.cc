#include "socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ddsc::net
{

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Fd::shutdownRead() const
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RD);
}

void
Fd::shutdownBoth() const
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

TcpListener
TcpListener::bindLocal(std::uint16_t port, int backlog)
{
    TcpListener listener;
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        return listener;

    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        return listener;
    if (::listen(fd.get(), backlog) != 0)
        return listener;

    socklen_t len = sizeof addr;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return listener;

    listener.fd_ = std::move(fd);
    listener.port_ = ntohs(addr.sin_port);
    return listener;
}

Fd
TcpListener::accept() const
{
    if (!fd_.valid())
        return Fd();
    return Fd(::accept4(fd_.get(), nullptr, nullptr, SOCK_CLOEXEC));
}

Fd
connectLocal(std::uint16_t port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        return fd;

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        return Fd();
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

bool
sendAll(int fd, std::string_view data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::size_t
recvExact(int fd, void *buf, std::size_t size, int timeout_ms)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        timeout_ms < 0 ? Clock::time_point::max()
                       : Clock::now() + std::chrono::milliseconds(
                                            timeout_ms);
    std::size_t got = 0;
    while (got < size) {
        if (timeout_ms >= 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (left <= 0)
                return got;
            pollfd pfd{fd, POLLIN, 0};
            const int ready =
                ::poll(&pfd, 1, static_cast<int>(left));
            if (ready < 0 && errno == EINTR)
                continue;
            if (ready <= 0)
                return got;
        }
        const ssize_t n = ::recv(fd, static_cast<char *>(buf) + got,
                                 size - got, 0);
        if (n == 0)
            return got;            // peer hung up
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return got;
        }
        got += static_cast<std::size_t>(n);
    }
    return got;
}

} // namespace ddsc::net
