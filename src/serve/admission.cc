#include "admission.hh"

#include <algorithm>
#include <chrono>

namespace ddsc::serve
{

namespace
{

/** Queue-wait estimate per request before any history exists: new
 *  servers shed with a small, deterministic hint instead of 0. */
constexpr std::uint64_t kDefaultLatencyMs = 50;

/** Bounds on the advertised retry hint: never so small the client
 *  busy-loops, never so large a transient spike parks clients for
 *  minutes. */
constexpr std::uint64_t kMinHintMs = 10;
constexpr std::uint64_t kMaxHintMs = 5000;

} // anonymous namespace

std::uint64_t
AdmissionController::estimatedWaitLocked(std::size_t pos) const
{
    const double per =
        ewmaMs_ > 0.0 ? ewmaMs_
                      : static_cast<double>(kDefaultLatencyMs);
    return static_cast<std::uint64_t>(per *
                                      static_cast<double>(pos + 1));
}

AdmissionDecision
AdmissionController::shedLocked(const std::string &reason)
{
    ++shedTotal_;
    AdmissionDecision d;
    d.admitted = false;
    d.reason = reason;
    d.retryAfterMs = std::clamp(estimatedWaitLocked(queue_.size()),
                                kMinHintMs, kMaxHintMs);
    return d;
}

AdmissionDecision
AdmissionController::admit(std::uint64_t conn_id,
                           std::uint64_t budget_ms, bool cached)
{
    std::unique_lock<std::mutex> lock(mutex_);

    if (opts_.perConnInflight > 0 &&
        connInflight_[conn_id] >= opts_.perConnInflight) {
        return shedLocked(
            "connection already has " +
            std::to_string(connInflight_[conn_id]) +
            " requests in flight (cap " +
            std::to_string(opts_.perConnInflight) + ")");
    }

    // Fast path: a free slot and nobody queued ahead of us.
    if (active_ < opts_.maxActive && queue_.empty()) {
        ++active_;
        ++connInflight_[conn_id];
        AdmissionDecision d;
        d.admitted = true;
        return d;
    }

    if (queue_.size() >= opts_.queueDepth) {
        // Saturated.  Brownout: a request the cache can answer needs
        // no simulation slot — admit it past the queue rather than
        // shed free goodput.
        if (opts_.brownout && cached) {
            ++brownoutServed_;
            ++connInflight_[conn_id];
            AdmissionDecision d;
            d.admitted = true;
            d.viaBrownout = true;
            return d;
        }
        return shedLocked("admission queue full (" +
                          std::to_string(opts_.queueDepth) +
                          " waiting, " + std::to_string(active_) +
                          " active)");
    }

    // Queue-deadline eviction: shed now if the budget cannot survive
    // the estimated wait — an immediate typed answer with a priced
    // retry beats a guaranteed Deadline after holding a queue slot.
    if (budget_ms > 0) {
        const std::uint64_t wait = estimatedWaitLocked(queue_.size());
        if (wait > budget_ms) {
            ++queueEvictions_;
            return shedLocked(
                "budget of " + std::to_string(budget_ms) +
                " ms cannot survive an estimated " +
                std::to_string(wait) + " ms queue wait");
        }
    }

    const std::uint64_t ticket = nextTicket_++;
    queue_.push_back(ticket);
    const auto turn = [&]() {
        return !queue_.empty() && queue_.front() == ticket &&
               active_ < opts_.maxActive;
    };
    bool ok = true;
    if (budget_ms > 0) {
        ok = cv_.wait_for(lock, std::chrono::milliseconds(budget_ms),
                          turn);
    } else {
        cv_.wait(lock, turn);
    }
    if (!ok) {
        queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
        // Our departure may make the next ticket the front.
        cv_.notify_all();
        ++queueEvictions_;
        return shedLocked("budget of " + std::to_string(budget_ms) +
                          " ms expired waiting in the admission "
                          "queue");
    }
    queue_.pop_front();
    ++active_;
    ++connInflight_[conn_id];
    AdmissionDecision d;
    d.admitted = true;
    return d;
}

void
AdmissionController::release(std::uint64_t conn_id,
                             const AdmissionDecision &d,
                             std::uint64_t service_ms)
{
    if (!d.admitted)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = connInflight_.find(conn_id);
    if (it != connInflight_.end() && it->second > 0 &&
        --it->second == 0)
        connInflight_.erase(it);
    if (service_ms > 0) {
        ewmaMs_ = ewmaMs_ <= 0.0
                      ? static_cast<double>(service_ms)
                      : 0.8 * ewmaMs_ +
                            0.2 * static_cast<double>(service_ms);
    }
    if (!d.viaBrownout) {
        --active_;
        cv_.notify_all();
    }
}

std::uint64_t
AdmissionController::retryHintMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::clamp(estimatedWaitLocked(queue_.size()), kMinHintMs,
                      kMaxHintMs);
}

std::uint64_t
AdmissionController::shedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shedTotal_;
}

std::uint64_t
AdmissionController::brownoutServed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return brownoutServed_;
}

std::uint64_t
AdmissionController::queueEvictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queueEvictions_;
}

std::size_t
AdmissionController::activeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return active_;
}

std::size_t
AdmissionController::queueLength() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

} // namespace ddsc::serve
