#include "router.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <poll.h>
#include <unistd.h>

#include "core/config.hh"
#include "sim/matrix_query.hh"
#include "support/logging.hh"
#include "support/portfile.hh"
#include "support/shutdown.hh"

namespace ddsc::serve
{

namespace
{

constexpr int kHandshakeTimeoutMs = 30000;

/** Per-shard health/info probes answer from memory; a shard that
 *  cannot do so within this budget counts as restarting. */
constexpr int kProbeTimeoutMs = 2000;

bool
sendError(int fd, net::ErrCode code, const std::string &message)
{
    net::ErrorMsg err;
    err.code = code;
    err.message = message;
    std::string payload;
    err.encode(payload);
    return net::writeFrame(fd, net::MsgType::Error, payload);
}

/** ServerError::what() leads with "code: "; strip it so re-wrapping
 *  the message in a new typed error does not stack prefixes. */
std::string
stripCodePrefix(net::ErrCode code, const std::string &what)
{
    const std::string prefix = std::string(errCodeName(code)) + ": ";
    if (what.rfind(prefix, 0) == 0)
        return what.substr(prefix.size());
    return what;
}

std::string
cellRefKey(const net::CellRef &ref)
{
    return ref.workload + "/" + std::string(1, ref.config) + "/" +
           std::to_string(ref.width);
}

} // anonymous namespace

unsigned
shardForCell(char config, unsigned width, std::size_t shard_count)
{
    ddsc_assert(shard_count > 0, "empty fleet");
    // FNV-1a over the paper machine's fingerprint: the same identity
    // that keys the result store decides placement, so a shard's
    // store holds exactly its own columns.
    const std::string fp =
        MachineConfig::paper(config, width).fingerprint();
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : fp) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return static_cast<unsigned>(h % shard_count);
}

Router::Router(const RouterOptions &opts, FleetState &fleet)
    : opts_(opts), fleet_(fleet)
{
    ddsc_assert(fleet_.count() > 0, "router needs at least one shard");
    listener_ = net::TcpListener::bindLocal(opts_.port, opts_.backlog);
    if (::pipe2(stopPipe_, O_NONBLOCK | O_CLOEXEC) != 0)
        ddsc_fatal("router: pipe2 failed: %s", std::strerror(errno));
}

Router::~Router()
{
    for (std::unique_ptr<Slot> &slot : sessions_) {
        if (slot->thread.joinable())
            slot->thread.join();
    }
    for (const int fd : stopPipe_) {
        if (fd >= 0)
            ::close(fd);
    }
}

void
Router::run()
{
    while (!draining_.load()) {
        reapSessions();

        pollfd fds[3];
        nfds_t nfds = 0;
        const std::size_t listenerSlot = nfds;
        fds[nfds++] = {listener_.fd(), POLLIN, 0};
        if (stopPipe_[0] >= 0)
            fds[nfds++] = {stopPipe_[0], POLLIN, 0};
        const int shutdownFd = support::shutdownFd();
        if (shutdownFd >= 0)
            fds[nfds++] = {shutdownFd, POLLIN, 0};

        const int ready = ::poll(fds, nfds, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        bool stopRequested = false;
        for (nfds_t i = 0; i < nfds; ++i) {
            if (i != listenerSlot && (fds[i].revents & POLLIN))
                stopRequested = true;
        }
        if (stopRequested || support::shutdownRequested())
            break;

        if (!(fds[listenerSlot].revents & POLLIN))
            continue;
        net::Fd conn = listener_.accept();
        if (!conn.valid())
            continue;

        reapSessions();
        if (liveSessions() >= opts_.maxSessions) {
            sendError(conn.get(), net::ErrCode::Overloaded,
                      "router at capacity (" +
                          std::to_string(opts_.maxSessions) +
                          " sessions); retry shortly");
            continue;
        }

        auto slot = std::make_unique<Slot>();
        slot->fd = std::move(conn);
        Slot *raw = slot.get();
        activeSessions_.fetch_add(1);
        slot->thread = std::thread([this, raw]() {
            serveConnection(*raw);
            // FIN now, reap later — same split as serve::Server.
            raw->fd.shutdownBoth();
            activeSessions_.fetch_sub(1);
            raw->done.store(true);
        });
        sessions_.push_back(std::move(slot));
    }

    draining_.store(true);
    listener_.close();
    for (std::unique_ptr<Slot> &slot : sessions_) {
        if (!slot->done.load())
            slot->fd.shutdownRead();
    }
    for (std::unique_ptr<Slot> &slot : sessions_) {
        if (slot->thread.joinable())
            slot->thread.join();
    }
    sessions_.clear();
}

void
Router::stop()
{
    if (stopPipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(stopPipe_[1], &byte, 1);
    } else {
        draining_.store(true);
    }
}

void
Router::serveConnection(Slot &slot)
{
    const int fd = slot.fd.get();

    net::Frame frame;
    if (net::readFrame(fd, frame, kHandshakeTimeoutMs) !=
            net::ReadStatus::Ok ||
        frame.type != net::MsgType::Hello)
        return;
    net::Hello theirs;
    {
        support::wire::Reader reader(frame.payload);
        if (!theirs.decode(reader)) {
            sendError(fd, net::ErrCode::BadRequest, "malformed Hello");
            return;
        }
    }
    const net::Hello ours = net::Hello::current();
    if (!ours.compatible(theirs)) {
        sendError(fd, net::ErrCode::VersionMismatch,
                  "client speaks protocol " +
                      std::to_string(theirs.protocol) +
                      "; router has " + std::to_string(ours.protocol));
        return;
    }
    std::string hello;
    ours.encode(hello);
    if (!net::writeFrame(fd, net::MsgType::HelloOk, hello))
        return;

    for (;;) {
        const net::ReadStatus status = net::readFrame(fd, frame, -1);
        if (status != net::ReadStatus::Ok)
            return;
        switch (frame.type) {
          case net::MsgType::Ping:
            if (!net::writeFrame(fd, net::MsgType::Pong, {}))
                return;
            break;
          case net::MsgType::InfoRequest: {
            std::string payload;
            infoSnapshot().encode(payload);
            if (!net::writeFrame(fd, net::MsgType::InfoReply, payload))
                return;
            break;
          }
          case net::MsgType::HealthRequest: {
            std::string payload;
            healthSnapshot().encode(payload);
            if (!net::writeFrame(fd, net::MsgType::HealthReply,
                                 payload))
                return;
            break;
          }
          case net::MsgType::MatrixRequest:
            if (!handleMatrix(fd, frame))
                return;
            break;
          default:
            // CellsRequest is a shard-side verb; a client sending it
            // to the router is confused.
            return;
        }
    }
}

bool
Router::handleMatrix(int fd, const net::Frame &frame)
{
    // Budget accounting starts the moment the frame is in hand:
    // everything from here on — decode, validation, fan-out — spends
    // the client's end-to-end budget.
    const std::chrono::steady_clock::time_point arrival =
        std::chrono::steady_clock::now();
    MatrixQuery query;
    support::wire::Reader reader(frame.payload);
    if (!query.decode(reader))
        return sendError(fd, net::ErrCode::BadRequest,
                         "malformed MatrixRequest payload");
    std::string why;
    if (!query.validate(&why))
        return sendError(fd, net::ErrCode::BadRequest, why);
    if (draining_.load())
        return sendError(fd, net::ErrCode::Draining,
                         "router is draining; retry elsewhere");

    MatrixResult result;
    try {
        result = routeMatrix(query, arrival);
    } catch (const net::ServerError &e) {
        // Deadline/Stalled/Cancelled propagated from a shard (or the
        // pre-fan-out budget check), already typed.
        return sendError(fd, e.code,
                         stripCodePrefix(e.code, e.what()));
    } catch (const std::exception &e) {
        return sendError(fd, net::ErrCode::Internal, e.what());
    }

    std::string payload;
    result.encode(payload);
    if (!net::writeFrame(fd, net::MsgType::MatrixReply, payload))
        return false;
    requestsServed_.fetch_add(1);
    return true;
}

MatrixResult
Router::routeMatrix(const MatrixQuery &query,
                    std::chrono::steady_clock::time_point arrival)
    const
{
    const std::size_t K = fleet_.count();
    const std::vector<ExperimentCell> cells = query.cells();

    // v5 budget decrement: forward what is *left* of the end-to-end
    // budget, not the original figure — each hop spends from the same
    // purse.  A request already out of budget is answered with the
    // typed Deadline here, before any shard burns work on it; a still
    // viable one is floored so routing overhead cannot starve it.
    std::uint64_t forwarded = 0;
    if (query.deadlineMs > 0) {
        const std::uint64_t elapsed = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - arrival)
                .count());
        if (elapsed >= query.deadlineMs)
            throw net::ServerError(
                net::ErrCode::Deadline,
                "budget of " + std::to_string(query.deadlineMs) +
                    " ms was exhausted at the router before fan-out");
        forwarded = std::max(query.deadlineMs - elapsed, kShardFloorMs);
    }

    std::vector<net::CellsBatch> batches(K);
    for (const ExperimentCell &cell : cells) {
        net::CellRef ref;
        ref.workload = cell.spec->name;
        ref.config = cell.config;
        ref.width = cell.width;
        batches[shardForCell(cell.config, cell.width, K)]
            .cells.push_back(std::move(ref));
    }

    // Fan out: one thread per owning shard, each with its own client
    // so a retry against one shard's next generation never blocks the
    // others.  A shard-level failure degrades to per-cell typed
    // failures below instead of failing the whole request.
    struct ShardOutcome
    {
        bool hasReply = false;
        net::CellsReplyMsg reply;
        bool propagate = false;     ///< typed Deadline/Stalled
        net::ErrCode code = net::ErrCode::Internal;
        std::string error;
    };
    std::vector<ShardOutcome> outcomes(K);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < K; ++i) {
        if (batches[i].cells.empty())
            continue;
        batches[i].deadlineMs = forwarded;
        threads.emplace_back([this, i, &batches, &outcomes]() {
            ShardOutcome &out = outcomes[i];
            const ShardSlot &slot = *fleet_.shards[i];
            if (slot.broken.load()) {
                out.error = "shard " + std::to_string(i) +
                            " is broken (restart limit hit)";
                return;
            }
            try {
                net::Client client(
                    [&slot]() {
                        return support::readPortFile(slot.portFile);
                    },
                    opts_.shardTimeoutMs, opts_.retry);
                out.reply = client.cells(batches[i]);
                out.hasReply = true;
            } catch (const net::ServerError &e) {
                if (e.code == net::ErrCode::Deadline ||
                    e.code == net::ErrCode::Stalled ||
                    e.code == net::ErrCode::Cancelled) {
                    // Same retry semantics as a single server: the
                    // client decides whether to wait longer (or, for
                    // Cancelled, to come back with a bigger budget).
                    out.propagate = true;
                    out.code = e.code;
                    out.error = stripCodePrefix(e.code, e.what());
                } else {
                    out.error = "shard " + std::to_string(i) + ": " +
                                e.what();
                }
            } catch (const std::exception &e) {
                out.error = "shard " + std::to_string(i) +
                            " unreachable: " + e.what();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    for (const ShardOutcome &out : outcomes) {
        if (out.propagate)
            throw net::ServerError(out.code, out.error);
    }

    // Index the shard answers by cell key; anything a shard failed
    // (or never answered) becomes a typed per-cell failure that
    // aggregates as n/a — the quarantine semantics, one level up.
    std::map<std::string, SchedStats> stats;
    std::map<std::string, CellFailure> failed;
    for (std::size_t i = 0; i < K; ++i) {
        const ShardOutcome &out = outcomes[i];
        if (batches[i].cells.empty())
            continue;
        if (out.hasReply) {
            for (const net::CellOutcome &cell : out.reply.cells) {
                const std::string key = cellRefKey(cell.cell);
                if (cell.ok)
                    stats.emplace(key, cell.stats);
                else
                    failed.emplace(key, cell.failure);
            }
        } else {
            for (const net::CellRef &ref : batches[i].cells) {
                const std::string key = cellRefKey(ref);
                failed.emplace(key,
                               CellFailure{key, out.error, 0});
            }
        }
    }

    MatrixResult result = aggregateMatrixResult(
        query,
        [&stats, &failed](const WorkloadSpec &spec, char config,
                          unsigned width) -> const SchedStats & {
            const std::string key = spec.name + "/" +
                                    std::string(1, config) + "/" +
                                    std::to_string(width);
            const auto hit = stats.find(key);
            if (hit != stats.end())
                return hit->second;
            const auto bad = failed.find(key);
            if (bad != failed.end())
                throw CellQuarantined(bad->second);
            // A shard reply that omitted a requested cell is a shard
            // bug; fail the cell, not the sweep.
            throw CellQuarantined(
                CellFailure{key, "missing from shard reply", 0});
        });
    for (const ShardOutcome &out : outcomes) {
        if (!out.hasReply)
            continue;
        result.summary.simulated += out.reply.simulated;
        result.summary.storeHits += out.reply.storeHits;
        result.summary.coalesced += out.reply.coalesced;
    }
    return result;
}

net::HealthInfo
Router::healthSnapshot() const
{
    using std::chrono::duration_cast;
    using std::chrono::milliseconds;
    net::HealthInfo health;
    health.uptimeMs = static_cast<std::uint64_t>(
        duration_cast<milliseconds>(std::chrono::steady_clock::now() -
                                    started_)
            .count());
    health.liveSessions = activeSessions_.load();
    for (std::size_t i = 0; i < fleet_.count(); ++i) {
        const ShardSlot &slot = *fleet_.shards[i];
        net::ShardHealth shard;
        shard.index = static_cast<std::uint32_t>(i);
        shard.generation = slot.generation.load();
        shard.restarts = slot.restarts.load();
        if (slot.broken.load()) {
            shard.state = 2;
        } else {
            const std::uint16_t port =
                support::readPortFile(slot.portFile);
            shard.state = 1;    // until the probe answers
            if (port != 0) {
                try {
                    net::Client probe([port]() { return port; },
                                      kProbeTimeoutMs, {});
                    const net::HealthInfo h = probe.health();
                    shard.state = 0;
                    shard.port = port;
                    shard.stalledCells = h.stalledCells;
                    shard.quarantinedCells = h.quarantinedCells;
                    shard.storeRecords = h.storeRecords;
                    health.quarantinedCells += h.quarantinedCells;
                    health.registryDepth += h.registryDepth;
                    health.stalledCells += h.stalledCells;
                    health.storeRecords += h.storeRecords;
                    health.traceMappedBytes += h.traceMappedBytes;
                    health.traceResidentBytes += h.traceResidentBytes;
                    health.traceBudgetBytes += h.traceBudgetBytes;
                    health.traceEvictions += h.traceEvictions;
                } catch (const std::exception &) {
                    // Between generations (or mid-crash): restarting.
                }
            }
        }
        health.shards.push_back(shard);
    }
    return health;
}

net::ServerInfo
Router::infoSnapshot() const
{
    net::ServerInfo info;
    info.versions = net::Hello::current();
    info.requestsServed = requestsServed_.load();
    info.activeSessions = activeSessions_.load();
    info.hasStore = opts_.storeRoot.empty() ? 0 : 1;
    info.storePath = opts_.storeRoot;
    for (std::size_t i = 0; i < fleet_.count(); ++i) {
        const ShardSlot &slot = *fleet_.shards[i];
        if (slot.broken.load())
            continue;
        const std::uint16_t port = support::readPortFile(slot.portFile);
        if (port == 0)
            continue;
        try {
            net::Client probe([port]() { return port; },
                              kProbeTimeoutMs, {});
            const net::ServerInfo shard = probe.info();
            info.jobs += shard.jobs;
            info.cachedCells += shard.cachedCells;
            info.simulated += shard.simulated;
            info.storeHits += shard.storeHits;
            info.coalesced += shard.coalesced;
        } catch (const std::exception &) {
        }
    }
    return info;
}

void
Router::reapSessions()
{
    for (std::size_t i = 0; i < sessions_.size();) {
        if (sessions_[i]->done.load()) {
            if (sessions_[i]->thread.joinable())
                sessions_[i]->thread.join();
            sessions_.erase(sessions_.begin() +
                            static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
}

std::size_t
Router::liveSessions() const
{
    std::size_t live = 0;
    for (const std::unique_ptr<Slot> &slot : sessions_) {
        if (!slot->done.load())
            ++live;
    }
    return live;
}

} // namespace ddsc::serve
