#include "registry.hh"

#include <chrono>
#include <set>

namespace ddsc::serve
{

namespace
{

std::uint64_t
ageMsOf(std::chrono::steady_clock::time_point start,
        std::chrono::steady_clock::time_point now)
{
    using std::chrono::duration_cast;
    using std::chrono::milliseconds;
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(now - start).count());
}

} // namespace

std::string
CellRegistry::flightKey(const ExperimentCell &cell)
{
    // Cell coordinates alone would collide if two drivers with
    // different machines or traces ever shared a registry; folding in
    // the fingerprint and trace digest makes the key self-describing.
    const MachineConfig config =
        MachineConfig::paper(cell.config, cell.width);
    return cell.spec->name + "/" + std::string(1, cell.config) + "/" +
           std::to_string(cell.width) + "|" + config.fingerprint() +
           "|" + std::to_string(driver_.traceDigest(*cell.spec));
}

ResolveOutcome
CellRegistry::resolve(const std::vector<ExperimentCell> &cells,
                      std::uint64_t deadline_ms,
                      const support::CancelToken &token)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(deadline_ms);

    ResolveOutcome out;

    // Keys first, outside the lock: the first flightKey() for a
    // workload materializes and digests its trace.
    std::vector<std::string> keys;
    keys.reserve(cells.size());
    for (const ExperimentCell &cell : cells)
        keys.push_back(flightKey(cell));

    auto cacheKeyOf = [](const ExperimentCell &cell) {
        return cell.spec->name + "/" + std::string(1, cell.config) +
               "/" + std::to_string(cell.width);
    };

    // Every flight this request claims simulates under its own child
    // token: the request's deadline (or an explicit cancel, or the
    // watchdog's cancel rung) stops exactly these flights.  A null
    // request token still yields a live per-flight token so the
    // watchdog can reclaim a stalled flight nobody is bounding.
    auto flightToken = [&]() {
        return token.valid() ? token.child()
                             : support::CancelToken::make();
    };

    // Claim every unresolved cell nobody else is flying.
    std::vector<ExperimentCell> claimed;
    std::vector<std::string> claimedKeys;
    std::vector<support::CancelToken> claimedTokens;
    std::vector<std::size_t> waitFor;   // indexes into cells/keys
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Stalled flights fail the whole request up front, before it
        // claims anything: while the stuck owner is still in flight,
        // "the cell is quarantined" (hard budget) must read as the
        // typed, retryable Stalled — the owner may yet publish and
        // clear the quarantine — not as a silent n/a aggregation.
        // Checked before any claim so a throw leaks no owned flights.
        for (const std::string &key : keys) {
            const auto flight = inflight_.find(key);
            if (flight != inflight_.end() && flight->second.stalled)
                throw CellStalled(
                    flight->second.cacheKey,
                    ageMsOf(flight->second.start, Clock::now()),
                    flight->second.budgetMs);
        }
        std::set<std::string> mine;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const ExperimentCell &cell = cells[i];
            if (driver_.cellResolved(*cell.spec, cell.config,
                                     cell.width))
                continue;
            if (mine.count(keys[i]))
                continue;
            if (inflight_.count(keys[i])) {
                ++out.coalesced;
                ++coalescedTotal_;
                waitFor.push_back(i);
                continue;
            }
            support::CancelToken flight_token = flightToken();
            inflight_.emplace(keys[i],
                              Flight{cacheKeyOf(cell), Clock::now(),
                                     flight_token});
            mine.insert(keys[i]);
            claimed.push_back(cell);
            claimedKeys.push_back(keys[i]);
            claimedTokens.push_back(std::move(flight_token));
        }
    }

    auto release = [&](const std::vector<std::string> &batch) {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const std::string &key : batch)
            inflight_.erase(key);
        cv_.notify_all();
    };

    if (!claimed.empty()) {
        try {
            driver_.prefetch(claimed, claimedTokens);
        } catch (...) {
            release(claimedKeys);
            throw;
        }
        release(claimedKeys);
        // prefetch() leaves a cancelled cell unresolved (neither
        // cached nor quarantined) and returns normally; surface it
        // here as the typed CellCancelled.  Claims are already
        // released, so siblings and later requests are unaffected.
        for (std::size_t c = 0; c < claimed.size(); ++c) {
            const ExperimentCell &cell = claimed[c];
            if (claimedTokens[c].cancelled() &&
                !driver_.cellResolved(*cell.spec, cell.config,
                                      cell.width))
                throw CellCancelled(cacheKeyOf(cell),
                                    claimedTokens[c].reason());
        }
    }

    // Wait for the cells other requests are computing.  An owner that
    // threw releases its claim with the cell unresolved; the waiter
    // then adopts the claim and computes the cell itself rather than
    // waiting forever.  A claim the watchdog marked stalled fails the
    // waiter immediately with CellStalled — checked *before* the
    // resolved test so a hard-stall quarantine (which makes the cell
    // "resolved") still surfaces as the typed, retryable condition.
    for (const std::size_t i : waitFor) {
        const ExperimentCell &cell = cells[i];
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            auto flight = inflight_.find(keys[i]);
            if (flight != inflight_.end() && flight->second.stalled)
                throw CellStalled(
                    flight->second.cacheKey,
                    ageMsOf(flight->second.start, Clock::now()),
                    flight->second.budgetMs);
            if (driver_.cellResolved(*cell.spec, cell.config,
                                     cell.width))
                break;
            if (flight == inflight_.end()) {
                support::CancelToken adopted = flightToken();
                inflight_.emplace(keys[i],
                                  Flight{cacheKeyOf(cell),
                                         Clock::now(), adopted});
                lock.unlock();
                try {
                    driver_.prefetch({cell}, {adopted});
                } catch (...) {
                    release({keys[i]});
                    throw;
                }
                release({keys[i]});
                if (adopted.cancelled() &&
                    !driver_.cellResolved(*cell.spec, cell.config,
                                          cell.width))
                    throw CellCancelled(cacheKeyOf(cell),
                                        adopted.reason());
                lock.lock();
                continue;
            }
            if (deadline_ms == 0) {
                cv_.wait(lock);
            } else if (cv_.wait_until(lock, deadline) ==
                       std::cv_status::timeout) {
                out.deadlineExpired = true;
                return out;
            }
        }
    }
    return out;
}

WatchdogReport
CellRegistry::watchdogSweep(std::uint64_t soft_budget_ms,
                            std::uint64_t hard_budget_ms,
                            std::uint64_t cancel_budget_ms)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point now = Clock::now();

    WatchdogReport report;
    bool marked = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &[key, flight] : inflight_) {
            const std::uint64_t age = ageMsOf(flight.start, now);
            if (!flight.stalled && age >= soft_budget_ms) {
                flight.stalled = true;
                flight.budgetMs = soft_budget_ms;
                marked = true;
                report.stalled.push_back({flight.cacheKey, age});
            }
            if (flight.stalled && !flight.quarantined &&
                age >= hard_budget_ms) {
                flight.quarantined = true;
                report.hardStalled.push_back({flight.cacheKey, age});
            }
            // The last rung: past the cancel budget the flight is
            // not just presumed dead, its worker is taken back.  The
            // owner unwinds with CellCancelled at the next chunk; the
            // provisional quarantine from the hard rung stays (the
            // cell never published), preserving the deterministic n/a
            // aggregation until a later request re-runs it cleanly.
            if (cancel_budget_ms > 0 && !flight.cancelSent &&
                age >= cancel_budget_ms) {
                flight.cancelSent = true;
                flight.token.cancel(
                    "watchdog cancelled stalled flight '" +
                    flight.cacheKey + "' after " +
                    std::to_string(age) + " ms");
                report.cancelled.push_back({flight.cacheKey, age});
            }
        }
    }
    // Wake every waiter so those parked on a newly-stalled claim can
    // fail with CellStalled instead of waiting out the owner.
    if (marked)
        cv_.notify_all();
    return report;
}

std::uint64_t
CellRegistry::coalescedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return coalescedTotal_;
}

std::uint64_t
CellRegistry::inflightDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inflight_.size();
}

std::uint64_t
CellRegistry::stalledCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto &[key, flight] : inflight_)
        if (flight.stalled)
            ++n;
    return n;
}

} // namespace ddsc::serve
