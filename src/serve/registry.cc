#include "registry.hh"

#include <chrono>

namespace ddsc::serve
{

std::string
CellRegistry::flightKey(const ExperimentCell &cell)
{
    // Cell coordinates alone would collide if two drivers with
    // different machines or traces ever shared a registry; folding in
    // the fingerprint and trace digest makes the key self-describing.
    const MachineConfig config =
        MachineConfig::paper(cell.config, cell.width);
    return cell.spec->name + "/" + std::string(1, cell.config) + "/" +
           std::to_string(cell.width) + "|" + config.fingerprint() +
           "|" + std::to_string(driver_.traceDigest(*cell.spec));
}

ResolveOutcome
CellRegistry::resolve(const std::vector<ExperimentCell> &cells,
                      std::uint64_t deadline_ms)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(deadline_ms);

    ResolveOutcome out;

    // Keys first, outside the lock: the first flightKey() for a
    // workload materializes and digests its trace.
    std::vector<std::string> keys;
    keys.reserve(cells.size());
    for (const ExperimentCell &cell : cells)
        keys.push_back(flightKey(cell));

    // Claim every unresolved cell nobody else is flying.
    std::vector<ExperimentCell> claimed;
    std::vector<std::string> claimedKeys;
    std::vector<std::size_t> waitFor;   // indexes into cells/keys
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::set<std::string> mine;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const ExperimentCell &cell = cells[i];
            if (driver_.cellResolved(*cell.spec, cell.config,
                                     cell.width))
                continue;
            if (mine.count(keys[i]))
                continue;
            if (inflight_.count(keys[i])) {
                ++out.coalesced;
                ++coalescedTotal_;
                waitFor.push_back(i);
                continue;
            }
            inflight_.insert(keys[i]);
            mine.insert(keys[i]);
            claimed.push_back(cell);
            claimedKeys.push_back(keys[i]);
        }
    }

    auto release = [&](const std::vector<std::string> &batch) {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const std::string &key : batch)
            inflight_.erase(key);
        cv_.notify_all();
    };

    if (!claimed.empty()) {
        try {
            driver_.prefetch(claimed);
        } catch (...) {
            release(claimedKeys);
            throw;
        }
        release(claimedKeys);
    }

    // Wait for the cells other requests are computing.  An owner that
    // threw releases its claim with the cell unresolved; the waiter
    // then adopts the claim and computes the cell itself rather than
    // waiting forever.
    for (const std::size_t i : waitFor) {
        const ExperimentCell &cell = cells[i];
        std::unique_lock<std::mutex> lock(mutex_);
        while (!driver_.cellResolved(*cell.spec, cell.config,
                                     cell.width)) {
            if (!inflight_.count(keys[i])) {
                inflight_.insert(keys[i]);
                lock.unlock();
                try {
                    driver_.prefetch({cell});
                } catch (...) {
                    release({keys[i]});
                    throw;
                }
                release({keys[i]});
                lock.lock();
                continue;
            }
            if (deadline_ms == 0) {
                cv_.wait(lock);
            } else if (cv_.wait_until(lock, deadline) ==
                       std::cv_status::timeout) {
                out.deadlineExpired = true;
                return out;
            }
        }
    }
    return out;
}

std::uint64_t
CellRegistry::coalescedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return coalescedTotal_;
}

} // namespace ddsc::serve
