#include "fleet.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "support/portfile.hh"
#include "support/shutdown.hh"

namespace ddsc::serve
{

namespace
{

/** A generation that died younger than this is a "rapid" death for
 *  the flap breaker and escalates the restart backoff. */
constexpr std::uint64_t kRapidDeathMs = 5000;
constexpr std::uint64_t kBackoffBaseMs = 100;
constexpr std::uint64_t kBackoffCapMs = 5000;

/** Sleep up to @p delay_ms, returning early (true) when shutdown was
 *  requested meanwhile. */
bool
interruptibleSleep(std::uint64_t delay_ms)
{
    const int fd = support::shutdownFd();
    pollfd p = {fd, POLLIN, 0};
    const int n =
        ::poll(&p, fd >= 0 ? 1u : 0u, static_cast<int>(delay_ms));
    (void)n;
    return support::shutdownRequested();
}

/** The exec argv for one shard generation: the plain (unsupervised)
 *  ddsc-served flag surface, so a shard is exactly what an operator
 *  could run by hand. */
std::vector<std::string>
shardArgs(const FleetOptions &opts, std::size_t index,
          const ShardSlot &slot, const std::string &pid_file,
          std::uint64_t generation)
{
    std::vector<std::string> args = {
        opts.serverExe,
        "--port", "0",
        "--port-file", slot.portFile,
        "--pid-file", pid_file,
        "--generation", std::to_string(generation),
    };
    const ServerOptions &shard = opts.shardOpts;
    if (!slot.cacheDir.empty()) {
        args.push_back("--cache-dir");
        args.push_back(slot.cacheDir);
    }
    if (shard.jobs != 0) {
        args.push_back("--jobs");
        args.push_back(std::to_string(shard.jobs));
    }
    args.push_back("--max-sessions");
    args.push_back(std::to_string(shard.maxSessions));
    if (shard.watchdogBudgetMs != 0) {
        args.push_back("--watchdog-budget-ms");
        args.push_back(std::to_string(shard.watchdogBudgetMs));
    }
    if (!shard.batched)
        args.push_back("--no-batched");
    if (!shard.traceDir.empty()) {
        // Private per-shard spill dirs: generations of *one* shard
        // reuse their spilled traces, but shards never race on a
        // shared file.
        args.push_back("--trace-dir");
        args.push_back(shard.traceDir + "/shard-" +
                       std::to_string(index));
    }
    if (shard.traceBudgetMb != 0) {
        args.push_back("--trace-budget-mb");
        args.push_back(std::to_string(shard.traceBudgetMb));
    }
    if (shard.cancelStalledMs != 0) {
        args.push_back("--cancel-stalled-ms");
        args.push_back(std::to_string(shard.cancelStalledMs));
    }
    // Admission knobs propagate so a fleet sheds at the shards with
    // the same policy a single server would apply.
    const AdmissionOptions defaults;
    if (shard.admission.maxActive != defaults.maxActive) {
        args.push_back("--max-active");
        args.push_back(std::to_string(shard.admission.maxActive));
    }
    if (shard.admission.queueDepth != defaults.queueDepth) {
        args.push_back("--queue-depth");
        args.push_back(std::to_string(shard.admission.queueDepth));
    }
    if (shard.admission.perConnInflight != defaults.perConnInflight) {
        args.push_back("--per-conn-inflight");
        args.push_back(
            std::to_string(shard.admission.perConnInflight));
    }
    if (shard.admission.brownout != defaults.brownout)
        args.push_back(shard.admission.brownout ? "--brownout"
                                                : "--no-brownout");
    return args;
}

/**
 * Supervise one shard until shutdown (0) or its flap breaker trips
 * (1): fork+exec a generation, wait, restart unclean deaths with
 * capped backoff.  Mirrors the single-server --supervise loop, with
 * the slot atomics keeping the router's view current.
 */
int
superviseShard(const FleetOptions &opts, std::size_t index,
               ShardSlot &slot)
{
    const std::string pid_file =
        opts.runtimeDir + "/shard-" + std::to_string(index) + ".pid";
    unsigned rapid_deaths = 0;
    for (std::uint64_t generation = 0;; ++generation) {
        slot.generation.store(generation);
        const std::vector<std::string> args =
            shardArgs(opts, index, slot, pid_file, generation);
        const pid_t child = ::fork();
        if (child < 0) {
            std::fprintf(stderr,
                         "ddsc-served[fleet]: shard %zu fork failed: "
                         "%s\n",
                         index, std::strerror(errno));
            slot.broken.store(true);
            return 1;
        }
        if (child == 0) {
            // Between fork and exec only async-signal-safe calls: the
            // manager is multi-threaded and any inherited lock is
            // frozen mid-flight.
            std::vector<char *> argv;
            argv.reserve(args.size() + 1);
            for (const std::string &arg : args)
                argv.push_back(const_cast<char *>(arg.c_str()));
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            _exit(127);
        }

        std::fprintf(stderr,
                     "# ddsc-served[fleet]: shard %zu generation %llu "
                     "is pid %ld\n",
                     index, static_cast<unsigned long long>(generation),
                     static_cast<long>(child));

        const auto born = std::chrono::steady_clock::now();
        int status = 0;
        bool failed = false;
        for (bool forwarded = false;;) {
            // Same forward-then-wait dance as the single-server
            // supervisor: the shutdown self-pipe closes the race
            // between a signal and waitpid parking.
            if (support::shutdownRequested() && !forwarded) {
                ::kill(child, SIGTERM);
                forwarded = true;
            }
            const pid_t got =
                ::waitpid(child, &status, forwarded ? 0 : WNOHANG);
            if (got == child)
                break;
            if (got < 0 && errno != EINTR) {
                std::fprintf(stderr,
                             "ddsc-served[fleet]: shard %zu waitpid "
                             "failed: %s\n",
                             index, std::strerror(errno));
                failed = true;
                break;
            }
            if (!forwarded) {
                pollfd p = {support::shutdownFd(), POLLIN, 0};
                ::poll(&p, 1, 200);
            }
        }
        if (failed) {
            slot.broken.store(true);
            return 1;
        }

        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            std::fprintf(stderr,
                         "# ddsc-served[fleet]: shard %zu generation "
                         "%llu drained cleanly\n",
                         index,
                         static_cast<unsigned long long>(generation));
            return 0;
        }
        if (support::shutdownRequested()) {
            std::fprintf(stderr,
                         "# ddsc-served[fleet]: shard %zu shutdown "
                         "requested; not restarting\n",
                         index);
            return 0;
        }

        const std::uint64_t lifetime_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - born)
                .count());
        if (WIFSIGNALED(status)) {
            std::fprintf(stderr,
                         "# ddsc-served[fleet]: shard %zu generation "
                         "%llu killed by signal %d (%s) after %llu "
                         "ms\n",
                         index,
                         static_cast<unsigned long long>(generation),
                         WTERMSIG(status),
                         strsignal(WTERMSIG(status)),
                         static_cast<unsigned long long>(lifetime_ms));
        } else {
            std::fprintf(stderr,
                         "# ddsc-served[fleet]: shard %zu generation "
                         "%llu exited %d after %llu ms\n",
                         index,
                         static_cast<unsigned long long>(generation),
                         WIFEXITED(status) ? WEXITSTATUS(status) : -1,
                         static_cast<unsigned long long>(lifetime_ms));
        }
        slot.restarts.fetch_add(1);

        rapid_deaths =
            lifetime_ms < kRapidDeathMs ? rapid_deaths + 1 : 0;
        if (rapid_deaths >= opts.maxRestarts) {
            std::fprintf(stderr,
                         "ddsc-served[fleet]: shard %zu flap breaker: "
                         "%u consecutive rapid deaths; giving up on "
                         "this shard\n",
                         index, rapid_deaths);
            slot.broken.store(true);
            return 1;
        }

        std::uint64_t delay = kBackoffBaseMs;
        for (unsigned i = 1; i < rapid_deaths && delay < kBackoffCapMs;
             ++i)
            delay *= 2;
        if (delay > kBackoffCapMs)
            delay = kBackoffCapMs;
        if (rapid_deaths > 0) {
            std::fprintf(stderr,
                         "# ddsc-served[fleet]: restarting shard %zu "
                         "in %llu ms\n",
                         index,
                         static_cast<unsigned long long>(delay));
            if (interruptibleSleep(delay))
                return 0;
        }
    }
}

} // anonymous namespace

int
runFleet(const FleetOptions &opts)
{
    if (opts.shards == 0 || opts.serverExe.empty() ||
        opts.runtimeDir.empty()) {
        std::fprintf(stderr,
                     "ddsc-served[fleet]: need --fleet K >= 1 and a "
                     "runtime directory\n");
        return 1;
    }
    {
        std::error_code ec;
        std::filesystem::create_directories(opts.runtimeDir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "ddsc-served[fleet]: cannot create runtime "
                         "dir '%s': %s\n",
                         opts.runtimeDir.c_str(),
                         ec.message().c_str());
            return 1;
        }
    }

    FleetState fleet;
    for (unsigned i = 0; i < opts.shards; ++i) {
        const std::string prefix =
            opts.runtimeDir + "/shard-" + std::to_string(i);
        const std::string cache =
            opts.cacheRoot.empty()
                ? std::string()
                : opts.cacheRoot + "/shard-" + std::to_string(i);
        ShardSlot &slot = fleet.add(prefix + ".port", cache);
        // A stale port file from a previous fleet would point the
        // router at a dead (or foreign) port until generation 0 binds.
        support::removeRuntimeFile(slot.portFile);
        support::removeRuntimeFile(prefix + ".pid");
    }

    RouterOptions router_opts = opts.router;
    router_opts.storeRoot = opts.cacheRoot;
    Router router(router_opts, fleet);
    if (!router.valid()) {
        std::fprintf(stderr,
                     "ddsc-served[fleet]: cannot listen on "
                     "127.0.0.1:%u (port in use?)\n",
                     static_cast<unsigned>(opts.router.port));
        return 1;
    }

    std::string err;
    if (!opts.pidFile.empty() &&
        !support::writeOneLineAtomic(
            opts.pidFile,
            static_cast<unsigned long long>(::getpid()), &err)) {
        std::fprintf(stderr,
                     "ddsc-served[fleet]: cannot write pid file: %s\n",
                     err.c_str());
        return 1;
    }

    std::vector<std::thread> supervisors;
    supervisors.reserve(fleet.count());
    for (std::size_t i = 0; i < fleet.count(); ++i) {
        supervisors.emplace_back([&opts, i, &fleet]() {
            superviseShard(opts, i, *fleet.shards[i]);
        });
    }

    // The router's port file is the fleet's "ready" signal; its
    // listener is live (shards may still be binding, but the router
    // rides that with its retry policy).
    if (!opts.portFile.empty() &&
        !support::writeOneLineAtomic(opts.portFile, router.port(),
                                     &err)) {
        std::fprintf(stderr,
                     "ddsc-served[fleet]: cannot write port file: "
                     "%s\n",
                     err.c_str());
        support::requestShutdown();
        for (std::thread &t : supervisors)
            t.join();
        return 1;
    }

    std::fprintf(stderr,
                 "# ddsc-served[fleet]: router listening on "
                 "127.0.0.1:%u with %u shards\n",
                 static_cast<unsigned>(router.port()), opts.shards);

    router.run();   // returns on SIGTERM/SIGINT (or stop())

    for (std::thread &t : supervisors)
        t.join();

    // Clean shutdown leaves no stale runtime files behind; the shards
    // removed their own on drain.
    if (!opts.portFile.empty())
        support::removeRuntimeFile(opts.portFile);
    if (!opts.pidFile.empty())
        support::removeRuntimeFile(opts.pidFile);

    std::fprintf(stderr, "# ddsc-served[fleet]: drained cleanly\n");
    return 0;
}

} // namespace ddsc::serve
