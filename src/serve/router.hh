/**
 * @file
 * The fleet router: one DDSN front-end fanning matrix requests out to
 * K crash-isolated server shards and merging their raw per-cell stats
 * into replies byte-identical to a single fresh ddsc-matrix run.
 *
 * Topology: each shard owns a deterministic slice of the experiment
 * matrix — a cell (config, width) column lands on shard
 * FNV-1a(MachineConfig::paper(config, width).fingerprint()) mod K, so
 * the *machine fingerprint* (the same identity that keys the result
 * store) decides placement, every workload of a column co-locates
 * with its store records, and placement never depends on request
 * order or shard health.  The router speaks the same protocol on both
 * sides: clients talk to it exactly as to a single ddsc-served, and
 * it talks to shards with CellsRequest batches that resolve through
 * each shard's own single-flight registry, watchdog, and store.
 *
 * Byte-identity: the router never aggregates on its own — it feeds
 * the shard-returned SchedStats through the very
 * aggregateMatrixResult() that runMatrixQuery() uses locally, so a
 * routed sweep and a local sweep render identical bytes by
 * construction (tests/router_test.cpp holds it to that).
 *
 * Degraded modes, per shard:
 *  - dead or restarting (its supervisor is between generations): the
 *    fan-out retries through net::Client's RetryPolicy, re-reading
 *    the shard's port file before every connect, so the request rides
 *    onto the shard's next generation;
 *  - broken (the shard's flap breaker tripped; it is not coming
 *    back): its cells fail *typed* — they aggregate as n/a with a
 *    per-cell failure naming the shard, exactly the quarantine
 *    semantics a poisoned cell has on a single server — while every
 *    healthy shard's cells keep serving;
 *  - stalled or past the deadline: the shard's typed Stalled/Deadline
 *    answer propagates to the client unchanged, keeping single-server
 *    retry semantics.
 */

#ifndef DDSC_SERVE_ROUTER_HH
#define DDSC_SERVE_ROUTER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "net/protocol.hh"
#include "net/socket.hh"

namespace ddsc::serve
{

/** One shard as the router sees it: where to find it (its port file
 *  survives process generations) and the liveness the fleet manager
 *  maintains.  The atomics are written by the manager's supervise
 *  loops and read by router fan-out threads. */
struct ShardSlot
{
    std::string portFile;
    std::string cacheDir;                       ///< its private store
    std::atomic<std::uint64_t> generation{0};   ///< lives started
    std::atomic<std::uint64_t> restarts{0};     ///< unclean deaths
    /** The flap breaker tripped: the manager stopped restarting this
     *  shard.  The router fails its cells typed instead of retrying
     *  into a port file that will never be rewritten. */
    std::atomic<bool> broken{false};
};

/** The shared fleet state: built by the fleet manager (or a test)
 *  before the router starts, structurally immutable afterwards —
 *  only the per-slot atomics change. */
struct FleetState
{
    std::vector<std::unique_ptr<ShardSlot>> shards;

    std::size_t count() const { return shards.size(); }

    /** Convenience: append a slot and return it. */
    ShardSlot &add(const std::string &port_file,
                   const std::string &cache_dir)
    {
        shards.push_back(std::make_unique<ShardSlot>());
        shards.back()->portFile = port_file;
        shards.back()->cacheDir = cache_dir;
        return *shards.back();
    }
};

/**
 * Which shard owns cell (config, width): FNV-1a over the paper
 * machine's fingerprint, mod @p shard_count.  Workload-independent on
 * purpose — a whole (config, width) column lands together, and the
 * speedup metric's base-machine column 'A' is just another column.
 */
unsigned shardForCell(char config, unsigned width,
                      std::size_t shard_count);

struct RouterOptions
{
    std::uint16_t port = 0;     ///< 0 = kernel-assigned
    int backlog = 16;
    unsigned maxSessions = 16;  ///< live client sessions before shed
    /** Per-reply wait against a shard, ms (-1 = forever).  Deadline
     *  requests widen it like net::Client::matrix() does. */
    int shardTimeoutMs = -1;
    /** How long the fan-out rides a restarting shard before failing
     *  its cells typed.  The defaults cover several supervisor
     *  backoff rounds; tests shrink them. */
    net::RetryPolicy retry{.retries = 10, .budgetMs = 20000};
    /** Reported as InfoReply storePath ("" = no store). */
    std::string storeRoot;
};

/**
 * The fan-out/merge front-end.  One accept loop plus one thread per
 * client session, mirroring serve::Server's shape; each MatrixRequest
 * fans out to the owning shards in parallel and merges.  Thread-safe
 * against the fleet manager mutating slot atomics.
 */
class Router
{
  public:
    Router(const RouterOptions &opts, FleetState &fleet);
    ~Router();

    /** False when the listener failed to bind. */
    bool valid() const { return listener_.valid(); }

    /** The bound port (resolves port 0). */
    std::uint16_t port() const { return listener_.port(); }

    /** Accept-and-serve until stop() (or a process shutdown request).
     *  Returns after every session thread joined. */
    void run();

    /** Request a drain from another thread (idempotent). */
    void stop();

    /** True once draining started. */
    bool draining() const { return draining_.load(); }

    /** Aggregated fleet health: scalar sums over the reachable shards
     *  plus one ShardHealth entry per shard.  Also the HealthReply
     *  payload.  Callable from any thread. */
    net::HealthInfo healthSnapshot() const;

    /** Aggregated fleet counters (InfoReply payload). */
    net::ServerInfo infoSnapshot() const;

    /** Fan @p query out and merge — the MatrixRequest path, exposed
     *  for tests.  @p arrival is when the request hit this hop: the
     *  v5 budget rule forwards deadlineMs minus the time already
     *  spent here (floored at kShardFloorMs per shard; 0 = forever
     *  stays 0), so the client's --deadline-ms is an end-to-end
     *  budget, not a fresh allowance per hop.  A budget already
     *  exhausted at fan-out throws the typed Deadline without
     *  touching any shard.  @throws net::ServerError to signal a
     *  typed error reply (Deadline/Stalled/Cancelled propagation),
     *  std::exception for Internal. */
    MatrixResult routeMatrix(const MatrixQuery &query,
                             std::chrono::steady_clock::time_point
                                 arrival =
                                     std::chrono::steady_clock::now())
        const;

    /** Minimum budget forwarded to a shard once a request was viable
     *  at arrival: routing overhead must not starve it to nothing. */
    static constexpr std::uint64_t kShardFloorMs = 50;

  private:
    struct Slot
    {
        std::thread thread;
        net::Fd fd;
        std::atomic<bool> done{false};
    };

    /** One client connection: handshake + request loop. */
    void serveConnection(Slot &slot);

    /** Decode and answer one MatrixRequest.  False when the
     *  connection died. */
    bool handleMatrix(int fd, const net::Frame &frame);

    void reapSessions();
    std::size_t liveSessions() const;

    RouterOptions opts_;
    FleetState &fleet_;
    net::TcpListener listener_;
    int stopPipe_[2] = {-1, -1};
    std::atomic<bool> draining_{false};
    std::vector<std::unique_ptr<Slot>> sessions_;   ///< accept thread
    std::atomic<std::uint64_t> activeSessions_{0};
    std::atomic<std::uint64_t> requestsServed_{0};
    std::chrono::steady_clock::time_point started_ =
        std::chrono::steady_clock::now();
};

} // namespace ddsc::serve

#endif // DDSC_SERVE_ROUTER_HH
