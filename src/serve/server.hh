/**
 * @file
 * The resident sweep server: keeps one ExperimentDriver (traces,
 * cell cache, optional persistent store) warm and serves
 * experiment-matrix queries over localhost TCP.
 *
 * Concurrency model: one accept loop (run()'s thread) plus one thread
 * per live session.  Sessions share the driver through the
 * single-flight CellRegistry, and the driver farms actual simulation
 * onto its own worker pool — so K concurrent identical requests cost
 * one simulation per unique cell, and a repeated request is answered
 * entirely from memory or the store.
 *
 * Overload: at most maxSessions live sessions.  The listener keeps
 * accepting — each excess connection is *shed* with a typed
 * Overloaded error and closed, rather than left to stall in the
 * accept queue wondering whether the server is dead.
 *
 * Drain (SIGINT/SIGTERM or stop()): stop accepting, half-close every
 * session so in-flight requests finish and reply, join the session
 * threads, then flush/compact the store.  A drained server exits with
 * every finished cell durable.
 */

#ifndef DDSC_SERVE_SERVER_HH
#define DDSC_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hh"
#include "net/socket.hh"
#include "serve/admission.hh"
#include "serve/registry.hh"
#include "serve/session.hh"
#include "sim/experiment.hh"
#include "sim/result_store.hh"

namespace ddsc::serve
{

struct ServerOptions
{
    std::uint16_t port = 0;     ///< 0 = kernel-assigned; see port()
    unsigned jobs = 0;          ///< driver workers (0 = default policy)
    std::string cacheDir;       ///< "" = in-memory only; otherwise the
                                ///< store is (re)opened — a warm start
                                ///< over an existing store is the
                                ///< normal daemon restart
    unsigned maxSessions = 8;   ///< live sessions before shedding
    int backlog = 16;           ///< listen(2) backlog
    bool testScale = false;     ///< small workloads (tests only)
    /** Share one front-end pass among same-fingerprint cells of a
     *  sweep (bit-identical results; --no-batched opts out). */
    bool batched = true;
    /** Soft watchdog budget per in-flight cell, ms.  0 = adaptive:
     *  8x the slowest cell ever observed (2 s floor), and no sweeps
     *  at all until at least one cell has finished.  A cell past the
     *  soft budget fails its waiters with ErrCode::Stalled; past 8x
     *  the soft budget it is provisionally quarantined. */
    std::uint64_t watchdogBudgetMs = 0;
    /** Cancel budget per in-flight cell, ms: past it the watchdog
     *  fires the flight's CancelToken, actively reclaiming the stuck
     *  worker (the rung above quarantine).  0 = 8x the hard budget,
     *  i.e. 64x soft — late enough that a merely slow flight which
     *  would still publish and self-heal is never killed
     *  (--cancel-stalled-ms). */
    std::uint64_t cancelStalledMs = 0;
    /** Admission control in front of the registry: concurrent
     *  resolving requests, the bounded FIFO behind them
     *  (--queue-depth), the per-connection in-flight cap
     *  (--per-conn-inflight), and the brownout bypass for
     *  cache-answerable requests (--brownout / --no-brownout). */
    AdmissionOptions admission;
    /** Supervisor restart count, reported in HealthInfo (0 =
     *  unsupervised first life). */
    std::uint64_t generation = 0;
    /** "" = traces stay as in-memory vectors; otherwise each workload
     *  is spilled once to a DDSCTRC v4 file under this directory and
     *  served through mmap'd zero-copy cursors. */
    std::string traceDir;
    /** Residency budget over the mapped traces, MiB (0 = unlimited).
     *  Needs traceDir; cold traces are evicted (madvise) LRU-wise so
     *  the sweep's RSS stays bounded. */
    std::uint64_t traceBudgetMb = 0;
};

class Server
{
  public:
    explicit Server(const ServerOptions &opts);
    ~Server();

    /** False when the listener failed to bind (port in use). */
    bool valid() const { return listener_.valid(); }

    /** The bound port (resolves port 0). */
    std::uint16_t port() const { return listener_.port(); }

    /**
     * Accept-and-serve until a drain is requested — by stop(), or by
     * SIGINT/SIGTERM when installShutdownHandler() was called.
     * Returns after the drain completes: no listener, no sessions,
     * store flushed.
     */
    void run();

    /** Request a drain from another thread (idempotent). */
    void stop();

    /** True once draining started; late requests get ErrCode::Draining. */
    bool draining() const { return draining_.load(); }

    /** Counters snapshot for InfoReply. */
    net::ServerInfo infoSnapshot() const;

    /** Readiness snapshot for HealthReply (what a supervisor or
     *  operator probes for). */
    net::HealthInfo healthSnapshot() const;

    ExperimentDriver &driver() { return driver_; }
    CellRegistry &registry() { return registry_; }
    AdmissionController &admission() { return admission_; }

    void countRequest() { requestsServed_.fetch_add(1); }

  private:
    struct Slot
    {
        std::thread thread;
        std::unique_ptr<Session> session;
        std::atomic<bool> done{false};
    };

    /** Join and drop finished session slots. */
    void reapSessions();

    /** Live (not-done) session count. */
    std::size_t liveSessions() const;

    /** The hung-cell watchdog: periodically sweep the registry for
     *  claims past their budget.  Runs on its own thread for the
     *  whole of run(), including the drain (a stalled cell must fail
     *  its waiters or the drain's join would inherit the hang). */
    void watchdogLoop();

    /** This sweep's soft budget in ms (0 = adaptive with no history
     *  yet: skip the sweep). */
    std::uint64_t watchdogBudget() const;

    ServerOptions opts_;
    ExperimentDriver driver_;
    std::unique_ptr<ResultStore> store_;
    CellRegistry registry_;
    AdmissionController admission_;
    net::TcpListener listener_;
    int stopPipe_[2] = {-1, -1};    ///< self-pipe for stop()
    std::atomic<bool> draining_{false};
    std::vector<std::unique_ptr<Slot>> sessions_;   ///< accept thread only
    std::atomic<std::uint64_t> requestsServed_{0};
    /** Live session count, readable from session threads (sessions_
     *  itself belongs to the accept thread). */
    std::atomic<std::uint64_t> activeSessions_{0};
    std::uint64_t nextSessionId_ = 1;

    std::chrono::steady_clock::time_point started_ =
        std::chrono::steady_clock::now();
    std::thread watchdog_;
    std::mutex watchdogMutex_;
    std::condition_variable watchdogCv_;
    bool watchdogStop_ = false;         ///< guarded by watchdogMutex_
    /** Last sweep's effective soft budget, for HealthInfo. */
    std::atomic<std::uint64_t> effectiveBudgetMs_{0};
};

} // namespace ddsc::serve

#endif // DDSC_SERVE_SERVER_HH
