#include "session.hh"

#include <chrono>

#include "serve/server.hh"
#include "sim/matrix_query.hh"
#include "support/cancel.hh"
#include "support/fault.hh"

namespace ddsc::serve
{

namespace
{

/** A connection that won't even say Hello within this budget is
 *  holding a session slot hostage; drop it. */
constexpr int kHandshakeTimeoutMs = 30000;

/** Releases an admitted request on every exit path, feeding its
 *  observed service time back into the admission latency EWMA. */
struct AdmitGuard
{
    AdmissionController &adm;
    std::uint64_t connId;
    const AdmissionDecision &d;
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();

    ~AdmitGuard()
    {
        using std::chrono::duration_cast;
        using std::chrono::milliseconds;
        adm.release(connId, d,
                    static_cast<std::uint64_t>(
                        duration_cast<milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count()));
    }
};

/** The per-request cancel token: the client's deadline becomes a live
 *  deadline token; with no deadline the token still exists so the
 *  watchdog's cancel rung can reach the request's claimed flights. */
support::CancelToken
requestToken(std::uint64_t deadline_ms)
{
    return deadline_ms > 0
               ? support::CancelToken::withDeadline(deadline_ms)
               : support::CancelToken::make();
}

} // anonymous namespace

Session::Session(Server &server, net::Fd fd, std::uint64_t id)
    : server_(server), fd_(std::move(fd)), id_(id)
{
}

void
Session::run()
{
    serveLoop();
    // The Session object (and its fd) outlives this thread: the server
    // reaps it later, from the accept thread.  Send FIN now so the
    // peer sees EOF the moment the session ends, not at the reap.
    fd_.shutdownBoth();
}

void
Session::serveLoop()
{
    if (!handshake())
        return;
    for (;;) {
        net::Frame frame;
        const net::ReadStatus status =
            net::readFrame(fd_.get(), frame, -1);
        if (status != net::ReadStatus::Ok)
            return;     // EOF (hang-up or drain), torn, or garbage
        switch (frame.type) {
          case net::MsgType::Ping:
            if (!reply(net::MsgType::Pong, {}))
                return;
            break;
          case net::MsgType::InfoRequest: {
            std::string payload;
            server_.infoSnapshot().encode(payload);
            if (!reply(net::MsgType::InfoReply, payload))
                return;
            break;
          }
          case net::MsgType::HealthRequest: {
            std::string payload;
            server_.healthSnapshot().encode(payload);
            if (!reply(net::MsgType::HealthReply, payload))
                return;
            break;
          }
          case net::MsgType::MatrixRequest:
            if (!handleMatrix(frame))
                return;
            break;
          case net::MsgType::CellsRequest:
            if (!handleCells(frame))
                return;
            break;
          default:
            // A client sending server-side verbs is confused; drop it.
            return;
        }
    }
}

bool
Session::handshake()
{
    net::Frame frame;
    if (net::readFrame(fd_.get(), frame, kHandshakeTimeoutMs) !=
            net::ReadStatus::Ok ||
        frame.type != net::MsgType::Hello)
        return false;
    net::Hello theirs;
    support::wire::Reader reader(frame.payload);
    if (!theirs.decode(reader)) {
        sendError(net::ErrCode::BadRequest, "malformed Hello");
        return false;
    }
    const net::Hello ours = net::Hello::current();
    if (!ours.compatible(theirs)) {
        sendError(net::ErrCode::VersionMismatch,
                  "client speaks protocol " +
                      std::to_string(theirs.protocol) + "/trace v" +
                      std::to_string(theirs.traceFormat) + "/store v" +
                      std::to_string(theirs.storeSchema) +
                      "/fingerprint v" +
                      std::to_string(theirs.fingerprintSchema) +
                      "; server has " + std::to_string(ours.protocol) +
                      "/" + std::to_string(ours.traceFormat) + "/" +
                      std::to_string(ours.storeSchema) + "/" +
                      std::to_string(ours.fingerprintSchema));
        return false;
    }
    std::string payload;
    ours.encode(payload);
    return reply(net::MsgType::HelloOk, payload);
}

bool
Session::handleMatrix(const net::Frame &frame)
{
    MatrixQuery query;
    support::wire::Reader reader(frame.payload);
    if (!query.decode(reader))
        return sendError(net::ErrCode::BadRequest,
                         "malformed MatrixRequest payload");
    std::string why;
    if (!query.validate(&why))
        return sendError(net::ErrCode::BadRequest, why);
    if (server_.draining())
        return sendError(net::ErrCode::Draining,
                         "server is draining; retry elsewhere");

    // Admission: brownout eligibility is "every cell the query needs
    // is durable" — such a request is a cache read, not a simulation.
    bool cached = true;
    for (const ExperimentCell &cell : query.cells()) {
        if (!server_.driver().cellDurable(*cell.spec, cell.config,
                                          cell.width)) {
            cached = false;
            break;
        }
    }
    const AdmissionDecision ticket = server_.admission().admit(
        id_, query.deadlineMs, cached);
    if (!ticket.admitted)
        return sendError(net::ErrCode::Overloaded, ticket.reason,
                         ticket.retryAfterMs);
    AdmitGuard guard{server_.admission(), id_, ticket};

    const support::CancelToken token = requestToken(query.deadlineMs);
    ResolveOutcome outcome;
    MatrixResult result;
    try {
        result = runMatrixQuery(
            server_.driver(), query,
            [&](const std::vector<ExperimentCell> &cells) {
                outcome = server_.registry().resolve(
                    cells, query.deadlineMs, token);
            });
    } catch (const CellCancelled &e) {
        // This request's own claimed simulation was cancelled — its
        // deadline, or the watchdog reclaiming a stalled flight.  Not
        // retryable on the same budget (it would just cancel again)
        // and nothing is quarantined: the cell re-runs cleanly for
        // the next request.
        return sendError(net::ErrCode::Cancelled, e.what());
    } catch (const CellStalled &e) {
        // The watchdog marked a cell this request waited on: typed
        // and retryable — the stuck owner may yet finish and cache
        // it, or the retry recomputes it after the quarantine path
        // settles.
        return sendError(net::ErrCode::Stalled, e.what());
    } catch (const std::exception &e) {
        return sendError(net::ErrCode::Internal, e.what());
    }
    if (outcome.deadlineExpired)
        return sendError(
            net::ErrCode::Deadline,
            "deadline of " + std::to_string(query.deadlineMs) +
                " ms expired before every cell resolved (the cells "
                "keep computing and will be cached)");
    if (result.interrupted)
        return sendError(net::ErrCode::Internal,
                         "sweep did not resolve every cell");
    result.summary.coalesced = outcome.coalesced;

    if (support::faultShouldFire("net-disconnect")) {
        // Mid-response hang-up: the reply is computed but never
        // written; the client sees the connection die.  shutdown, not
        // close — the fd must stay valid for a concurrent drain.
        fd_.shutdownBoth();
        return false;
    }

    std::string payload;
    result.encode(payload);
    if (!reply(net::MsgType::MatrixReply, payload))
        return false;
    server_.countRequest();
    return true;
}

bool
Session::handleCells(const net::Frame &frame)
{
    net::CellsBatch batch;
    support::wire::Reader reader(frame.payload);
    if (!batch.decode(reader))
        return sendError(net::ErrCode::BadRequest,
                         "malformed CellsRequest payload");
    if (batch.cells.empty())
        return sendError(net::ErrCode::BadRequest,
                         "empty cell batch");
    std::vector<ExperimentCell> cells;
    cells.reserve(batch.cells.size());
    for (const net::CellRef &ref : batch.cells) {
        const WorkloadSpec *spec = findWorkloadOrNull(ref.workload);
        if (!spec)
            return sendError(net::ErrCode::BadRequest,
                             "unknown workload '" + ref.workload +
                                 "'");
        if (!MachineConfig::isKnownConfig(ref.config))
            return sendError(net::ErrCode::BadRequest,
                             std::string("unknown configuration '") +
                                 ref.config + "'");
        if (ref.width == 0 || ref.width > 1u << 20)
            return sendError(net::ErrCode::BadRequest,
                             "width " + std::to_string(ref.width) +
                                 " out of range");
        cells.push_back({spec, ref.config, ref.width});
    }
    if (server_.draining())
        return sendError(net::ErrCode::Draining,
                         "server is draining; retry elsewhere");

    ExperimentDriver &driver = server_.driver();
    bool cached = true;
    for (const ExperimentCell &cell : cells) {
        if (!driver.cellDurable(*cell.spec, cell.config,
                                cell.width)) {
            cached = false;
            break;
        }
    }
    const AdmissionDecision ticket = server_.admission().admit(
        id_, batch.deadlineMs, cached);
    if (!ticket.admitted)
        return sendError(net::ErrCode::Overloaded, ticket.reason,
                         ticket.retryAfterMs);
    AdmitGuard guard{server_.admission(), id_, ticket};

    const support::CancelToken token = requestToken(batch.deadlineMs);
    const std::size_t hits0 = driver.storeHits();
    const std::size_t sims0 = driver.simulatedCells();
    ResolveOutcome outcome;
    try {
        outcome = server_.registry().resolve(cells, batch.deadlineMs,
                                             token);
    } catch (const CellCancelled &e) {
        return sendError(net::ErrCode::Cancelled, e.what());
    } catch (const CellStalled &e) {
        return sendError(net::ErrCode::Stalled, e.what());
    } catch (const std::exception &e) {
        return sendError(net::ErrCode::Internal, e.what());
    }
    if (outcome.deadlineExpired)
        return sendError(
            net::ErrCode::Deadline,
            "deadline of " + std::to_string(batch.deadlineMs) +
                " ms expired before every cell resolved (the cells "
                "keep computing and will be cached)");
    for (const ExperimentCell &cell : cells) {
        if (!driver.cellResolved(*cell.spec, cell.config, cell.width))
            return sendError(net::ErrCode::Internal,
                             "sweep did not resolve every cell");
    }

    net::CellsReplyMsg msg;
    msg.cells.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        net::CellOutcome out;
        out.cell = batch.cells[i];
        try {
            out.stats = driver.stats(*cells[i].spec, cells[i].config,
                                     cells[i].width);
            out.ok = 1;
        } catch (const CellQuarantined &e) {
            out.ok = 0;
            out.failure = e.failure;
        }
        msg.cells.push_back(std::move(out));
    }
    msg.simulated = driver.simulatedCells() - sims0;
    msg.storeHits = driver.storeHits() - hits0;
    msg.coalesced = outcome.coalesced;

    if (support::faultShouldFire("net-disconnect")) {
        // Same mid-response hang-up as handleMatrix: the router sees
        // the connection die after the shard did the work, and must
        // retry against the (cached) result.
        fd_.shutdownBoth();
        return false;
    }

    std::string payload;
    msg.encode(payload);
    if (!reply(net::MsgType::CellsReply, payload))
        return false;
    server_.countRequest();
    return true;
}

bool
Session::reply(net::MsgType type, std::string_view payload)
{
    return net::writeFrame(fd_.get(), type, payload);
}

bool
Session::sendError(net::ErrCode code, const std::string &message,
                   std::uint64_t retry_after_ms)
{
    net::ErrorMsg err;
    err.code = code;
    err.message = message;
    err.retryAfterMs = retry_after_ms;
    std::string payload;
    err.encode(payload);
    return reply(net::MsgType::Error, payload);
}

} // namespace ddsc::serve
