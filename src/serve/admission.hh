/**
 * @file
 * Admission control in front of the CellRegistry: a bounded FIFO of
 * requests waiting for a simulation slot, per-connection in-flight
 * caps, queue-deadline eviction, and a brownout mode that keeps
 * answering already-computed cells while fresh work is shed.
 *
 * Why a queue at all: the registry and driver will happily accept any
 * number of concurrent requests — they just contend for the same
 * worker pool, so under overload *every* request gets slow and every
 * deadline blows.  Admission keeps at most maxActive requests
 * resolving; the next queueDepth wait their turn FIFO; everything
 * beyond that is shed immediately with a typed Overloaded error
 * carrying a retryAfterMs hint derived from the observed request
 * latency, so well-behaved clients come back exactly when a slot is
 * likely to free instead of hammering the accept loop.
 *
 * Queue-deadline eviction: a request whose remaining budget cannot
 * survive its estimated queue wait (position x the request-latency
 * EWMA) is shed *immediately* — better an instant "come back in N ms"
 * than a guaranteed Deadline after burning a queue slot.
 *
 * Brownout: when the queue is saturated, a request whose cells are
 * all durable (driver cache, quarantine, or persistent store —
 * ExperimentDriver::cellDurable()) bypasses the queue entirely: it
 * needs no simulation slot, only a cache read, so shedding it would
 * throw away free goodput.  Brownout admits do not consume active
 * slots; they are bounded by the per-connection cap alone.
 *
 * Every admitted request must be released exactly once (pass the
 * decision back to release(), which also records the service time in
 * the EWMA).  The controller is thread-safe.
 */

#ifndef DDSC_SERVE_ADMISSION_HH
#define DDSC_SERVE_ADMISSION_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace ddsc::serve
{

struct AdmissionOptions
{
    /** Requests resolving concurrently before queueing starts.  The
     *  default matches the server's default session cap, so a server
     *  that never overcommits its sessions never queues either. */
    std::size_t maxActive = 8;
    /** Requests waiting FIFO beyond that; the rest shed. */
    std::size_t queueDepth = 16;
    /** In-flight requests per connection (0 = uncapped).  A client
     *  pipelining past this is shed before it can monopolize the
     *  active slots. */
    std::size_t perConnInflight = 4;
    /** Answer durable-cell requests from cache when the queue is
     *  saturated instead of shedding them. */
    bool brownout = true;
};

/** What admit() decided.  Pass back to release() verbatim. */
struct AdmissionDecision
{
    bool admitted = false;
    /** Admitted through the brownout bypass: consumed no active slot
     *  (the request is expected to be answered from cache). */
    bool viaBrownout = false;
    /** When shed: how long the client should wait before retrying,
     *  from the request-latency EWMA and current queue depth. */
    std::uint64_t retryAfterMs = 0;
    std::string reason;         ///< human-readable shed reason
};

class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionOptions &opts)
        : opts_(opts)
    {
    }

    /**
     * Ask to run one request.  May block (FIFO) until a slot frees,
     * bounded by @p budget_ms when nonzero.  @p cached: every cell
     * the request needs is durable (brownout eligibility).  Sheds —
     * decision.admitted == false — when the connection is over its
     * in-flight cap, the queue is full, the budget cannot survive the
     * estimated queue wait, or the budget expires while queued.
     */
    AdmissionDecision admit(std::uint64_t conn_id,
                            std::uint64_t budget_ms, bool cached);

    /** Release an *admitted* request, feeding @p service_ms (its
     *  observed wall time; 0 = don't record) into the latency EWMA
     *  that prices queue waits and retry hints. */
    void release(std::uint64_t conn_id, const AdmissionDecision &d,
                 std::uint64_t service_ms);

    /** The hint a shed issued right now would carry — the server's
     *  accept-loop session shed reuses it so connection-level and
     *  request-level sheds price the retry the same way. */
    std::uint64_t retryHintMs() const;

    std::uint64_t shedTotal() const;        ///< requests shed
    std::uint64_t brownoutServed() const;   ///< brownout admissions
    std::uint64_t queueEvictions() const;   ///< shed for budget < wait
    std::size_t activeCount() const;
    std::size_t queueLength() const;

  private:
    /** Estimated wait at queue position @p pos (0 = next), ms. */
    std::uint64_t estimatedWaitLocked(std::size_t pos) const;
    AdmissionDecision shedLocked(const std::string &reason);

    AdmissionOptions opts_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::uint64_t> queue_;       ///< waiting tickets, FIFO
    std::map<std::uint64_t, std::size_t> connInflight_;
    std::uint64_t nextTicket_ = 1;
    std::size_t active_ = 0;
    double ewmaMs_ = 0.0;                   ///< request service time
    std::uint64_t shedTotal_ = 0;
    std::uint64_t brownoutServed_ = 0;
    std::uint64_t queueEvictions_ = 0;
};

} // namespace ddsc::serve

#endif // DDSC_SERVE_ADMISSION_HH
