/**
 * @file
 * One served connection: version handshake, then a request loop until
 * the peer hangs up or the server drains.
 *
 * A session thread owns its socket outright.  Draining never yanks a
 * session mid-reply: the server calls shutdownRead(), the request
 * currently executing finishes and its reply is written, and the next
 * read returns EOF, ending the loop.  Protocol violations (bad magic,
 * torn frames, unknown types) end the session by dropping the
 * connection — never by taking the server down.
 */

#ifndef DDSC_SERVE_SESSION_HH
#define DDSC_SERVE_SESSION_HH

#include <cstdint>
#include <string>

#include "net/protocol.hh"
#include "net/socket.hh"

namespace ddsc::serve
{

class Server;

class Session
{
  public:
    Session(Server &server, net::Fd fd, std::uint64_t id);

    /** Handshake + request loop; returns when the connection ends.
     *  Runs on the session's own thread. */
    void run();

    /** Drain: let the in-flight request reply, then the request
     *  loop's next read sees EOF.  Callable from the server thread
     *  while run() is executing. */
    void shutdownRead() { fd_.shutdownRead(); }

    std::uint64_t id() const { return id_; }

  private:
    /** The handshake + request loop; run() hangs up when it returns. */
    void serveLoop();

    /** Expect Hello, verify versions, answer HelloOk.  False ends the
     *  session (mismatch already answered with a typed error). */
    bool handshake();

    /** Decode, resolve, and answer one MatrixRequest.  False when the
     *  connection died. */
    bool handleMatrix(const net::Frame &frame);

    /** Decode, resolve, and answer one CellsRequest (the fleet
     *  router's fan-out unit).  False when the connection died. */
    bool handleCells(const net::Frame &frame);

    bool reply(net::MsgType type, std::string_view payload);
    /** @p retry_after_ms rides only on retryable sheds (Overloaded);
     *  0 = no hint. */
    bool sendError(net::ErrCode code, const std::string &message,
                   std::uint64_t retry_after_ms = 0);

    Server &server_;
    net::Fd fd_;
    const std::uint64_t id_;
};

} // namespace ddsc::serve

#endif // DDSC_SERVE_SESSION_HH
