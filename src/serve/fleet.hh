/**
 * @file
 * The fleet manager behind `ddsc-served --fleet K`: K crash-isolated
 * server shards, each its own process with its own port file, pid
 * file, result store, and restart/backoff state, fronted by one
 * in-process Router speaking the ordinary DDSN protocol.
 *
 * Failure domains, smallest to largest:
 *
 *   shard process   SIGKILL/SIGSEGV/exit!=0 → its supervisor thread
 *                   fork+execs the next generation with capped
 *                   exponential backoff; the new generation re-opens
 *                   the same per-shard store, so everything durable
 *                   before the crash serves from disk.  Other shards
 *                   never notice.
 *   shard flapping  K consecutive rapid deaths trip the per-shard
 *                   flap breaker: the slot is marked broken, the
 *                   router fails that shard's cells *typed* (n/a +
 *                   per-cell error, quarantine semantics), and the
 *                   rest of the fleet keeps serving.
 *   fleet manager   runs the router and the supervisor threads; its
 *                   own death orphans the shards (they keep draining
 *                   on SIGTERM from init) — restarting the manager
 *                   re-adopts nothing but respawns a fresh fleet over
 *                   the same stores.
 *
 * Shards are spawned by fork+*exec* of the ddsc-served binary itself
 * (FleetOptions::serverExe) rather than bare fork: the manager is
 * multi-threaded (router sessions, K supervisor threads), and a
 * non-exec'ing fork from a threaded process inherits locks frozen
 * mid-flight.  Exec also makes a shard exactly what an operator could
 * run by hand — one plain `ddsc-served --port 0 --port-file ...`.
 *
 * File layout, relative to FleetOptions::runtimeDir / cacheRoot:
 *
 *   <runtimeDir>/shard-<i>.port   written by shard i once its
 *                                 listener is live (every generation
 *                                 rewrites it; atomic rename)
 *   <runtimeDir>/shard-<i>.pid    pid of shard i's serving process
 *   <cacheRoot>/shard-<i>/        shard i's private result store
 *
 * `ddsc-store merge` folds the per-shard stores back into one
 * resumable store.
 */

#ifndef DDSC_SERVE_FLEET_HH
#define DDSC_SERVE_FLEET_HH

#include <string>

#include "serve/router.hh"
#include "serve/server.hh"

namespace ddsc::serve
{

struct FleetOptions
{
    unsigned shards = 2;        ///< K server shards (>= 1)
    /** Path to the ddsc-served binary, exec'd per shard generation. */
    std::string serverExe;
    /** Directory for the per-shard port/pid files (created). */
    std::string runtimeDir;
    /** "" = in-memory shards; else shard i stores under
     *  <cacheRoot>/shard-<i>. */
    std::string cacheRoot;
    std::string portFile;       ///< router port file ("" = none)
    std::string pidFile;        ///< manager pid file ("" = none)
    /** Per-shard flap breaker: consecutive rapid deaths before the
     *  shard is declared broken. */
    unsigned maxRestarts = 10;
    /** Template for every shard (jobs, maxSessions, watchdog budget,
     *  batched, trace dir/budget).  port and cacheDir are overridden
     *  per shard; generation is stamped per life. */
    ServerOptions shardOpts;
    /** Router front-end (port = the --port flag; retry policy rides
     *  restarting shards). */
    RouterOptions router;
};

/**
 * Run the fleet until SIGTERM/SIGINT: spawn and supervise the shards,
 * serve the router, then drain everything.  Returns the process exit
 * code (0 = clean drain, even if some shard broke along the way — a
 * degraded fleet that shut down on request still shut down cleanly).
 *
 * Expects support::installShutdownHandler() to have been called.
 */
int runFleet(const FleetOptions &opts);

} // namespace ddsc::serve

#endif // DDSC_SERVE_FLEET_HH
