/**
 * @file
 * Single-flight cell registry: when several concurrent requests need
 * the same not-yet-computed cell, exactly one of them simulates it
 * and the rest wait for that result.
 *
 * The ExperimentDriver is already safe under concurrent prefetch()
 * calls, but "safe" there means "both callers compute the cell and
 * the second publish is a no-op" — correct, and exactly the
 * duplicated work a resident server exists to avoid.  The registry
 * closes that gap: each request first claims the cells nobody else is
 * flying (keyed by cell, machine fingerprint, and trace digest, so a
 * key collision across different machines or traces is impossible),
 * simulates its claimed batch through the shared driver, and then
 * waits for the cells other requests claimed.
 *
 * Deadlines bound the *wait*, never the computation: a request whose
 * deadline expires while another request is still simulating its cell
 * reports expiry and leaves, and the simulation lands in the driver
 * cache for whoever asks next.  A claimed batch is always driven to
 * resolution (cache or quarantine) by its owner, so waiters cannot
 * deadlock on an abandoned claim — the owner releases and notifies
 * even when the driver throws.
 *
 * Stall detection: every claim records when it took off, and the
 * server's watchdog thread calls watchdogSweep() periodically.  A
 * claim in flight longer than the *soft* budget is marked stalled:
 * every waiter (current and future) is failed immediately with
 * CellStalled — a typed, retryable condition — instead of hanging on
 * the condition variable for as long as the owner is stuck.  A claim
 * past the *hard* budget is reported back so the server can
 * quarantine the cell through the driver's quarantineReport() path:
 * from then on the cell aggregates as n/a like any other poisoned
 * cell, and if the owner ever does finish, its published result
 * clears the quarantine again.
 *
 * Cancellation: every claim owns a CancelToken — a child of the
 * claiming request's token, so a request whose deadline expires (or
 * that is cancelled outright) stops *its own* claimed simulations
 * within one chunk, while flights claimed by other requests are
 * untouched.  A flight past the watchdog's *cancel* budget (the
 * escalation rung above quarantine) has its token fired too: the
 * stuck worker is actively reclaimed instead of abandoned.  A
 * cancelled cell is left unresolved — never quarantined, never
 * retried here — and the next request that wants it re-runs it
 * cleanly; the thrower is the typed CellCancelled.
 */

#ifndef DDSC_SERVE_REGISTRY_HH
#define DDSC_SERVE_REGISTRY_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace ddsc::serve
{

/** How one resolve() call went. */
struct ResolveOutcome
{
    /** Cells this request did not compute because another in-flight
     *  request already was — the single-flight savings. */
    std::size_t coalesced = 0;
    /** True when the deadline expired before every cell resolved;
     *  the result must not be aggregated. */
    bool deadlineExpired = false;
};

/**
 * Thrown to a waiter when the cell it is waiting on was marked
 * stalled by the watchdog.  The serving layer turns this into the
 * typed (and retryable) ErrCode::Stalled — the owner may still
 * finish the cell and cache it for the retry.
 */
class CellStalled : public std::runtime_error
{
  public:
    CellStalled(const std::string &cache_key, std::uint64_t age_ms,
                std::uint64_t budget_ms)
        : std::runtime_error(
              "cell '" + cache_key + "' stalled: in flight for " +
              std::to_string(age_ms) + " ms (watchdog budget " +
              std::to_string(budget_ms) + " ms); retry shortly"),
          key(cache_key)
    {}

    const std::string key;
};

/** One stalled claim, as reported by watchdogSweep(). */
struct StalledFlight
{
    std::string cacheKey;       ///< driver cache key, e.g. "li/D/16"
    std::uint64_t ageMs = 0;    ///< time in flight when detected
};

/** What one watchdog sweep found (newly detected only — a claim is
 *  reported soft-stalled once, hard-stalled once, cancelled once). */
struct WatchdogReport
{
    std::vector<StalledFlight> stalled;      ///< past the soft budget
    std::vector<StalledFlight> hardStalled;  ///< past the hard budget
    /** Past the cancel budget: the flight's token was fired, so its
     *  owner's simulation unwinds at the next chunk boundary and the
     *  worker thread comes back. */
    std::vector<StalledFlight> cancelled;
};

/**
 * Single-flights cell resolution for one shared ExperimentDriver.
 * Thread-safe; one instance per server.
 */
class CellRegistry
{
  public:
    explicit CellRegistry(ExperimentDriver &driver) : driver_(driver)
    {}

    /**
     * Resolve every cell in @p cells (simulate, load from store, or
     * wait for another request's in-flight simulation), bounded by
     * @p deadline_ms of waiting (0 = wait forever).
     *
     * @p token, when valid, is the requesting session's cancel token:
     * each cell this request *claims* simulates under a child of it,
     * so the request's deadline or an explicit cancel stops exactly
     * its own claimed flights (within one chunk) — coalesced waits
     * are still bounded by @p deadline_ms alone, and flights owned by
     * other requests run on.
     *
     * @throws CellStalled when a cell this request would wait on has
     *         been marked stalled by the watchdog.
     * @throws CellCancelled when one of this request's own claimed
     *         simulations was cancelled (its deadline, or the
     *         watchdog's cancel rung).  The cell stays unresolved.
     */
    ResolveOutcome resolve(const std::vector<ExperimentCell> &cells,
                           std::uint64_t deadline_ms,
                           const support::CancelToken &token = {});

    /**
     * Scan the in-flight claims: mark (and report) claims older than
     * @p soft_budget_ms as stalled, waking every waiter so it can
     * fail with CellStalled; report claims older than
     * @p hard_budget_ms once for the caller to quarantine.  Claims
     * older than @p cancel_budget_ms (0 = never) get their flight
     * token fired — the escalation from "warn the waiters" through
     * "presume poisoned" to "take the worker back".  Called from the
     * server's watchdog thread.
     */
    WatchdogReport watchdogSweep(std::uint64_t soft_budget_ms,
                                 std::uint64_t hard_budget_ms,
                                 std::uint64_t cancel_budget_ms = 0);

    /** Total cells coalesced since construction. */
    std::uint64_t coalescedTotal() const;

    /** Cells in flight right now (the registry depth). */
    std::uint64_t inflightDepth() const;

    /** In-flight cells currently marked stalled. */
    std::uint64_t stalledCount() const;

  private:
    /** One in-flight claim. */
    struct Flight
    {
        std::string cacheKey;   ///< driver cache key ("li/D/16")
        std::chrono::steady_clock::time_point start;
        /** Child of the owner's request token; fired by the owner's
         *  deadline or the watchdog's cancel rung.  Always valid. */
        support::CancelToken token;
        bool stalled = false;       ///< past the soft budget
        bool quarantined = false;   ///< reported past the hard budget
        bool cancelSent = false;    ///< cancel rung fired already
        std::uint64_t budgetMs = 0; ///< the budget it overran (for
                                    ///< the CellStalled message)
    };

    /** The in-flight key: cell / fingerprint / trace digest. */
    std::string flightKey(const ExperimentCell &cell);

    ExperimentDriver &driver_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::string, Flight> inflight_;
    std::uint64_t coalescedTotal_ = 0;
};

} // namespace ddsc::serve

#endif // DDSC_SERVE_REGISTRY_HH
