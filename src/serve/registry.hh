/**
 * @file
 * Single-flight cell registry: when several concurrent requests need
 * the same not-yet-computed cell, exactly one of them simulates it
 * and the rest wait for that result.
 *
 * The ExperimentDriver is already safe under concurrent prefetch()
 * calls, but "safe" there means "both callers compute the cell and
 * the second publish is a no-op" — correct, and exactly the
 * duplicated work a resident server exists to avoid.  The registry
 * closes that gap: each request first claims the cells nobody else is
 * flying (keyed by cell, machine fingerprint, and trace digest, so a
 * key collision across different machines or traces is impossible),
 * simulates its claimed batch through the shared driver, and then
 * waits for the cells other requests claimed.
 *
 * Deadlines bound the *wait*, never the computation: a request whose
 * deadline expires while another request is still simulating its cell
 * reports expiry and leaves, and the simulation lands in the driver
 * cache for whoever asks next.  A claimed batch is always driven to
 * resolution (cache or quarantine) by its owner, so waiters cannot
 * deadlock on an abandoned claim — the owner releases and notifies
 * even when the driver throws.
 */

#ifndef DDSC_SERVE_REGISTRY_HH
#define DDSC_SERVE_REGISTRY_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace ddsc::serve
{

/** How one resolve() call went. */
struct ResolveOutcome
{
    /** Cells this request did not compute because another in-flight
     *  request already was — the single-flight savings. */
    std::size_t coalesced = 0;
    /** True when the deadline expired before every cell resolved;
     *  the result must not be aggregated. */
    bool deadlineExpired = false;
};

/**
 * Single-flights cell resolution for one shared ExperimentDriver.
 * Thread-safe; one instance per server.
 */
class CellRegistry
{
  public:
    explicit CellRegistry(ExperimentDriver &driver) : driver_(driver)
    {}

    /**
     * Resolve every cell in @p cells (simulate, load from store, or
     * wait for another request's in-flight simulation), bounded by
     * @p deadline_ms of waiting (0 = wait forever).
     */
    ResolveOutcome resolve(const std::vector<ExperimentCell> &cells,
                           std::uint64_t deadline_ms);

    /** Total cells coalesced since construction. */
    std::uint64_t coalescedTotal() const;

  private:
    /** The in-flight key: cell / fingerprint / trace digest. */
    std::string flightKey(const ExperimentCell &cell);

    ExperimentDriver &driver_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::set<std::string> inflight_;
    std::uint64_t coalescedTotal_ = 0;
};

} // namespace ddsc::serve

#endif // DDSC_SERVE_REGISTRY_HH
