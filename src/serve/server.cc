#include "server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "support/logging.hh"
#include "support/shutdown.hh"

namespace ddsc::serve
{

Server::Server(const ServerOptions &opts)
    : opts_(opts),
      driver_(0, opts.testScale, opts.jobs),
      registry_(driver_),
      admission_(opts.admission)
{
    driver_.setBatched(opts_.batched);
    if (!opts_.traceDir.empty()) {
        driver_.setTraceDir(opts_.traceDir);
        driver_.setTraceBudgetMb(opts_.traceBudgetMb);
    }
    if (!opts_.cacheDir.empty()) {
        // A daemon restart over its existing store is the normal warm
        // start — no --resume gate like the one-shot CLI has.
        store_ = std::make_unique<ResultStore>(opts_.cacheDir);
        driver_.attachStore(store_.get());
    }
    listener_ = net::TcpListener::bindLocal(opts_.port, opts_.backlog);
    if (::pipe2(stopPipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
        // Without the self-pipe, stop() would fall back to a flag the
        // blocked poll() never notices — a server that cannot be told
        // to drain.  pipe2 only fails when the process is out of fds,
        // which is not a state to limp along in.
        ddsc_fatal("ddsc-served: pipe2 failed: %s",
                   std::strerror(errno));
    }
}

Server::~Server()
{
    // run() joins every session before returning; a server destroyed
    // without run() has none.
    for (std::unique_ptr<Slot> &slot : sessions_) {
        if (slot->thread.joinable())
            slot->thread.join();
    }
    for (const int fd : stopPipe_) {
        if (fd >= 0)
            ::close(fd);
    }
}

void
Server::run()
{
    watchdog_ = std::thread([this]() { watchdogLoop(); });

    while (!draining_.load()) {
        reapSessions();

        pollfd fds[3];
        nfds_t nfds = 0;
        const std::size_t listenerSlot = nfds;
        fds[nfds++] = {listener_.fd(), POLLIN, 0};
        if (stopPipe_[0] >= 0)
            fds[nfds++] = {stopPipe_[0], POLLIN, 0};
        const int shutdownFd = support::shutdownFd();
        if (shutdownFd >= 0)
            fds[nfds++] = {shutdownFd, POLLIN, 0};

        const int ready = ::poll(fds, nfds, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;       // signal; loop re-checks the pipes
            break;
        }

        bool stopRequested = false;
        for (nfds_t i = 0; i < nfds; ++i) {
            if (i != listenerSlot && (fds[i].revents & POLLIN))
                stopRequested = true;
        }
        if (stopRequested || support::shutdownRequested())
            break;

        if (!(fds[listenerSlot].revents & POLLIN))
            continue;
        net::Fd conn = listener_.accept();
        if (!conn.valid())
            continue;

        reapSessions();
        if (liveSessions() >= opts_.maxSessions) {
            // Shed: answer *something* so the client knows to back
            // off, instead of letting it stall in a queue.  The hint
            // prices the retry the same way a request-level shed
            // would (admission's latency EWMA and queue depth).
            net::ErrorMsg err;
            err.code = net::ErrCode::Overloaded;
            err.message =
                "server at capacity (" +
                std::to_string(opts_.maxSessions) +
                " sessions); retry shortly";
            err.retryAfterMs = admission_.retryHintMs();
            std::string payload;
            err.encode(payload);
            net::writeFrame(conn.get(), net::MsgType::Error, payload);
            continue;           // conn closes on scope exit
        }

        auto slot = std::make_unique<Slot>();
        slot->session = std::make_unique<Session>(
            *this, std::move(conn), nextSessionId_++);
        Slot *raw = slot.get();
        activeSessions_.fetch_add(1);
        slot->thread = std::thread([this, raw]() {
            raw->session->run();
            activeSessions_.fetch_sub(1);
            raw->done.store(true);
        });
        sessions_.push_back(std::move(slot));
    }

    // Drain: no new connections, let in-flight requests reply, then
    // make the store durable and tidy.
    draining_.store(true);
    listener_.close();
    for (std::unique_ptr<Slot> &slot : sessions_) {
        if (!slot->done.load())
            slot->session->shutdownRead();
    }
    for (std::unique_ptr<Slot> &slot : sessions_) {
        if (slot->thread.joinable())
            slot->thread.join();
    }
    sessions_.clear();
    // The watchdog outlives the session join on purpose: a session
    // waiting on a stalled cell is failed by a sweep, which is what
    // lets the join above complete.  Only then is it stopped.
    {
        std::lock_guard<std::mutex> lock(watchdogMutex_);
        watchdogStop_ = true;
    }
    watchdogCv_.notify_all();
    if (watchdog_.joinable())
        watchdog_.join();
    if (store_)
        store_->compact();
}

void
Server::stop()
{
    if (stopPipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(stopPipe_[1], &byte, 1);
    } else {
        draining_.store(true);
    }
}

net::HealthInfo
Server::healthSnapshot() const
{
    using std::chrono::duration_cast;
    using std::chrono::milliseconds;
    net::HealthInfo health;
    health.uptimeMs = static_cast<std::uint64_t>(
        duration_cast<milliseconds>(std::chrono::steady_clock::now() -
                                    started_)
            .count());
    health.generation = opts_.generation;
    health.liveSessions = activeSessions_.load();
    health.quarantinedCells = driver_.quarantineCount();
    health.registryDepth = registry_.inflightDepth();
    health.stalledCells = registry_.stalledCount();
    health.storeRecords = store_ ? store_->size() : 0;
    health.watchdogBudgetMs = effectiveBudgetMs_.load();
    const TraceResidencyManager::Counters residency =
        driver_.traceResidency();
    health.traceMappedBytes = residency.mappedBytes;
    health.traceResidentBytes = residency.residentBytes;
    health.traceBudgetBytes = residency.budgetBytes;
    health.traceEvictions = residency.evictions;
    return health;
}

net::ServerInfo
Server::infoSnapshot() const
{
    net::ServerInfo info;
    info.versions = net::Hello::current();
    info.jobs = driver_.jobs();
    info.cachedCells = driver_.cachedCells();
    info.simulated = driver_.simulatedCells();
    info.storeHits = driver_.storeHits();
    info.coalesced = registry_.coalescedTotal();
    info.requestsServed = requestsServed_.load();
    info.activeSessions = activeSessions_.load();
    info.hasStore = store_ ? 1 : 0;
    if (store_)
        info.storePath = store_->path();
    return info;
}

std::uint64_t
Server::watchdogBudget() const
{
    if (opts_.watchdogBudgetMs != 0)
        return opts_.watchdogBudgetMs;
    // Adaptive: a cell in flight for many times the slowest cell ever
    // observed is stuck, not slow.  With no finished cell yet there
    // is no baseline — first cells on a cold server legitimately pay
    // trace materialization — so the sweep waits for history.
    const std::uint64_t maxNanos = driver_.maxCellWallNanos();
    if (maxNanos == 0)
        return 0;
    constexpr std::uint64_t kFloorMs = 2000;
    return std::max<std::uint64_t>(kFloorMs, 8 * (maxNanos / 1000000));
}

void
Server::watchdogLoop()
{
    constexpr auto kSweepInterval = std::chrono::milliseconds(100);
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(watchdogMutex_);
            watchdogCv_.wait_for(lock, kSweepInterval,
                                 [this]() { return watchdogStop_; });
            if (watchdogStop_)
                return;
        }
        const std::uint64_t soft = watchdogBudget();
        effectiveBudgetMs_.store(soft);
        if (soft == 0)
            continue;   // adaptive with no history yet
        const std::uint64_t cancel = opts_.cancelStalledMs != 0
                                         ? opts_.cancelStalledMs
                                         : soft * 64;
        const WatchdogReport report =
            registry_.watchdogSweep(soft, soft * 8, cancel);
        for (const StalledFlight &flight : report.stalled) {
            warn("watchdog: cell '%s' stalled (%llu ms in flight, "
                 "budget %llu ms); failing its waiters",
                 flight.cacheKey.c_str(),
                 static_cast<unsigned long long>(flight.ageMs),
                 static_cast<unsigned long long>(soft));
        }
        for (const StalledFlight &flight : report.hardStalled) {
            warn("watchdog: cell '%s' stuck for %llu ms (hard budget "
                 "%llu ms); provisionally quarantining",
                 flight.cacheKey.c_str(),
                 static_cast<unsigned long long>(flight.ageMs),
                 static_cast<unsigned long long>(soft * 8));
            driver_.quarantineCell(
                flight.cacheKey,
                "watchdog: stuck in flight for " +
                    std::to_string(flight.ageMs) + " ms (hard budget " +
                    std::to_string(soft * 8) + " ms)");
        }
        for (const StalledFlight &flight : report.cancelled) {
            warn("watchdog: cancelling stalled flight '%s' (%llu ms "
                 "in flight, cancel budget %llu ms); reclaiming its "
                 "worker",
                 flight.cacheKey.c_str(),
                 static_cast<unsigned long long>(flight.ageMs),
                 static_cast<unsigned long long>(cancel));
        }
    }
}

void
Server::reapSessions()
{
    for (std::size_t i = 0; i < sessions_.size();) {
        if (sessions_[i]->done.load()) {
            if (sessions_[i]->thread.joinable())
                sessions_[i]->thread.join();
            sessions_.erase(sessions_.begin() +
                            static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
}

std::size_t
Server::liveSessions() const
{
    std::size_t live = 0;
    for (const std::unique_ptr<Slot> &slot : sessions_) {
        if (!slot->done.load())
            ++live;
    }
    return live;
}

} // namespace ddsc::serve
