#include "assembler.hh"

#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>

#include "support/logging.hh"

namespace ddsc
{

namespace
{

/** Signed immediate range of the ISA (SPARC-like simm13). */
constexpr std::int64_t kImmMin = -4096;
constexpr std::int64_t kImmMax = 4095;
/** sethi immediate range: 20 bits shifted left by 12. */
constexpr std::int64_t kSethiMax = (std::int64_t{1} << 20) - 1;

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '.';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '.';
}

/** Parse "r5", "sp", "lr", "zero"; returns -1 when not a register. */
int
parseReg(std::string_view tok)
{
    if (tok == "zero")
        return kRegZero;
    if (tok == "sp")
        return kRegSp;
    if (tok == "lr")
        return kRegLink;
    if (tok.size() < 2 || tok.size() > 3 || tok[0] != 'r')
        return -1;
    unsigned value = 0;
    for (char c : tok.substr(1)) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return -1;
        value = value * 10 + static_cast<unsigned>(c - '0');
    }
    return value < kNumRegs ? static_cast<int>(value) : -1;
}

/** Parse a decimal or 0x-hex integer, with optional leading '-'. */
std::optional<std::int64_t>
parseInt(std::string_view tok)
{
    if (tok.empty())
        return std::nullopt;
    bool negative = false;
    if (tok.front() == '-') {
        negative = true;
        tok.remove_prefix(1);
        if (tok.empty())
            return std::nullopt;
    }
    int base = 10;
    if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
        base = 16;
        tok.remove_prefix(2);
    }
    std::int64_t value = 0;
    for (char c : tok) {
        int digit;
        if (std::isdigit(static_cast<unsigned char>(c)))
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return std::nullopt;
        value = value * base + digit;
    }
    return negative ? -value : value;
}

/** Split a statement's operand field on top-level commas. */
std::vector<std::string_view>
splitOperands(std::string_view s)
{
    std::vector<std::string_view> out;
    std::size_t depth = 0, start = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '[')
            ++depth;
        else if (s[i] == ']' && depth > 0)
            --depth;
        else if (s[i] == ',' && depth == 0) {
            out.push_back(trim(s.substr(start, i - start)));
            start = i + 1;
        }
    }
    const std::string_view last = trim(s.substr(start));
    if (!last.empty() || !out.empty())
        out.push_back(last);
    return out;
}

/** Conditional-branch mnemonics. */
const std::map<std::string_view, Cond> kBranchMnemonics = {
    {"beq", Cond::EQ},   {"bne", Cond::NE},
    {"blt", Cond::LT},   {"ble", Cond::LE},
    {"bgt", Cond::GT},   {"bge", Cond::GE},
    {"bltu", Cond::LTU}, {"bleu", Cond::LEU},
    {"bgtu", Cond::GTU}, {"bgeu", Cond::GEU},
    {"bneg", Cond::NEG}, {"bpos", Cond::POS},
};

/** Three-operand ALU mnemonics. */
const std::map<std::string_view, Opcode> kAluMnemonics = {
    {"add", Opcode::ADD},     {"sub", Opcode::SUB},
    {"addcc", Opcode::ADDCC}, {"subcc", Opcode::SUBCC},
    {"and", Opcode::AND},     {"or", Opcode::OR},
    {"xor", Opcode::XOR},     {"andn", Opcode::ANDN},
    {"andcc", Opcode::ANDCC}, {"orcc", Opcode::ORCC},
    {"xorcc", Opcode::XORCC},
    {"sll", Opcode::SLL},     {"srl", Opcode::SRL},
    {"sra", Opcode::SRA},
    {"mul", Opcode::MUL},     {"div", Opcode::DIV},
};

/** Memory-access mnemonics. */
const std::map<std::string_view, Opcode> kMemMnemonics = {
    {"ldw", Opcode::LDW}, {"ldb", Opcode::LDB},
    {"stw", Opcode::STW}, {"stb", Opcode::STB},
};

enum class StmtKind
{
    Instr,      // one source instruction (may expand to 1-2 encoded ones)
    Word,
    Byte,
    Space,
    Align,
    Equ,        // .equ NAME, value: a named constant
    SegText,
    SegData,
    Empty,
};

struct Statement
{
    StmtKind kind = StmtKind::Empty;
    int line = 0;
    std::string label;                  // optional leading label
    std::string mnemonic;
    std::vector<std::string> operands;  // raw operand text
    unsigned encodedSize = 0;           // instructions after expansion
};

/**
 * Assembler working state for one source unit.
 */
class Assembler
{
  public:
    explicit Assembler(std::string_view source) : source_(source) {}

    AsmResult
    run()
    {
        parseLines();
        if (result_.errors.empty())
            layout();
        if (result_.errors.empty())
            encode();
        if (result_.errors.empty())
            resolveEntry();
        return std::move(result_);
    }

  private:
    void
    error(int line, const std::string &message)
    {
        result_.errors.push_back({line, message});
    }

    // ---- pass 0: split into statements -------------------------------

    void
    parseLines()
    {
        std::size_t pos = 0;
        int line_no = 0;
        while (pos <= source_.size()) {
            const std::size_t nl = source_.find('\n', pos);
            std::string_view line = source_.substr(
                pos, nl == std::string_view::npos ? std::string_view::npos
                                                  : nl - pos);
            pos = nl == std::string_view::npos ? source_.size() + 1 : nl + 1;
            ++line_no;
            parseLine(line, line_no);
        }
    }

    void
    parseLine(std::string_view line, int line_no)
    {
        // Strip comments.
        const std::size_t semi = line.find_first_of(";#");
        if (semi != std::string_view::npos)
            line = line.substr(0, semi);
        line = trim(line);
        if (line.empty())
            return;

        Statement stmt;
        stmt.line = line_no;

        // Leading label?
        if (isIdentStart(line.front())) {
            std::size_t i = 1;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            if (i < line.size() && line[i] == ':') {
                stmt.label = std::string(line.substr(0, i));
                line = trim(line.substr(i + 1));
            }
        }

        if (line.empty()) {
            stmt.kind = StmtKind::Empty;
            statements_.push_back(std::move(stmt));
            return;
        }

        // Mnemonic / directive.
        std::size_t i = 0;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i]))) {
            ++i;
        }
        stmt.mnemonic = std::string(line.substr(0, i));
        const std::string_view rest = trim(line.substr(i));
        for (std::string_view opnd : splitOperands(rest))
            stmt.operands.emplace_back(opnd);

        if (stmt.mnemonic == ".text") {
            stmt.kind = StmtKind::SegText;
        } else if (stmt.mnemonic == ".data") {
            stmt.kind = StmtKind::SegData;
        } else if (stmt.mnemonic == ".word") {
            stmt.kind = StmtKind::Word;
        } else if (stmt.mnemonic == ".byte") {
            stmt.kind = StmtKind::Byte;
        } else if (stmt.mnemonic == ".space") {
            stmt.kind = StmtKind::Space;
        } else if (stmt.mnemonic == ".align") {
            stmt.kind = StmtKind::Align;
        } else if (stmt.mnemonic == ".equ") {
            stmt.kind = StmtKind::Equ;
        } else if (stmt.mnemonic[0] == '.') {
            error(line_no, "unknown directive '" + stmt.mnemonic + "'");
            return;
        } else {
            stmt.kind = StmtKind::Instr;
            stmt.encodedSize = expansionSize(stmt);
        }
        statements_.push_back(std::move(stmt));
    }

    /** Number of encoded instructions a source instruction expands to. */
    unsigned
    expansionSize(const Statement &stmt)
    {
        if (stmt.mnemonic == "la")
            return 2;
        if (stmt.mnemonic == "li" && stmt.operands.size() == 2) {
            const auto value = parseInt(stmt.operands[1]);
            if (!value)
                return 1;   // an error reported during encode()
            return liSize(*value);
        }
        return 1;
    }

    static unsigned
    liSize(std::int64_t value)
    {
        if (value >= kImmMin && value <= kImmMax)
            return 1;
        const auto u = static_cast<std::uint32_t>(value);
        return (u & 0xfff) != 0 ? 2 : 1;
    }

    // ---- pass 1: addresses and symbols --------------------------------

    void
    layout()
    {
        bool in_text = true;
        std::size_t text_index = 0;
        std::size_t data_offset = 0;

        for (Statement &stmt : statements_) {
            // .word data is 4-byte aligned; pad before binding any label
            // on the same line so the label names the padded location.
            if (stmt.kind == StmtKind::Word && !in_text)
                data_offset = (data_offset + 3) & ~std::size_t{3};
            if (!stmt.label.empty()) {
                const std::uint64_t value = in_text
                    ? Program::pcOf(text_index)
                    : kDataBase + data_offset;
                if (!symbols_.emplace(stmt.label, value).second)
                    error(stmt.line, "duplicate label '" + stmt.label + "'");
            }
            switch (stmt.kind) {
              case StmtKind::SegText:
                in_text = true;
                break;
              case StmtKind::SegData:
                in_text = false;
                break;
              case StmtKind::Instr:
                if (!in_text) {
                    error(stmt.line, "instruction in .data segment");
                    break;
                }
                text_index += stmt.encodedSize;
                break;
              case StmtKind::Word:
                data_offset += 4 * stmt.operands.size();
                break;
              case StmtKind::Byte:
                data_offset += stmt.operands.size();
                break;
              case StmtKind::Space: {
                const auto n = stmt.operands.size() == 1
                    ? parseInt(stmt.operands[0]) : std::nullopt;
                if (!n || *n < 0)
                    error(stmt.line, ".space needs a non-negative size");
                else
                    data_offset += static_cast<std::size_t>(*n);
                break;
              }
              case StmtKind::Align: {
                const auto n = stmt.operands.size() == 1
                    ? parseInt(stmt.operands[0]) : std::nullopt;
                if (!n || *n <= 0 || (*n & (*n - 1)) != 0) {
                    error(stmt.line, ".align needs a power-of-two size");
                } else {
                    const auto mask = static_cast<std::size_t>(*n) - 1;
                    data_offset = (data_offset + mask) & ~mask;
                }
                break;
              }
              case StmtKind::Equ: {
                if (stmt.operands.size() != 2) {
                    error(stmt.line, ".equ expects NAME, value");
                    break;
                }
                const auto value = parseInt(stmt.operands[1]);
                if (!value) {
                    error(stmt.line, ".equ value must be numeric");
                    break;
                }
                if (!symbols_.emplace(stmt.operands[0],
                                      static_cast<std::uint64_t>(
                                          *value)).second) {
                    error(stmt.line, "duplicate symbol '" +
                          stmt.operands[0] + "'");
                }
                break;
              }
              case StmtKind::Empty:
                break;
            }
        }
    }

    // ---- pass 2: encoding ---------------------------------------------

    void
    encode()
    {
        bool in_text = true;
        for (const Statement &stmt : statements_) {
            switch (stmt.kind) {
              case StmtKind::SegText:
                in_text = true;
                break;
              case StmtKind::SegData:
                in_text = false;
                break;
              case StmtKind::Instr:
                encodeInstr(stmt);
                break;
              case StmtKind::Word:
                dataAlign(4);
                for (const std::string &tok : stmt.operands)
                    emitWord(stmt, tok);
                break;
              case StmtKind::Byte:
                for (const std::string &tok : stmt.operands)
                    emitByte(stmt, tok);
                break;
              case StmtKind::Space: {
                const auto n = stmt.operands.size() == 1
                    ? parseInt(stmt.operands[0]) : std::nullopt;
                if (n && *n >= 0)
                    result_.program.data.resize(
                        result_.program.data.size() +
                        static_cast<std::size_t>(*n));
                break;
              }
              case StmtKind::Align: {
                const auto n = stmt.operands.size() == 1
                    ? parseInt(stmt.operands[0]) : std::nullopt;
                if (n && *n > 0 && (*n & (*n - 1)) == 0)
                    dataAlign(static_cast<std::size_t>(*n));
                break;
              }
              case StmtKind::Equ:     // handled entirely in layout()
              case StmtKind::Empty:
                break;
            }
            (void)in_text;
        }
    }

    void
    dataAlign(std::size_t boundary)
    {
        auto &data = result_.program.data;
        while (data.size() % boundary != 0)
            data.push_back(0);
    }

    void
    emitWord(const Statement &stmt, const std::string &tok)
    {
        std::uint32_t value = 0;
        if (const auto num = parseInt(tok)) {
            value = static_cast<std::uint32_t>(*num);
        } else if (const auto sym = lookup(tok)) {
            value = static_cast<std::uint32_t>(*sym);
        } else {
            error(stmt.line, "bad .word operand '" + tok + "'");
            return;
        }
        auto &data = result_.program.data;
        data.push_back(static_cast<std::uint8_t>(value));
        data.push_back(static_cast<std::uint8_t>(value >> 8));
        data.push_back(static_cast<std::uint8_t>(value >> 16));
        data.push_back(static_cast<std::uint8_t>(value >> 24));
    }

    void
    emitByte(const Statement &stmt, const std::string &tok)
    {
        const auto num = parseInt(tok);
        if (!num) {
            error(stmt.line, "bad .byte operand '" + tok + "'");
            return;
        }
        result_.program.data.push_back(static_cast<std::uint8_t>(*num));
    }

    std::optional<std::uint64_t>
    lookup(const std::string &name) const
    {
        const auto it = symbols_.find(name);
        if (it == symbols_.end())
            return std::nullopt;
        return it->second;
    }

    void
    push(Instruction inst)
    {
        result_.program.text.push_back(inst);
    }

    /** Parse a source-2 operand: register or simm13 immediate. */
    bool
    parseSrc2(const Statement &stmt, const std::string &tok,
              Instruction &inst)
    {
        if (const int reg = parseReg(tok); reg >= 0) {
            inst.useImm = false;
            inst.rs2 = static_cast<std::uint8_t>(reg);
            return true;
        }
        std::optional<std::int64_t> imm = parseInt(tok);
        if (!imm) {
            // Fall back to .equ constants.
            if (const auto sym = lookup(tok))
                imm = static_cast<std::int64_t>(*sym);
        }
        if (imm) {
            if (*imm < kImmMin || *imm > kImmMax) {
                error(stmt.line, "immediate " + tok +
                      " out of simm13 range (use li)");
                return false;
            }
            inst.useImm = true;
            inst.imm = static_cast<std::int32_t>(*imm);
            return true;
        }
        error(stmt.line, "bad operand '" + tok + "'");
        return false;
    }

    /** Parse "[rN]", "[rN + rM]", "[rN + imm]", "[rN - imm]". */
    bool
    parseMem(const Statement &stmt, const std::string &tok,
             Instruction &inst)
    {
        std::string_view s = tok;
        if (s.size() < 2 || s.front() != '[' || s.back() != ']') {
            error(stmt.line, "bad memory operand '" + tok + "'");
            return false;
        }
        s = trim(s.substr(1, s.size() - 2));
        // Find a top-level + or - separating base and offset.
        std::size_t split = std::string_view::npos;
        char sign = '+';
        for (std::size_t i = 1; i < s.size(); ++i) {
            if (s[i] == '+' || s[i] == '-') {
                split = i;
                sign = s[i];
                break;
            }
        }
        std::string_view base = split == std::string_view::npos
            ? s : trim(s.substr(0, split));
        const int base_reg = parseReg(base);
        if (base_reg < 0) {
            error(stmt.line, "bad base register in '" + tok + "'");
            return false;
        }
        inst.rs1 = static_cast<std::uint8_t>(base_reg);
        if (split == std::string_view::npos) {
            inst.useImm = true;
            inst.imm = 0;
            return true;
        }
        std::string off(trim(s.substr(split + 1)));
        if (sign == '-')
            off.insert(off.begin(), '-');
        return parseSrc2(stmt, off, inst);
    }

    bool
    parseTarget(const Statement &stmt, const std::string &tok,
                std::uint64_t &target)
    {
        if (const auto sym = lookup(tok)) {
            target = *sym;
            return true;
        }
        if (const auto num = parseInt(tok)) {
            target = static_cast<std::uint64_t>(*num);
            return true;
        }
        error(stmt.line, "undefined target '" + tok + "'");
        return false;
    }

    bool
    expectOperands(const Statement &stmt, std::size_t n)
    {
        if (stmt.operands.size() == n)
            return true;
        error(stmt.line, "'" + stmt.mnemonic + "' expects " +
              std::to_string(n) + " operand(s), got " +
              std::to_string(stmt.operands.size()));
        return false;
    }

    bool
    parseDestReg(const Statement &stmt, const std::string &tok,
                 Instruction &inst)
    {
        const int reg = parseReg(tok);
        if (reg < 0) {
            error(stmt.line, "bad register '" + tok + "'");
            return false;
        }
        inst.rd = static_cast<std::uint8_t>(reg);
        return true;
    }

    void
    encodeInstr(const Statement &stmt)
    {
        const std::string &m = stmt.mnemonic;
        Instruction inst;

        if (const auto alu = kAluMnemonics.find(m);
            alu != kAluMnemonics.end()) {
            inst.op = alu->second;
            if (!expectOperands(stmt, 3))
                return;
            if (!parseDestReg(stmt, stmt.operands[0], inst))
                return;
            const int rs1 = parseReg(stmt.operands[1]);
            if (rs1 < 0) {
                error(stmt.line, "bad register '" + stmt.operands[1] + "'");
                return;
            }
            inst.rs1 = static_cast<std::uint8_t>(rs1);
            if (!parseSrc2(stmt, stmt.operands[2], inst))
                return;
            push(inst);
            return;
        }

        if (const auto mem = kMemMnemonics.find(m);
            mem != kMemMnemonics.end()) {
            inst.op = mem->second;
            if (!expectOperands(stmt, 2))
                return;
            if (!parseDestReg(stmt, stmt.operands[0], inst))
                return;
            if (!parseMem(stmt, stmt.operands[1], inst))
                return;
            push(inst);
            return;
        }

        if (const auto br = kBranchMnemonics.find(m);
            br != kBranchMnemonics.end()) {
            inst.op = Opcode::BCC;
            inst.cond = br->second;
            if (!expectOperands(stmt, 1))
                return;
            if (!parseTarget(stmt, stmt.operands[0], inst.target))
                return;
            push(inst);
            return;
        }

        if (m == "mov") {
            inst.op = Opcode::MOV;
            if (!expectOperands(stmt, 2))
                return;
            if (!parseDestReg(stmt, stmt.operands[0], inst))
                return;
            if (!parseSrc2(stmt, stmt.operands[1], inst))
                return;
            push(inst);
            return;
        }

        if (m == "sethi") {
            inst.op = Opcode::SETHI;
            if (!expectOperands(stmt, 2))
                return;
            if (!parseDestReg(stmt, stmt.operands[0], inst))
                return;
            const auto imm = parseInt(stmt.operands[1]);
            if (!imm || *imm < 0 || *imm > kSethiMax) {
                error(stmt.line, "sethi immediate out of range");
                return;
            }
            inst.useImm = true;
            inst.imm = static_cast<std::int32_t>(*imm);
            push(inst);
            return;
        }

        if (m == "inc" || m == "dec") {
            // inc/dec rN  ==  add/sub rN, rN, 1
            inst.op = m == "inc" ? Opcode::ADD : Opcode::SUB;
            if (!expectOperands(stmt, 1))
                return;
            if (!parseDestReg(stmt, stmt.operands[0], inst))
                return;
            inst.rs1 = inst.rd;
            inst.useImm = true;
            inst.imm = 1;
            push(inst);
            return;
        }

        if (m == "neg") {
            // neg rd, rs  ==  sub rd, r0, rs
            inst.op = Opcode::SUB;
            if (!expectOperands(stmt, 2))
                return;
            if (!parseDestReg(stmt, stmt.operands[0], inst))
                return;
            inst.rs1 = kRegZero;
            if (!parseSrc2(stmt, stmt.operands[1], inst))
                return;
            push(inst);
            return;
        }

        if (m == "not") {
            // not rd, rs  ==  xor rd, rs, -1
            inst.op = Opcode::XOR;
            if (!expectOperands(stmt, 2))
                return;
            if (!parseDestReg(stmt, stmt.operands[0], inst))
                return;
            const int rs1 = parseReg(stmt.operands[1]);
            if (rs1 < 0) {
                error(stmt.line, "bad register '" + stmt.operands[1] +
                      "'");
                return;
            }
            inst.rs1 = static_cast<std::uint8_t>(rs1);
            inst.useImm = true;
            inst.imm = -1;
            push(inst);
            return;
        }

        if (m == "cmp") {
            // cmp a, b  ==  subcc r0, a, b
            inst.op = Opcode::SUBCC;
            inst.rd = kRegZero;
            if (!expectOperands(stmt, 2))
                return;
            const int rs1 = parseReg(stmt.operands[0]);
            if (rs1 < 0) {
                error(stmt.line, "bad register '" + stmt.operands[0] + "'");
                return;
            }
            inst.rs1 = static_cast<std::uint8_t>(rs1);
            if (!parseSrc2(stmt, stmt.operands[1], inst))
                return;
            push(inst);
            return;
        }

        if (m == "li") {
            if (!expectOperands(stmt, 2))
                return;
            Instruction scratch;
            if (!parseDestReg(stmt, stmt.operands[0], scratch))
                return;
            const auto value = parseInt(stmt.operands[1]);
            if (!value) {
                error(stmt.line, "li needs a numeric constant (use la "
                      "for labels)");
                return;
            }
            emitLoadImmediate(scratch.rd, *value);
            return;
        }

        if (m == "la") {
            if (!expectOperands(stmt, 2))
                return;
            Instruction scratch;
            if (!parseDestReg(stmt, stmt.operands[0], scratch))
                return;
            const auto sym = lookup(stmt.operands[1]);
            if (!sym) {
                error(stmt.line, "undefined label '" + stmt.operands[1] +
                      "'");
                return;
            }
            // Always a sethi/or pair so expansionSize() stays constant.
            const auto addr = static_cast<std::uint32_t>(*sym);
            Instruction hi;
            hi.op = Opcode::SETHI;
            hi.rd = scratch.rd;
            hi.useImm = true;
            hi.imm = static_cast<std::int32_t>(addr >> 12);
            push(hi);
            Instruction lo;
            lo.op = Opcode::OR;
            lo.rd = scratch.rd;
            lo.rs1 = scratch.rd;
            lo.useImm = true;
            lo.imm = static_cast<std::int32_t>(addr & 0xfff);
            push(lo);
            return;
        }

        if (m == "ba") {
            inst.op = Opcode::BA;
            if (!expectOperands(stmt, 1))
                return;
            if (!parseTarget(stmt, stmt.operands[0], inst.target))
                return;
            push(inst);
            return;
        }

        if (m == "call") {
            inst.op = Opcode::CALL;
            if (!expectOperands(stmt, 1))
                return;
            if (!parseTarget(stmt, stmt.operands[0], inst.target))
                return;
            push(inst);
            return;
        }

        if (m == "jmpi") {
            inst.op = Opcode::JMPI;
            if (!expectOperands(stmt, 1))
                return;
            if (!parseMem(stmt, stmt.operands[0], inst))
                return;
            push(inst);
            return;
        }

        if (m == "calli") {
            inst.op = Opcode::CALLI;
            if (!expectOperands(stmt, 1))
                return;
            if (!parseMem(stmt, stmt.operands[0], inst))
                return;
            push(inst);
            return;
        }

        if (m == "ret") {
            inst.op = Opcode::RET;
            if (!expectOperands(stmt, 0))
                return;
            push(inst);
            return;
        }

        if (m == "halt") {
            inst.op = Opcode::HALT;
            if (!expectOperands(stmt, 0))
                return;
            push(inst);
            return;
        }

        if (m == "nop") {
            inst.op = Opcode::NOP;
            if (!expectOperands(stmt, 0))
                return;
            push(inst);
            return;
        }

        error(stmt.line, "unknown mnemonic '" + m + "'");
    }

    void
    emitLoadImmediate(std::uint8_t rd, std::int64_t value)
    {
        if (value >= kImmMin && value <= kImmMax) {
            Instruction inst;
            inst.op = Opcode::MOV;
            inst.rd = rd;
            inst.useImm = true;
            inst.imm = static_cast<std::int32_t>(value);
            push(inst);
            return;
        }
        const auto u = static_cast<std::uint32_t>(value);
        Instruction hi;
        hi.op = Opcode::SETHI;
        hi.rd = rd;
        hi.useImm = true;
        hi.imm = static_cast<std::int32_t>(u >> 12);
        push(hi);
        if ((u & 0xfff) != 0) {
            Instruction lo;
            lo.op = Opcode::OR;
            lo.rd = rd;
            lo.rs1 = rd;
            lo.useImm = true;
            lo.imm = static_cast<std::int32_t>(u & 0xfff);
            push(lo);
        }
    }

    void
    resolveEntry()
    {
        if (result_.program.text.empty()) {
            result_.errors.push_back({0, "program has no instructions"});
            return;
        }
        if (const auto main_sym = lookup("main"))
            result_.program.entry = *main_sym;
        else
            result_.program.entry = kTextBase;
    }

    std::string_view source_;
    std::vector<Statement> statements_;
    std::map<std::string, std::uint64_t> symbols_;
    AsmResult result_;
};

} // anonymous namespace

std::string
AsmResult::errorText() const
{
    std::ostringstream out;
    for (const AsmError &e : errors)
        out << e.toString() << '\n';
    return out.str();
}

AsmResult
assemble(std::string_view source)
{
    return Assembler(source).run();
}

Program
assembleOrDie(std::string_view source)
{
    AsmResult result = assemble(source);
    if (!result.ok())
        ddsc_fatal("assembly failed:\n%s", result.errorText().c_str());
    return std::move(result.program);
}

} // namespace ddsc
