/**
 * @file
 * A two-pass assembler for the ddsc mini ISA.
 *
 * The workloads under src/workloads are written in this assembly
 * language.  Syntax summary:
 *
 *     ; comment (also #)
 *     .text                  ; switch to the text segment (default)
 *     .data                  ; switch to the data segment
 *     .word v, v, ...        ; 32-bit values (numbers or label addresses)
 *     .byte v, v, ...        ; 8-bit values
 *     .space n               ; n zero bytes
 *     .align n               ; pad the data segment to an n-byte boundary
 *
 *     main:                  ; labels; "main" is the entry point
 *         add   r1, r2, r3
 *         add   r1, r2, 12   ; simm13 immediates: -4096..4095
 *         subcc r0, r1, r2   ; cc-setting variants
 *         cmp   r1, r2       ; pseudo: subcc r0, r1, r2
 *         mov   r1, r2       ; also mov r1, imm
 *         sethi r1, 0x12345  ; r1 = imm << 12
 *         li    r1, 0xdeadbeef   ; pseudo: mov, or sethi+or
 *         la    r1, buffer   ; pseudo: sethi+or of a label address
 *         sll   r1, r2, 3
 *         ldw   r1, [r2 + 8] ; also [r2 + r3] and [r2]
 *         stw   r1, [r2 + r3]
 *         beq   target       ; beq bne blt ble bgt bge bltu bleu
 *         ba    target       ;   bgtu bgeu bneg bpos
 *         call  function     ; writes the link register r15
 *         ret                ; returns through r15
 *         jmpi  [r1 + 0]     ; indirect jump
 *         halt
 *
 * Registers: r0..r31 with aliases zero (r0), sp (r14), lr (r15).
 * The 13-bit immediate limit is deliberate: like SPARC, wide constants
 * require a sethi/or pair, which is one of the collapsible idioms the
 * paper's Table 5 reports (mvi-lgri).
 */

#ifndef DDSC_MASM_ASSEMBLER_HH
#define DDSC_MASM_ASSEMBLER_HH

#include <string>
#include <string_view>
#include <vector>

#include "isa/instruction.hh"

namespace ddsc
{

/** One assembly diagnostic. */
struct AsmError
{
    int line;               ///< 1-based source line
    std::string message;

    std::string
    toString() const
    {
        return "line " + std::to_string(line) + ": " + message;
    }
};

/** Result of assembling a source string. */
struct AsmResult
{
    Program program;
    std::vector<AsmError> errors;

    bool ok() const { return errors.empty(); }

    /** All diagnostics joined by newlines. */
    std::string errorText() const;
};

/**
 * Assemble @p source.  Never throws; syntax problems are reported in
 * the result's error list and the program is left incomplete.
 */
AsmResult assemble(std::string_view source);

/**
 * Assemble @p source and fatal() with the diagnostics when it fails.
 * This is the entry point the built-in workloads use: their sources are
 * compiled into the binary, so failure is a programming error.
 */
Program assembleOrDie(std::string_view source);

} // namespace ddsc

#endif // DDSC_MASM_ASSEMBLER_HH
