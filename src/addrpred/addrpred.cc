#include "addrpred.hh"

#include "support/logging.hh"

namespace ddsc
{

std::string_view
loadClassName(LoadClass c)
{
    switch (c) {
      case LoadClass::Ready: return "ready";
      case LoadClass::PredictedCorrect: return "predicted-correctly";
      case LoadClass::PredictedIncorrect: return "predicted-incorrectly";
      case LoadClass::NotPredicted: return "not-predicted";
    }
    return "?";
}

StrideAddressPredictor::StrideAddressPredictor(unsigned index_bits,
                                               unsigned confidence_threshold)
    : indexBits_(index_bits),
      threshold_(confidence_threshold),
      table_(std::size_t{1} << index_bits)
{
    ddsc_assert(index_bits >= 1 && index_bits <= 24,
                "unreasonable table size 2^%u", index_bits);
}

std::size_t
StrideAddressPredictor::indexOf(std::uint64_t pc) const
{
    // Word-aligned instructions: the low 2 bits carry no information,
    // so the "14 least significant bits" of the paper reduce to a
    // 12-bit index over pc >> 2.
    return (pc >> 2) & ((std::size_t{1} << indexBits_) - 1);
}

std::uint64_t
StrideAddressPredictor::predictedAddr(const Entry &e) const
{
    return e.lastAddr + static_cast<std::int64_t>(e.stride);
}

AddrPrediction
StrideAddressPredictor::predict(std::uint64_t pc)
{
    const Entry &e = table_[indexOf(pc)];
    AddrPrediction p;
    p.usable = e.valid && e.confidence.value() > threshold_;
    p.addr = predictedAddr(e);
    return p;
}

void
StrideAddressPredictor::update(std::uint64_t pc, std::uint64_t actual)
{
    Entry &e = table_[indexOf(pc)];

    if (!e.valid) {
        e.valid = true;
        e.lastAddr = actual;
        e.stride = 0;
        e.lastDelta = 0;
        e.confidence.set(0);
        return;
    }

    // Confidence tracks whether the table would have predicted this
    // access correctly: +1 on correct, -2 on wrong (saturating).
    if (predictedAddr(e) == actual)
        e.confidence.increment(1);
    else
        e.confidence.decrement(2);

    // Two-delta: commit a new stride only after seeing the same delta
    // twice in a row, which filters one-off jumps in the access pattern.
    const auto delta = static_cast<std::int32_t>(actual - e.lastAddr);
    if (delta == e.lastDelta)
        e.stride = delta;
    e.lastDelta = delta;
    e.lastAddr = actual;
}

void
StrideAddressPredictor::reset()
{
    for (auto &e : table_)
        e = Entry{};
}

LastValueAddressPredictor::LastValueAddressPredictor(
    unsigned index_bits, unsigned confidence_threshold)
    : indexBits_(index_bits),
      threshold_(confidence_threshold),
      table_(std::size_t{1} << index_bits)
{
    ddsc_assert(index_bits >= 1 && index_bits <= 24,
                "unreasonable table size 2^%u", index_bits);
}

std::size_t
LastValueAddressPredictor::indexOf(std::uint64_t pc) const
{
    return (pc >> 2) & ((std::size_t{1} << indexBits_) - 1);
}

AddrPrediction
LastValueAddressPredictor::predict(std::uint64_t pc)
{
    const Entry &e = table_[indexOf(pc)];
    AddrPrediction p;
    p.usable = e.valid && e.confidence.value() > threshold_;
    p.addr = e.lastAddr;
    return p;
}

void
LastValueAddressPredictor::update(std::uint64_t pc, std::uint64_t actual)
{
    Entry &e = table_[indexOf(pc)];
    if (!e.valid) {
        e.valid = true;
        e.lastAddr = actual;
        e.confidence.set(0);
        return;
    }
    if (e.lastAddr == actual)
        e.confidence.increment(1);
    else
        e.confidence.decrement(2);
    e.lastAddr = actual;
}

void
LastValueAddressPredictor::reset()
{
    for (auto &e : table_)
        e = Entry{};
}

ContextAddressPredictor::ContextAddressPredictor(
    unsigned index_bits, unsigned context_bits,
    unsigned confidence_threshold)
    : indexBits_(index_bits),
      contextBits_(context_bits),
      threshold_(confidence_threshold),
      history_(std::size_t{1} << index_bits),
      contexts_(std::size_t{1} << context_bits)
{
    ddsc_assert(index_bits >= 1 && index_bits <= 24,
                "unreasonable table size 2^%u", index_bits);
    ddsc_assert(context_bits >= 1 && context_bits <= 24,
                "unreasonable context size 2^%u", context_bits);
}

std::size_t
ContextAddressPredictor::indexOf(std::uint64_t pc) const
{
    return (pc >> 2) & ((std::size_t{1} << indexBits_) - 1);
}

std::size_t
ContextAddressPredictor::contextOf(const HistoryEntry &entry) const
{
    // Mix the pc-local delta history; the pc itself is deliberately
    // excluded so loads sharing an access pattern share training.
    std::uint64_t h = static_cast<std::uint32_t>(entry.delta1);
    h = h * 0x9e3779b97f4a7c15ull +
        static_cast<std::uint32_t>(entry.delta2);
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ull;
    return (h >> 16) & ((std::size_t{1} << contextBits_) - 1);
}

AddrPrediction
ContextAddressPredictor::predict(std::uint64_t pc)
{
    const HistoryEntry &e = history_[indexOf(pc)];
    AddrPrediction p;
    if (e.seen < 3) {
        p.usable = false;
        p.addr = e.lastAddr;
        return p;
    }
    const ContextEntry &ctx = contexts_[contextOf(e)];
    p.usable = ctx.confidence.value() > threshold_;
    p.addr = e.lastAddr + static_cast<std::int64_t>(ctx.delta);
    return p;
}

void
ContextAddressPredictor::update(std::uint64_t pc, std::uint64_t actual)
{
    HistoryEntry &e = history_[indexOf(pc)];
    if (e.seen == 0) {
        e.lastAddr = actual;
        e.seen = 1;
        return;
    }
    const auto delta = static_cast<std::int32_t>(actual - e.lastAddr);
    if (e.seen >= 3) {
        // Train the context the prediction came from.
        ContextEntry &ctx = contexts_[contextOf(e)];
        if (ctx.delta == delta) {
            ctx.confidence.increment(1);
        } else {
            ctx.confidence.decrement(2);
            if (ctx.confidence.value() == 0)
                ctx.delta = delta;      // replace on loss of confidence
        }
    }
    e.delta2 = e.delta1;
    e.delta1 = delta;
    e.lastAddr = actual;
    if (e.seen < 3)
        ++e.seen;
}

void
ContextAddressPredictor::reset()
{
    for (auto &e : history_)
        e = HistoryEntry{};
    for (auto &c : contexts_)
        c = ContextEntry{};
}

std::string_view
addrPredKindName(AddrPredKind kind)
{
    switch (kind) {
      case AddrPredKind::TwoDelta: return "two-delta stride";
      case AddrPredKind::LastValue: return "last-value";
      case AddrPredKind::Context: return "context (order-2 FCM)";
    }
    return "?";
}

std::unique_ptr<AddressPredictor>
makeAddressPredictor(AddrPredKind kind, unsigned index_bits,
                     unsigned confidence_threshold)
{
    switch (kind) {
      case AddrPredKind::TwoDelta:
        return std::make_unique<StrideAddressPredictor>(
            index_bits, confidence_threshold);
      case AddrPredKind::LastValue:
        return std::make_unique<LastValueAddressPredictor>(
            index_bits, confidence_threshold);
      case AddrPredKind::Context:
        return std::make_unique<ContextAddressPredictor>(
            index_bits, index_bits + 2, confidence_threshold);
    }
    ddsc_panic("unknown predictor kind");
}

} // namespace ddsc
