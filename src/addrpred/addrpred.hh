/**
 * @file
 * Load-address prediction for d-speculation.
 *
 * The paper's mechanism: a 4096-entry direct-mapped table indexed by the
 * 14 least-significant bits of the load's instruction address (bits 13:2,
 * since instructions are word aligned), running the *two-delta* strategy
 * of Eickemeyer & Vassiliadis with 32-bit deltas.  Each entry carries a
 * 2-bit saturating confidence counter initialized to 0, incremented by 1
 * on a correct address prediction and decremented by 2 on a wrong one;
 * a predicted address is used for speculative issue only when the counter
 * value is greater than 1.
 */

#ifndef DDSC_ADDRPRED_ADDRPRED_HH
#define DDSC_ADDRPRED_ADDRPRED_HH

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "support/sat_counter.hh"

namespace ddsc
{

/**
 * The four dynamic load categories reported in Tables 3 and 4.
 */
enum class LoadClass : std::uint8_t
{
    Ready,              ///< address available early; no prediction needed
    PredictedCorrect,   ///< speculated with the right address
    PredictedIncorrect, ///< speculated with a wrong address
    NotPredicted,       ///< low confidence; waited for the address
};

/** Number of load classes. */
constexpr unsigned kNumLoadClasses = 4;

/** Display name of a load class. */
std::string_view loadClassName(LoadClass c);

/** Result of an address-prediction lookup. */
struct AddrPrediction
{
    bool usable = false;        ///< confidence counter > 1
    std::uint64_t addr = 0;     ///< predicted effective address
};

/**
 * Address predictor interface.  Two implementations: the realistic
 * two-delta stride table and the ideal oracle used by configuration E.
 */
class AddressPredictor
{
  public:
    virtual ~AddressPredictor() = default;

    /** Look up a prediction for the load at @p pc. */
    virtual AddrPrediction predict(std::uint64_t pc) = 0;

    /**
     * Train with the true effective address.  Every dynamic load
     * trains the table, whether or not its prediction was used.
     */
    virtual void update(std::uint64_t pc, std::uint64_t actual) = 0;

    /** Clear all state. */
    virtual void reset() = 0;
};

/**
 * The realistic two-delta stride predictor.
 */
class StrideAddressPredictor : public AddressPredictor
{
  public:
    /**
     * @param index_bits log2 of the entry count (default 12 = 4096).
     * @param confidence_threshold predict only when counter > this.
     */
    explicit StrideAddressPredictor(unsigned index_bits = 12,
                                    unsigned confidence_threshold = 1);

    AddrPrediction predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, std::uint64_t actual) override;
    void reset() override;

    /** Entry count (for reporting). */
    std::size_t entries() const { return table_.size(); }

  private:
    struct Entry
    {
        std::uint64_t lastAddr = 0;
        std::int32_t stride = 0;     ///< the predicting delta (32 bits)
        std::int32_t lastDelta = 0;  ///< most recent delta observed
        SatCounter confidence{2, 0};
        bool valid = false;
    };

    std::size_t indexOf(std::uint64_t pc) const;
    std::uint64_t predictedAddr(const Entry &e) const;

    unsigned indexBits_;
    unsigned threshold_;
    std::vector<Entry> table_;
};

/**
 * Last-value address predictor: predicts that a load repeats its
 * previous effective address.  The degenerate stride-0 case; useful as
 * a baseline for the paper's "improve the load-speculation scheme"
 * future-work direction.
 */
class LastValueAddressPredictor : public AddressPredictor
{
  public:
    explicit LastValueAddressPredictor(unsigned index_bits = 12,
                                       unsigned confidence_threshold = 1);

    AddrPrediction predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, std::uint64_t actual) override;
    void reset() override;

  private:
    struct Entry
    {
        std::uint64_t lastAddr = 0;
        SatCounter confidence{2, 0};
        bool valid = false;
    };

    std::size_t indexOf(std::uint64_t pc) const;

    unsigned indexBits_;
    unsigned threshold_;
    std::vector<Entry> table_;
};

/**
 * Context-based (finite-context-method) address predictor: a
 * first-level table keyed by load pc records the last address and the
 * last two address deltas; a shared second-level table keyed by the
 * hashed delta history predicts the next delta.  Captures repeating
 * non-constant stride sequences (alternating strides, periodic pointer
 * walks) that defeat the two-delta table -- the style of mechanism the
 * paper's conclusions call for.
 */
class ContextAddressPredictor : public AddressPredictor
{
  public:
    /**
     * @param index_bits log2 first-level entries.
     * @param context_bits log2 second-level entries.
     * @param confidence_threshold predict only when counter > this.
     */
    explicit ContextAddressPredictor(unsigned index_bits = 12,
                                     unsigned context_bits = 14,
                                     unsigned confidence_threshold = 1);

    AddrPrediction predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, std::uint64_t actual) override;
    void reset() override;

  private:
    struct HistoryEntry
    {
        std::uint64_t lastAddr = 0;
        std::int32_t delta1 = 0;     ///< most recent delta
        std::int32_t delta2 = 0;     ///< delta before that
        std::uint8_t seen = 0;       ///< updates observed (saturates)
    };

    struct ContextEntry
    {
        std::int32_t delta = 0;
        SatCounter confidence{2, 0};
    };

    std::size_t indexOf(std::uint64_t pc) const;
    std::size_t contextOf(const HistoryEntry &entry) const;

    unsigned indexBits_;
    unsigned contextBits_;
    unsigned threshold_;
    std::vector<HistoryEntry> history_;
    std::vector<ContextEntry> contexts_;
};

/** Selectable realistic predictor kinds. */
enum class AddrPredKind
{
    TwoDelta,   ///< the paper's mechanism
    LastValue,
    Context,
};

/** Display name of a predictor kind. */
std::string_view addrPredKindName(AddrPredKind kind);

/** Build a realistic predictor of the given kind. */
std::unique_ptr<AddressPredictor>
makeAddressPredictor(AddrPredKind kind, unsigned index_bits = 12,
                     unsigned confidence_threshold = 1);

/**
 * Oracle predictor for configuration E: every load is predicted
 * correctly.  predict() cannot know the answer, so the simulator wires
 * the ideal case directly; this class exists so ablation code can swap
 * predictors polymorphically, with the oracle fed through setOracle().
 */
class IdealAddressPredictor : public AddressPredictor
{
  public:
    /** Supply the true address the next predict() should return. */
    void setOracle(std::uint64_t addr) { oracle_ = addr; }

    AddrPrediction
    predict(std::uint64_t) override
    {
        return {true, oracle_};
    }

    void update(std::uint64_t, std::uint64_t) override {}
    void reset() override { oracle_ = 0; }

  private:
    std::uint64_t oracle_ = 0;
};

} // namespace ddsc

#endif // DDSC_ADDRPRED_ADDRPRED_HH
