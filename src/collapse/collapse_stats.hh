/**
 * @file
 * Accounting for collapse events: the inputs to Figures 8-10 and
 * Tables 5-6 of the paper.
 */

#ifndef DDSC_COLLAPSE_COLLAPSE_STATS_HH
#define DDSC_COLLAPSE_COLLAPSE_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "collapse/rules.hh"
#include "support/stats.hh"

namespace ddsc
{

/**
 * One recorded collapse event: a consumer fused with 1 or 2 producers.
 */
struct CollapseEvent
{
    CollapseCategory category;
    unsigned groupSize;                     ///< 2 or 3 instructions
    /** e.g. "arri-brc"; borrowed bytes, valid only for the record()
     *  call (the simulator builds it in a stack buffer). */
    std::string_view signature;
    std::array<std::uint64_t, 2> distances; ///< per collapsed arc
    unsigned distanceCount;                 ///< valid entries above
};

/** Signature frequency table; the transparent comparator lets the hot
 *  path count a string_view without materializing a std::string. */
using SignatureMap = std::map<std::string, std::uint64_t, std::less<>>;

/**
 * Aggregated collapse statistics for one simulation run.
 */
class CollapseStats
{
  public:
    /** Record one event. */
    void record(const CollapseEvent &event);

    /** Note that an instruction became a member of >= 1 group. */
    void noteCollapsedInstruction() { ++collapsedInstructions_; }

    /** Total events. */
    std::uint64_t events() const { return events_; }

    /** Events of one category. */
    std::uint64_t
    eventsOf(CollapseCategory c) const
    {
        return byCategory_[static_cast<unsigned>(c)];
    }

    /** Percentage contribution of a category (Figure 9). */
    double pctOf(CollapseCategory c) const;

    /** Unique instructions participating in any group (Figure 8). */
    std::uint64_t collapsedInstructions() const
    {
        return collapsedInstructions_;
    }

    /** Distance distribution between collapsed instructions (Fig 10). */
    const Histogram &distances() const { return distances_; }

    /** Pair-signature frequency table (Table 5 input). */
    const SignatureMap &pairSignatures() const { return pairSignatures_; }

    /** Triple-signature frequency table (Table 6 input). */
    const SignatureMap &tripleSignatures() const
    {
        return tripleSignatures_;
    }

    /** Total pair events (Table 5 denominator). */
    std::uint64_t pairEvents() const { return pairEvents_; }

    /** Total triple events (Table 6 denominator). */
    std::uint64_t tripleEvents() const { return tripleEvents_; }

    /** Merge another run's statistics (cross-benchmark aggregation). */
    void merge(const CollapseStats &other);

    /**
     * Top-N signatures of the requested group size by frequency, as
     * (signature, percent-of-size-class) pairs.
     */
    std::vector<std::pair<std::string, double>>
    topSignatures(unsigned group_size, std::size_t n) const;

    /** Append a canonical byte encoding (persistent result cache). */
    void encode(std::string &out) const;

    /** Rebuild from an encoding; false (and *this reset) on truncated
     *  or inconsistent bytes. */
    bool decode(support::wire::Reader &in);

  private:
    std::uint64_t events_ = 0;
    std::uint64_t pairEvents_ = 0;
    std::uint64_t tripleEvents_ = 0;
    std::uint64_t collapsedInstructions_ = 0;
    std::array<std::uint64_t, kNumCollapseCategories> byCategory_ = {};
    Histogram distances_;
    SignatureMap pairSignatures_;
    SignatureMap tripleSignatures_;
};

} // namespace ddsc

#endif // DDSC_COLLAPSE_COLLAPSE_STATS_HH
