#include "rules.hh"

#include "support/logging.hh"

namespace ddsc
{

ExprSize
ExprSize::of(const TraceRecord &rec)
{
    ExprSize size;
    // Raw slots and zero slots follow the same enumeration the record
    // uses for 0-op detection.
    unsigned raw = 0;
    unsigned non_zero = rec.nonZeroOperandCount();
    switch (rec.cls()) {
      case OpClass::Arith:
      case OpClass::Logic:
      case OpClass::Shift:
      case OpClass::Mul:
      case OpClass::Div:
      case OpClass::Load:
      case OpClass::IndirectJump:
        raw = 2;
        break;
      case OpClass::Move:
        raw = 1;
        break;
      case OpClass::Store:
        raw = 3;    // base, offset, data
        break;
      case OpClass::Branch:
        // A conditional branch has exactly one input: the condition
        // codes.  Model it as one (non-zero) slot so substituting the
        // cc producer consumes it, giving e.g. arrr-brc = 2 operands.
        raw = 1;
        non_zero = 1;
        break;
      default:
        raw = 0;
        non_zero = 0;
        break;
    }
    size.rawOperands = raw;
    size.nonZeroOperands = non_zero;
    size.instructions = 1;
    return size;
}

ExprSize
ExprSize::substitute(const ExprSize &consumer, const ExprSize &producer,
                     unsigned slots)
{
    ddsc_assert(slots >= 1 && slots <= 2, "bad substitution count %u",
                slots);
    ExprSize out;
    // Each referencing slot disappears and is replaced by a copy of the
    // producer's full operand list (Rc = Rb + Rb duplicates it).
    out.rawOperands = consumer.rawOperands - slots +
        slots * producer.rawOperands;
    out.nonZeroOperands = consumer.nonZeroOperands - slots +
        slots * producer.nonZeroOperands;
    out.instructions = consumer.instructions + producer.instructions;
    return out;
}

std::string_view
collapseCategoryName(CollapseCategory c)
{
    switch (c) {
      case CollapseCategory::ThreeOne: return "3-1";
      case CollapseCategory::FourOne: return "4-1";
      case CollapseCategory::ZeroOp: return "0-op";
    }
    return "?";
}

bool
CollapseRules::judge(const ExprSize &combined,
                     CollapseCategory &category) const
{
    if (combined.instructions > maxInstructions)
        return false;

    const unsigned effective = zeroOpDetection
        ? combined.nonZeroOperands : combined.rawOperands;
    if (effective > maxOperands)
        return false;

    if (zeroOpDetection && combined.rawOperands > maxOperands) {
        // Legal only thanks to zero-operand elimination.
        category = CollapseCategory::ZeroOp;
    } else if (combined.instructions == 2 &&
               combined.rawOperands <= narrowOperands) {
        category = CollapseCategory::ThreeOne;
    } else {
        // Triples, and pairs too wide for the 3-1 device.
        category = CollapseCategory::FourOne;
    }
    return true;
}

namespace
{

char
regLetter(std::uint8_t reg)
{
    return reg == kRegZero ? '0' : 'r';
}

char
src2Letter(const TraceRecord &rec)
{
    if (rec.useImm)
        return rec.imm == 0 ? '0' : 'i';
    return regLetter(rec.rs2);
}

} // anonymous namespace

std::size_t
appendInstructionSignature(const TraceRecord &rec, char *out)
{
    const std::string_view cls = opClassSignature(rec.cls());
    cls.copy(out, cls.size());
    char *p = out + cls.size();
    switch (rec.cls()) {
      case OpClass::Arith:
      case OpClass::Logic:
      case OpClass::Shift:
      case OpClass::Mul:
      case OpClass::Div:
        *p++ = regLetter(rec.rs1);
        *p++ = src2Letter(rec);
        break;
      case OpClass::Move:
        if (rec.op == Opcode::SETHI)
            *p++ = rec.imm == 0 ? '0' : 'i';
        else
            *p++ = src2Letter(rec);
        break;
      case OpClass::Load:
      case OpClass::Store:
        // Address slots only, matching the two-letter ld/st signatures
        // in the paper's tables.
        *p++ = regLetter(rec.rs1);
        *p++ = src2Letter(rec);
        break;
      case OpClass::Branch:
        break;      // plain "brc"
      default:
        break;
    }
    return static_cast<std::size_t>(p - out);
}

std::size_t
groupSignature(const TraceRecord *const *members, unsigned count,
               char *out)
{
    char *p = out;
    for (unsigned i = 0; i < count; ++i) {
        if (i > 0)
            *p++ = '-';
        p += appendInstructionSignature(*members[i], p);
    }
    return static_cast<std::size_t>(p - out);
}

std::string
instructionSignature(const TraceRecord &rec)
{
    char buf[kMaxInstructionSignature];
    return std::string(buf, appendInstructionSignature(rec, buf));
}

std::string
groupSignature(const TraceRecord *const *members, unsigned count)
{
    char buf[kMaxGroupSignature];
    return std::string(buf, groupSignature(members, count, buf));
}

} // namespace ddsc
