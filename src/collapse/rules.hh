/**
 * @file
 * Dependence-collapsing legality rules and dependence expressions.
 *
 * The paper's collapsing device executes 3-1 and 4-1 dependence
 * expressions over shift, arithmetic (not multiply/divide), logical and
 * move operations, plus the address generation of loads and stores and
 * the condition-code generation consumed by conditional branches.  Zero
 * operands (reads of r0 or zero immediates) are detected and shrink the
 * expression, enabling collapses that would otherwise exceed the device
 * width ("0-op" category).
 *
 * Terminology used here:
 *  - producer: the instruction whose result arc is being collapsed; must
 *    be an ALU-executable class (arith/logic/shift/move).
 *  - consumer: the instruction absorbing the producer's expression; any
 *    collapsible class.  For loads/stores only the *address* arcs are
 *    collapsible, for conditional branches only the cc arc.
 *  - group: the set of instructions fused into one compound operation,
 *    at most 3 (pairs and triples).
 */

#ifndef DDSC_COLLAPSE_RULES_HH
#define DDSC_COLLAPSE_RULES_HH

#include <cstdint>
#include <string>

#include "trace/record.hh"

namespace ddsc
{

/**
 * Operand-count summary of a (possibly compound) dependence expression.
 */
struct ExprSize
{
    unsigned rawOperands = 0;       ///< all leaf source slots
    unsigned nonZeroOperands = 0;   ///< slots after 0-op elimination
    unsigned instructions = 1;      ///< group member count

    /** The size of a single instruction's own expression. */
    static ExprSize of(const TraceRecord &rec);

    /**
     * The expression obtained by substituting @p producer into one
     * referencing slot of @p consumer (the slot itself disappears; the
     * producer's operands take its place).  @p slots is how many of the
     * consumer's slots reference the producer (1 normally, 2 for
     * patterns like Rc = Rb + Rb).
     */
    static ExprSize substitute(const ExprSize &consumer,
                               const ExprSize &producer,
                               unsigned slots = 1);
};

/** Collapse event categories reported in Figure 9. */
enum class CollapseCategory : std::uint8_t
{
    ThreeOne,   ///< pair whose expression fits the 3-1 device
    FourOne,    ///< triple, or a pair needing the 4-1 device
    ZeroOp,     ///< legal only because zero operands were discarded
};

/** Number of collapse categories. */
constexpr unsigned kNumCollapseCategories = 3;

/** Display name ("3-1", "4-1", "0-op"). */
std::string_view collapseCategoryName(CollapseCategory c);

/**
 * Tunable legality rules; defaults match the paper's model.
 */
struct CollapseRules
{
    /** Largest operand count the widest device accepts (4 = 4-1). */
    unsigned maxOperands = 4;
    /** Operand count handled by the narrow device (3 = 3-1). */
    unsigned narrowOperands = 3;
    /** Largest group size (3 = pairs and triples). */
    unsigned maxInstructions = 3;
    /** Discard zero operands when sizing expressions. */
    bool zeroOpDetection = true;

    /**
     * Prior-work restrictions (paper section 2: earlier interlock-
     * collapsing studies handled "only consecutive instructions within
     * a single basic block").  0 = unlimited distance; 1 = adjacent
     * dynamic instructions only.
     */
    std::uint64_t maxCollapseDistance = 0;
    /** Forbid collapsing across basic-block boundaries. */
    bool sameBasicBlockOnly = false;

    /** Can @p rec's result arc be absorbed by a collapsing device? */
    static bool
    producerEligible(const TraceRecord &rec)
    {
        switch (rec.cls()) {
          case OpClass::Arith:
          case OpClass::Logic:
          case OpClass::Shift:
          case OpClass::Move:
            return true;
          default:
            return false;
        }
    }

    /**
     * Can @p rec absorb a producer on the given arc kind?
     * @param address_arc true when the arc feeds address generation.
     * @param cc_arc true when the arc carries condition codes.
     */
    static bool
    consumerEligible(const TraceRecord &rec, bool address_arc, bool cc_arc)
    {
        switch (rec.cls()) {
          case OpClass::Arith:
          case OpClass::Logic:
          case OpClass::Shift:
          case OpClass::Move:
            return !address_arc && !cc_arc;
          case OpClass::Load:
          case OpClass::Store:
            return address_arc;
          case OpClass::Branch:
            return cc_arc;
          default:
            return false;
        }
    }

    /**
     * Judge a combined expression.  @return true when collapsible, and
     * set @p category accordingly.
     */
    bool judge(const ExprSize &combined, CollapseCategory &category) const;
};

/**
 * The paper's signature encoding for one instruction: operation-class
 * letters followed by one letter per source-operand slot, 'r' for a
 * register, 'i' for a non-zero immediate, and '0' for a zero operand
 * (r0 or a zero immediate).  Examples: arrr, arri, arr0, shri, mvi,
 * ldrr, lgr0, brc.  Loads and stores list only their address slots;
 * conditional branches have no slots (their input is the cc arc).
 */
std::string instructionSignature(const TraceRecord &rec);

/** Signature of a group, oldest first, e.g. "arri-arri-ldrr". */
std::string groupSignature(const TraceRecord *const *members,
                           unsigned count);

/** Longest possible group signature: three members of up to
 *  kMaxInstructionSignature bytes each plus two separators. */
constexpr std::size_t kMaxInstructionSignature = 7;
constexpr std::size_t kMaxGroupSignature =
    3 * kMaxInstructionSignature + 2;

/** Allocation-free variant for the simulator's collapse path: append
 *  the signature bytes of @p rec to @p out (>= kMaxInstructionSignature
 *  bytes) and return the count written. */
std::size_t appendInstructionSignature(const TraceRecord &rec, char *out);

/** Allocation-free groupSignature into @p out (>= kMaxGroupSignature
 *  bytes); returns the length. */
std::size_t groupSignature(const TraceRecord *const *members,
                           unsigned count, char *out);

} // namespace ddsc

#endif // DDSC_COLLAPSE_RULES_HH
