#include "collapse_stats.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ddsc
{

void
CollapseStats::record(const CollapseEvent &event)
{
    ++events_;
    ++byCategory_[static_cast<unsigned>(event.category)];
    for (unsigned i = 0; i < event.distanceCount; ++i)
        distances_.add(event.distances[i]);
    if (event.groupSize == 2) {
        ++pairEvents_;
        ++pairSignatures_[event.signature];
    } else {
        ddsc_assert(event.groupSize == 3, "group size %u", event.groupSize);
        ++tripleEvents_;
        ++tripleSignatures_[event.signature];
    }
}

double
CollapseStats::pctOf(CollapseCategory c) const
{
    return percent(static_cast<double>(eventsOf(c)),
                   static_cast<double>(events_));
}

void
CollapseStats::merge(const CollapseStats &other)
{
    events_ += other.events_;
    pairEvents_ += other.pairEvents_;
    tripleEvents_ += other.tripleEvents_;
    collapsedInstructions_ += other.collapsedInstructions_;
    for (unsigned i = 0; i < kNumCollapseCategories; ++i)
        byCategory_[i] += other.byCategory_[i];
    distances_.merge(other.distances_);
    for (const auto &[sig, count] : other.pairSignatures_)
        pairSignatures_[sig] += count;
    for (const auto &[sig, count] : other.tripleSignatures_)
        tripleSignatures_[sig] += count;
}

std::vector<std::pair<std::string, double>>
CollapseStats::topSignatures(unsigned group_size, std::size_t n) const
{
    const auto &table = group_size == 2 ? pairSignatures_
                                        : tripleSignatures_;
    const auto total = group_size == 2 ? pairEvents_ : tripleEvents_;
    std::vector<std::pair<std::string, std::uint64_t>> entries(
        table.begin(), table.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (entries.size() > n)
        entries.resize(n);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(entries.size());
    for (const auto &[sig, count] : entries) {
        out.emplace_back(sig, percent(static_cast<double>(count),
                                      static_cast<double>(total)));
    }
    return out;
}

} // namespace ddsc
