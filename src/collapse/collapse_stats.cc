#include "collapse_stats.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ddsc
{

namespace
{

/** Count @p sig without building a std::string unless it is new. */
void
bump(SignatureMap &map, std::string_view sig)
{
    const auto it = map.lower_bound(sig);
    if (it != map.end() && it->first == sig)
        ++it->second;
    else
        map.emplace_hint(it, std::string(sig), 1);
}

} // anonymous namespace

void
CollapseStats::record(const CollapseEvent &event)
{
    ++events_;
    ++byCategory_[static_cast<unsigned>(event.category)];
    for (unsigned i = 0; i < event.distanceCount; ++i)
        distances_.add(event.distances[i]);
    if (event.groupSize == 2) {
        ++pairEvents_;
        bump(pairSignatures_, event.signature);
    } else {
        ddsc_assert(event.groupSize == 3, "group size %u", event.groupSize);
        ++tripleEvents_;
        bump(tripleSignatures_, event.signature);
    }
}

double
CollapseStats::pctOf(CollapseCategory c) const
{
    return percent(static_cast<double>(eventsOf(c)),
                   static_cast<double>(events_));
}

void
CollapseStats::merge(const CollapseStats &other)
{
    events_ += other.events_;
    pairEvents_ += other.pairEvents_;
    tripleEvents_ += other.tripleEvents_;
    collapsedInstructions_ += other.collapsedInstructions_;
    for (unsigned i = 0; i < kNumCollapseCategories; ++i)
        byCategory_[i] += other.byCategory_[i];
    distances_.merge(other.distances_);
    for (const auto &[sig, count] : other.pairSignatures_)
        pairSignatures_[sig] += count;
    for (const auto &[sig, count] : other.tripleSignatures_)
        tripleSignatures_[sig] += count;
}

void
CollapseStats::encode(std::string &out) const
{
    using support::wire::putString;
    using support::wire::putU64;
    putU64(out, events_);
    putU64(out, pairEvents_);
    putU64(out, tripleEvents_);
    putU64(out, collapsedInstructions_);
    for (unsigned i = 0; i < kNumCollapseCategories; ++i)
        putU64(out, byCategory_[i]);
    distances_.encode(out);
    putU64(out, static_cast<std::uint64_t>(pairSignatures_.size()));
    for (const auto &[sig, count] : pairSignatures_) {
        putString(out, sig);
        putU64(out, count);
    }
    putU64(out, static_cast<std::uint64_t>(tripleSignatures_.size()));
    for (const auto &[sig, count] : tripleSignatures_) {
        putString(out, sig);
        putU64(out, count);
    }
}

bool
CollapseStats::decode(support::wire::Reader &in)
{
    *this = CollapseStats();
    events_ = in.u64();
    pairEvents_ = in.u64();
    tripleEvents_ = in.u64();
    collapsedInstructions_ = in.u64();
    for (unsigned i = 0; i < kNumCollapseCategories; ++i)
        byCategory_[i] = in.u64();
    if (!distances_.decode(in)) {
        *this = CollapseStats();
        return false;
    }
    const std::uint64_t pairs = in.u64();
    for (std::uint64_t i = 0; i < pairs && in.ok(); ++i) {
        std::string sig = in.str();
        pairSignatures_[std::move(sig)] = in.u64();
    }
    const std::uint64_t triples = in.u64();
    for (std::uint64_t i = 0; i < triples && in.ok(); ++i) {
        std::string sig = in.str();
        tripleSignatures_[std::move(sig)] = in.u64();
    }
    if (!in.ok()) {
        *this = CollapseStats();
        return false;
    }
    return true;
}

std::vector<std::pair<std::string, double>>
CollapseStats::topSignatures(unsigned group_size, std::size_t n) const
{
    const auto &table = group_size == 2 ? pairSignatures_
                                        : tripleSignatures_;
    const auto total = group_size == 2 ? pairEvents_ : tripleEvents_;
    std::vector<std::pair<std::string, std::uint64_t>> entries(
        table.begin(), table.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (entries.size() > n)
        entries.resize(n);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(entries.size());
    for (const auto &[sig, count] : entries) {
        out.emplace_back(sig, percent(static_cast<double>(count),
                                      static_cast<double>(total)));
    }
    return out;
}

} // namespace ddsc
