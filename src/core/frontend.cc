#include "frontend.hh"

#include <algorithm>
#include <array>

#include "support/logging.hh"

namespace ddsc
{

/** 4 KiB of last-store-seq bytes, epoch-validated (see header). */
struct SpecFrontEnd::StorePage
{
    std::uint64_t epoch = 0;
    std::array<std::uint64_t, kStorePageBytes> seq;
};

SpecFrontEnd::SpecFrontEnd(const MachineConfig &config)
    : collapseColumns_(config.collapsing),
      trainAddr_(config.loadSpec == LoadSpecMode::Real),
      trainValues_(config.loadValuePrediction),
      realCti_(config.realCtiPrediction),
      bpred_(std::make_unique<CombiningPredictor>(config.bpredIndexBits)),
      addrPred_(makeAddressPredictor(config.addrPredKind,
                                     config.addrPredIndexBits,
                                     config.addrConfidenceThreshold)),
      ras_(config.rasDepth)
{
}

SpecFrontEnd::~SpecFrontEnd() = default;

void
SpecFrontEnd::reset()
{
    bpred_->reset();
    addrPred_->reset();
    valuePred_.reset();
    ras_.reset();
    itb_.reset();
    std::fill(std::begin(lastRegWriter_), std::end(lastRegWriter_),
              std::uint64_t{0});
    lastCCWriter_ = 0;
    lastBarrier_ = 0;
    // Seqs restart at 1, so stale store pages must not be consulted:
    // bump the epoch and let pages lazily re-zero on first touch.
    ++storeEpoch_;
    storePageCache_ = nullptr;
    storePageCacheBase_ = 1;
    nextSeq_ = 1;
    nextBbId_ = 0;
    trains_ = FrontEndTrainCounts{};
}

SpecFrontEnd::StorePage *
SpecFrontEnd::storePage(std::uint64_t base, bool create)
{
    if (base == storePageCacheBase_ &&
        (storePageCache_ != nullptr || !create))
        return storePageCache_;
    const auto it = storePages_.find(base);
    StorePage *page;
    if (it != storePages_.end()) {
        page = it->second.get();
    } else {
        if (!create) {
            // Negative results are cached too: a loop of loads over a
            // never-stored page costs one hash probe, not one per load.
            storePageCacheBase_ = base;
            storePageCache_ = nullptr;
            return nullptr;
        }
        page = storePages_.emplace(base, std::make_unique<StorePage>())
                   .first->second.get();
    }
    if (page->epoch != storeEpoch_) {
        page->seq.fill(0);
        page->epoch = storeEpoch_;
    }
    storePageCacheBase_ = base;
    storePageCache_ = page;
    return page;
}

void
SpecFrontEnd::annotate(const TraceRecord &rec, InsertAnnotation &out)
{
    const std::uint64_t seq = nextSeq_++;
    out = InsertAnnotation{};
    if (collapseColumns_) {
        out.expr = ExprSize::of(rec);
        out.sigLen = static_cast<std::uint8_t>(
            appendInstructionSignature(rec, out.sig.data()));
    }
    out.bbId = nextBbId_;
    if (isControl(rec.cls()))
        ++nextBbId_;                // this instruction ends its block

    // --- control: predict branches, erect barriers -------------------
    if (rec.isCondBranch()) {
        out.flags |= InsertAnnotation::kFlagCondBranch;
        const bool correct = bpred_->predictAndUpdate(rec.pc, rec.taken);
        ++trains_.branch;
        if (!correct) {
            out.flags |= InsertAnnotation::kFlagMispredict;
            lastBarrier_ = seq;
        }
    } else if (realCti_) {
        // The paper idealizes these; optionally model them with a
        // return-address stack and an indirect-target buffer.
        switch (rec.cls()) {
          case OpClass::Call:
            ras_.pushCall(rec.pc + 4);
            ++trains_.cti;
            break;
          case OpClass::CallIndirect:
            // The return address is known (push it), but the callee
            // target comes from a register: predict it like an
            // indirect jump.
            ras_.pushCall(rec.pc + 4);
            out.flags |= InsertAnnotation::kFlagCtiPrediction;
            if (itb_.predict(rec.pc) != rec.target) {
                out.flags |= InsertAnnotation::kFlagCtiMispredict;
                lastBarrier_ = seq;
            }
            itb_.update(rec.pc, rec.target);
            ++trains_.cti;
            break;
          case OpClass::Ret:
            out.flags |= InsertAnnotation::kFlagCtiPrediction;
            if (ras_.popReturn() != rec.target) {
                out.flags |= InsertAnnotation::kFlagCtiMispredict;
                lastBarrier_ = seq;
            }
            ++trains_.cti;
            break;
          case OpClass::IndirectJump:
            out.flags |= InsertAnnotation::kFlagCtiPrediction;
            if (itb_.predict(rec.pc) != rec.target) {
                out.flags |= InsertAnnotation::kFlagCtiMispredict;
                lastBarrier_ = seq;
            }
            itb_.update(rec.pc, rec.target);
            ++trains_.cti;
            break;
          default:
            break;      // direct jumps and calls: target in the opcode
        }
    }

    // Younger instructions cannot issue before or during the cycle a
    // mispredicted branch issues.
    if (lastBarrier_ != 0 && lastBarrier_ != seq)
        out.barrierSeq = lastBarrier_;

    // --- RAW producer seqs, in the back-end's canonical arc order:
    // data sources, address sources, condition codes, memory ----------
    const auto dep = [&](std::uint64_t producer_seq, bool address) {
        if (producer_seq == 0)
            return;     // no producer; the back-end would drop it too
        ddsc_assert(out.depCount < 4, "annotation dep overflow");
        if (address)
            out.depAddrMask |=
                static_cast<std::uint8_t>(1u << out.depCount);
        out.depSeq[out.depCount++] = producer_seq;
    };
    for (const int reg : rec.dataSources()) {
        if (reg >= 0)
            dep(lastRegWriter_[reg], false);
    }
    for (const int reg : rec.addressSources()) {
        if (reg >= 0)
            dep(lastRegWriter_[reg], true);
    }
    if (rec.readsCC())
        dep(lastCCWriter_, false);
    if (rec.isLoad()) {
        // Perfect disambiguation: the most recent store that wrote one
        // of this load's bytes.
        std::uint64_t mem_dep = 0;
        const StorePage *page = nullptr;
        std::uint64_t page_base = 1;    // unaligned = no page yet
        for (unsigned b = 0; b < rec.memSize(); ++b) {
            const std::uint64_t addr = rec.ea + b;
            const std::uint64_t base = addr & ~(kStorePageBytes - 1);
            if (base != page_base) {
                page = storePage(base, /*create=*/false);
                page_base = base;
            }
            if (page)
                mem_dep = std::max(
                    mem_dep, page->seq[addr & (kStorePageBytes - 1)]);
        }
        dep(mem_dep, false);
    }

    // --- load-speculation table (trained by every load, in order) ----
    if (rec.isLoad() && trainAddr_) {
        const AddrPrediction pred = addrPred_->predict(rec.pc);
        if (pred.usable) {
            out.flags |= InsertAnnotation::kFlagPredUsable;
            if (pred.addr == rec.ea)
                out.flags |= InsertAnnotation::kFlagPredCorrect;
        }
        addrPred_->update(rec.pc, rec.ea);
        ++trains_.address;
    }

    // --- value-prediction extension (Figure 1.d) ----------------------
    if (rec.isLoad() && trainValues_) {
        const ValuePrediction vp = valuePred_.predict(rec.pc);
        if (vp.usable) {
            out.flags |= InsertAnnotation::kFlagVpredUsable;
            if (vp.value == rec.memValue)
                out.flags |= InsertAnnotation::kFlagVpredCorrect;
        }
        valuePred_.update(rec.pc, rec.memValue);
        ++trains_.value;
    }

    // --- update producer tables (after reading them) ------------------
    const int dest = rec.destReg();
    if (dest >= 0) {
        // The overwritten previous writer is the node-elimination
        // candidate; whether a live cc value blocks eliminating it is
        // decided *before* this record updates lastCCWriter_ (only
        // setsCC seqs ever land there, so seq equality implies the
        // candidate sets the cc).
        out.elimOldWriter = lastRegWriter_[dest];
        if (out.elimOldWriter != 0 && out.elimOldWriter == lastCCWriter_)
            out.flags |= InsertAnnotation::kFlagElimCcBlocked;
        lastRegWriter_[dest] = seq;
    }
    if (rec.setsCC())
        lastCCWriter_ = seq;
    if (rec.isStore()) {
        StorePage *page = nullptr;
        std::uint64_t page_base = 1;
        for (unsigned b = 0; b < rec.memSize(); ++b) {
            const std::uint64_t addr = rec.ea + b;
            const std::uint64_t base = addr & ~(kStorePageBytes - 1);
            if (base != page_base) {
                page = storePage(base, /*create=*/true);
                page_base = base;
            }
            page->seq[addr & (kStorePageBytes - 1)] = seq;
        }
    }
}

std::size_t
SpecFrontEnd::fill(TraceSource &trace, FrontEndBatch &batch,
                   std::size_t max)
{
    batch.clear();
    TraceRecord rec;
    InsertAnnotation ann;
    while (batch.size() < max && trace.next(rec)) {
        annotate(rec, ann);
        batch.records.push_back(rec);
        batch.flags.push_back(ann.flags);
        batch.depCount.push_back(ann.depCount);
        batch.depAddrMask.push_back(ann.depAddrMask);
        for (unsigned d = 0; d < 4; ++d)
            batch.depSeqs.push_back(ann.depSeq[d]);
        batch.barrierSeq.push_back(ann.barrierSeq);
        batch.bbId.push_back(ann.bbId);
        batch.elimOldWriter.push_back(ann.elimOldWriter);
        batch.expr.push_back(ann.expr);
        std::array<char, kMaxInstructionSignature + 1> sig = {};
        for (unsigned b = 0; b < ann.sigLen; ++b)
            sig[b] = ann.sig[b];
        sig[kMaxInstructionSignature] = static_cast<char>(ann.sigLen);
        batch.sig.push_back(sig);
    }
    return batch.size();
}

} // namespace ddsc
