#include "frontend.hh"

#include <algorithm>
#include <array>

#include "support/logging.hh"

namespace ddsc
{

/** 4 KiB of last-store-seq bytes, epoch-validated (see header). */
struct SpecFrontEnd::StorePage
{
    std::uint64_t epoch = 0;
    std::array<std::uint64_t, kStorePageBytes> seq;
};

SpecFrontEnd::SpecFrontEnd(const MachineConfig &config)
    : realCti_(config.realCtiPrediction),
      bpred_(std::make_unique<CombiningPredictor>(config.bpredIndexBits)),
      ras_(config.rasDepth),
      stack_(config, trains_)
{
}

SpecFrontEnd::~SpecFrontEnd() = default;

void
SpecFrontEnd::reset()
{
    bpred_->reset();
    stack_.reset();
    ras_.reset();
    itb_.reset();
    std::fill(std::begin(lastRegWriter_), std::end(lastRegWriter_),
              std::uint64_t{0});
    lastCCWriter_ = 0;
    lastBarrier_ = 0;
    lastStoreSeq_ = 0;
    // Seqs restart at 1, so stale store pages must not be consulted:
    // bump the epoch and let pages lazily re-zero on first touch.
    ++storeEpoch_;
    storePageCache_ = nullptr;
    storePageCacheBase_ = 1;
    nextSeq_ = 1;
    nextBbId_ = 0;
    trains_ = FrontEndTrainCounts{};
}

SpecFrontEnd::StorePage *
SpecFrontEnd::storePage(std::uint64_t base, bool create)
{
    if (base == storePageCacheBase_ &&
        (storePageCache_ != nullptr || !create))
        return storePageCache_;
    const auto it = storePages_.find(base);
    StorePage *page;
    if (it != storePages_.end()) {
        page = it->second.get();
    } else {
        if (!create) {
            // Negative results are cached too: a loop of loads over a
            // never-stored page costs one hash probe, not one per load.
            storePageCacheBase_ = base;
            storePageCache_ = nullptr;
            return nullptr;
        }
        page = storePages_.emplace(base, std::make_unique<StorePage>())
                   .first->second.get();
    }
    if (page->epoch != storeEpoch_) {
        page->seq.fill(0);
        page->epoch = storeEpoch_;
    }
    storePageCacheBase_ = base;
    storePageCache_ = page;
    return page;
}

void
SpecFrontEnd::annotate(const TraceRecord &rec, InsertAnnotation &out)
{
    const std::uint64_t seq = nextSeq_++;
    out = InsertAnnotation{};
    stack_.annotateRecord(rec, out);    // phase 1: collapse columns
    out.bbId = nextBbId_;
    if (isControl(rec.cls()))
        ++nextBbId_;                // this instruction ends its block

    // --- control: predict branches, erect barriers -------------------
    if (rec.isCondBranch()) {
        out.flags |= InsertAnnotation::kFlagCondBranch;
        const bool correct = bpred_->predictAndUpdate(rec.pc, rec.taken);
        ++trains_.branch;
        if (!correct) {
            out.flags |= InsertAnnotation::kFlagMispredict;
            lastBarrier_ = seq;
        }
    } else if (realCti_) {
        // The paper idealizes these; optionally model them with a
        // return-address stack and an indirect-target buffer.
        switch (rec.cls()) {
          case OpClass::Call:
            ras_.pushCall(rec.pc + 4);
            ++trains_.cti;
            break;
          case OpClass::CallIndirect:
            // The return address is known (push it), but the callee
            // target comes from a register: predict it like an
            // indirect jump.
            ras_.pushCall(rec.pc + 4);
            out.flags |= InsertAnnotation::kFlagCtiPrediction;
            if (itb_.predict(rec.pc) != rec.target) {
                out.flags |= InsertAnnotation::kFlagCtiMispredict;
                lastBarrier_ = seq;
            }
            itb_.update(rec.pc, rec.target);
            ++trains_.cti;
            break;
          case OpClass::Ret:
            out.flags |= InsertAnnotation::kFlagCtiPrediction;
            if (ras_.popReturn() != rec.target) {
                out.flags |= InsertAnnotation::kFlagCtiMispredict;
                lastBarrier_ = seq;
            }
            ++trains_.cti;
            break;
          case OpClass::IndirectJump:
            out.flags |= InsertAnnotation::kFlagCtiPrediction;
            if (itb_.predict(rec.pc) != rec.target) {
                out.flags |= InsertAnnotation::kFlagCtiMispredict;
                lastBarrier_ = seq;
            }
            itb_.update(rec.pc, rec.target);
            ++trains_.cti;
            break;
          default:
            break;      // direct jumps and calls: target in the opcode
        }
    }

    // Younger instructions cannot issue before or during the cycle a
    // mispredicted branch issues.
    if (lastBarrier_ != 0 && lastBarrier_ != seq)
        out.barrierSeq = lastBarrier_;

    // --- RAW producer seqs, in the back-end's canonical arc order:
    // data sources, address sources, condition codes, memory ----------
    for (const int reg : rec.dataSources()) {
        if (reg >= 0)
            out.addDep(lastRegWriter_[reg], false);
    }
    for (const int reg : rec.addressSources()) {
        if (reg >= 0)
            out.addDep(lastRegWriter_[reg], true);
    }
    if (rec.readsCC())
        out.addDep(lastCCWriter_, false);

    // Ground truth for the speculation modules: perfect disambiguation
    // (the most recent store that wrote one of this load's bytes) and
    // the youngest store overall.
    spec::MemDepObservation mem;
    mem.lastStoreSeq = lastStoreSeq_;
    if (rec.isLoad()) {
        const StorePage *page = nullptr;
        std::uint64_t page_base = 1;    // unaligned = no page yet
        for (unsigned b = 0; b < rec.memSize(); ++b) {
            const std::uint64_t addr = rec.ea + b;
            const std::uint64_t base = addr & ~(kStorePageBytes - 1);
            if (base != page_base) {
                page = storePage(base, /*create=*/false);
                page_base = base;
            }
            if (page)
                mem.perfectDepSeq = std::max(
                    mem.perfectDepSeq,
                    page->seq[addr & (kStorePageBytes - 1)]);
        }
    }

    // --- phase 2: the module stack appends the memory arc, trains the
    // load predictors, and sets the speculation outcome flags ---------
    stack_.proposeRelaxations(rec, seq, mem, out);

    // --- update producer tables (after reading them) ------------------
    const int dest = rec.destReg();
    if (dest >= 0) {
        // The overwritten previous writer is the node-elimination
        // candidate; whether a live cc value blocks eliminating it is
        // decided *before* this record updates lastCCWriter_ (only
        // setsCC seqs ever land there, so seq equality implies the
        // candidate sets the cc).
        out.elimOldWriter = lastRegWriter_[dest];
        if (out.elimOldWriter != 0 && out.elimOldWriter == lastCCWriter_)
            out.flags |= InsertAnnotation::kFlagElimCcBlocked;
        lastRegWriter_[dest] = seq;
    }
    if (rec.setsCC())
        lastCCWriter_ = seq;
    if (rec.isStore()) {
        lastStoreSeq_ = seq;
        StorePage *page = nullptr;
        std::uint64_t page_base = 1;
        for (unsigned b = 0; b < rec.memSize(); ++b) {
            const std::uint64_t addr = rec.ea + b;
            const std::uint64_t base = addr & ~(kStorePageBytes - 1);
            if (base != page_base) {
                page = storePage(base, /*create=*/true);
                page_base = base;
            }
            page->seq[addr & (kStorePageBytes - 1)] = seq;
        }
    }
}

std::size_t
SpecFrontEnd::fill(TraceSource &trace, FrontEndBatch &batch,
                   std::size_t max)
{
    batch.clear();
    TraceRecord rec;
    InsertAnnotation ann;
    while (batch.size() < max && trace.next(rec)) {
        annotate(rec, ann);
        batch.records.push_back(rec);
        batch.flags.push_back(ann.flags);
        batch.depCount.push_back(ann.depCount);
        batch.depAddrMask.push_back(ann.depAddrMask);
        for (unsigned d = 0; d < 4; ++d)
            batch.depSeqs.push_back(ann.depSeq[d]);
        batch.barrierSeq.push_back(ann.barrierSeq);
        batch.bbId.push_back(ann.bbId);
        batch.elimOldWriter.push_back(ann.elimOldWriter);
        batch.expr.push_back(ann.expr);
        std::array<char, kMaxInstructionSignature + 1> sig = {};
        for (unsigned b = 0; b < ann.sigLen; ++b)
            sig[b] = ann.sig[b];
        sig[kMaxInstructionSignature] = static_cast<char>(ann.sigLen);
        batch.sig.push_back(sig);
    }
    return batch.size();
}

} // namespace ddsc
