/**
 * @file
 * Width-independent per-record annotations shared between the
 * speculative front-end (core/frontend.hh), the window back-ends
 * (core/scheduler.hh), and the speculation-module stack (src/spec/).
 *
 * Everything in here is *pure program order*: an annotation depends
 * only on the trace prefix, never on window contents, issue timing, or
 * width, so one front-end pass can feed any number of back-end cells.
 * This header exists on its own (rather than inside frontend.hh) so
 * the speculation modules can consume and edit annotations without a
 * circular dependency on the front-end that orchestrates them.
 */

#ifndef DDSC_CORE_ANNOTATION_HH
#define DDSC_CORE_ANNOTATION_HH

#include <array>
#include <cstdint>

#include "collapse/rules.hh"
#include "support/logging.hh"

namespace ddsc
{

/** Width-independent annotation of one dynamic instruction. */
struct InsertAnnotation
{
    /** Flag bits (see kFlag* below). */
    std::uint16_t flags = 0;
    /** RAW producer seqs in canonical arc order (data, address, cc,
     *  memory); zeros already dropped.  kFlagDepAddr marks address
     *  arcs. */
    std::uint8_t depCount = 0;
    std::uint8_t depAddrMask = 0;   ///< bit i: deps[i] feeds the address
    std::uint64_t depSeq[4] = {0, 0, 0, 0};
    /** Last mispredicted branch older than this record (0 = none). */
    std::uint64_t barrierSeq = 0;
    /** Dynamic basic-block id. */
    std::uint64_t bbId = 0;
    /** Previous writer of this record's destination register (0 =
     *  none); the node-elimination candidate this record overwrites. */
    std::uint64_t elimOldWriter = 0;

    /** Collapse-rule detection, computed only when the front-end has
     *  collapse columns enabled (any consumer collapses): the
     *  record's compound-expression size and its paper signature
     *  fragment.  Both are pure functions of the record, so one
     *  front-end pass serves every collapsing back-end. */
    ExprSize expr;
    std::array<char, kMaxInstructionSignature> sig = {};
    std::uint8_t sigLen = 0;

    /// This record is a conditional branch (counts toward condBranches).
    static constexpr std::uint16_t kFlagCondBranch = 1u << 0;
    /// The branch predictor got it wrong (counts toward mispredicts).
    static constexpr std::uint16_t kFlagMispredict = 1u << 1;
    /// A real-CTI prediction was made (counts toward ctiPredictions).
    static constexpr std::uint16_t kFlagCtiPrediction = 1u << 2;
    /// ...and it was wrong (counts toward ctiMispredicts).
    static constexpr std::uint16_t kFlagCtiMispredict = 1u << 3;
    /// Address-predictor confidence exceeded the threshold.
    static constexpr std::uint16_t kFlagPredUsable = 1u << 4;
    /// ...and the predicted address was right.
    static constexpr std::uint16_t kFlagPredCorrect = 1u << 5;
    /// Value-predictor confidence held.
    static constexpr std::uint16_t kFlagVpredUsable = 1u << 6;
    /// ...and the predicted value was right.
    static constexpr std::uint16_t kFlagVpredCorrect = 1u << 7;
    /// elimOldWriter still holds the live cc value: not eliminable.
    static constexpr std::uint16_t kFlagElimCcBlocked = 1u << 8;
    /// This load really depends on an earlier store (perfect
    /// disambiguation found one); when set, the memory arc is the
    /// *last* entry of depSeq.
    static constexpr std::uint16_t kFlagMemDepActual = 1u << 9;
    /// The memory-dependence predictor predicted "dependent".
    static constexpr std::uint16_t kFlagMemDepPredicted = 1u << 10;
    /// Predicted dependent with no actual dependence: the last entry
    /// of depSeq is a conservative arc to the most recent store.
    static constexpr std::uint16_t kFlagMemDepFalse = 1u << 11;

    /** Append a RAW producer arc in canonical order (no-op for seq 0,
     *  matching the back-end's treatment of "no producer"). */
    void
    addDep(std::uint64_t producer_seq, bool address)
    {
        if (producer_seq == 0)
            return;
        ddsc_assert(depCount < 4, "annotation dep overflow");
        if (address)
            depAddrMask |= static_cast<std::uint8_t>(1u << depCount);
        depSeq[depCount++] = producer_seq;
    }
};

/** How many times each predictor structure was trained (the
 *  train-exactly-once-per-record property test reads these). */
struct FrontEndTrainCounts
{
    std::uint64_t branch = 0;   ///< CombiningPredictor updates
    std::uint64_t address = 0;  ///< AddressPredictor updates
    std::uint64_t value = 0;    ///< LoadValuePredictor updates
    std::uint64_t cti = 0;      ///< RAS/ITB operations
    std::uint64_t memdep = 0;   ///< memory-dependence predictor updates
};

} // namespace ddsc

#endif // DDSC_CORE_ANNOTATION_HH
