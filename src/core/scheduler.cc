#include "scheduler.hh"

#include <algorithm>
#include <bit>
#include <chrono>

#include "support/logging.hh"

namespace ddsc
{

namespace
{

std::uint64_t
ringSize(std::uint64_t wanted)
{
    return std::bit_ceil(std::max<std::uint64_t>(wanted, 64));
}

} // anonymous namespace

LimitScheduler::LimitScheduler(const MachineConfig &config)
    : config_(config),
      bpred_(std::make_unique<CombiningPredictor>(config.bpredIndexBits)),
      addrPred_(makeAddressPredictor(config.addrPredKind,
                                     config.addrPredIndexBits,
                                     config.addrConfidenceThreshold)),
      ras_(config.rasDepth)
{
    ddsc_assert(config.issueWidth >= 1, "issue width must be positive");
    ddsc_assert(config.windowSize >= config.issueWidth,
                "window smaller than issue width");
    // Live entries never exceed windowSize, but the live *span* can:
    // younger generations churn past a stalled oldest entry.  Start
    // with headroom and let growWindow() handle the pathological case.
    slots_.resize(ringSize(8 * config.windowSize));
    slotMask_ = slots_.size() - 1;
    readyBits_.resize(slots_.size() / 64);
    // Retired producers constrain consumers for at most the maximum
    // latency after issue; size for that churn plus the window span.
    retired_.resize(ringSize(4 * config.windowSize));
    retiredMask_ = retired_.size() - 1;
}

const LimitScheduler::Entry *
LimitScheduler::findWindow(std::uint64_t seq) const
{
    const Entry &slot = slots_[seq & slotMask_];
    return slot.live && slot.seq == seq ? &slot : nullptr;
}

LimitScheduler::Entry *
LimitScheduler::findWindow(std::uint64_t seq)
{
    Entry &slot = slots_[seq & slotMask_];
    return slot.live && slot.seq == seq ? &slot : nullptr;
}

void
LimitScheduler::growWindow()
{
    // Pick the first doubling that fits the whole live span: seqs in
    // [oldestSeq_, nextSeq_) are distinct mod size once size >= span.
    const std::uint64_t span = nextSeq_ - oldestSeq_;
    std::uint64_t size = (slotMask_ + 1) * 2;
    while (size < span)
        size *= 2;
    std::vector<Entry> grown(size);
    std::vector<std::uint64_t> grown_bits(size / 64);
    const std::uint64_t mask = size - 1;
    for (std::uint64_t seq = oldestSeq_; seq < nextSeq_; ++seq) {
        if (const Entry *entry = findWindow(seq)) {
            grown[seq & mask] = *entry;
            if (entry->ready && !entry->issued)
                grown_bits[(seq & mask) >> 6] |=
                    std::uint64_t{1} << (seq & 63);
        }
    }
    slots_ = std::move(grown);
    readyBits_ = std::move(grown_bits);
    slotMask_ = mask;
}

std::uint64_t
LimitScheduler::retiredValueTime(std::uint64_t seq) const
{
    const Retired &slot = retired_[seq & retiredMask_];
    return slot.seq == seq ? slot.valueTime : 0;
}

void
LimitScheduler::recordRetired(std::uint64_t seq, std::uint64_t value_time)
{
    Retired *slot = &retired_[seq & retiredMask_];
    if (slot->seq != 0 && slot->seq != seq && slot->valueTime > cycle_) {
        // The occupant can still constrain a consumer: overwriting it
        // would turn "wait until valueTime" into "value available".
        growRetired();
        slot = &retired_[seq & retiredMask_];
    }
    *slot = {seq, value_time};
}

void
LimitScheduler::growRetired()
{
    std::uint64_t size = (retiredMask_ + 1) * 2;
    for (;;) {
        std::vector<Retired> grown(size);
        const std::uint64_t mask = size - 1;
        bool collision = false;
        for (const Retired &slot : retired_) {
            if (slot.seq == 0 || slot.valueTime <= cycle_)
                continue;       // resolved: dropping it is the same
            Retired &dst = grown[slot.seq & mask];
            if (dst.seq != 0) {
                collision = true;
                break;
            }
            dst = slot;
        }
        if (!collision) {
            retired_ = std::move(grown);
            retiredMask_ = mask;
            return;
        }
        size *= 2;
    }
}

void
LimitScheduler::BoundWheel::clear()
{
    for (std::vector<std::uint64_t> &bucket : buckets)
        bucket.clear();     // keeps capacity for the next run
    far = BoundHeap();
}

LimitScheduler::StorePage *
LimitScheduler::storePage(std::uint64_t base, bool create)
{
    if (base == storePageCacheBase_ &&
        (storePageCache_ != nullptr || !create))
        return storePageCache_;
    const auto it = storePages_.find(base);
    StorePage *page;
    if (it != storePages_.end()) {
        page = it->second.get();
    } else {
        if (!create) {
            // Negative results are cached too: a loop of loads over a
            // never-stored page costs one hash probe, not one per load.
            storePageCacheBase_ = base;
            storePageCache_ = nullptr;
            return nullptr;
        }
        page = storePages_.emplace(base, std::make_unique<StorePage>())
                   .first->second.get();
    }
    if (page->epoch != storeEpoch_) {
        page->seq.fill(0);
        page->epoch = storeEpoch_;
    }
    storePageCacheBase_ = base;
    storePageCache_ = page;
    return page;
}

// --- exact satisfaction checks ----------------------------------------

bool
LimitScheduler::arcSatisfied(const DepArc &arc, std::uint64_t cycle) const
{
    if (const Entry *producer = findWindow(arc.producerSeq)) {
        if (producer->issued) {
            if (arc.collapsed)
                return true;
            return cycle >= producer->valueTime;
        }
        if (arc.collapsed) {
            // Collapsed arc: the compound operation needs only the
            // producer's own sources, not its result.
            return sourcesSatisfied(*producer, cycle);
        }
        // Value arc to an unissued producer: available only if a
        // correctly-speculated load already delivered its data.
        return producer->specValueSet && cycle >= producer->valueTime;
    }
    // Producer issued and left the window.
    if (arc.collapsed)
        return true;
    const std::uint64_t value_time = retiredValueTime(arc.producerSeq);
    return value_time == 0 || cycle >= value_time;
}

bool
LimitScheduler::barrierSatisfiedNow(const Entry &entry,
                                    std::uint64_t cycle) const
{
    if (entry.barrierSeq == 0)
        return true;
    if (const Entry *branch = findWindow(entry.barrierSeq))
        return branch->issued && cycle >= branch->valueTime;
    const std::uint64_t value_time = retiredValueTime(entry.barrierSeq);
    return value_time == 0 || cycle >= value_time;
}

bool
LimitScheduler::sourcesSatisfied(const Entry &entry,
                                 std::uint64_t cycle) const
{
    if (entry.ready || entry.issued)
        return true;        // readiness is monotone
    if (cycle < entry.fixedReady)
        return false;
    if (!barrierSatisfiedNow(entry, cycle))
        return false;
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (!arcSatisfied(entry.arcs[i], cycle))
            return false;
    }
    return true;
}

bool
LimitScheduler::addrArcsSatisfied(const Entry &entry,
                                  std::uint64_t cycle) const
{
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (entry.arcs[i].address && !arcSatisfied(entry.arcs[i], cycle))
            return false;
    }
    return true;
}

// --- lower bounds -------------------------------------------------------

std::uint64_t
LimitScheduler::arcBound(const DepArc &arc, std::uint64_t cycle) const
{
    if (const Entry *producer = findWindow(arc.producerSeq)) {
        if (producer->issued || producer->ready) {
            if (arc.collapsed)
                return 0;           // sources certainly satisfied
            if (producer->issued || producer->specValueSet)
                return producer->valueTime;
            // Ready but width-stalled: it could issue this very cycle,
            // so the value can exist at cycle + latency at the soonest.
            return cycle + opLatency(producer->rec.op);
        }
        if (arc.collapsed)
            return producer->boundAll;
        if (producer->specValueSet)
            return producer->valueTime;
        if (producer->isLoad && !producer->loadClassified &&
            (config_.loadSpec != LoadSpecMode::None ||
             config_.loadValuePrediction)) {
            // Not yet classified: the earliest possible data delivery
            // is a correct speculation right when the non-address
            // constraints hold -- one cycle for a value prediction,
            // the access latency for an address prediction.
            const std::uint64_t spec_latency =
                config_.loadValuePrediction
                    ? 1 : opLatency(producer->rec.op);
            return producer->boundNonAddr + spec_latency;
        }
        // Classified without speculation (or no speculation at all):
        // the data arrives only after the load itself issues.
        return producer->boundAll + opLatency(producer->rec.op);
    }
    if (arc.collapsed)
        return 0;
    return retiredValueTime(arc.producerSeq);
}

std::uint64_t
LimitScheduler::barrierBound(const Entry &entry, std::uint64_t cycle) const
{
    if (entry.barrierSeq == 0)
        return 0;
    if (const Entry *branch = findWindow(entry.barrierSeq)) {
        if (branch->issued)
            return branch->valueTime;
        if (branch->ready)
            return cycle + 1;   // it could issue this very cycle
        return branch->boundAll + 1;
    }
    return retiredValueTime(entry.barrierSeq);
}

LimitScheduler::Check
LimitScheduler::checkAll(Entry &entry, std::uint64_t cycle) const
{
    std::uint64_t bound = entry.fixedReady;
    bool ok = cycle >= entry.fixedReady;
    if (const std::uint64_t b = barrierBound(entry, cycle); b > cycle) {
        ok = false;
        bound = std::max(bound, b);
    } else if (!barrierSatisfiedNow(entry, cycle)) {
        ok = false;
        bound = std::max(bound, cycle + 1);
    }
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (arcSatisfied(entry.arcs[i], cycle))
            continue;
        ok = false;
        bound = std::max(bound, arcBound(entry.arcs[i], cycle));
    }
    if (!ok)
        bound = std::max(bound, cycle + 1);
    entry.boundAll = std::max(entry.boundAll, ok ? cycle : bound);
    return {ok, bound};
}

LimitScheduler::Check
LimitScheduler::checkNonAddr(Entry &entry, std::uint64_t cycle) const
{
    std::uint64_t bound = entry.fixedReady;
    bool ok = cycle >= entry.fixedReady;
    if (const std::uint64_t b = barrierBound(entry, cycle); b > cycle) {
        ok = false;
        bound = std::max(bound, b);
    } else if (!barrierSatisfiedNow(entry, cycle)) {
        ok = false;
        bound = std::max(bound, cycle + 1);
    }
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (entry.arcs[i].address)
            continue;
        if (arcSatisfied(entry.arcs[i], cycle))
            continue;
        ok = false;
        bound = std::max(bound, arcBound(entry.arcs[i], cycle));
    }
    if (!ok)
        bound = std::max(bound, cycle + 1);
    entry.boundNonAddr = std::max(entry.boundNonAddr, ok ? cycle : bound);
    return {ok, bound};
}

// --- window construction ------------------------------------------------

void
LimitScheduler::addArc(Entry &entry, std::uint64_t producer_seq,
                       bool address)
{
    if (producer_seq == 0)
        return;
    if (findWindow(producer_seq) != nullptr) {
        ddsc_assert(entry.numArcs < 4, "arc overflow");
        entry.arcs[entry.numArcs++] = {producer_seq, false, address};
        return;
    }
    const std::uint64_t value_time = retiredValueTime(producer_seq);
    if (value_time == 0)
        return;     // long retired; no constraint
    if (address) {
        // Keep address constraints as arcs even when resolved, so the
        // ready/not-ready load classification can separate them from
        // the other constraints.
        ddsc_assert(entry.numArcs < 4, "arc overflow");
        entry.arcs[entry.numArcs++] = {producer_seq, false, true};
    } else {
        entry.fixedReady = std::max(entry.fixedReady, value_time);
    }
}

void
LimitScheduler::insert(const TraceRecord &rec)
{
    const std::uint64_t seq = nextSeq_++;
    Entry *slot = &slots_[seq & slotMask_];
    if (slot->live) {
        growWindow();
        slot = &slots_[seq & slotMask_];
    }
    *slot = Entry{};
    Entry &entry = *slot;
    entry.rec = rec;
    entry.seq = seq;
    entry.live = true;
    ++windowCount_;
    entry.fixedReady = cycle_;      // issuable from the insertion cycle
    entry.expr = ExprSize::of(rec);
    entry.isLoad = rec.isLoad();
    entry.bbId = nextBbId_;
    if (isControl(rec.cls()))
        ++nextBbId_;                // this instruction ends its block

    ++stats_.instructions;

    // --- control: predict branches, erect barriers -------------------
    if (rec.isCondBranch()) {
        ++stats_.condBranches;
        const bool correct = bpred_->predictAndUpdate(rec.pc, rec.taken);
        if (!correct) {
            ++stats_.mispredicts;
            lastBarrier_ = entry.seq;
        }
    } else if (config_.realCtiPrediction) {
        // The paper idealizes these; optionally model them with a
        // return-address stack and an indirect-target buffer.
        switch (rec.cls()) {
          case OpClass::Call:
            ras_.pushCall(rec.pc + 4);
            break;
          case OpClass::CallIndirect:
            // The return address is known (push it), but the callee
            // target comes from a register: predict it like an
            // indirect jump.
            ras_.pushCall(rec.pc + 4);
            ++stats_.ctiPredictions;
            if (itb_.predict(rec.pc) != rec.target) {
                ++stats_.ctiMispredicts;
                lastBarrier_ = entry.seq;
            }
            itb_.update(rec.pc, rec.target);
            break;
          case OpClass::Ret:
            ++stats_.ctiPredictions;
            if (ras_.popReturn() != rec.target) {
                ++stats_.ctiMispredicts;
                lastBarrier_ = entry.seq;
            }
            break;
          case OpClass::IndirectJump:
            ++stats_.ctiPredictions;
            if (itb_.predict(rec.pc) != rec.target) {
                ++stats_.ctiMispredicts;
                lastBarrier_ = entry.seq;
            }
            itb_.update(rec.pc, rec.target);
            break;
          default:
            break;      // direct jumps and calls: target in the opcode
        }
    }

    // Younger instructions cannot issue before or during the cycle a
    // mispredicted branch issues.
    if (lastBarrier_ != 0 && lastBarrier_ != entry.seq)
        entry.barrierSeq = lastBarrier_;

    // --- register RAW arcs -------------------------------------------
    for (const int reg : rec.dataSources()) {
        if (reg >= 0)
            addArc(entry, lastRegWriter_[reg], false);
    }
    for (const int reg : rec.addressSources()) {
        if (reg >= 0)
            addArc(entry, lastRegWriter_[reg], true);
    }

    // --- condition codes ---------------------------------------------
    if (rec.readsCC())
        addArc(entry, lastCCWriter_, false);

    // --- memory RAW (perfect disambiguation) -------------------------
    if (rec.isLoad()) {
        std::uint64_t dep = 0;
        const StorePage *page = nullptr;
        std::uint64_t page_base = 1;    // unaligned = no page yet
        for (unsigned b = 0; b < rec.memSize(); ++b) {
            const std::uint64_t addr = rec.ea + b;
            const std::uint64_t base = addr & ~(kStorePageBytes - 1);
            if (base != page_base) {
                page = storePage(base, /*create=*/false);
                page_base = base;
            }
            if (page)
                dep = std::max(dep,
                               page->seq[addr & (kStorePageBytes - 1)]);
        }
        addArc(entry, dep, false);
    }

    // --- d-collapsing --------------------------------------------------
    if (config_.collapsing)
        tryCollapse(entry);

    // --- load-speculation table (trained by every load, in order) ----
    if (rec.isLoad() && config_.loadSpec == LoadSpecMode::Real) {
        const AddrPrediction pred = addrPred_->predict(rec.pc);
        entry.predUsable = pred.usable;
        entry.predCorrect = pred.usable && pred.addr == rec.ea;
        addrPred_->update(rec.pc, rec.ea);
    }

    // --- value-prediction extension (Figure 1.d) ----------------------
    if (rec.isLoad() && config_.loadValuePrediction) {
        const ValuePrediction vp = valuePred_.predict(rec.pc);
        entry.vpredUsable = vp.usable;
        entry.vpredCorrect = vp.usable && vp.value == rec.memValue;
        valuePred_.update(rec.pc, rec.memValue);
    }

    // --- node elimination bookkeeping ---------------------------------
    if (config_.nodeElimination)
        noteValueReaders(entry);

    // --- update producer tables (after reading them) ------------------
    const int dest = rec.destReg();
    if (dest >= 0) {
        const std::uint64_t old_writer = lastRegWriter_[dest];
        lastRegWriter_[dest] = entry.seq;
        if (config_.nodeElimination)
            maybeEliminate(old_writer);
    }
    if (rec.setsCC())
        lastCCWriter_ = entry.seq;
    if (rec.isStore()) {
        StorePage *page = nullptr;
        std::uint64_t page_base = 1;
        for (unsigned b = 0; b < rec.memSize(); ++b) {
            const std::uint64_t addr = rec.ea + b;
            const std::uint64_t base = addr & ~(kStorePageBytes - 1);
            if (base != page_base) {
                page = storePage(base, /*create=*/true);
                page_base = base;
            }
            page->seq[addr & (kStorePageBytes - 1)] = entry.seq;
        }
    }

    entry.boundAll = entry.fixedReady;
    entry.boundNonAddr = entry.fixedReady;

    const bool classify = config_.loadSpec != LoadSpecMode::None ||
        config_.loadValuePrediction;
    if (!config_.naiveEngine) {
        // The naive engine rescans the window every cycle instead of
        // reacting to events; queueing for it would only accumulate.
        pending_.push(entry.fixedReady, cycle_, entry.seq);
        if (entry.isLoad && classify)
            classifyQueue_.push(entry.fixedReady, cycle_, entry.seq);
    }
    if (entry.isLoad && !classify)
        ++stats_.loads;
}

void
LimitScheduler::tryCollapse(Entry &entry)
{
    const TraceRecord &rec = entry.rec;
    const OpClass cls = rec.cls();

    // Gather the collapsible candidate arcs of this consumer.  An arc
    // is a candidate when it is a register (or cc) RAW arc to a
    // producer that is still unissued in the window, the producer is
    // ALU-executable, and the arc kind is absorbable by this consumer.
    struct Candidate
    {
        Entry *producer;
        unsigned slots;         // consumer slots fed by this producer
        unsigned arcIndices[2];
        std::uint64_t distance;
    };
    Candidate candidates[2];
    unsigned num_candidates = 0;

    for (unsigned i = 0; i < entry.numArcs; ++i) {
        DepArc &arc = entry.arcs[i];
        if (arc.collapsed)
            continue;
        Entry *producer = findWindow(arc.producerSeq);
        if (producer == nullptr)
            continue;                       // already issued
        if (producer->issued)
            continue;
        if (!CollapseRules::producerEligible(producer->rec))
            continue;
        // In this ISA only conditional branches read the cc, and their
        // sole candidate arc is the cc arc (barrier producers are
        // branches, filtered above by producer eligibility).
        const bool is_cc = cls == OpClass::Branch;
        if (!CollapseRules::consumerEligible(rec, arc.address, is_cc))
            continue;

        // Prior-work restriction ablations (section 2 of the paper:
        // earlier proposals collapsed "only consecutive instructions
        // within a single basic block").
        if (config_.rules.maxCollapseDistance != 0 &&
            entry.seq - producer->seq > config_.rules.maxCollapseDistance)
            continue;
        if (config_.rules.sameBasicBlockOnly &&
            producer->bbId != entry.bbId)
            continue;

        // Group with an existing candidate for the same producer
        // (e.g. Rc = Rb + Rb).
        bool merged = false;
        for (unsigned c = 0; c < num_candidates; ++c) {
            if (candidates[c].producer == producer) {
                candidates[c].arcIndices[candidates[c].slots] = i;
                ++candidates[c].slots;
                merged = true;
                break;
            }
        }
        if (merged)
            continue;
        if (num_candidates == 2)
            continue;       // at most two distinct producers matter
        candidates[num_candidates++] = {producer, 1, {i, 0},
                                        entry.seq - producer->seq};
    }

    if (num_candidates == 0)
        return;

    // Greedily absorb candidates while the compound expression stays
    // within the 4-1 device and the group within 3 instructions.
    bool any = false;
    CollapseCategory category = CollapseCategory::ThreeOne;
    std::uint64_t new_distances[2];
    unsigned num_new = 0;

    for (unsigned c = 0; c < num_candidates; ++c) {
        Candidate &cand = candidates[c];
        Entry *producer = cand.producer;
        const unsigned group = entry.expr.instructions +
            producer->expr.instructions;
        if (group > config_.rules.maxInstructions)
            continue;
        const ExprSize combined = ExprSize::substitute(
            entry.expr, producer->expr, cand.slots);
        CollapseCategory judged;
        if (!config_.rules.judge(combined, judged))
            continue;

        // Commit this collapse.
        entry.expr = combined;
        category = judged;
        any = true;
        for (unsigned s = 0; s < cand.slots; ++s)
            entry.arcs[cand.arcIndices[s]].collapsed = true;
        new_distances[num_new++] = cand.distance;

        // Track group membership for the signature: the producer's own
        // absorbed members plus the producer itself.
        for (unsigned m = 0; m < producer->numMembers &&
                 entry.numMembers < 2; ++m) {
            entry.memberRecords[entry.numMembers] =
                producer->memberRecords[m];
            entry.memberSeqs[entry.numMembers] = producer->memberSeqs[m];
            ++entry.numMembers;
        }
        if (entry.numMembers < 2) {
            entry.memberRecords[entry.numMembers] = producer->rec;
            entry.memberSeqs[entry.numMembers] = producer->seq;
            ++entry.numMembers;
        }

        ++producer->absorbedCount;
        if (!producer->inAnyGroup) {
            producer->inAnyGroup = true;
            stats_.collapse.noteCollapsedInstruction();
        }
    }

    if (!any)
        return;

    if (!entry.inAnyGroup) {
        entry.inAnyGroup = true;
        stats_.collapse.noteCollapsedInstruction();
    }

    // Record the event: members oldest-first, then this consumer.
    // Two producers of a tree triple may have been absorbed in either
    // order, so sort by sequence number.
    if (entry.numMembers == 2 &&
        entry.memberSeqs[0] > entry.memberSeqs[1]) {
        std::swap(entry.memberSeqs[0], entry.memberSeqs[1]);
        std::swap(entry.memberRecords[0], entry.memberRecords[1]);
    }
    CollapseEvent event;
    event.category = category;
    event.groupSize = entry.numMembers + 1;
    const TraceRecord *members[3];
    unsigned count = 0;
    for (unsigned m = 0; m < entry.numMembers; ++m)
        members[count++] = &entry.memberRecords[m];
    members[count++] = &entry.rec;
    event.signature = groupSignature(members, count);
    event.distanceCount = num_new;
    for (unsigned i = 0; i < num_new; ++i)
        event.distances[i] = new_distances[i];
    stats_.collapse.record(event);
}

void
LimitScheduler::removeFromWindow(std::uint64_t seq)
{
    Entry *entry = findWindow(seq);
    ddsc_assert(entry != nullptr, "removing unknown entry");
    entry->live = false;
    --windowCount_;
    std::uint64_t &word = readyBits_[(seq & slotMask_) >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (seq & 63);
    if (word & bit) {
        word &= ~bit;
        --readyCount_;
    }
    while (oldestSeq_ < nextSeq_ && findWindow(oldestSeq_) == nullptr)
        ++oldestSeq_;
}

void
LimitScheduler::markReady(Entry &entry)
{
    entry.ready = true;
    readyBits_[(entry.seq & slotMask_) >> 6] |=
        std::uint64_t{1} << (entry.seq & 63);
    ++readyCount_;
}

unsigned
LimitScheduler::issueReady(std::uint64_t &last_issue_cycle,
                           bool &any_issue)
{
    // Oldest ready first: walk the bitmap from the oldest live seq.
    // Ready bits below oldestSeq_ cannot exist (removeFromWindow
    // clears them) and seqs are dense, so 64-aligned seq blocks map to
    // whole ring words.  Eliminated entries leave for free, but only
    // while issue slots remain this cycle (matching the historical
    // pop-loop condition).
    unsigned issued = 0;
    for (std::uint64_t base = oldestSeq_ & ~std::uint64_t{63};
         base < nextSeq_ && readyCount_ != 0; base += 64) {
        std::uint64_t word = readyBits_[(base & slotMask_) >> 6];
        // Positions below oldestSeq_ in the first word can alias the
        // ready bits of seqs one ring generation younger when the
        // live span approaches the ring size; mask them off (the
        // aliased seqs are rediscovered at their own word).
        if (base < oldestSeq_)
            word &= ~std::uint64_t{0} << (oldestSeq_ - base);
        while (word != 0) {
            if (issued == config_.issueWidth)
                return issued;
            const std::uint64_t seq =
                base + static_cast<unsigned>(std::countr_zero(word));
            word &= word - 1;
            Entry &entry = slots_[seq & slotMask_];
            if (entry.eliminated) {
                removeFromWindow(seq);
                continue;
            }
            issue(entry, cycle_);
            last_issue_cycle = cycle_;
            any_issue = true;
            ++issued;
            removeFromWindow(seq);
        }
    }
    return issued;
}

void
LimitScheduler::noteValueReaders(const Entry &entry)
{
    // Any arc that survived collapsing is a real use of the producer's
    // result; such producers must execute.
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (entry.arcs[i].collapsed)
            continue;
        if (Entry *producer = findWindow(entry.arcs[i].producerSeq))
            producer->hasValueReader = true;
    }
}

void
LimitScheduler::maybeEliminate(std::uint64_t old_seq)
{
    if (old_seq == 0)
        return;
    Entry *old_entry = findWindow(old_seq);
    if (old_entry == nullptr)
        return;             // already issued
    if (old_entry->issued || old_entry->eliminated)
        return;
    // Eliminable: absorbed by at least one consumer, no surviving
    // value reader, and (for cc writers) the cc already overwritten.
    if (old_entry->absorbedCount == 0 || old_entry->hasValueReader)
        return;
    if (old_entry->rec.setsCC() && lastCCWriter_ == old_entry->seq)
        return;             // a future branch may still read the cc
    old_entry->eliminated = true;
    ++stats_.eliminatedInstructions;
}

// --- dynamic behaviour ----------------------------------------------------

void
LimitScheduler::classifyLoad(Entry &entry, std::uint64_t cycle)
{
    // First cycle at which all non-address constraints hold.
    entry.loadClassified = true;
    const bool addr_ready = addrArcsSatisfied(entry, cycle);
    if (addr_ready) {
        entry.loadClass = LoadClass::Ready;
    } else if (config_.loadSpec == LoadSpecMode::Ideal ||
               (entry.predUsable && entry.predCorrect)) {
        entry.loadClass = LoadClass::PredictedCorrect;
        // Data flows to dependents from the speculative access.
        entry.valueTime = cycle + opLatency(entry.rec.op);
        entry.specValueSet = true;
    } else if (entry.predUsable) {
        entry.loadClass = LoadClass::PredictedIncorrect;
    } else {
        entry.loadClass = LoadClass::NotPredicted;
    }

    // Value-prediction extension: a confident correct value prediction
    // beats even a correct address prediction -- dependents get the
    // value one cycle after the load's other constraints hold, without
    // the memory access.  Wrong predictions fall back to normal
    // timing (the verifying access supplies the real value).
    if (config_.loadValuePrediction && entry.vpredUsable) {
        if (entry.vpredCorrect) {
            const std::uint64_t vp_time = cycle + 1;
            if (!entry.specValueSet || vp_time < entry.valueTime) {
                entry.valueTime = vp_time;
                entry.specValueSet = true;
            }
            ++stats_.valuePredHits;
        } else {
            ++stats_.valuePredWrong;
        }
    }

    ++stats_.loads;
    ++stats_.loadClasses[static_cast<unsigned>(entry.loadClass)];
}

void
LimitScheduler::issue(Entry &entry, std::uint64_t cycle)
{
    entry.issued = true;
    if (!entry.specValueSet)
        entry.valueTime = cycle + opLatency(entry.rec.op);
    recordRetired(entry.seq, entry.valueTime);
}

void
LimitScheduler::resetState()
{
    bpred_->reset();
    addrPred_->reset();
    valuePred_.reset();
    ras_.reset();
    itb_.reset();
    for (Entry &slot : slots_)
        slot.live = false;
    windowCount_ = 0;
    oldestSeq_ = 1;
    for (Retired &slot : retired_)
        slot = Retired{};
    pending_.clear();
    classifyQueue_.clear();
    std::fill(readyBits_.begin(), readyBits_.end(), std::uint64_t{0});
    readyCount_ = 0;
    // Seqs restart at 1 every run, so stale store pages must not be
    // consulted: bump the epoch and let pages lazily re-zero on first
    // touch instead of deallocating or clearing them all here.
    ++storeEpoch_;
    storePageCache_ = nullptr;
    storePageCacheBase_ = 1;
    std::fill(std::begin(lastRegWriter_), std::end(lastRegWriter_),
              std::uint64_t{0});
    lastCCWriter_ = 0;
    lastBarrier_ = 0;
    nextSeq_ = 1;
    nextBbId_ = 0;
    cycle_ = 0;
    stats_ = SchedStats{};
}

SchedStats
LimitScheduler::runNaive(TraceSource &trace)
{
    resetState();

    TraceRecord rec;
    bool exhausted = false;
    while (windowCount_ < config_.windowSize) {
        if (!trace.next(rec)) {
            exhausted = true;
            break;
        }
        insert(rec);
    }

    std::uint64_t last_issue_cycle = 0;
    bool any_issue = false;
    // Loads queue for classification whenever any load speculation is
    // on -- address prediction or value prediction (matching insert()).
    const bool classify_loads =
        config_.loadSpec != LoadSpecMode::None ||
        config_.loadValuePrediction;
    while (windowCount_ > 0) {
        // Classification: exact first cycle the non-address
        // constraints hold, found by brute-force scan in seq order.
        if (classify_loads) {
            for (std::uint64_t seq = oldestSeq_; seq < nextSeq_; ++seq) {
                Entry *entry = findWindow(seq);
                if (!entry || !entry->isLoad || entry->loadClassified)
                    continue;
                Check check = checkNonAddr(*entry, cycle_);
                if (check.ok)
                    classifyLoad(*entry, cycle_);
            }
        }

        // Promotion: full scan in seq order.
        for (std::uint64_t seq = oldestSeq_; seq < nextSeq_; ++seq) {
            Entry *entry = findWindow(seq);
            if (!entry)
                continue;
            if (!entry->ready && sourcesSatisfied(*entry, cycle_))
                markReady(*entry);
        }

        // Issue: oldest ready first.  Eliminated entries leave for
        // free once their sources are satisfied.
        const unsigned issued = issueReady(last_issue_cycle, any_issue);

        stats_.issuedPerCycle.add(issued);
        ++cycle_;
        while (!exhausted && windowCount_ < config_.windowSize) {
            if (!trace.next(rec)) {
                exhausted = true;
                break;
            }
            insert(rec);
        }

        if (issued == 0 && cycle_ > last_issue_cycle + 64) {
            ddsc_panic("naive scheduler deadlock at cycle %llu",
                       static_cast<unsigned long long>(cycle_));
        }
    }

    // A run in which nothing ever issues (e.g. an empty trace)
    // occupies zero cycles; "last issue + 1" only counts real issues.
    stats_.cycles = any_issue ? last_issue_cycle + 1 : 0;
    return stats_;
}

SchedStats
LimitScheduler::run(TraceSource &trace)
{
    const auto start = std::chrono::steady_clock::now();
    SchedStats stats =
        config_.naiveEngine ? runNaive(trace) : runEvent(trace);
    stats.wallNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start).count());
    return stats;
}

SchedStats
LimitScheduler::runEvent(TraceSource &trace)
{
    resetState();

    // Initial fill: instructions available in cycle 0.
    TraceRecord rec;
    bool exhausted = false;
    while (windowCount_ < config_.windowSize) {
        if (!trace.next(rec)) {
            exhausted = true;
            break;
        }
        insert(rec);
    }

    std::uint64_t last_issue_cycle = 0;
    bool any_issue = false;

    // Drain-one-bucket helpers: every event due this cycle is either
    // in the bucket of the current cycle (drained and cleared whole)
    // or at the top of the far heap.  No push during a drain can
    // target the bucket being drained (re-evaluation bounds are
    // strictly in the future), so plain index iteration is safe.
    const auto classifyOne = [&](std::uint64_t seq) {
        Entry *entry = findWindow(seq);
        if (entry == nullptr)
            return;             // already issued (classified earlier)
        if (entry->loadClassified)
            return;
        const Check check = checkNonAddr(*entry, cycle_);
        if (check.ok)
            classifyLoad(*entry, cycle_);
        else
            classifyQueue_.push(check.bound, cycle_, seq);
    };
    const auto promoteOne = [&](std::uint64_t seq) {
        Entry *entry = findWindow(seq);
        if (entry == nullptr)
            return;
        if (entry->ready || entry->issued)
            return;
        const Check check = checkAll(*entry, cycle_);
        if (check.ok)
            markReady(*entry);
        else
            pending_.push(check.bound, cycle_, seq);
    };

    while (windowCount_ > 0) {
        // 1. Load classification at the exact first cycle the
        //    non-address constraints hold.
        while (!classifyQueue_.far.empty() &&
               classifyQueue_.far.top().first <= cycle_) {
            const std::uint64_t seq = classifyQueue_.far.top().second;
            classifyQueue_.far.pop();
            classifyOne(seq);
        }
        auto &classify_due =
            classifyQueue_.buckets[cycle_ & (kWheelSlots - 1)];
        for (std::size_t i = 0; i < classify_due.size(); ++i)
            classifyOne(classify_due[i]);
        classify_due.clear();

        // 2. Promote pending entries whose bound came due.
        while (!pending_.far.empty() &&
               pending_.far.top().first <= cycle_) {
            const std::uint64_t seq = pending_.far.top().second;
            pending_.far.pop();
            promoteOne(seq);
        }
        auto &pending_due = pending_.buckets[cycle_ & (kWheelSlots - 1)];
        for (std::size_t i = 0; i < pending_due.size(); ++i)
            promoteOne(pending_due[i]);
        pending_due.clear();

        // 3. Issue up to issueWidth ready entries, oldest first.
        //    Eliminated entries leave for free once source-satisfied.
        const unsigned issued = issueReady(last_issue_cycle, any_issue);

        // 4. Refill the window ("kept full"); new entries become
        //    issuable from the next cycle.
        stats_.issuedPerCycle.add(issued);
        ++cycle_;
        while (!exhausted && windowCount_ < config_.windowSize) {
            if (!trace.next(rec)) {
                exhausted = true;
                break;
            }
            insert(rec);
        }

        if (issued == 0 && cycle_ > last_issue_cycle + 64) {
            // Every latency is <= 12 cycles and all constraints resolve
            // within a bounded time of the last issue, so a long
            // stretch with no issue from a non-empty window is a
            // dependence cycle: an internal bug.
            ddsc_panic("scheduler deadlock at cycle %llu",
                       static_cast<unsigned long long>(cycle_));
        }
    }

    // A run in which nothing ever issues (e.g. an empty trace)
    // occupies zero cycles; "last issue + 1" only counts real issues.
    stats_.cycles = any_issue ? last_issue_cycle + 1 : 0;
    return stats_;
}

} // namespace ddsc
