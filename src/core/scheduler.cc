#include "scheduler.hh"

#include <algorithm>
#include <chrono>

#include "support/logging.hh"

namespace ddsc
{

LimitScheduler::LimitScheduler(const MachineConfig &config)
    : config_(config),
      bpred_(std::make_unique<CombiningPredictor>(config.bpredIndexBits)),
      addrPred_(makeAddressPredictor(config.addrPredKind,
                                     config.addrPredIndexBits,
                                     config.addrConfidenceThreshold)),
      ras_(config.rasDepth)
{
    ddsc_assert(config.issueWidth >= 1, "issue width must be positive");
    ddsc_assert(config.windowSize >= config.issueWidth,
                "window smaller than issue width");
}

const LimitScheduler::Entry *
LimitScheduler::findWindow(std::uint64_t seq) const
{
    const auto it = bySeq_.find(seq);
    return it == bySeq_.end() ? nullptr : &*it->second;
}

// --- exact satisfaction checks ----------------------------------------

bool
LimitScheduler::arcSatisfied(const DepArc &arc, std::uint64_t cycle) const
{
    if (const Entry *producer = findWindow(arc.producerSeq)) {
        if (producer->issued) {
            if (arc.collapsed)
                return true;
            return cycle >= producer->valueTime;
        }
        if (arc.collapsed) {
            // Collapsed arc: the compound operation needs only the
            // producer's own sources, not its result.
            return sourcesSatisfied(*producer, cycle);
        }
        // Value arc to an unissued producer: available only if a
        // correctly-speculated load already delivered its data.
        return producer->specValueSet && cycle >= producer->valueTime;
    }
    // Producer issued and left the window.
    if (arc.collapsed)
        return true;
    const auto it = retired_.find(arc.producerSeq);
    if (it == retired_.end())
        return true;    // pruned: value long since available
    return cycle >= it->second;
}

bool
LimitScheduler::barrierSatisfiedNow(const Entry &entry,
                                    std::uint64_t cycle) const
{
    if (entry.barrierSeq == 0)
        return true;
    if (const Entry *branch = findWindow(entry.barrierSeq))
        return branch->issued && cycle >= branch->valueTime;
    const auto it = retired_.find(entry.barrierSeq);
    return it == retired_.end() || cycle >= it->second;
}

bool
LimitScheduler::sourcesSatisfied(const Entry &entry,
                                 std::uint64_t cycle) const
{
    if (entry.ready || entry.issued)
        return true;        // readiness is monotone
    if (cycle < entry.fixedReady)
        return false;
    if (!barrierSatisfiedNow(entry, cycle))
        return false;
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (!arcSatisfied(entry.arcs[i], cycle))
            return false;
    }
    return true;
}

bool
LimitScheduler::addrArcsSatisfied(const Entry &entry,
                                  std::uint64_t cycle) const
{
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (entry.arcs[i].address && !arcSatisfied(entry.arcs[i], cycle))
            return false;
    }
    return true;
}

// --- lower bounds -------------------------------------------------------

std::uint64_t
LimitScheduler::arcBound(const DepArc &arc, std::uint64_t cycle) const
{
    if (const Entry *producer = findWindow(arc.producerSeq)) {
        if (producer->issued || producer->ready) {
            if (arc.collapsed)
                return 0;           // sources certainly satisfied
            if (producer->issued || producer->specValueSet)
                return producer->valueTime;
            // Ready but width-stalled: it could issue this very cycle,
            // so the value can exist at cycle + latency at the soonest.
            return cycle + opLatency(producer->rec.op);
        }
        if (arc.collapsed)
            return producer->boundAll;
        if (producer->specValueSet)
            return producer->valueTime;
        if (producer->isLoad && !producer->loadClassified &&
            (config_.loadSpec != LoadSpecMode::None ||
             config_.loadValuePrediction)) {
            // Not yet classified: the earliest possible data delivery
            // is a correct speculation right when the non-address
            // constraints hold -- one cycle for a value prediction,
            // the access latency for an address prediction.
            const std::uint64_t spec_latency =
                config_.loadValuePrediction
                    ? 1 : opLatency(producer->rec.op);
            return producer->boundNonAddr + spec_latency;
        }
        // Classified without speculation (or no speculation at all):
        // the data arrives only after the load itself issues.
        return producer->boundAll + opLatency(producer->rec.op);
    }
    if (arc.collapsed)
        return 0;
    const auto it = retired_.find(arc.producerSeq);
    return it == retired_.end() ? 0 : it->second;
}

std::uint64_t
LimitScheduler::barrierBound(const Entry &entry, std::uint64_t cycle) const
{
    if (entry.barrierSeq == 0)
        return 0;
    if (const Entry *branch = findWindow(entry.barrierSeq)) {
        if (branch->issued)
            return branch->valueTime;
        if (branch->ready)
            return cycle + 1;   // it could issue this very cycle
        return branch->boundAll + 1;
    }
    const auto it = retired_.find(entry.barrierSeq);
    return it == retired_.end() ? 0 : it->second;
}

LimitScheduler::Check
LimitScheduler::checkAll(Entry &entry, std::uint64_t cycle) const
{
    std::uint64_t bound = entry.fixedReady;
    bool ok = cycle >= entry.fixedReady;
    if (const std::uint64_t b = barrierBound(entry, cycle); b > cycle) {
        ok = false;
        bound = std::max(bound, b);
    } else if (!barrierSatisfiedNow(entry, cycle)) {
        ok = false;
        bound = std::max(bound, cycle + 1);
    }
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (arcSatisfied(entry.arcs[i], cycle))
            continue;
        ok = false;
        bound = std::max(bound, arcBound(entry.arcs[i], cycle));
    }
    if (!ok)
        bound = std::max(bound, cycle + 1);
    entry.boundAll = std::max(entry.boundAll, ok ? cycle : bound);
    return {ok, bound};
}

LimitScheduler::Check
LimitScheduler::checkNonAddr(Entry &entry, std::uint64_t cycle) const
{
    std::uint64_t bound = entry.fixedReady;
    bool ok = cycle >= entry.fixedReady;
    if (const std::uint64_t b = barrierBound(entry, cycle); b > cycle) {
        ok = false;
        bound = std::max(bound, b);
    } else if (!barrierSatisfiedNow(entry, cycle)) {
        ok = false;
        bound = std::max(bound, cycle + 1);
    }
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (entry.arcs[i].address)
            continue;
        if (arcSatisfied(entry.arcs[i], cycle))
            continue;
        ok = false;
        bound = std::max(bound, arcBound(entry.arcs[i], cycle));
    }
    if (!ok)
        bound = std::max(bound, cycle + 1);
    entry.boundNonAddr = std::max(entry.boundNonAddr, ok ? cycle : bound);
    return {ok, bound};
}

// --- window construction ------------------------------------------------

void
LimitScheduler::addArc(Entry &entry, std::uint64_t producer_seq,
                       bool address)
{
    if (producer_seq == 0)
        return;
    if (findWindow(producer_seq) != nullptr) {
        ddsc_assert(entry.numArcs < 4, "arc overflow");
        entry.arcs[entry.numArcs++] = {producer_seq, false, address};
        return;
    }
    const auto it = retired_.find(producer_seq);
    if (it == retired_.end())
        return;     // long retired; no constraint
    if (address) {
        // Keep address constraints as arcs even when resolved, so the
        // ready/not-ready load classification can separate them from
        // the other constraints.
        ddsc_assert(entry.numArcs < 4, "arc overflow");
        entry.arcs[entry.numArcs++] = {producer_seq, false, true};
    } else {
        entry.fixedReady = std::max(entry.fixedReady, it->second);
    }
}

void
LimitScheduler::insert(const TraceRecord &rec)
{
    window_.emplace_back();
    const auto self = std::prev(window_.end());
    Entry &entry = *self;
    entry.rec = rec;
    entry.seq = nextSeq_++;
    entry.fixedReady = cycle_;      // issuable from the insertion cycle
    entry.expr = ExprSize::of(rec);
    entry.isLoad = rec.isLoad();
    entry.bbId = nextBbId_;
    if (isControl(rec.cls()))
        ++nextBbId_;                // this instruction ends its block

    ++stats_.instructions;

    // --- control: predict branches, erect barriers -------------------
    if (rec.isCondBranch()) {
        ++stats_.condBranches;
        const bool correct = bpred_->predictAndUpdate(rec.pc, rec.taken);
        if (!correct) {
            ++stats_.mispredicts;
            lastBarrier_ = entry.seq;
        }
    } else if (config_.realCtiPrediction) {
        // The paper idealizes these; optionally model them with a
        // return-address stack and an indirect-target buffer.
        switch (rec.cls()) {
          case OpClass::Call:
            ras_.pushCall(rec.pc + 4);
            break;
          case OpClass::CallIndirect:
            // The return address is known (push it), but the callee
            // target comes from a register: predict it like an
            // indirect jump.
            ras_.pushCall(rec.pc + 4);
            ++stats_.ctiPredictions;
            if (itb_.predict(rec.pc) != rec.target) {
                ++stats_.ctiMispredicts;
                lastBarrier_ = entry.seq;
            }
            itb_.update(rec.pc, rec.target);
            break;
          case OpClass::Ret:
            ++stats_.ctiPredictions;
            if (ras_.popReturn() != rec.target) {
                ++stats_.ctiMispredicts;
                lastBarrier_ = entry.seq;
            }
            break;
          case OpClass::IndirectJump:
            ++stats_.ctiPredictions;
            if (itb_.predict(rec.pc) != rec.target) {
                ++stats_.ctiMispredicts;
                lastBarrier_ = entry.seq;
            }
            itb_.update(rec.pc, rec.target);
            break;
          default:
            break;      // direct jumps and calls: target in the opcode
        }
    }

    // Younger instructions cannot issue before or during the cycle a
    // mispredicted branch issues.
    if (lastBarrier_ != 0 && lastBarrier_ != entry.seq)
        entry.barrierSeq = lastBarrier_;

    // --- register RAW arcs -------------------------------------------
    for (const int reg : rec.dataSources()) {
        if (reg >= 0)
            addArc(entry, lastRegWriter_[reg], false);
    }
    for (const int reg : rec.addressSources()) {
        if (reg >= 0)
            addArc(entry, lastRegWriter_[reg], true);
    }

    // --- condition codes ---------------------------------------------
    if (rec.readsCC())
        addArc(entry, lastCCWriter_, false);

    // --- memory RAW (perfect disambiguation) -------------------------
    if (rec.isLoad()) {
        std::uint64_t dep = 0;
        for (unsigned b = 0; b < rec.memSize(); ++b) {
            const auto it = lastStoreToByte_.find(rec.ea + b);
            if (it != lastStoreToByte_.end())
                dep = std::max(dep, it->second);
        }
        addArc(entry, dep, false);
    }

    // --- d-collapsing --------------------------------------------------
    if (config_.collapsing)
        tryCollapse(entry);

    // --- load-speculation table (trained by every load, in order) ----
    if (rec.isLoad() && config_.loadSpec == LoadSpecMode::Real) {
        const AddrPrediction pred = addrPred_->predict(rec.pc);
        entry.predUsable = pred.usable;
        entry.predCorrect = pred.usable && pred.addr == rec.ea;
        addrPred_->update(rec.pc, rec.ea);
    }

    // --- value-prediction extension (Figure 1.d) ----------------------
    if (rec.isLoad() && config_.loadValuePrediction) {
        const ValuePrediction vp = valuePred_.predict(rec.pc);
        entry.vpredUsable = vp.usable;
        entry.vpredCorrect = vp.usable && vp.value == rec.memValue;
        valuePred_.update(rec.pc, rec.memValue);
    }

    // --- node elimination bookkeeping ---------------------------------
    if (config_.nodeElimination)
        noteValueReaders(entry);

    // --- update producer tables (after reading them) ------------------
    const int dest = rec.destReg();
    if (dest >= 0) {
        const std::uint64_t old_writer = lastRegWriter_[dest];
        lastRegWriter_[dest] = entry.seq;
        if (config_.nodeElimination)
            maybeEliminate(old_writer);
    }
    if (rec.setsCC())
        lastCCWriter_ = entry.seq;
    if (rec.isStore()) {
        for (unsigned b = 0; b < rec.memSize(); ++b)
            lastStoreToByte_[rec.ea + b] = entry.seq;
    }

    entry.boundAll = entry.fixedReady;
    entry.boundNonAddr = entry.fixedReady;
    bySeq_.emplace(entry.seq, self);

    pending_.push({entry.fixedReady, entry.seq});
    const bool classify = config_.loadSpec != LoadSpecMode::None ||
        config_.loadValuePrediction;
    if (entry.isLoad && classify)
        classifyQueue_.push({entry.fixedReady, entry.seq});
    else if (entry.isLoad)
        ++stats_.loads;
}

void
LimitScheduler::tryCollapse(Entry &entry)
{
    const TraceRecord &rec = entry.rec;
    const OpClass cls = rec.cls();

    // Gather the collapsible candidate arcs of this consumer.  An arc
    // is a candidate when it is a register (or cc) RAW arc to a
    // producer that is still unissued in the window, the producer is
    // ALU-executable, and the arc kind is absorbable by this consumer.
    struct Candidate
    {
        Entry *producer;
        unsigned slots;         // consumer slots fed by this producer
        unsigned arcIndices[2];
        std::uint64_t distance;
    };
    Candidate candidates[2];
    unsigned num_candidates = 0;

    for (unsigned i = 0; i < entry.numArcs; ++i) {
        DepArc &arc = entry.arcs[i];
        if (arc.collapsed)
            continue;
        const auto it = bySeq_.find(arc.producerSeq);
        if (it == bySeq_.end())
            continue;                       // already issued
        Entry *producer = &*it->second;
        if (producer->issued)
            continue;
        if (!CollapseRules::producerEligible(producer->rec))
            continue;
        // In this ISA only conditional branches read the cc, and their
        // sole candidate arc is the cc arc (barrier producers are
        // branches, filtered above by producer eligibility).
        const bool is_cc = cls == OpClass::Branch;
        if (!CollapseRules::consumerEligible(rec, arc.address, is_cc))
            continue;

        // Prior-work restriction ablations (section 2 of the paper:
        // earlier proposals collapsed "only consecutive instructions
        // within a single basic block").
        if (config_.rules.maxCollapseDistance != 0 &&
            entry.seq - producer->seq > config_.rules.maxCollapseDistance)
            continue;
        if (config_.rules.sameBasicBlockOnly &&
            producer->bbId != entry.bbId)
            continue;

        // Group with an existing candidate for the same producer
        // (e.g. Rc = Rb + Rb).
        bool merged = false;
        for (unsigned c = 0; c < num_candidates; ++c) {
            if (candidates[c].producer == producer) {
                candidates[c].arcIndices[candidates[c].slots] = i;
                ++candidates[c].slots;
                merged = true;
                break;
            }
        }
        if (merged)
            continue;
        if (num_candidates == 2)
            continue;       // at most two distinct producers matter
        candidates[num_candidates++] = {producer, 1, {i, 0},
                                        entry.seq - producer->seq};
    }

    if (num_candidates == 0)
        return;

    // Greedily absorb candidates while the compound expression stays
    // within the 4-1 device and the group within 3 instructions.
    bool any = false;
    CollapseCategory category = CollapseCategory::ThreeOne;
    std::uint64_t new_distances[2];
    unsigned num_new = 0;

    for (unsigned c = 0; c < num_candidates; ++c) {
        Candidate &cand = candidates[c];
        Entry *producer = cand.producer;
        const unsigned group = entry.expr.instructions +
            producer->expr.instructions;
        if (group > config_.rules.maxInstructions)
            continue;
        const ExprSize combined = ExprSize::substitute(
            entry.expr, producer->expr, cand.slots);
        CollapseCategory judged;
        if (!config_.rules.judge(combined, judged))
            continue;

        // Commit this collapse.
        entry.expr = combined;
        category = judged;
        any = true;
        for (unsigned s = 0; s < cand.slots; ++s)
            entry.arcs[cand.arcIndices[s]].collapsed = true;
        new_distances[num_new++] = cand.distance;

        // Track group membership for the signature: the producer's own
        // absorbed members plus the producer itself.
        for (unsigned m = 0; m < producer->numMembers &&
                 entry.numMembers < 2; ++m) {
            entry.memberRecords[entry.numMembers] =
                producer->memberRecords[m];
            entry.memberSeqs[entry.numMembers] = producer->memberSeqs[m];
            ++entry.numMembers;
        }
        if (entry.numMembers < 2) {
            entry.memberRecords[entry.numMembers] = producer->rec;
            entry.memberSeqs[entry.numMembers] = producer->seq;
            ++entry.numMembers;
        }

        ++producer->absorbedCount;
        if (!producer->inAnyGroup) {
            producer->inAnyGroup = true;
            stats_.collapse.noteCollapsedInstruction();
        }
    }

    if (!any)
        return;

    if (!entry.inAnyGroup) {
        entry.inAnyGroup = true;
        stats_.collapse.noteCollapsedInstruction();
    }

    // Record the event: members oldest-first, then this consumer.
    // Two producers of a tree triple may have been absorbed in either
    // order, so sort by sequence number.
    if (entry.numMembers == 2 &&
        entry.memberSeqs[0] > entry.memberSeqs[1]) {
        std::swap(entry.memberSeqs[0], entry.memberSeqs[1]);
        std::swap(entry.memberRecords[0], entry.memberRecords[1]);
    }
    CollapseEvent event;
    event.category = category;
    event.groupSize = entry.numMembers + 1;
    const TraceRecord *members[3];
    unsigned count = 0;
    for (unsigned m = 0; m < entry.numMembers; ++m)
        members[count++] = &entry.memberRecords[m];
    members[count++] = &entry.rec;
    event.signature = groupSignature(members, count);
    event.distanceCount = num_new;
    for (unsigned i = 0; i < num_new; ++i)
        event.distances[i] = new_distances[i];
    stats_.collapse.record(event);
}

void
LimitScheduler::removeFromWindow(std::uint64_t seq)
{
    const auto it = bySeq_.find(seq);
    ddsc_assert(it != bySeq_.end(), "removing unknown entry");
    window_.erase(it->second);
    bySeq_.erase(it);
}

void
LimitScheduler::noteValueReaders(const Entry &entry)
{
    // Any arc that survived collapsing is a real use of the producer's
    // result; such producers must execute.
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (entry.arcs[i].collapsed)
            continue;
        const auto it = bySeq_.find(entry.arcs[i].producerSeq);
        if (it != bySeq_.end())
            it->second->hasValueReader = true;
    }
}

void
LimitScheduler::maybeEliminate(std::uint64_t old_seq)
{
    if (old_seq == 0)
        return;
    const auto it = bySeq_.find(old_seq);
    if (it == bySeq_.end())
        return;             // already issued
    Entry &old_entry = *it->second;
    if (old_entry.issued || old_entry.eliminated)
        return;
    // Eliminable: absorbed by at least one consumer, no surviving
    // value reader, and (for cc writers) the cc already overwritten.
    if (old_entry.absorbedCount == 0 || old_entry.hasValueReader)
        return;
    if (old_entry.rec.setsCC() && lastCCWriter_ == old_entry.seq)
        return;             // a future branch may still read the cc
    old_entry.eliminated = true;
    ++stats_.eliminatedInstructions;
}

// --- dynamic behaviour ----------------------------------------------------

void
LimitScheduler::classifyLoad(Entry &entry, std::uint64_t cycle)
{
    // First cycle at which all non-address constraints hold.
    entry.loadClassified = true;
    const bool addr_ready = addrArcsSatisfied(entry, cycle);
    if (addr_ready) {
        entry.loadClass = LoadClass::Ready;
    } else if (config_.loadSpec == LoadSpecMode::Ideal ||
               (entry.predUsable && entry.predCorrect)) {
        entry.loadClass = LoadClass::PredictedCorrect;
        // Data flows to dependents from the speculative access.
        entry.valueTime = cycle + opLatency(entry.rec.op);
        entry.specValueSet = true;
    } else if (entry.predUsable) {
        entry.loadClass = LoadClass::PredictedIncorrect;
    } else {
        entry.loadClass = LoadClass::NotPredicted;
    }

    // Value-prediction extension: a confident correct value prediction
    // beats even a correct address prediction -- dependents get the
    // value one cycle after the load's other constraints hold, without
    // the memory access.  Wrong predictions fall back to normal
    // timing (the verifying access supplies the real value).
    if (config_.loadValuePrediction && entry.vpredUsable) {
        if (entry.vpredCorrect) {
            const std::uint64_t vp_time = cycle + 1;
            if (!entry.specValueSet || vp_time < entry.valueTime) {
                entry.valueTime = vp_time;
                entry.specValueSet = true;
            }
            ++stats_.valuePredHits;
        } else {
            ++stats_.valuePredWrong;
        }
    }

    ++stats_.loads;
    ++stats_.loadClasses[static_cast<unsigned>(entry.loadClass)];
}

void
LimitScheduler::issue(Entry &entry, std::uint64_t cycle)
{
    entry.issued = true;
    if (!entry.specValueSet)
        entry.valueTime = cycle + opLatency(entry.rec.op);
    retired_.emplace(entry.seq, entry.valueTime);
}

void
LimitScheduler::resetState()
{
    bpred_->reset();
    addrPred_->reset();
    valuePred_.reset();
    ras_.reset();
    itb_.reset();
    window_.clear();
    bySeq_.clear();
    retired_.clear();
    pending_ = BoundHeap();
    classifyQueue_ = BoundHeap();
    readySet_.clear();
    lastStoreToByte_.clear();
    std::fill(std::begin(lastRegWriter_), std::end(lastRegWriter_),
              std::uint64_t{0});
    lastCCWriter_ = 0;
    lastBarrier_ = 0;
    nextSeq_ = 1;
    nextBbId_ = 0;
    cycle_ = 0;
    stats_ = SchedStats{};
}

SchedStats
LimitScheduler::runNaive(TraceSource &trace)
{
    resetState();

    TraceRecord rec;
    bool exhausted = false;
    while (window_.size() < config_.windowSize) {
        if (!trace.next(rec)) {
            exhausted = true;
            break;
        }
        insert(rec);
    }

    std::uint64_t last_issue_cycle = 0;
    while (!window_.empty()) {
        // Classification: exact first cycle the non-address
        // constraints hold, found by brute-force scan.
        if (config_.loadSpec != LoadSpecMode::None) {
            for (Entry &entry : window_) {
                if (!entry.isLoad || entry.loadClassified)
                    continue;
                Check check = checkNonAddr(entry, cycle_);
                if (check.ok)
                    classifyLoad(entry, cycle_);
            }
        }

        // Promotion: full scan.
        for (Entry &entry : window_) {
            if (!entry.ready && sourcesSatisfied(entry, cycle_)) {
                entry.ready = true;
                readySet_.emplace(entry.seq, &entry);
            }
        }

        // Issue: oldest ready first.  Eliminated entries leave for
        // free once their sources are satisfied.
        unsigned issued = 0;
        auto rit = readySet_.begin();
        while (rit != readySet_.end() && issued < config_.issueWidth) {
            Entry &entry = *rit->second;
            const std::uint64_t seq = entry.seq;
            if (entry.eliminated) {
                rit = readySet_.erase(rit);
                removeFromWindow(seq);
                continue;
            }
            issue(entry, cycle_);
            last_issue_cycle = cycle_;
            ++issued;
            rit = readySet_.erase(rit);
            removeFromWindow(seq);
        }

        stats_.issuedPerCycle.add(issued);
        ++cycle_;
        while (!exhausted && window_.size() < config_.windowSize) {
            if (!trace.next(rec)) {
                exhausted = true;
                break;
            }
            insert(rec);
        }

        if (issued == 0 && cycle_ > last_issue_cycle + 64) {
            ddsc_panic("naive scheduler deadlock at cycle %llu",
                       static_cast<unsigned long long>(cycle_));
        }
    }

    stats_.cycles = last_issue_cycle + 1;
    return stats_;
}

SchedStats
LimitScheduler::run(TraceSource &trace)
{
    const auto start = std::chrono::steady_clock::now();
    SchedStats stats =
        config_.naiveEngine ? runNaive(trace) : runEvent(trace);
    stats.wallNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start).count());
    return stats;
}

SchedStats
LimitScheduler::runEvent(TraceSource &trace)
{
    resetState();

    // Initial fill: instructions available in cycle 0.
    TraceRecord rec;
    bool exhausted = false;
    while (window_.size() < config_.windowSize) {
        if (!trace.next(rec)) {
            exhausted = true;
            break;
        }
        insert(rec);
    }

    std::uint64_t last_issue_cycle = 0;
    std::uint64_t prune_mark = 0;

    while (!window_.empty()) {
        // 1. Load classification at the exact first cycle the
        //    non-address constraints hold.
        while (!classifyQueue_.empty() &&
               classifyQueue_.top().first <= cycle_) {
            const std::uint64_t seq = classifyQueue_.top().second;
            classifyQueue_.pop();
            const auto it = bySeq_.find(seq);
            if (it == bySeq_.end())
                continue;       // already issued (classified earlier)
            Entry &entry = *it->second;
            if (entry.loadClassified)
                continue;
            const Check check = checkNonAddr(entry, cycle_);
            if (check.ok)
                classifyLoad(entry, cycle_);
            else
                classifyQueue_.push({check.bound, seq});
        }

        // 2. Promote pending entries whose bound came due.
        while (!pending_.empty() && pending_.top().first <= cycle_) {
            const std::uint64_t seq = pending_.top().second;
            pending_.pop();
            const auto it = bySeq_.find(seq);
            if (it == bySeq_.end())
                continue;
            Entry &entry = *it->second;
            if (entry.ready || entry.issued)
                continue;
            const Check check = checkAll(entry, cycle_);
            if (check.ok) {
                entry.ready = true;
                readySet_.emplace(entry.seq, &entry);
            } else {
                pending_.push({check.bound, seq});
            }
        }

        // 3. Issue up to issueWidth ready entries, oldest first.
        //    Eliminated entries leave for free once source-satisfied.
        unsigned issued = 0;
        auto rit = readySet_.begin();
        while (rit != readySet_.end() && issued < config_.issueWidth) {
            Entry &entry = *rit->second;
            const std::uint64_t seq = entry.seq;
            if (entry.eliminated) {
                rit = readySet_.erase(rit);
                removeFromWindow(seq);
                continue;
            }
            issue(entry, cycle_);
            last_issue_cycle = cycle_;
            ++issued;
            rit = readySet_.erase(rit);
            removeFromWindow(seq);
        }

        // 4. Refill the window ("kept full"); new entries become
        //    issuable from the next cycle.
        stats_.issuedPerCycle.add(issued);
        ++cycle_;
        while (!exhausted && window_.size() < config_.windowSize) {
            if (!trace.next(rec)) {
                exhausted = true;
                break;
            }
            insert(rec);
        }

        // Periodically prune the retired map: entries whose value time
        // has passed can no longer constrain anyone.
        if (cycle_ - prune_mark >= 4096) {
            prune_mark = cycle_;
            for (auto it = retired_.begin(); it != retired_.end();) {
                if (it->second <= cycle_)
                    it = retired_.erase(it);
                else
                    ++it;
            }
        }

        if (issued == 0 && cycle_ > last_issue_cycle + 64) {
            // Every latency is <= 12 cycles and all constraints resolve
            // within a bounded time of the last issue, so a long
            // stretch with no issue from a non-empty window is a
            // dependence cycle: an internal bug.
            ddsc_panic("scheduler deadlock at cycle %llu",
                       static_cast<unsigned long long>(cycle_));
        }
    }

    stats_.cycles = last_issue_cycle + 1;
    return stats_;
}

} // namespace ddsc
