#include "scheduler.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>

#include "support/logging.hh"

namespace ddsc
{

namespace
{

std::uint64_t
ringSize(std::uint64_t wanted)
{
    return std::bit_ceil(std::max<std::uint64_t>(wanted, 64));
}

} // anonymous namespace

LimitScheduler::LimitScheduler(const MachineConfig &config)
    : config_(config), frontEnd_(config)
{
    ddsc_assert(config.issueWidth >= 1, "issue width must be positive");
    ddsc_assert(config.windowSize >= config.issueWidth,
                "window smaller than issue width");
    // Live entries never exceed windowSize, but the live *span* can:
    // younger generations churn past a stalled oldest entry.  Start
    // with headroom and let growWindow() handle the pathological case.
    slots_.resize(ringSize(8 * config.windowSize));
    slotMask_ = slots_.size() - 1;
    readyBits_.resize(slots_.size() / 64);
    // Retired producers constrain consumers for at most the maximum
    // latency after issue; size for that churn plus the window span.
    retired_.resize(ringSize(4 * config.windowSize));
    retiredMask_ = retired_.size() - 1;
}

const LimitScheduler::Entry *
LimitScheduler::findWindow(std::uint64_t seq) const
{
    const Entry &slot = slots_[seq & slotMask_];
    return slot.live && slot.seq == seq ? &slot : nullptr;
}

LimitScheduler::Entry *
LimitScheduler::findWindow(std::uint64_t seq)
{
    Entry &slot = slots_[seq & slotMask_];
    return slot.live && slot.seq == seq ? &slot : nullptr;
}

void
LimitScheduler::growWindow()
{
    // Pick the first doubling that fits the whole live span: seqs in
    // [oldestSeq_, nextSeq_) are distinct mod size once size >= span.
    const std::uint64_t span = nextSeq_ - oldestSeq_;
    std::uint64_t size = (slotMask_ + 1) * 2;
    while (size < span)
        size *= 2;
    std::vector<Entry> grown(size);
    std::vector<std::uint64_t> grown_bits(size / 64);
    const std::uint64_t mask = size - 1;
    for (std::uint64_t seq = oldestSeq_; seq < nextSeq_; ++seq) {
        if (const Entry *entry = findWindow(seq)) {
            grown[seq & mask] = *entry;
            if (entry->ready && !entry->issued)
                grown_bits[(seq & mask) >> 6] |=
                    std::uint64_t{1} << (seq & 63);
        }
    }
    slots_ = std::move(grown);
    readyBits_ = std::move(grown_bits);
    slotMask_ = mask;
}

std::uint64_t
LimitScheduler::retiredValueTime(std::uint64_t seq) const
{
    const Retired &slot = retired_[seq & retiredMask_];
    return slot.seq == seq ? slot.valueTime : 0;
}

void
LimitScheduler::recordRetired(std::uint64_t seq, std::uint64_t value_time)
{
    Retired *slot = &retired_[seq & retiredMask_];
    if (slot->seq != 0 && slot->seq != seq && slot->valueTime > cycle_) {
        // The occupant can still constrain a consumer: overwriting it
        // would turn "wait until valueTime" into "value available".
        growRetired();
        slot = &retired_[seq & retiredMask_];
    }
    *slot = {seq, value_time};
}

void
LimitScheduler::growRetired()
{
    std::uint64_t size = (retiredMask_ + 1) * 2;
    for (;;) {
        std::vector<Retired> grown(size);
        const std::uint64_t mask = size - 1;
        bool collision = false;
        for (const Retired &slot : retired_) {
            if (slot.seq == 0 || slot.valueTime <= cycle_)
                continue;       // resolved: dropping it is the same
            Retired &dst = grown[slot.seq & mask];
            if (dst.seq != 0) {
                collision = true;
                break;
            }
            dst = slot;
        }
        if (!collision) {
            retired_ = std::move(grown);
            retiredMask_ = mask;
            return;
        }
        size *= 2;
    }
}

void
LimitScheduler::BoundWheel::clear()
{
    for (std::vector<std::uint64_t> &bucket : buckets)
        bucket.clear();     // keeps capacity for the next run
    far = BoundHeap();
}

// --- exact satisfaction checks ----------------------------------------

bool
LimitScheduler::arcSatisfied(const DepArc &arc, std::uint64_t cycle) const
{
    if (const Entry *producer = findWindow(arc.producerSeq)) {
        if (producer->issued) {
            if (arc.collapsed)
                return true;
            return cycle >= producer->valueTime;
        }
        if (arc.collapsed) {
            // Collapsed arc: the compound operation needs only the
            // producer's own sources, not its result.
            return sourcesSatisfied(*producer, cycle);
        }
        // Value arc to an unissued producer: available only if a
        // correctly-speculated load already delivered its data.
        return producer->specValueSet && cycle >= producer->valueTime;
    }
    // Producer issued and left the window.
    if (arc.collapsed)
        return true;
    const std::uint64_t value_time = retiredValueTime(arc.producerSeq);
    return value_time == 0 || cycle >= value_time;
}

bool
LimitScheduler::barrierSatisfiedNow(const Entry &entry,
                                    std::uint64_t cycle) const
{
    if (entry.barrierSeq == 0)
        return true;
    if (const Entry *branch = findWindow(entry.barrierSeq))
        return branch->issued && cycle >= branch->valueTime;
    const std::uint64_t value_time = retiredValueTime(entry.barrierSeq);
    return value_time == 0 || cycle >= value_time;
}

bool
LimitScheduler::sourcesSatisfied(const Entry &entry,
                                 std::uint64_t cycle) const
{
    if (entry.ready || entry.issued)
        return true;        // readiness is monotone
    if (cycle < entry.fixedReady)
        return false;
    if (!barrierSatisfiedNow(entry, cycle))
        return false;
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (!arcSatisfied(entry.arcs[i], cycle))
            return false;
    }
    return true;
}

bool
LimitScheduler::addrArcsSatisfied(const Entry &entry,
                                  std::uint64_t cycle) const
{
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (entry.arcs[i].address && !arcSatisfied(entry.arcs[i], cycle))
            return false;
    }
    return true;
}

// --- lower bounds -------------------------------------------------------

std::uint64_t
LimitScheduler::arcBound(const DepArc &arc, std::uint64_t cycle) const
{
    if (const Entry *producer = findWindow(arc.producerSeq)) {
        if (producer->issued || producer->ready) {
            if (arc.collapsed)
                return 0;           // sources certainly satisfied
            if (producer->issued || producer->specValueSet)
                return producer->valueTime;
            // Ready but width-stalled: it could issue this very cycle,
            // so the value can exist at cycle + latency at the soonest.
            return cycle + opLatency(producer->rec.op);
        }
        if (arc.collapsed)
            return producer->boundAll;
        if (producer->specValueSet)
            return producer->valueTime;
        if (producer->isLoad && !producer->loadClassified &&
            (config_.loadSpec != LoadSpecMode::None ||
             config_.loadValuePrediction)) {
            // Not yet classified: the earliest possible data delivery
            // is a correct speculation right when the non-address
            // constraints hold -- one cycle for a value prediction,
            // the access latency for an address prediction.
            const std::uint64_t spec_latency =
                config_.loadValuePrediction
                    ? 1 : opLatency(producer->rec.op);
            return producer->boundNonAddr + spec_latency;
        }
        // Classified without speculation (or no speculation at all):
        // the data arrives only after the load itself issues.
        return producer->boundAll + opLatency(producer->rec.op);
    }
    if (arc.collapsed)
        return 0;
    return retiredValueTime(arc.producerSeq);
}

std::uint64_t
LimitScheduler::barrierBound(const Entry &entry, std::uint64_t cycle) const
{
    if (entry.barrierSeq == 0)
        return 0;
    if (const Entry *branch = findWindow(entry.barrierSeq)) {
        if (branch->issued)
            return branch->valueTime;
        if (branch->ready)
            return cycle + 1;   // it could issue this very cycle
        return branch->boundAll + 1;
    }
    return retiredValueTime(entry.barrierSeq);
}

LimitScheduler::Check
LimitScheduler::checkAll(Entry &entry, std::uint64_t cycle) const
{
    std::uint64_t bound = entry.fixedReady;
    bool ok = cycle >= entry.fixedReady;
    if (const std::uint64_t b = barrierBound(entry, cycle); b > cycle) {
        ok = false;
        bound = std::max(bound, b);
    } else if (!barrierSatisfiedNow(entry, cycle)) {
        ok = false;
        bound = std::max(bound, cycle + 1);
    }
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (arcSatisfied(entry.arcs[i], cycle))
            continue;
        ok = false;
        bound = std::max(bound, arcBound(entry.arcs[i], cycle));
    }
    if (!ok)
        bound = std::max(bound, cycle + 1);
    entry.boundAll = std::max(entry.boundAll, ok ? cycle : bound);
    return {ok, bound};
}

LimitScheduler::Check
LimitScheduler::checkNonAddr(Entry &entry, std::uint64_t cycle) const
{
    std::uint64_t bound = entry.fixedReady;
    bool ok = cycle >= entry.fixedReady;
    if (const std::uint64_t b = barrierBound(entry, cycle); b > cycle) {
        ok = false;
        bound = std::max(bound, b);
    } else if (!barrierSatisfiedNow(entry, cycle)) {
        ok = false;
        bound = std::max(bound, cycle + 1);
    }
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (entry.arcs[i].address)
            continue;
        if (arcSatisfied(entry.arcs[i], cycle))
            continue;
        ok = false;
        bound = std::max(bound, arcBound(entry.arcs[i], cycle));
    }
    if (!ok)
        bound = std::max(bound, cycle + 1);
    entry.boundNonAddr = std::max(entry.boundNonAddr, ok ? cycle : bound);
    return {ok, bound};
}

// --- window construction ------------------------------------------------

void
LimitScheduler::addArc(Entry &entry, std::uint64_t producer_seq,
                       bool address)
{
    if (producer_seq == 0)
        return;
    if (findWindow(producer_seq) != nullptr) {
        ddsc_assert(entry.numArcs < 4, "arc overflow");
        entry.arcs[entry.numArcs++] = {producer_seq, false, address};
        return;
    }
    const std::uint64_t value_time = retiredValueTime(producer_seq);
    if (value_time == 0)
        return;     // long retired; no constraint
    if (address) {
        // Keep address constraints as arcs even when resolved, so the
        // ready/not-ready load classification can separate them from
        // the other constraints.
        ddsc_assert(entry.numArcs < 4, "arc overflow");
        entry.arcs[entry.numArcs++] = {producer_seq, false, true};
    } else {
        entry.fixedReady = std::max(entry.fixedReady, value_time);
    }
}

void
LimitScheduler::insert(const TraceRecord &rec)
{
    // The historical monolithic insert, now split: the private
    // front-end computes the program-order annotation, the shared
    // back-end half builds the window entry from it.  The batched path
    // calls insertAnnotated() with annotations from an external
    // SpecFrontEnd pass, so the two paths agree by construction.
    InsertAnnotation ann;
    frontEnd_.annotate(rec, ann);
    insertAnnotated(rec, ann);
}

void
LimitScheduler::insertAnnotated(const TraceRecord &rec,
                                const InsertAnnotation &ann)
{
    // Every record of every engine path funnels through here, so one
    // poll point bounds the cancellation latency for all of them.
    pollCancel();
    const std::uint64_t seq = nextSeq_++;
    Entry *slot = &slots_[seq & slotMask_];
    if (slot->live) {
        growWindow();
        slot = &slots_[seq & slotMask_];
    }
    // Reconstruct the slot in place rather than `*slot = Entry{}`:
    // only fields a previous tenant can leave behind need clearing
    // (arcs, member records, and wake links are guarded by their
    // counts/heads), so slot reuse writes ~50 bytes instead of the
    // whole ~330-byte Entry.  Every other field is assigned below.
    Entry &entry = *slot;
    entry.numArcs = 0;
    entry.issued = false;
    entry.ready = false;
    entry.valueTime = 0;
    entry.specValueSet = false;
    entry.loadClassified = false;
    entry.loadClass = LoadClass::Ready;
    entry.numMembers = 0;
    entry.inAnyGroup = false;
    entry.absorbedCount = 0;
    entry.hasValueReader = false;
    entry.eliminated = false;
    entry.wakeHead = 0;
    entry.wakeNextPromote = 0;
    entry.wakeNextClassify = 0;
    entry.memSpecSeq = 0;
    entry.memSquashed = false;
    entry.rec = rec;
    entry.seq = seq;
    entry.live = true;
    ++windowCount_;
    entry.fixedReady = cycle_;      // issuable from the insertion cycle
    entry.expr = ann.expr;          // front-end collapse columns
    entry.sigFrag = ann.sig;
    entry.sigLen = ann.sigLen;
    entry.isLoad = rec.isLoad();
    entry.bbId = ann.bbId;

    ++stats_.instructions;

    // --- control outcomes (predicted by the front-end) ---------------
    if (ann.flags & InsertAnnotation::kFlagCondBranch) {
        ++stats_.condBranches;
        if (ann.flags & InsertAnnotation::kFlagMispredict)
            ++stats_.mispredicts;
    }
    if (ann.flags & InsertAnnotation::kFlagCtiPrediction) {
        ++stats_.ctiPredictions;
        if (ann.flags & InsertAnnotation::kFlagCtiMispredict)
            ++stats_.ctiMispredicts;
    }

    // Younger instructions cannot issue before or during the cycle a
    // mispredicted branch issues.
    entry.barrierSeq = ann.barrierSeq;

    // --- RAW arcs (register, cc, memory — annotated in order) --------
    unsigned num_deps = ann.depCount;
    if (config_.memDep == MemDepMode::Predicted &&
        (ann.flags & InsertAnnotation::kFlagMemDepActual) &&
        !(ann.flags & InsertAnnotation::kFlagMemDepPredicted)) {
        // Speculated independent: the true producing store (always the
        // last annotated dep) travels out-of-band instead of as an
        // arc, so readiness and classification ignore it; the issue
        // stage detects the violation, restores the arc, and charges
        // the squash at the re-issue (divertViolatedLoad).
        entry.memSpecSeq = ann.depSeq[num_deps - 1];
        --num_deps;
    }
    if (ann.flags & InsertAnnotation::kFlagMemDepPredicted)
        ++stats_.memDepPredictedDeps;
    if (ann.flags & InsertAnnotation::kFlagMemDepFalse)
        ++stats_.memDepFalseDeps;
    for (unsigned i = 0; i < num_deps; ++i)
        addArc(entry, ann.depSeq[i], (ann.depAddrMask >> i) & 1);

    // --- d-collapsing --------------------------------------------------
    if (config_.collapsing)
        tryCollapse(entry);

    // --- load-speculation outcomes (tables trained up front) ---------
    entry.predUsable = ann.flags & InsertAnnotation::kFlagPredUsable;
    entry.predCorrect = ann.flags & InsertAnnotation::kFlagPredCorrect;
    entry.vpredUsable = ann.flags & InsertAnnotation::kFlagVpredUsable;
    entry.vpredCorrect = ann.flags & InsertAnnotation::kFlagVpredCorrect;

    // --- node elimination bookkeeping ---------------------------------
    if (config_.nodeElimination) {
        noteValueReaders(entry);
        maybeEliminate(
            ann.elimOldWriter,
            ann.flags & InsertAnnotation::kFlagElimCcBlocked);
    }

    entry.boundAll = entry.fixedReady;
    entry.boundNonAddr = entry.fixedReady;

    const bool classify = config_.loadSpec != LoadSpecMode::None ||
        config_.loadValuePrediction;
    if (!config_.naiveEngine) {
        // The naive engine rescans the window every cycle instead of
        // reacting to events; queueing for it would only accumulate.
        // The batched engine seeds its wakeup machinery with the same
        // initial events.
        pending_.push(entry.fixedReady, cycle_, entry.seq);
        if (entry.isLoad && classify)
            classifyQueue_.push(entry.fixedReady, cycle_, entry.seq);
    }
    if (entry.isLoad && !classify)
        ++stats_.loads;
}

void
LimitScheduler::tryCollapse(Entry &entry)
{
    const TraceRecord &rec = entry.rec;
    const OpClass cls = rec.cls();

    // Gather the collapsible candidate arcs of this consumer.  An arc
    // is a candidate when it is a register (or cc) RAW arc to a
    // producer that is still unissued in the window, the producer is
    // ALU-executable, and the arc kind is absorbable by this consumer.
    struct Candidate
    {
        Entry *producer;
        unsigned slots;         // consumer slots fed by this producer
        unsigned arcIndices[2];
        std::uint64_t distance;
    };
    Candidate candidates[2];
    unsigned num_candidates = 0;

    for (unsigned i = 0; i < entry.numArcs; ++i) {
        DepArc &arc = entry.arcs[i];
        if (arc.collapsed)
            continue;
        Entry *producer = findWindow(arc.producerSeq);
        if (producer == nullptr)
            continue;                       // already issued
        if (producer->issued)
            continue;
        if (!CollapseRules::producerEligible(producer->rec))
            continue;
        // In this ISA only conditional branches read the cc, and their
        // sole candidate arc is the cc arc (barrier producers are
        // branches, filtered above by producer eligibility).
        const bool is_cc = cls == OpClass::Branch;
        if (!CollapseRules::consumerEligible(rec, arc.address, is_cc))
            continue;

        // Prior-work restriction ablations (section 2 of the paper:
        // earlier proposals collapsed "only consecutive instructions
        // within a single basic block").
        if (config_.rules.maxCollapseDistance != 0 &&
            entry.seq - producer->seq > config_.rules.maxCollapseDistance)
            continue;
        if (config_.rules.sameBasicBlockOnly &&
            producer->bbId != entry.bbId)
            continue;

        // Group with an existing candidate for the same producer
        // (e.g. Rc = Rb + Rb).
        bool merged = false;
        for (unsigned c = 0; c < num_candidates; ++c) {
            if (candidates[c].producer == producer) {
                candidates[c].arcIndices[candidates[c].slots] = i;
                ++candidates[c].slots;
                merged = true;
                break;
            }
        }
        if (merged)
            continue;
        if (num_candidates == 2)
            continue;       // at most two distinct producers matter
        candidates[num_candidates++] = {producer, 1, {i, 0},
                                        entry.seq - producer->seq};
    }

    if (num_candidates == 0)
        return;

    // Greedily absorb candidates while the compound expression stays
    // within the 4-1 device and the group within 3 instructions.
    bool any = false;
    CollapseCategory category = CollapseCategory::ThreeOne;
    std::uint64_t new_distances[2];
    unsigned num_new = 0;

    for (unsigned c = 0; c < num_candidates; ++c) {
        Candidate &cand = candidates[c];
        Entry *producer = cand.producer;
        const unsigned group = entry.expr.instructions +
            producer->expr.instructions;
        if (group > config_.rules.maxInstructions)
            continue;
        const ExprSize combined = ExprSize::substitute(
            entry.expr, producer->expr, cand.slots);
        CollapseCategory judged;
        if (!config_.rules.judge(combined, judged))
            continue;

        // Commit this collapse.
        entry.expr = combined;
        category = judged;
        any = true;
        for (unsigned s = 0; s < cand.slots; ++s)
            entry.arcs[cand.arcIndices[s]].collapsed = true;
        new_distances[num_new++] = cand.distance;

        // Track group membership for the signature: the producer's own
        // absorbed members plus the producer itself.
        for (unsigned m = 0; m < producer->numMembers &&
                 entry.numMembers < 2; ++m) {
            entry.memberSigs[entry.numMembers] = producer->memberSigs[m];
            entry.memberSigLens[entry.numMembers] =
                producer->memberSigLens[m];
            entry.memberSeqs[entry.numMembers] = producer->memberSeqs[m];
            ++entry.numMembers;
        }
        if (entry.numMembers < 2) {
            entry.memberSigs[entry.numMembers] = producer->sigFrag;
            entry.memberSigLens[entry.numMembers] = producer->sigLen;
            entry.memberSeqs[entry.numMembers] = producer->seq;
            ++entry.numMembers;
        }

        ++producer->absorbedCount;
        if (!producer->inAnyGroup) {
            producer->inAnyGroup = true;
            stats_.collapse.noteCollapsedInstruction();
        }
    }

    if (!any)
        return;

    if (!entry.inAnyGroup) {
        entry.inAnyGroup = true;
        stats_.collapse.noteCollapsedInstruction();
    }

    // Record the event: members oldest-first, then this consumer.
    // Two producers of a tree triple may have been absorbed in either
    // order, so sort by sequence number.
    if (entry.numMembers == 2 &&
        entry.memberSeqs[0] > entry.memberSeqs[1]) {
        std::swap(entry.memberSeqs[0], entry.memberSeqs[1]);
        std::swap(entry.memberSigs[0], entry.memberSigs[1]);
        std::swap(entry.memberSigLens[0], entry.memberSigLens[1]);
    }
    CollapseEvent event;
    event.category = category;
    event.groupSize = entry.numMembers + 1;
    char sig[kMaxGroupSignature];
    char *p = sig;
    for (unsigned m = 0; m < entry.numMembers; ++m) {
        std::memcpy(p, entry.memberSigs[m].data(),
                    entry.memberSigLens[m]);
        p += entry.memberSigLens[m];
        *p++ = '-';
    }
    std::memcpy(p, entry.sigFrag.data(), entry.sigLen);
    p += entry.sigLen;
    event.signature =
        std::string_view(sig, static_cast<std::size_t>(p - sig));
    event.distanceCount = num_new;
    for (unsigned i = 0; i < num_new; ++i)
        event.distances[i] = new_distances[i];
    stats_.collapse.record(event);
}

void
LimitScheduler::removeFromWindow(std::uint64_t seq)
{
    Entry *entry = findWindow(seq);
    ddsc_assert(entry != nullptr, "removing unknown entry");
    // Waiters are drained before an entry can leave: at markReady for
    // collapsed arcs, at issue / speculative delivery for value arcs
    // and barriers; eliminated entries can have no value readers.
    ddsc_assert(!wakeMode_ || entry->wakeHead == 0,
                "removing entry with waiters");
    entry->live = false;
    --windowCount_;
    std::uint64_t &word = readyBits_[(seq & slotMask_) >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (seq & 63);
    if (word & bit) {
        word &= ~bit;
        --readyCount_;
    }
    while (oldestSeq_ < nextSeq_ && findWindow(oldestSeq_) == nullptr)
        ++oldestSeq_;
}

void
LimitScheduler::markReady(Entry &entry)
{
    entry.ready = true;
    readyBits_[(entry.seq & slotMask_) >> 6] |=
        std::uint64_t{1} << (entry.seq & 63);
    ++readyCount_;
    readySeqHint_ = std::min(readySeqHint_, entry.seq);
    // Batched engine: source readiness is a wake event for collapsed
    // consumers (their arcs depend on this entry's sources, not its
    // value) and for any other waiter that must now re-derive its
    // schedule.
    if (wakeMode_ && entry.wakeHead != 0)
        wakeNow(entry);
}

unsigned
LimitScheduler::issueReady(std::uint64_t &last_issue_cycle,
                           bool &any_issue)
{
    // Oldest ready first: walk the bitmap from the oldest live seq.
    // Ready bits below oldestSeq_ cannot exist (removeFromWindow
    // clears them) and seqs are dense, so 64-aligned seq blocks map to
    // whole ring words.  Eliminated entries leave for free, but only
    // while issue slots remain this cycle (matching the historical
    // pop-loop condition).
    // readySeqHint_ lower-bounds every set bit, so the scan skips the
    // (often long, at wide windows) dead prefix between a stalled
    // oldest entry and the young ready ones in O(1) instead of
    // O(span/64) words per cycle.  Every bit at a seq the scan passes
    // is consumed (issued or eliminated), which keeps the hint exact
    // on exit; markReady() lowers it again as entries wake.
    unsigned issued = 0;
    for (std::uint64_t base =
             std::max(oldestSeq_, readySeqHint_) & ~std::uint64_t{63};
         base < nextSeq_ && readyCount_ != 0; base += 64) {
        std::uint64_t word = readyBits_[(base & slotMask_) >> 6];
        // Positions below oldestSeq_ in the first word can alias the
        // ready bits of seqs one ring generation younger when the
        // live span approaches the ring size; mask them off (the
        // aliased seqs are rediscovered at their own word).
        if (base < oldestSeq_)
            word &= ~std::uint64_t{0} << (oldestSeq_ - base);
        while (word != 0) {
            if (issued == config_.issueWidth) {
                readySeqHint_ =
                    base + static_cast<unsigned>(std::countr_zero(word));
                return issued;
            }
            const std::uint64_t seq =
                base + static_cast<unsigned>(std::countr_zero(word));
            word &= word - 1;
            Entry &entry = slots_[seq & slotMask_];
            if (entry.eliminated) {
                removeFromWindow(seq);
                continue;
            }
            if (entry.memSpecSeq != 0 &&
                !arcSatisfied(DepArc{entry.memSpecSeq, false, false},
                              cycle_) &&
                !divertViolatedLoad(entry))
                continue;   // squashed: waits for the restored arc
            issue(entry, cycle_);
            last_issue_cycle = cycle_;
            any_issue = true;
            ++issued;
            removeFromWindow(seq);
        }
    }
    readySeqHint_ = readyCount_ == 0 ? nextSeq_ : oldestSeq_;
    return issued;
}

void
LimitScheduler::noteValueReaders(const Entry &entry)
{
    // Any arc that survived collapsing is a real use of the producer's
    // result; such producers must execute.
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (entry.arcs[i].collapsed)
            continue;
        if (Entry *producer = findWindow(entry.arcs[i].producerSeq))
            producer->hasValueReader = true;
    }
}

void
LimitScheduler::maybeEliminate(std::uint64_t old_seq, bool cc_blocked)
{
    if (old_seq == 0)
        return;
    Entry *old_entry = findWindow(old_seq);
    if (old_entry == nullptr)
        return;             // already issued
    if (old_entry->issued || old_entry->eliminated)
        return;
    // Eliminable: absorbed by at least one consumer, no surviving
    // value reader, and (for cc writers) the cc already overwritten.
    if (old_entry->absorbedCount == 0 || old_entry->hasValueReader)
        return;
    if (cc_blocked)
        return;             // a future branch may still read the cc
    old_entry->eliminated = true;
    ++stats_.eliminatedInstructions;
}

// --- dynamic behaviour ----------------------------------------------------

void
LimitScheduler::classifyLoad(Entry &entry, std::uint64_t cycle)
{
    // First cycle at which all non-address constraints hold.
    entry.loadClassified = true;
    const bool addr_ready = addrArcsSatisfied(entry, cycle);
    if (addr_ready) {
        entry.loadClass = LoadClass::Ready;
    } else if (config_.loadSpec == LoadSpecMode::Ideal ||
               (entry.predUsable && entry.predCorrect)) {
        entry.loadClass = LoadClass::PredictedCorrect;
        // Data flows to dependents from the speculative access.
        entry.valueTime = cycle + opLatency(entry.rec.op);
        entry.specValueSet = true;
    } else if (entry.predUsable) {
        entry.loadClass = LoadClass::PredictedIncorrect;
    } else {
        entry.loadClass = LoadClass::NotPredicted;
    }

    // Predicted-independent load whose true producing store has not
    // delivered yet: the speculative access would read memory before
    // the store writes it, so its data cannot stand — suppress the
    // delivery (dependents wait for the load's own issue, where the
    // violation is detected and charged).  A correct *value*
    // prediction below is exempt: the predicted value verifies against
    // post-store memory, so it is architecturally final regardless of
    // store timing.
    if (entry.specValueSet && entry.memSpecSeq != 0 &&
        !arcSatisfied(DepArc{entry.memSpecSeq, false, false}, cycle))
        entry.specValueSet = false;

    // Value-prediction extension: a confident correct value prediction
    // beats even a correct address prediction -- dependents get the
    // value one cycle after the load's other constraints hold, without
    // the memory access.  Wrong predictions fall back to normal
    // timing (the verifying access supplies the real value).
    if (config_.loadValuePrediction && entry.vpredUsable) {
        if (entry.vpredCorrect) {
            const std::uint64_t vp_time = cycle + 1;
            if (!entry.specValueSet || vp_time < entry.valueTime) {
                entry.valueTime = vp_time;
                entry.specValueSet = true;
            }
            ++stats_.valuePredHits;
        } else {
            ++stats_.valuePredWrong;
        }
    }

    ++stats_.loads;
    ++stats_.loadClasses[static_cast<unsigned>(entry.loadClass)];

    // Batched engine: a speculative value delivery fixes the arrival
    // cycle for value-arc waiters just like an issue would.
    if (wakeMode_ && entry.specValueSet && entry.wakeHead != 0)
        wakeAt(entry, entry.valueTime);
}

bool
LimitScheduler::divertViolatedLoad(Entry &entry)
{
    // Memory-dependence violation: this load was speculated
    // independent and reached issue before the store it truly depends
    // on could have delivered its value.
    ++stats_.memDepSquashes;
    const std::uint64_t store_seq = entry.memSpecSeq;
    entry.memSpecSeq = 0;       // one squash per load
    if (entry.vpredUsable && entry.vpredCorrect && entry.specValueSet) {
        // A verified value prediction already supplied the
        // architecturally final value — the trace records post-store
        // memory — so the violation costs nothing: the re-execution
        // is off the critical path.
        return true;
    }
    // Squash and re-issue: the correct value cannot exist before the
    // store produces it, so the load goes back to waiting on the
    // restored dependence and issues again once that arc is satisfied,
    // paying the squash penalty on top of its access latency then.
    entry.specValueSet = false;
    entry.memSquashed = true;
    addArc(entry, store_seq, /*address=*/false);
    entry.ready = false;
    readyBits_[(entry.seq & slotMask_) >> 6] &=
        ~(std::uint64_t{1} << (entry.seq & 63));
    --readyCount_;
    // Re-register with the active engine's wait machinery (the naive
    // engine rescans every unready entry each cycle; nothing to do).
    if (wakeMode_) {
        const WakeCheck c = wakeCheckAll(entry, cycle_);
        ddsc_assert(!c.ok, "violated load immediately re-ready");
        if (c.blocker != 0)
            registerWaiter(c.blocker, entry, /*classify_kind=*/false);
        else
            pending_.push(c.due, cycle_, entry.seq);
    } else if (!config_.naiveEngine) {
        const Check check = checkAll(entry, cycle_);
        ddsc_assert(!check.ok, "violated load immediately re-ready");
        pending_.push(check.bound, cycle_, entry.seq);
    }
    return false;
}

void
LimitScheduler::issue(Entry &entry, std::uint64_t cycle)
{
    entry.issued = true;
    if (!entry.specValueSet) {
        // A load re-issuing after a memory-dependence squash pays the
        // modeled squash/refetch penalty on top of its latency.
        const std::uint64_t penalty =
            entry.memSquashed ? config_.memSquashPenalty : 0;
        entry.valueTime = cycle + opLatency(entry.rec.op) + penalty;
    }
    recordRetired(entry.seq, entry.valueTime);
    // Batched engine: the value's exact arrival cycle is now known;
    // waiters re-evaluate then.  (No collapsed-arc waiter can remain:
    // those drained when this entry was marked ready.)
    if (wakeMode_ && entry.wakeHead != 0)
        wakeAt(entry, entry.valueTime);
}

void
LimitScheduler::resetState()
{
    frontEnd_.reset();
    for (Entry &slot : slots_)
        slot.live = false;
    windowCount_ = 0;
    oldestSeq_ = 1;
    for (Retired &slot : retired_)
        slot = Retired{};
    pending_.clear();
    classifyQueue_.clear();
    std::fill(readyBits_.begin(), readyBits_.end(), std::uint64_t{0});
    readyCount_ = 0;
    readySeqHint_ = 1;
    wakeMode_ = false;
    promoteWork_.clear();
    batchLastIssue_ = 0;
    batchAnyIssue_ = false;
    nextSeq_ = 1;
    cycle_ = 0;
    stats_ = SchedStats{};
}

SchedStats
LimitScheduler::runNaive(TraceSource &trace)
{
    resetState();

    TraceRecord rec;
    bool exhausted = false;
    while (windowCount_ < config_.windowSize) {
        if (!trace.next(rec)) {
            exhausted = true;
            break;
        }
        insert(rec);
    }

    std::uint64_t last_issue_cycle = 0;
    bool any_issue = false;
    // Loads queue for classification whenever any load speculation is
    // on -- address prediction or value prediction (matching insert()).
    const bool classify_loads =
        config_.loadSpec != LoadSpecMode::None ||
        config_.loadValuePrediction;
    while (windowCount_ > 0) {
        // Classification: exact first cycle the non-address
        // constraints hold, found by brute-force scan in seq order.
        if (classify_loads) {
            for (std::uint64_t seq = oldestSeq_; seq < nextSeq_; ++seq) {
                Entry *entry = findWindow(seq);
                if (!entry || !entry->isLoad || entry->loadClassified)
                    continue;
                Check check = checkNonAddr(*entry, cycle_);
                if (check.ok)
                    classifyLoad(*entry, cycle_);
            }
        }

        // Promotion: full scan in seq order.
        for (std::uint64_t seq = oldestSeq_; seq < nextSeq_; ++seq) {
            Entry *entry = findWindow(seq);
            if (!entry)
                continue;
            if (!entry->ready && sourcesSatisfied(*entry, cycle_))
                markReady(*entry);
        }

        // Issue: oldest ready first.  Eliminated entries leave for
        // free once their sources are satisfied.
        const unsigned issued = issueReady(last_issue_cycle, any_issue);

        stats_.issuedPerCycle.add(issued);
        ++cycle_;
        while (!exhausted && windowCount_ < config_.windowSize) {
            if (!trace.next(rec)) {
                exhausted = true;
                break;
            }
            insert(rec);
        }

        if (issued == 0 && cycle_ > last_issue_cycle + 64) {
            ddsc_panic("naive scheduler deadlock at cycle %llu",
                       static_cast<unsigned long long>(cycle_));
        }
    }

    // A run in which nothing ever issues (e.g. an empty trace)
    // occupies zero cycles; "last issue + 1" only counts real issues.
    stats_.cycles = any_issue ? last_issue_cycle + 1 : 0;
    return stats_;
}

SchedStats
LimitScheduler::run(TraceSource &trace)
{
    const auto start = std::chrono::steady_clock::now();
    SchedStats stats =
        config_.naiveEngine ? runNaive(trace) : runEvent(trace);
    stats.wallNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start).count());
    return stats;
}

SchedStats
LimitScheduler::runEvent(TraceSource &trace)
{
    resetState();

    // Initial fill: instructions available in cycle 0.
    TraceRecord rec;
    bool exhausted = false;
    while (windowCount_ < config_.windowSize) {
        if (!trace.next(rec)) {
            exhausted = true;
            break;
        }
        insert(rec);
    }

    std::uint64_t last_issue_cycle = 0;
    bool any_issue = false;

    // Drain-one-bucket helpers: every event due this cycle is either
    // in the bucket of the current cycle (drained and cleared whole)
    // or at the top of the far heap.  No push during a drain can
    // target the bucket being drained (re-evaluation bounds are
    // strictly in the future), so plain index iteration is safe.
    const auto classifyOne = [&](std::uint64_t seq) {
        Entry *entry = findWindow(seq);
        if (entry == nullptr)
            return;             // already issued (classified earlier)
        if (entry->loadClassified)
            return;
        const Check check = checkNonAddr(*entry, cycle_);
        if (check.ok)
            classifyLoad(*entry, cycle_);
        else
            classifyQueue_.push(check.bound, cycle_, seq);
    };
    const auto promoteOne = [&](std::uint64_t seq) {
        Entry *entry = findWindow(seq);
        if (entry == nullptr)
            return;
        if (entry->ready || entry->issued)
            return;
        const Check check = checkAll(*entry, cycle_);
        if (check.ok)
            markReady(*entry);
        else
            pending_.push(check.bound, cycle_, seq);
    };

    while (windowCount_ > 0) {
        // 1. Load classification at the exact first cycle the
        //    non-address constraints hold.
        while (!classifyQueue_.far.empty() &&
               classifyQueue_.far.top().first <= cycle_) {
            const std::uint64_t seq = classifyQueue_.far.top().second;
            classifyQueue_.far.pop();
            classifyOne(seq);
        }
        auto &classify_due =
            classifyQueue_.buckets[cycle_ & (kWheelSlots - 1)];
        for (std::size_t i = 0; i < classify_due.size(); ++i)
            classifyOne(classify_due[i]);
        classify_due.clear();

        // 2. Promote pending entries whose bound came due.
        while (!pending_.far.empty() &&
               pending_.far.top().first <= cycle_) {
            const std::uint64_t seq = pending_.far.top().second;
            pending_.far.pop();
            promoteOne(seq);
        }
        auto &pending_due = pending_.buckets[cycle_ & (kWheelSlots - 1)];
        for (std::size_t i = 0; i < pending_due.size(); ++i)
            promoteOne(pending_due[i]);
        pending_due.clear();

        // 3. Issue up to issueWidth ready entries, oldest first.
        //    Eliminated entries leave for free once source-satisfied.
        const unsigned issued = issueReady(last_issue_cycle, any_issue);

        // 4. Refill the window ("kept full"); new entries become
        //    issuable from the next cycle.
        stats_.issuedPerCycle.add(issued);
        ++cycle_;
        while (!exhausted && windowCount_ < config_.windowSize) {
            if (!trace.next(rec)) {
                exhausted = true;
                break;
            }
            insert(rec);
        }

        if (issued == 0 && cycle_ > last_issue_cycle + 64) {
            // Every latency is <= 12 cycles and all constraints resolve
            // within a bounded time of the last issue, so a long
            // stretch with no issue from a non-empty window is a
            // dependence cycle: an internal bug.
            ddsc_panic("scheduler deadlock at cycle %llu",
                       static_cast<unsigned long long>(cycle_));
        }
    }

    // A run in which nothing ever issues (e.g. an empty trace)
    // occupies zero cycles; "last issue + 1" only counts real issues.
    stats_.cycles = any_issue ? last_issue_cycle + 1 : 0;
    return stats_;
}

// --- batched (wakeup-list) engine ----------------------------------------

LimitScheduler::WakeCheck
LimitScheduler::wakeCheckArc(const DepArc &arc, std::uint64_t cycle) const
{
    if (const Entry *producer = findWindow(arc.producerSeq)) {
        if (arc.collapsed) {
            if (producer->issued ||
                sourcesSatisfied(*producer, cycle))
                return {true, 0, 0};
            // Satisfied exactly when the producer becomes source-
            // satisfied, i.e. at its markReady cycle.
            return {false, 0, arc.producerSeq};
        }
        if (producer->issued || producer->specValueSet) {
            if (cycle >= producer->valueTime)
                return {true, 0, 0};
            return {false, producer->valueTime, 0};
        }
        // Value arc to an unissued producer: the arrival cycle becomes
        // known at the producer's issue (or speculative delivery).
        return {false, 0, arc.producerSeq};
    }
    // Producer issued and left the window.
    if (arc.collapsed)
        return {true, 0, 0};
    const std::uint64_t value_time = retiredValueTime(arc.producerSeq);
    if (value_time == 0 || cycle >= value_time)
        return {true, 0, 0};
    return {false, value_time, 0};
}

LimitScheduler::WakeCheck
LimitScheduler::wakeCheckAll(const Entry &entry,
                             std::uint64_t cycle) const
{
    if (cycle < entry.fixedReady)
        return {false, entry.fixedReady, 0};
    if (entry.barrierSeq != 0) {
        if (const Entry *branch = findWindow(entry.barrierSeq)) {
            if (!branch->issued)
                return {false, 0, entry.barrierSeq};
            if (cycle < branch->valueTime)
                return {false, branch->valueTime, 0};
        } else {
            const std::uint64_t t = retiredValueTime(entry.barrierSeq);
            if (t != 0 && cycle < t)
                return {false, t, 0};
        }
    }
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        const WakeCheck c = wakeCheckArc(entry.arcs[i], cycle);
        if (!c.ok)
            return c;
    }
    return {true, 0, 0};
}

LimitScheduler::WakeCheck
LimitScheduler::wakeCheckNonAddr(const Entry &entry,
                                 std::uint64_t cycle) const
{
    if (cycle < entry.fixedReady)
        return {false, entry.fixedReady, 0};
    if (entry.barrierSeq != 0) {
        if (const Entry *branch = findWindow(entry.barrierSeq)) {
            if (!branch->issued)
                return {false, 0, entry.barrierSeq};
            if (cycle < branch->valueTime)
                return {false, branch->valueTime, 0};
        } else {
            const std::uint64_t t = retiredValueTime(entry.barrierSeq);
            if (t != 0 && cycle < t)
                return {false, t, 0};
        }
    }
    for (unsigned i = 0; i < entry.numArcs; ++i) {
        if (entry.arcs[i].address)
            continue;
        const WakeCheck c = wakeCheckArc(entry.arcs[i], cycle);
        if (!c.ok)
            return c;
    }
    return {true, 0, 0};
}

void
LimitScheduler::registerWaiter(std::uint64_t producer_seq, Entry &waiter,
                               bool classify_kind)
{
    Entry *producer = findWindow(producer_seq);
    ddsc_assert(producer != nullptr && !producer->issued,
                "waiter registered on a resolved producer");
    const std::uint64_t token =
        (waiter.seq << 1) | (classify_kind ? 1 : 0);
    if (classify_kind)
        waiter.wakeNextClassify = producer->wakeHead;
    else
        waiter.wakeNextPromote = producer->wakeHead;
    producer->wakeHead = token;
}

void
LimitScheduler::wakeAt(Entry &producer, std::uint64_t due)
{
    std::uint64_t token = producer.wakeHead;
    producer.wakeHead = 0;
    while (token != 0) {
        const std::uint64_t seq = token >> 1;
        const bool classify_kind = token & 1;
        Entry *waiter = findWindow(seq);
        ddsc_assert(waiter != nullptr, "waiter left while registered");
        if (classify_kind) {
            token = waiter->wakeNextClassify;
            waiter->wakeNextClassify = 0;
            classifyQueue_.push(due, cycle_, seq);
        } else {
            token = waiter->wakeNextPromote;
            waiter->wakeNextPromote = 0;
            pending_.push(due, cycle_, seq);
        }
    }
}

void
LimitScheduler::wakeNow(Entry &producer)
{
    std::uint64_t token = producer.wakeHead;
    producer.wakeHead = 0;
    while (token != 0) {
        const std::uint64_t seq = token >> 1;
        const bool classify_kind = token & 1;
        Entry *waiter = findWindow(seq);
        ddsc_assert(waiter != nullptr, "waiter left while registered");
        if (classify_kind) {
            token = waiter->wakeNextClassify;
            waiter->wakeNextClassify = 0;
            // A classification predicate blocked on this producer's
            // value or barrier cannot hold merely because the producer
            // became ready; the earliest it can flip is next cycle
            // (and the producer's issue will name the exact time).
            classifyQueue_.push(cycle_ + 1, cycle_, seq);
        } else {
            token = waiter->wakeNextPromote;
            waiter->wakeNextPromote = 0;
            // Collapsed consumers of this producer may be promotable
            // this very cycle: append to the in-flight promotion scan.
            promoteWork_.push_back(seq);
        }
    }
}

void
LimitScheduler::insertFromBatch(const FrontEndBatch &batch,
                                std::size_t i)
{
    InsertAnnotation ann;
    batch.annotationAt(i, ann);
    insertAnnotated(batch.records[i], ann);
}

void
LimitScheduler::runBatchedCycle()
{
    // Phase structure mirrors runEvent(): classification, promotion,
    // issue, account the cycle.  The differences are confined to how
    // failed evaluations reschedule themselves (exact wakes instead of
    // lower bounds).

    // 1. Load classification at the exact first cycle the non-address
    //    constraints hold.
    const auto classifyOne = [&](std::uint64_t seq) {
        Entry *entry = findWindow(seq);
        if (entry == nullptr || entry->loadClassified)
            return;
        const WakeCheck c = wakeCheckNonAddr(*entry, cycle_);
        if (c.ok)
            classifyLoad(*entry, cycle_);
        else if (c.blocker != 0)
            registerWaiter(c.blocker, *entry, /*classify_kind=*/true);
        else
            classifyQueue_.push(c.due, cycle_, seq);
    };
    while (!classifyQueue_.far.empty() &&
           classifyQueue_.far.top().first <= cycle_) {
        const std::uint64_t seq = classifyQueue_.far.top().second;
        classifyQueue_.far.pop();
        classifyOne(seq);
    }
    auto &classify_due =
        classifyQueue_.buckets[cycle_ & (kWheelSlots - 1)];
    for (std::size_t i = 0; i < classify_due.size(); ++i)
        classifyOne(classify_due[i]);
    classify_due.clear();

    // 2. Promotion: seed the work list from the wheel, then scan by
    //    index — markReady wakes append same-cycle work (collapsed
    //    consumers) to the tail.
    promoteWork_.clear();
    while (!pending_.far.empty() && pending_.far.top().first <= cycle_) {
        promoteWork_.push_back(pending_.far.top().second);
        pending_.far.pop();
    }
    auto &pending_due = pending_.buckets[cycle_ & (kWheelSlots - 1)];
    promoteWork_.insert(promoteWork_.end(), pending_due.begin(),
                        pending_due.end());
    pending_due.clear();
    for (std::size_t i = 0; i < promoteWork_.size(); ++i) {
        const std::uint64_t seq = promoteWork_[i];
        Entry *entry = findWindow(seq);
        if (entry == nullptr || entry->ready || entry->issued)
            continue;
        const WakeCheck c = wakeCheckAll(*entry, cycle_);
        if (c.ok)
            markReady(*entry);
        else if (c.blocker != 0)
            registerWaiter(c.blocker, *entry, /*classify_kind=*/false);
        else
            pending_.push(c.due, cycle_, seq);
    }

    // 3. Issue up to issueWidth ready entries, oldest first.
    const unsigned issued = issueReady(batchLastIssue_, batchAnyIssue_);

    stats_.issuedPerCycle.add(issued);
    ++cycle_;

    if (issued == 0 && cycle_ > batchLastIssue_ + 64) {
        ddsc_panic("batched scheduler deadlock at cycle %llu",
                   static_cast<unsigned long long>(cycle_));
    }
}

void
LimitScheduler::beginBatched()
{
    ddsc_assert(!config_.naiveEngine,
                "batched feeding drives the wakeup engine; the naive "
                "reference engine has no batched mode");
    resetState();
    wakeMode_ = true;
}

void
LimitScheduler::feedBatched(const FrontEndBatch &batch)
{
    ddsc_assert(wakeMode_, "feedBatched outside begin/finishBatched");
    std::size_t pos = 0;
    while (windowCount_ < config_.windowSize && pos < batch.size())
        insertFromBatch(batch, pos++);
    if (windowCount_ < config_.windowSize)
        return;     // chunk too small to fill the window; need more
    for (;;) {
        runBatchedCycle();
        // Refill ("kept full"); once this chunk can no longer top the
        // window up, stop advancing cycles and wait for the next chunk
        // (or finishBatched(), which drains without refill).
        while (windowCount_ < config_.windowSize && pos < batch.size())
            insertFromBatch(batch, pos++);
        if (windowCount_ < config_.windowSize)
            return;
    }
}

SchedStats
LimitScheduler::finishBatched()
{
    ddsc_assert(wakeMode_, "finishBatched without beginBatched");
    while (windowCount_ > 0) {
        // The drain inserts nothing, so it carries its own poll.
        pollCancel();
        runBatchedCycle();
    }
    // A run in which nothing ever issues (e.g. an empty trace)
    // occupies zero cycles; "last issue + 1" only counts real issues.
    stats_.cycles = batchAnyIssue_ ? batchLastIssue_ + 1 : 0;
    wakeMode_ = false;
    return stats_;
}

SchedStats
LimitScheduler::runBatched(TraceSource &trace)
{
    const auto start = std::chrono::steady_clock::now();
    SpecFrontEnd front(config_);
    FrontEndBatch batch;
    beginBatched();
    while (front.fill(trace, batch, 16384) != 0)
        feedBatched(batch);
    SchedStats stats = finishBatched();
    stats.wallNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start).count());
    stats_ = stats;
    return stats;
}

} // namespace ddsc
