/**
 * @file
 * The speculative front-end of the limit scheduler, decoupled from the
 * window engines so one streaming pass over a trace can feed any
 * number of back-end (config, width) cells.
 *
 * Everything the front-end computes is *pure program order* — it
 * depends only on the trace prefix, never on window contents, issue
 * timing, or width:
 *
 *  - sequence numbering and dynamic basic-block ids;
 *  - conditional-branch prediction (bimodal/gshare) and, optionally,
 *    real CTI prediction (return-address stack + indirect target
 *    buffer), including the running "last mispredicted branch"
 *    barrier;
 *  - ideal-rename producer tracking (last writer per register, last
 *    cc writer) and perfect memory disambiguation (last store per
 *    byte), i.e. the raw RAW dependence seqs of every record;
 *  - address-predictor and value-predictor training and their
 *    per-load outcomes (usable/correct flags);
 *  - the node-elimination overwrite bookkeeping (which older writer a
 *    record's destination overwrites, and whether a live cc value
 *    blocks eliminating it).
 *
 * The result is one InsertAnnotation per record.  A width-W back-end
 * combines (record, annotation) with its own window state —
 * arc-vs-resolved decisions, collapsing, load classification, issue
 * timing — to reproduce bit-identical SchedStats to the historical
 * monolithic insert() path; tests/batched_equiv_test.cpp is the
 * oracle.  Crucially each predictor trains exactly once per record no
 * matter how many back-ends consume the pass (trainCounts() lets the
 * test suite pin that property).
 *
 * FrontEndBatch is the structure-of-arrays chunk format the streaming
 * pass emits: parallel arrays indexed by record position, so N
 * back-ends can replay a chunk without re-decoding or re-predicting
 * anything.  Configurations whose front-end knobs agree
 * (MachineConfig::frontEndFingerprint()) can share one pass: the
 * paper matrix needs two passes per workload (A/C/E train no load
 * predictors, B/D train the address predictor) to cover all 25 cells.
 */

#ifndef DDSC_CORE_FRONTEND_HH
#define DDSC_CORE_FRONTEND_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include <array>

#include "addrpred/addrpred.hh"
#include "bpred/bpred.hh"
#include "bpred/cti_pred.hh"
#include "collapse/rules.hh"
#include "core/config.hh"
#include "trace/record.hh"
#include "trace/source.hh"
#include "vpred/vpred.hh"

namespace ddsc
{

/** Width-independent annotation of one dynamic instruction. */
struct InsertAnnotation
{
    /** Flag bits (see kFlag* below). */
    std::uint16_t flags = 0;
    /** RAW producer seqs in canonical arc order (data, address, cc,
     *  memory); zeros already dropped.  kFlagDepAddr marks address
     *  arcs. */
    std::uint8_t depCount = 0;
    std::uint8_t depAddrMask = 0;   ///< bit i: deps[i] feeds the address
    std::uint64_t depSeq[4] = {0, 0, 0, 0};
    /** Last mispredicted branch older than this record (0 = none). */
    std::uint64_t barrierSeq = 0;
    /** Dynamic basic-block id. */
    std::uint64_t bbId = 0;
    /** Previous writer of this record's destination register (0 =
     *  none); the node-elimination candidate this record overwrites. */
    std::uint64_t elimOldWriter = 0;

    /** Collapse-rule detection, computed only when the front-end has
     *  collapse columns enabled (any consumer collapses): the
     *  record's compound-expression size and its paper signature
     *  fragment.  Both are pure functions of the record, so one
     *  front-end pass serves every collapsing back-end. */
    ExprSize expr;
    std::array<char, kMaxInstructionSignature> sig = {};
    std::uint8_t sigLen = 0;

    /// This record is a conditional branch (counts toward condBranches).
    static constexpr std::uint16_t kFlagCondBranch = 1u << 0;
    /// The branch predictor got it wrong (counts toward mispredicts).
    static constexpr std::uint16_t kFlagMispredict = 1u << 1;
    /// A real-CTI prediction was made (counts toward ctiPredictions).
    static constexpr std::uint16_t kFlagCtiPrediction = 1u << 2;
    /// ...and it was wrong (counts toward ctiMispredicts).
    static constexpr std::uint16_t kFlagCtiMispredict = 1u << 3;
    /// Address-predictor confidence exceeded the threshold.
    static constexpr std::uint16_t kFlagPredUsable = 1u << 4;
    /// ...and the predicted address was right.
    static constexpr std::uint16_t kFlagPredCorrect = 1u << 5;
    /// Value-predictor confidence held.
    static constexpr std::uint16_t kFlagVpredUsable = 1u << 6;
    /// ...and the predicted value was right.
    static constexpr std::uint16_t kFlagVpredCorrect = 1u << 7;
    /// elimOldWriter still holds the live cc value: not eliminable.
    static constexpr std::uint16_t kFlagElimCcBlocked = 1u << 8;
};

/** How many times each predictor structure was trained (the
 *  train-exactly-once-per-record property test reads these). */
struct FrontEndTrainCounts
{
    std::uint64_t branch = 0;   ///< CombiningPredictor updates
    std::uint64_t address = 0;  ///< AddressPredictor updates
    std::uint64_t value = 0;    ///< LoadValuePredictor updates
    std::uint64_t cti = 0;      ///< RAS/ITB operations
};

/**
 * One structure-of-arrays chunk of annotated records.  Arrays are
 * parallel: records[i] pairs with flags[i], depCount[i],
 * depSeqs[4*i..4*i+3], ...  All vectors keep their capacity across
 * clear() so a streaming pass reuses one chunk buffer.
 */
struct FrontEndBatch
{
    std::vector<TraceRecord> records;
    std::vector<std::uint16_t> flags;
    std::vector<std::uint8_t> depCount;
    std::vector<std::uint8_t> depAddrMask;
    std::vector<std::uint64_t> depSeqs;     ///< 4 per record
    std::vector<std::uint64_t> barrierSeq;
    std::vector<std::uint64_t> bbId;
    std::vector<std::uint64_t> elimOldWriter;
    std::vector<ExprSize> expr;
    /** Signature fragment per record; [kMaxInstructionSignature]
     *  holds the length. */
    std::vector<std::array<char, kMaxInstructionSignature + 1>> sig;

    std::size_t size() const { return records.size(); }

    void
    clear()
    {
        records.clear();
        flags.clear();
        depCount.clear();
        depAddrMask.clear();
        depSeqs.clear();
        barrierSeq.clear();
        bbId.clear();
        elimOldWriter.clear();
        expr.clear();
        sig.clear();
    }

    /** Reassemble the annotation of record @p i. */
    void
    annotationAt(std::size_t i, InsertAnnotation &out) const
    {
        out.flags = flags[i];
        out.depCount = depCount[i];
        out.depAddrMask = depAddrMask[i];
        // Only the used prefixes: consumers never read depSeq past
        // depCount or sig past sigLen.
        for (unsigned d = 0; d < out.depCount; ++d)
            out.depSeq[d] = depSeqs[4 * i + d];
        out.barrierSeq = barrierSeq[i];
        out.bbId = bbId[i];
        out.elimOldWriter = elimOldWriter[i];
        out.expr = expr[i];
        const auto &s = sig[i];
        out.sigLen = static_cast<std::uint8_t>(
            s[kMaxInstructionSignature]);
        for (unsigned b = 0; b < out.sigLen; ++b)
            out.sig[b] = s[b];
    }
};

/**
 * The streaming speculative front-end.  annotate() consumes records
 * in program order; reset() restarts for a new run.  One instance may
 * feed any number of back-ends — it never sees them.
 */
class SpecFrontEnd
{
  public:
    /** Only the front-end-relevant knobs of @p config matter (see
     *  MachineConfig::frontEndFingerprint()). */
    explicit SpecFrontEnd(const MachineConfig &config);
    ~SpecFrontEnd();    // out-of-line: StorePage is incomplete here

    /** Restart for a new trace (predictors reset, tables cleared). */
    void reset();

    /** Enable or disable the collapse-detection columns (expression
     *  sizes and signature fragments).  The constructor enables them
     *  iff the owning configuration collapses; a shared batched pass
     *  enables them when any consumer in its group does. */
    void setCollapseColumns(bool on) { collapseColumns_ = on; }

    /** Annotate the next record in program order. */
    void annotate(const TraceRecord &rec, InsertAnnotation &out);

    /** Annotate up to @p max records from @p trace into @p batch
     *  (cleared first).  Returns the number produced; 0 means the
     *  source is exhausted. */
    std::size_t fill(TraceSource &trace, FrontEndBatch &batch,
                     std::size_t max);

    /** Cumulative training activity since the last reset(). */
    const FrontEndTrainCounts &trainCounts() const { return trains_; }

    /** Records annotated since the last reset(). */
    std::uint64_t recordsAnnotated() const { return nextSeq_ - 1; }

  private:
    struct StorePage;
    StorePage *storePage(std::uint64_t base, bool create);

    bool collapseColumns_;      ///< annotate expr + signature fragment
    bool trainAddr_;            ///< loadSpec == Real
    bool trainValues_;          ///< loadValuePrediction
    bool realCti_;              ///< realCtiPrediction

    std::unique_ptr<BranchPredictor> bpred_;
    std::unique_ptr<AddressPredictor> addrPred_;
    LoadValuePredictor valuePred_;
    ReturnAddressStack ras_;
    IndirectTargetBuffer itb_;

    /** Rename state: last writer seq per register (0 = none). */
    std::uint64_t lastRegWriter_[kNumRegs] = {};
    std::uint64_t lastCCWriter_ = 0;
    std::uint64_t lastBarrier_ = 0;     ///< last mispredicted branch

    /** Perfect disambiguation: last store seq per byte, held in 4 KiB
     *  pages keyed by page base address, epoch-invalidated between
     *  runs (same layout the monolithic scheduler used). */
    static constexpr std::uint64_t kStorePageBytes = 4096;
    std::unordered_map<std::uint64_t,
                       std::unique_ptr<StorePage>> storePages_;
    std::uint64_t storeEpoch_ = 0;
    StorePage *storePageCache_ = nullptr;
    std::uint64_t storePageCacheBase_ = 1;  ///< 1 = nothing cached

    std::uint64_t nextSeq_ = 1;         ///< 0 reserved for "none"
    std::uint64_t nextBbId_ = 0;
    FrontEndTrainCounts trains_;
};

} // namespace ddsc

#endif // DDSC_CORE_FRONTEND_HH
