/**
 * @file
 * The speculative front-end of the limit scheduler, decoupled from the
 * window engines so one streaming pass over a trace can feed any
 * number of back-end (config, width) cells.
 *
 * Everything the front-end computes is *pure program order* — it
 * depends only on the trace prefix, never on window contents, issue
 * timing, or width:
 *
 *  - sequence numbering and dynamic basic-block ids;
 *  - conditional-branch prediction (bimodal/gshare) and, optionally,
 *    real CTI prediction (return-address stack + indirect target
 *    buffer), including the running "last mispredicted branch"
 *    barrier;
 *  - ideal-rename producer tracking (last writer per register, last
 *    cc writer) and perfect memory disambiguation (last store per
 *    byte), i.e. the raw RAW dependence seqs of every record;
 *  - the node-elimination overwrite bookkeeping (which older writer a
 *    record's destination overwrites, and whether a live cc value
 *    blocks eliminating it).
 *
 * Everything *speculative about dependences* — the memory arc
 * (perfect or predicted), address-predictor and value-predictor
 * training and their per-load outcome flags, collapse-detection
 * columns — is delegated to an ordered stack of speculation modules
 * (src/spec/): the front-end resolves ground truth, the stack
 * proposes relaxations.  See spec/orchestrator.hh for the stack
 * order, which preserves the historical annotate() operation order
 * exactly.
 *
 * The result is one InsertAnnotation per record.  A width-W back-end
 * combines (record, annotation) with its own window state —
 * arc-vs-resolved decisions, collapsing, load classification, issue
 * timing — to reproduce bit-identical SchedStats to the historical
 * monolithic insert() path; tests/batched_equiv_test.cpp is the
 * oracle.  Crucially each predictor trains exactly once per record no
 * matter how many back-ends consume the pass (trainCounts() lets the
 * test suite pin that property).
 *
 * FrontEndBatch is the structure-of-arrays chunk format the streaming
 * pass emits: parallel arrays indexed by record position, so N
 * back-ends can replay a chunk without re-decoding or re-predicting
 * anything.  Configurations whose front-end knobs agree
 * (MachineConfig::frontEndFingerprint()) can share one pass: the
 * paper matrix needs two passes per workload (A/C/E train no load
 * predictors, B/D train the address predictor) to cover all 25 cells.
 */

#ifndef DDSC_CORE_FRONTEND_HH
#define DDSC_CORE_FRONTEND_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include <array>

#include "bpred/bpred.hh"
#include "bpred/cti_pred.hh"
#include "collapse/rules.hh"
#include "core/annotation.hh"
#include "core/config.hh"
#include "spec/orchestrator.hh"
#include "trace/record.hh"
#include "trace/source.hh"

namespace ddsc
{

/**
 * One structure-of-arrays chunk of annotated records.  Arrays are
 * parallel: records[i] pairs with flags[i], depCount[i],
 * depSeqs[4*i..4*i+3], ...  All vectors keep their capacity across
 * clear() so a streaming pass reuses one chunk buffer.
 */
struct FrontEndBatch
{
    std::vector<TraceRecord> records;
    std::vector<std::uint16_t> flags;
    std::vector<std::uint8_t> depCount;
    std::vector<std::uint8_t> depAddrMask;
    std::vector<std::uint64_t> depSeqs;     ///< 4 per record
    std::vector<std::uint64_t> barrierSeq;
    std::vector<std::uint64_t> bbId;
    std::vector<std::uint64_t> elimOldWriter;
    std::vector<ExprSize> expr;
    /** Signature fragment per record; [kMaxInstructionSignature]
     *  holds the length. */
    std::vector<std::array<char, kMaxInstructionSignature + 1>> sig;

    std::size_t size() const { return records.size(); }

    void
    clear()
    {
        records.clear();
        flags.clear();
        depCount.clear();
        depAddrMask.clear();
        depSeqs.clear();
        barrierSeq.clear();
        bbId.clear();
        elimOldWriter.clear();
        expr.clear();
        sig.clear();
    }

    /** Reassemble the annotation of record @p i. */
    void
    annotationAt(std::size_t i, InsertAnnotation &out) const
    {
        out.flags = flags[i];
        out.depCount = depCount[i];
        out.depAddrMask = depAddrMask[i];
        // Only the used prefixes: consumers never read depSeq past
        // depCount or sig past sigLen.
        for (unsigned d = 0; d < out.depCount; ++d)
            out.depSeq[d] = depSeqs[4 * i + d];
        out.barrierSeq = barrierSeq[i];
        out.bbId = bbId[i];
        out.elimOldWriter = elimOldWriter[i];
        out.expr = expr[i];
        const auto &s = sig[i];
        out.sigLen = static_cast<std::uint8_t>(
            s[kMaxInstructionSignature]);
        for (unsigned b = 0; b < out.sigLen; ++b)
            out.sig[b] = s[b];
    }
};

/**
 * The streaming speculative front-end.  annotate() consumes records
 * in program order; reset() restarts for a new run.  One instance may
 * feed any number of back-ends — it never sees them.
 */
class SpecFrontEnd
{
  public:
    /** Only the front-end-relevant knobs of @p config matter (see
     *  MachineConfig::frontEndFingerprint()). */
    explicit SpecFrontEnd(const MachineConfig &config);
    ~SpecFrontEnd();    // out-of-line: StorePage is incomplete here

    /** Restart for a new trace (predictors reset, tables cleared). */
    void reset();

    /** Enable or disable the collapse-detection columns (expression
     *  sizes and signature fragments).  The constructor enables them
     *  iff the owning configuration collapses; a shared batched pass
     *  enables them when any consumer in its group does. */
    void setCollapseColumns(bool on) { stack_.setCollapseColumns(on); }

    /** Annotate the next record in program order. */
    void annotate(const TraceRecord &rec, InsertAnnotation &out);

    /** Annotate up to @p max records from @p trace into @p batch
     *  (cleared first).  Returns the number produced; 0 means the
     *  source is exhausted. */
    std::size_t fill(TraceSource &trace, FrontEndBatch &batch,
                     std::size_t max);

    /** Cumulative training activity since the last reset(). */
    const FrontEndTrainCounts &trainCounts() const { return trains_; }

    /** Records annotated since the last reset(). */
    std::uint64_t recordsAnnotated() const { return nextSeq_ - 1; }

    /** The speculation-module stack this front-end composed. */
    const spec::SpeculationStack &stack() const { return stack_; }

  private:
    struct StorePage;
    StorePage *storePage(std::uint64_t base, bool create);

    bool realCti_;              ///< realCtiPrediction

    std::unique_ptr<BranchPredictor> bpred_;
    ReturnAddressStack ras_;
    IndirectTargetBuffer itb_;

    /** Training activity; declared before stack_, whose modules hold
     *  a reference into it. */
    FrontEndTrainCounts trains_;
    /** The ordered speculation-module stack (collapse columns, memory
     *  arc, address/value prediction). */
    spec::SpeculationStack stack_;

    /** Rename state: last writer seq per register (0 = none). */
    std::uint64_t lastRegWriter_[kNumRegs] = {};
    std::uint64_t lastCCWriter_ = 0;
    std::uint64_t lastBarrier_ = 0;     ///< last mispredicted branch
    std::uint64_t lastStoreSeq_ = 0;    ///< youngest store, any address

    /** Perfect disambiguation: last store seq per byte, held in 4 KiB
     *  pages keyed by page base address, epoch-invalidated between
     *  runs (same layout the monolithic scheduler used). */
    static constexpr std::uint64_t kStorePageBytes = 4096;
    std::unordered_map<std::uint64_t,
                       std::unique_ptr<StorePage>> storePages_;
    std::uint64_t storeEpoch_ = 0;
    StorePage *storePageCache_ = nullptr;
    std::uint64_t storePageCacheBase_ = 1;  ///< 1 = nothing cached

    std::uint64_t nextSeq_ = 1;         ///< 0 reserved for "none"
    std::uint64_t nextBbId_ = 0;
};

} // namespace ddsc

#endif // DDSC_CORE_FRONTEND_HH
