#include "sched_stats.hh"

namespace ddsc
{

namespace
{

/** FNV-1a over the bytes of one 64-bit value. */
std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

} // anonymous namespace

std::uint64_t
digestSchedStats(const SchedStats &s)
{
    std::uint64_t h = 1469598103934665603ull;
    h = fold(h, s.instructions);
    h = fold(h, s.cycles);
    h = fold(h, s.condBranches);
    h = fold(h, s.mispredicts);
    h = fold(h, s.ctiPredictions);
    h = fold(h, s.ctiMispredicts);
    h = fold(h, s.loads);
    for (const std::uint64_t n : s.loadClasses)
        h = fold(h, n);
    h = fold(h, s.eliminatedInstructions);
    h = fold(h, s.valuePredHits);
    h = fold(h, s.valuePredWrong);
    // Folded only when active so digests of configs that cannot
    // exercise memory-dependence speculation (the paper's A-E) stay
    // comparable across tool versions that predate the counters.
    if ((s.memDepPredictedDeps | s.memDepFalseDeps |
         s.memDepSquashes) != 0) {
        h = fold(h, s.memDepPredictedDeps);
        h = fold(h, s.memDepFalseDeps);
        h = fold(h, s.memDepSquashes);
    }
    h = fold(h, s.collapse.events());
    h = fold(h, s.collapse.pairEvents());
    h = fold(h, s.collapse.tripleEvents());
    h = fold(h, s.collapse.collapsedInstructions());
    for (unsigned c = 0; c < kNumCollapseCategories; ++c)
        h = fold(h,
                 s.collapse.eventsOf(static_cast<CollapseCategory>(c)));
    for (const auto &[key, count] : s.collapse.distances().raw()) {
        h = fold(h, key);
        h = fold(h, count);
    }
    for (const auto &[key, count] : s.issuedPerCycle.raw()) {
        h = fold(h, key);
        h = fold(h, count);
    }
    return h;
}

} // namespace ddsc
