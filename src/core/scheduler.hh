/**
 * @file
 * The Wall-style window limit scheduler with d-speculation and
 * d-collapsing (the paper's simulation engine).
 *
 * Model (Section 4 of the paper):
 *  - Instructions enter a window of capacity 2 x issueWidth in program
 *    order; the window is refilled each cycle ("kept full").
 *  - Every cycle up to issueWidth instructions whose dependences are
 *    satisfied issue, oldest first; execution takes 1 cycle (loads and
 *    multiplies 2, divides 12).
 *  - Renaming is ideal (only RAW register arcs), memory disambiguation
 *    is perfect (a load depends only on the most recent store that
 *    wrote one of its bytes), and there are no functional-unit limits
 *    other than issue width.
 *  - Conditional branches use the 8 kByte bimodal/gshare combining
 *    predictor; younger instructions cannot issue before or during the
 *    cycle a mispredicted branch issues.  All other control transfers
 *    predict perfectly.
 *  - Load-speculation and collapsing per MachineConfig; see DESIGN.md
 *    section 5 for the precise semantics.
 *
 * Engine: event-driven rather than scan-based.  Each window entry
 * carries a monotone lower bound on the cycle its constraints can
 * first all hold ("next try"); entries wait in a min-heap keyed on
 * that bound and are re-evaluated only when the bound comes due, so a
 * blocked 4096-entry window costs nothing per idle cycle.  Bounds
 * never overshoot the true readiness cycle (each failing evaluation
 * derives the next bound from exact producer state), so readiness and
 * load classification happen at exactly the same cycles as a naive
 * full scan.
 */

#ifndef DDSC_CORE_SCHEDULER_HH
#define DDSC_CORE_SCHEDULER_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "addrpred/addrpred.hh"
#include "bpred/bpred.hh"
#include "bpred/cti_pred.hh"
#include "core/config.hh"
#include "core/sched_stats.hh"
#include "trace/source.hh"
#include "vpred/vpred.hh"

namespace ddsc
{

/**
 * One simulation engine instance.  Use run() once per trace; the
 * predictors are reset between runs.
 */
class LimitScheduler
{
  public:
    explicit LimitScheduler(const MachineConfig &config);

    /** Simulate @p trace from its current position to the end. */
    SchedStats run(TraceSource &trace);

  private:
    /** Reset all run state (predictors keep their construction). */
    void resetState();

    /** The event-driven engine proper (run() adds wall timing). */
    SchedStats runEvent(TraceSource &trace);

    /** The O(window)-per-cycle reference engine (config.naiveEngine);
     *  semantically identical to the event-driven engine and used to
     *  differentially test it. */
    SchedStats runNaive(TraceSource &trace);

  private:
    /** A dependence arc to an older instruction. */
    struct DepArc
    {
        std::uint64_t producerSeq;
        bool collapsed;     ///< SRC semantics: wait for producer sources
        bool address;       ///< feeds address generation (load-spec)
    };

    /** One in-window dynamic instruction. */
    struct Entry
    {
        TraceRecord rec;
        std::uint64_t seq = 0;
        std::uint64_t fixedReady = 0;   ///< folded fixed constraints
        /** Last mispredicted branch before this instruction (0=none). */
        std::uint64_t barrierSeq = 0;
        /** Dynamic basic-block id (for the prior-work collapse
         *  restriction ablation). */
        std::uint64_t bbId = 0;
        DepArc arcs[4];
        unsigned numArcs = 0;
        bool issued = false;
        bool ready = false;             ///< in the ready set

        /** Monotone lower bounds on constraint satisfaction, updated
         *  each time this entry is evaluated.  Consumers read them to
         *  derive their own bounds. */
        std::uint64_t boundAll = 0;
        std::uint64_t boundNonAddr = 0;

        /** Value availability once known (issue + latency, or the
         *  speculative completion for predicted-correct loads). */
        std::uint64_t valueTime = 0;
        bool specValueSet = false;      ///< valueTime valid pre-issue

        /** Load-speculation bookkeeping. */
        bool isLoad = false;
        bool loadClassified = false;
        LoadClass loadClass = LoadClass::Ready;
        bool predUsable = false;        ///< table confidence > threshold
        bool predCorrect = false;       ///< predicted addr == actual
        bool vpredUsable = false;       ///< value prediction confident
        bool vpredCorrect = false;      ///< predicted value == actual

        /** Collapsing bookkeeping.  Absorbed producers are copied by
         *  value: they may issue and leave the window while this entry
         *  still waits, yet their identity is needed if a later
         *  consumer extends the group (chain triples). */
        ExprSize expr;                  ///< effective (compound) size
        TraceRecord memberRecords[2];   ///< absorbed producers
        std::uint64_t memberSeqs[2] = {0, 0};
        unsigned numMembers = 0;        ///< producers absorbed (0..2)
        bool inAnyGroup = false;

        /** Node elimination (paper Figure 1.f): a producer absorbed by
         *  consumers whose result no one else reads before it is
         *  overwritten need not execute at all. */
        unsigned absorbedCount = 0;     ///< times absorbed as producer
        bool hasValueReader = false;    ///< non-collapsed arc exists
        bool eliminated = false;        ///< never consumes an issue slot
    };

    /** Outcome of evaluating a constraint set at some cycle. */
    struct Check
    {
        bool ok;
        std::uint64_t bound;    ///< valid lower bound when !ok
    };

    void insert(const TraceRecord &rec);
    void addArc(Entry &entry, std::uint64_t producer_seq, bool address);
    void tryCollapse(Entry &entry);

    bool arcSatisfied(const DepArc &arc, std::uint64_t cycle) const;
    bool barrierSatisfiedNow(const Entry &entry,
                             std::uint64_t cycle) const;
    bool sourcesSatisfied(const Entry &entry, std::uint64_t cycle) const;
    bool addrArcsSatisfied(const Entry &entry, std::uint64_t cycle) const;

    /** Lower bound on when @p arc can be satisfied (exact for issued
     *  producers). */
    std::uint64_t arcBound(const DepArc &arc, std::uint64_t cycle) const;
    std::uint64_t barrierBound(const Entry &entry,
                               std::uint64_t cycle) const;
    Check checkAll(Entry &entry, std::uint64_t cycle) const;
    Check checkNonAddr(Entry &entry, std::uint64_t cycle) const;

    void classifyLoad(Entry &entry, std::uint64_t cycle);
    void issue(Entry &entry, std::uint64_t cycle);
    const Entry *findWindow(std::uint64_t seq) const;

    /** Post-collapse bookkeeping for node elimination: mark producers
     *  that still have a real value reader. */
    void noteValueReaders(const Entry &entry);

    /** Try to eliminate the overwritten previous writer @p old_seq. */
    void maybeEliminate(std::uint64_t old_seq);

    /** Drop an entry from all structures; @p entry must be in window. */
    void removeFromWindow(std::uint64_t seq);

    MachineConfig config_;
    std::unique_ptr<BranchPredictor> bpred_;
    std::unique_ptr<AddressPredictor> addrPred_;
    LoadValuePredictor valuePred_;
    ReturnAddressStack ras_;
    IndirectTargetBuffer itb_;

    std::list<Entry> window_;
    /** seq -> list position (gives both the Entry and O(1) removal). */
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> bySeq_;
    /** Issued-but-still-constraining producers: seq -> valueTime. */
    std::unordered_map<std::uint64_t, std::uint64_t> retired_;

    /** (bound, seq) min-heaps; lazily invalidated. */
    using BoundHeap = std::priority_queue<
        std::pair<std::uint64_t, std::uint64_t>,
        std::vector<std::pair<std::uint64_t, std::uint64_t>>,
        std::greater<>>;
    BoundHeap pending_;         ///< waiting to become issue-ready
    BoundHeap classifyQueue_;   ///< loads waiting for classification
    /** Issue-ready entries in program order. */
    std::map<std::uint64_t, Entry *> readySet_;

    /** Rename state: last writer seq per register (0 = none). */
    std::uint64_t lastRegWriter_[kNumRegs] = {};
    std::uint64_t lastCCWriter_ = 0;
    std::uint64_t lastBarrier_ = 0;     ///< last mispredicted branch
    /** Perfect disambiguation: last store seq per byte address. */
    std::unordered_map<std::uint64_t, std::uint64_t> lastStoreToByte_;

    std::uint64_t nextSeq_ = 1;         ///< 0 reserved for "none"
    std::uint64_t nextBbId_ = 0;        ///< dynamic basic-block counter
    std::uint64_t cycle_ = 0;
    SchedStats stats_;
};

} // namespace ddsc

#endif // DDSC_CORE_SCHEDULER_HH
