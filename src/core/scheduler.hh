/**
 * @file
 * The Wall-style window limit scheduler with d-speculation and
 * d-collapsing (the paper's simulation engine).
 *
 * Model (Section 4 of the paper):
 *  - Instructions enter a window of capacity 2 x issueWidth in program
 *    order; the window is refilled each cycle ("kept full").
 *  - Every cycle up to issueWidth instructions whose dependences are
 *    satisfied issue, oldest first; execution takes 1 cycle (loads and
 *    multiplies 2, divides 12).
 *  - Renaming is ideal (only RAW register arcs), memory disambiguation
 *    is perfect (a load depends only on the most recent store that
 *    wrote one of its bytes), and there are no functional-unit limits
 *    other than issue width.
 *  - Conditional branches use the 8 kByte bimodal/gshare combining
 *    predictor; younger instructions cannot issue before or during the
 *    cycle a mispredicted branch issues.  All other control transfers
 *    predict perfectly.
 *  - Load-speculation and collapsing per MachineConfig; see DESIGN.md
 *    section 5 for the precise semantics.
 *
 * Engine: event-driven rather than scan-based.  Each window entry
 * carries a monotone lower bound on the cycle its constraints can
 * first all hold ("next try"); entries wait in a min-heap keyed on
 * that bound and are re-evaluated only when the bound comes due, so a
 * blocked 4096-entry window costs nothing per idle cycle.  Bounds
 * never overshoot the true readiness cycle (each failing evaluation
 * derives the next bound from exact producer state), so readiness and
 * load classification happen at exactly the same cycles as a naive
 * full scan.
 *
 * Hot-path layout: sequence numbers are dense (one per inserted
 * instruction, never reused within a run), so every per-instruction
 * structure is a power-of-two ring addressed by seq instead of an
 * associative container:
 *  - the window is a ring of Entry slots (`slots_`); findWindow is one
 *    index + tag compare, and slot reuse replaces list/hash-map
 *    erase traffic (the ring grows when a stalled oldest entry would
 *    be overrun, which the issue rules bound to a small multiple of
 *    the window size);
 *  - issued-but-still-constraining producers live in a seq-tagged ring
 *    of value times (`retired_`); a tag mismatch means the entry was
 *    retired so long ago that its value is certainly available, which
 *    replaces the old periodic prune loop outright;
 *  - perfect memory disambiguation uses 4 KiB pages of per-byte seq
 *    words, invalidated between runs by epoch instead of deallocation,
 *    so a load/store touches one page pointer instead of one hash
 *    probe per byte;
 *  - the bound queues ("re-evaluate entry E at cycle C") are timing
 *    wheels: events due within the wheel span go to the bucket of
 *    their cycle and each cycle drains exactly one bucket, so the
 *    per-event cost is O(1) instead of a log-depth heap sift; the
 *    rare far-future bound (deep long-latency chains) waits in a
 *    small min-heap consulted once per cycle;
 *  - the ready set is a bitmap over the window ring scanned with
 *    countr_zero, which both engines share for the issue stage:
 *    oldest-first selection is a word scan from the oldest live seq,
 *    and set/clear are single bit operations (no lazy deletion).
 * docs/simulator.md ("Hot-path data layout") states the invariants.
 */

#ifndef DDSC_CORE_SCHEDULER_HH
#define DDSC_CORE_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "core/config.hh"
#include "core/frontend.hh"
#include "core/sched_stats.hh"
#include "support/cancel.hh"
#include "trace/source.hh"

namespace ddsc
{

/**
 * One simulation engine instance.  Use run() once per trace; the
 * predictors are reset between runs.
 */
class LimitScheduler
{
  public:
    explicit LimitScheduler(const MachineConfig &config);

    /** Simulate @p trace from its current position to the end. */
    SchedStats run(TraceSource &trace);

    /**
     * Batched operation: the back-end consumes pre-annotated records
     * from a shared SpecFrontEnd pass instead of driving its own
     * front-end.  Protocol:
     *
     *     sched.beginBatched();
     *     while (fe.fill(trace, batch, chunk) != 0)
     *         sched.feedBatched(batch);
     *     SchedStats stats = sched.finishBatched();
     *
     * feedBatched() advances simulated cycles only while the chunk can
     * keep the window full ("kept full" semantics); the leftover tail
     * waits for the next chunk.  finishBatched() drains the window.
     * The resulting SchedStats are bit-identical to run() on the same
     * trace (wallNanos excepted, which the caller owns in this mode);
     * the batched engine promotes entries with exact wakeup lists
     * instead of the event engine's monotone lower bounds, so a
     * 2048-wide window of long dependence chains costs O(arcs), not
     * O(arcs x bound advances).
     */
    void beginBatched();
    void feedBatched(const FrontEndBatch &batch);
    SchedStats finishBatched();

    /** Convenience: run a private front-end pass feeding only this
     *  back-end through the batched path (wall-timed like run()). */
    SchedStats runBatched(TraceSource &trace);

    /**
     * Cooperative cancellation: both engines poll @p token at
     * insertion-chunk granularity (every kCancelPollRecords records
     * fed into the window) and finishBatched()'s drain polls per
     * kCancelPollRecords cycles, throwing support::CancelledError
     * when it fires.  Partial window state is discarded by the next
     * run's resetState(); the null token (default) never cancels.
     */
    void setCancel(support::CancelToken token)
    {
        cancel_ = std::move(token);
        cancelCountdown_ = kCancelPollRecords;
    }

  private:
    /** Reset all run state (predictors keep their construction). */
    void resetState();

    /** The event-driven engine proper (run() adds wall timing). */
    SchedStats runEvent(TraceSource &trace);

    /** The O(window)-per-cycle reference engine (config.naiveEngine);
     *  semantically identical to the event-driven engine and used to
     *  differentially test it. */
    SchedStats runNaive(TraceSource &trace);

  private:
    /** A dependence arc to an older instruction. */
    struct DepArc
    {
        std::uint64_t producerSeq;
        bool collapsed;     ///< SRC semantics: wait for producer sources
        bool address;       ///< feeds address generation (load-spec)
    };

    /** One in-window dynamic instruction. */
    struct Entry
    {
        TraceRecord rec;
        std::uint64_t seq = 0;
        std::uint64_t fixedReady = 0;   ///< folded fixed constraints
        /** Last mispredicted branch before this instruction (0=none). */
        std::uint64_t barrierSeq = 0;
        /** Dynamic basic-block id (for the prior-work collapse
         *  restriction ablation). */
        std::uint64_t bbId = 0;
        DepArc arcs[4];
        unsigned numArcs = 0;
        bool live = false;              ///< slot holds an in-window entry
        bool issued = false;
        bool ready = false;             ///< in the ready set

        /** Monotone lower bounds on constraint satisfaction, updated
         *  each time this entry is evaluated.  Consumers read them to
         *  derive their own bounds. */
        std::uint64_t boundAll = 0;
        std::uint64_t boundNonAddr = 0;

        /** Value availability once known (issue + latency, or the
         *  speculative completion for predicted-correct loads). */
        std::uint64_t valueTime = 0;
        bool specValueSet = false;      ///< valueTime valid pre-issue

        /** Load-speculation bookkeeping. */
        bool isLoad = false;
        bool loadClassified = false;
        LoadClass loadClass = LoadClass::Ready;
        bool predUsable = false;        ///< table confidence > threshold
        bool predCorrect = false;       ///< predicted addr == actual
        bool vpredUsable = false;       ///< value prediction confident
        bool vpredCorrect = false;      ///< predicted value == actual

        /** Memory-dependence speculation (MemDepMode::Predicted): the
         *  true producing store this load was speculated *past* (0 =
         *  none).  Not an arc — readiness and classification ignore
         *  it; issueReady() probes it when the load reaches issue and
         *  squashes on violation (divertViolatedLoad). */
        std::uint64_t memSpecSeq = 0;
        /** Squashed on a memory-dependence violation: the load was
         *  sent back to wait on the restored store arc and pays the
         *  squash penalty at its eventual re-issue. */
        bool memSquashed = false;

        /** Collapsing bookkeeping.  Absorbed producers' signature
         *  fragments and seqs are copied by value: a producer may
         *  issue and leave the window while this entry still waits,
         *  yet its identity is needed if a later consumer extends the
         *  group (chain triples).  Fragments come precomputed from
         *  the front-end annotation, so group signatures are pure
         *  concatenation here. */
        ExprSize expr;                  ///< effective (compound) size
        std::array<char, kMaxInstructionSignature> sigFrag;
        std::uint8_t sigLen = 0;        ///< own fragment (annotation)
        std::array<char, kMaxInstructionSignature> memberSigs[2];
        std::uint8_t memberSigLens[2] = {0, 0};
        std::uint64_t memberSeqs[2] = {0, 0};
        unsigned numMembers = 0;        ///< producers absorbed (0..2)
        bool inAnyGroup = false;

        /** Node elimination (paper Figure 1.f): a producer absorbed by
         *  consumers whose result no one else reads before it is
         *  overwritten need not execute at all. */
        unsigned absorbedCount = 0;     ///< times absorbed as producer
        bool hasValueReader = false;    ///< non-collapsed arc exists
        bool eliminated = false;        ///< never consumes an issue slot

        /** Batched-engine wakeup lists (unused by the event/naive
         *  engines).  An entry blocked on this producer's unknown
         *  future (issue time or source readiness) links itself here;
         *  the chain is seq-encoded tokens (waiterSeq << 1 | kind) so
         *  it survives growWindow()'s entry copies.  Each waiter
         *  stores the continuation for the one chain it sits in, per
         *  kind (promotion vs load classification). */
        std::uint64_t wakeHead = 0;         ///< 0 = no waiters
        std::uint64_t wakeNextPromote = 0;
        std::uint64_t wakeNextClassify = 0;
    };

    /** Outcome of evaluating a constraint set at some cycle. */
    struct Check
    {
        bool ok;
        std::uint64_t bound;    ///< valid lower bound when !ok
    };

    void insert(const TraceRecord &rec);
    /** The back-end half of insertion: window entry construction from
     *  a record plus its front-end annotation (shared by insert() and
     *  the batched feed, so both paths are identical by
     *  construction). */
    void insertAnnotated(const TraceRecord &rec,
                         const InsertAnnotation &ann);
    void addArc(Entry &entry, std::uint64_t producer_seq, bool address);
    void tryCollapse(Entry &entry);

    bool arcSatisfied(const DepArc &arc, std::uint64_t cycle) const;
    bool barrierSatisfiedNow(const Entry &entry,
                             std::uint64_t cycle) const;
    bool sourcesSatisfied(const Entry &entry, std::uint64_t cycle) const;
    bool addrArcsSatisfied(const Entry &entry, std::uint64_t cycle) const;

    /** Lower bound on when @p arc can be satisfied (exact for issued
     *  producers). */
    std::uint64_t arcBound(const DepArc &arc, std::uint64_t cycle) const;
    std::uint64_t barrierBound(const Entry &entry,
                               std::uint64_t cycle) const;
    Check checkAll(Entry &entry, std::uint64_t cycle) const;
    Check checkNonAddr(Entry &entry, std::uint64_t cycle) const;

    void classifyLoad(Entry &entry, std::uint64_t cycle);
    void issue(Entry &entry, std::uint64_t cycle);

    /** Memory-dependence violation at issue: squash the load.  Returns
     *  true when it may still issue this cycle (violation-proof value
     *  prediction); false when it was sent back to wait on the
     *  restored store arc (re-registered with the active engine). */
    bool divertViolatedLoad(Entry &entry);

    /** The in-window entry with sequence number @p seq, or nullptr
     *  (one ring index plus a tag compare). */
    const Entry *findWindow(std::uint64_t seq) const;
    Entry *findWindow(std::uint64_t seq);

    /** Post-collapse bookkeeping for node elimination: mark producers
     *  that still have a real value reader. */
    void noteValueReaders(const Entry &entry);

    /** Try to eliminate the overwritten previous writer @p old_seq;
     *  @p cc_blocked means its cc result is still live (the front-end
     *  decides this from its writer tables). */
    void maybeEliminate(std::uint64_t old_seq, bool cc_blocked);

    /** Drop an entry from all structures; @p entry must be in window. */
    void removeFromWindow(std::uint64_t seq);

    /** Mark @p entry issue-ready (sets its bit in readyBits_). */
    void markReady(Entry &entry);

    /** Shared issue stage: scan readyBits_ oldest-first and issue up
     *  to issueWidth ready entries (eliminated entries leave for free
     *  while issue slots remain).  Returns the number issued. */
    unsigned issueReady(std::uint64_t &last_issue_cycle,
                        bool &any_issue);

    /** Double the window ring until the live span [oldestSeq_,
     *  nextSeq_) fits without slot collisions. */
    void growWindow();

    /** The value time of an issued producer, or 0 when it retired so
     *  long ago that its value is certainly available. */
    std::uint64_t retiredValueTime(std::uint64_t seq) const;

    /** Record an issued producer's value time in the retired ring,
     *  growing the ring rather than overwriting a still-constraining
     *  slot. */
    void recordRetired(std::uint64_t seq, std::uint64_t value_time);
    void growRetired();

    // --- batched (wakeup-list) engine ---------------------------------
    //
    // Re-evaluations are scheduled at *exact* constraint-resolution
    // times instead of monotone lower bounds.  A failed evaluation
    // stops at its first unsatisfied constraint: when that
    // constraint's satisfaction time is already known (fixed
    // readiness, an issued or value-speculated producer, a retired
    // value time) the entry goes back on the wheel for that cycle;
    // otherwise (an unissued producer) it links into the producer's
    // wakeup list and sleeps until markReady / issue / speculative
    // value delivery names the time.  Every entry is thus evaluated
    // O(constraints) times total, and promotion still happens at
    // exactly the same cycle as the event/naive engines (each wake
    // fires at a true satisfaction time, and the last one fires at
    // their maximum).

    /** Outcome of a batched-engine evaluation: satisfied, or blocked
     *  until a known cycle (`due`), or blocked on an unissued
     *  in-window producer (`blocker`). */
    struct WakeCheck
    {
        bool ok;
        std::uint64_t due;      ///< exact re-evaluation cycle (0 = n/a)
        std::uint64_t blocker;  ///< producer seq to wait on (0 = n/a)
    };

    WakeCheck wakeCheckArc(const DepArc &arc, std::uint64_t cycle) const;
    WakeCheck wakeCheckAll(const Entry &entry, std::uint64_t cycle) const;
    WakeCheck wakeCheckNonAddr(const Entry &entry,
                               std::uint64_t cycle) const;

    /** Link @p waiter into @p producer_seq's wakeup list. */
    void registerWaiter(std::uint64_t producer_seq, Entry &waiter,
                        bool classify_kind);
    /** Producer resolved at a known future @p due (issue or
     *  speculative value): move all waiters to their wheels. */
    void wakeAt(Entry &producer, std::uint64_t due);
    /** Producer became source-satisfied this cycle (markReady):
     *  promotion waiters re-evaluate now, classification waiters next
     *  cycle (their predicates cannot hold yet). */
    void wakeNow(Entry &producer);

    void insertFromBatch(const FrontEndBatch &batch, std::size_t i);
    void runBatchedCycle();

    MachineConfig config_;
    /** The legacy single-cell path drives this private front-end;
     *  the batched path bypasses it (annotations arrive from a shared
     *  external pass). */
    SpecFrontEnd frontEnd_;

    /** The window: a power-of-two ring of slots addressed by
     *  seq & slotMask_, tagged by Entry::seq + Entry::live.  Dense
     *  seqs keep live entries collision-free up to the ring size;
     *  growWindow() handles the rare pathological span. */
    std::vector<Entry> slots_;
    std::uint64_t slotMask_ = 0;
    std::size_t windowCount_ = 0;       ///< live entries
    /** No live entry has a smaller seq (watermark; naive scans and
     *  ring growth iterate [oldestSeq_, nextSeq_)). */
    std::uint64_t oldestSeq_ = 1;

    /** Issued-but-still-constraining producers: a seq-tagged ring of
     *  value times.  A tag mismatch means "retired long ago, value
     *  available" — the ring replaces both the unordered_map and the
     *  periodic prune loop. */
    struct Retired
    {
        std::uint64_t seq = 0;          ///< 0 = empty slot
        std::uint64_t valueTime = 0;
    };
    std::vector<Retired> retired_;
    std::uint64_t retiredMask_ = 0;

    /** (bound, seq) min-heap for far-future wheel events. */
    using BoundHeap = std::priority_queue<
        std::pair<std::uint64_t, std::uint64_t>,
        std::vector<std::pair<std::uint64_t, std::uint64_t>>,
        std::greater<>>;

    /** Timing wheel of (bound, seq) re-evaluation events.  cycle_
     *  advances by exactly 1 per engine iteration and every bucket is
     *  drained each cycle, so an event pushed with bound within
     *  kWheelSlots of the current cycle sits in the bucket of its due
     *  cycle and is popped exactly then; farther bounds (deep
     *  long-latency chains) wait in `far`, whose top is consulted once
     *  per cycle.  Push is O(1) versus the log-depth sift of a global
     *  heap; events are still lazily invalidated at drain (the entry
     *  may have issued meanwhile). */
    static constexpr std::uint64_t kWheelSlots = 256;
    struct BoundWheel
    {
        std::array<std::vector<std::uint64_t>, kWheelSlots> buckets;
        BoundHeap far;

        void
        push(std::uint64_t bound, std::uint64_t cycle, std::uint64_t seq)
        {
            if (bound - cycle < kWheelSlots)
                buckets[bound & (kWheelSlots - 1)].push_back(seq);
            else
                far.push({bound, seq});
        }

        void clear();
    };
    BoundWheel pending_;        ///< waiting to become issue-ready
    BoundWheel classifyQueue_;  ///< loads waiting for classification

    /** Issue-ready entries: one bit per window-ring slot (index
     *  seq & slotMask_).  The issue stage scans words oldest-first;
     *  removeFromWindow clears the bit, so no lazy deletion. */
    std::vector<std::uint64_t> readyBits_;
    std::size_t readyCount_ = 0;
    /** Lower bound on the smallest seq with a set ready bit, so the
     *  issue scan skips the dead prefix below it (a stalled oldest
     *  entry no longer costs O(span) bitmap words per cycle). */
    std::uint64_t readySeqHint_ = 1;

    /** Batched (wakeup-list) engine state.  promoteWork_ is the
     *  current cycle's promotion work list: wheel drains seed it and
     *  markReady wakes append to it mid-scan (index iteration), so
     *  same-cycle promotion closures — collapsed consumers of a
     *  just-promoted producer — resolve within the cycle. */
    bool wakeMode_ = false;
    std::vector<std::uint64_t> promoteWork_;
    std::uint64_t batchLastIssue_ = 0;
    bool batchAnyIssue_ = false;

    std::uint64_t nextSeq_ = 1;         ///< 0 reserved for "none"
    std::uint64_t cycle_ = 0;
    SchedStats stats_;

    /** Cooperative cancellation (setCancel): checked every
     *  kCancelPollRecords inserted records / drained cycles, so the
     *  cancellation latency is bounded by one poll chunk.  The
     *  countdown keeps the hot path to a decrement; the token's
     *  atomic (and clock, when a deadline binds) is touched only when
     *  it reaches zero. */
    static constexpr std::uint64_t kCancelPollRecords = 8192;
    support::CancelToken cancel_;
    std::uint64_t cancelCountdown_ = kCancelPollRecords;

    /** Decrement the poll countdown; throws CancelledError when the
     *  token fired. */
    void
    pollCancel()
    {
        if (--cancelCountdown_ != 0)
            return;
        cancelCountdown_ = kCancelPollRecords;
        if (cancel_.valid())
            cancel_.throwIfCancelled();
    }
};

} // namespace ddsc

#endif // DDSC_CORE_SCHEDULER_HH
