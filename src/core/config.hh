/**
 * @file
 * Machine configurations for the limit simulator.
 *
 * The paper evaluates five configurations (Section 4):
 *   A  base superscalar
 *   B  base + real load-speculation
 *   C  base + d-collapsing
 *   D  base + d-collapsing + real load-speculation
 *   E  base + d-collapsing + ideal load-speculation
 * at issue widths 4, 8, 16, 32, and 2048 with window = 2 x width.
 *
 * The speculation-module extension adds configurations beyond the
 * paper's matrix (src/spec/):
 *   F  D with perfect memory disambiguation replaced by a predicted
 *      one (store-set-style dependence predictor; violations squash)
 *   G  D + context-based (FCM/stride hybrid) load-value prediction
 */

#ifndef DDSC_CORE_CONFIG_HH
#define DDSC_CORE_CONFIG_HH

#include <string>
#include <vector>

#include "addrpred/addrpred.hh"
#include "collapse/rules.hh"
#include "support/logging.hh"

namespace ddsc
{

/** Load-speculation variants. */
enum class LoadSpecMode
{
    None,   ///< loads wait for their address operands
    Real,   ///< two-delta stride table with confidence
    Ideal,  ///< every load address predicted correctly
};

/** Memory-disambiguation variants (the mem-dep speculation module). */
enum class MemDepMode
{
    Perfect,    ///< paper: a load waits only for the true producing store
    Predicted,  ///< store-set-style predictor; mispredictions squash
};

/** Which trained load-value predictor backs loadValuePrediction. */
enum class ValuePredKind
{
    LastValue,  ///< last value + 2-bit confidence (historical module)
    FcmStride,  ///< context(FCM)/stride hybrid with confidence gating
};

/**
 * All knobs of one simulated machine.
 */
struct MachineConfig
{
    std::string name = "A";
    unsigned issueWidth = 4;
    unsigned windowSize = 8;            ///< paper: 2 x issueWidth
    bool collapsing = false;
    LoadSpecMode loadSpec = LoadSpecMode::None;

    /** Collapsing legality knobs (ablations tweak these). */
    CollapseRules rules;

    /**
     * Execute collapsed-away producers lazily and skip them entirely
     * when nothing else reads their result before it is overwritten
     * (the paper's Figure 1.f "node elimination").  Off in the paper's
     * headline configurations; exposed for the extension study.
     */
    bool nodeElimination = false;

    /**
     * Predict loaded *values* in addition to addresses (the paper's
     * Figure 1.d d-speculation flavour, not evaluated there).  A
     * correctly value-predicted load delivers its data to dependents
     * one cycle after its non-address constraints hold, without
     * waiting for the memory access.  Extension study only.
     */
    bool loadValuePrediction = false;

    /**
     * Predict non-conditional control transfers realistically instead
     * of the paper's "always predicted correctly" idealization: calls
     * are always correct (direct targets), returns use a
     * return-address stack, indirect jumps a last-target buffer.
     * Mispredictions barrier like conditional-branch mispredictions.
     */
    bool realCtiPrediction = false;
    /** Return-address-stack depth when realCtiPrediction is on. */
    unsigned rasDepth = 16;

    /**
     * Use the O(window) scan engine instead of the event-driven one.
     * Semantically identical and much slower; exists so the test
     * suite can differentially validate the event-driven engine.
     */
    bool naiveEngine = false;

    /**
     * How loads are disambiguated against older stores.  Perfect is
     * the paper's model (and the default of every paper config); the
     * Predicted mode replaces it with a trained dependence predictor:
     * a load predicted independent issues without waiting for the
     * producing store, and a violation detected at issue time squashes
     * it (re-issue cost memSquashPenalty, surfaced in SchedStats).
     */
    MemDepMode memDep = MemDepMode::Perfect;
    /** Dependence-predictor table size (12 = 4096 entries). */
    unsigned memDepIndexBits = 12;
    /** Predict "dependent" only when confidence > threshold. */
    unsigned memDepConfidenceThreshold = 1;
    /** A store older than this many dynamic instructions counts as
     *  resolved when training the dependence predictor (its value is
     *  long since available, so speculating past it is free). */
    unsigned memDepTrainDistance = 512;
    /** Squash/re-issue cost in cycles charged to a load that issued
     *  past a store it truly depended on. */
    unsigned memSquashPenalty = 12;

    /** Which trained predictor backs loadValuePrediction. */
    ValuePredKind valuePredKind = ValuePredKind::LastValue;
    /** Value-predictor table size (12 = 4096 entries). */
    unsigned vpredIndexBits = 12;
    /** Use a predicted value only when confidence > threshold. */
    unsigned vpredConfidenceThreshold = 1;
    /** FCM history depth (values hashed into the context). */
    unsigned vpredHistoryLength = 4;

    /** Branch predictor size: bimodalN/gshareN+1 (13 = 8 kByte). */
    unsigned bpredIndexBits = 13;
    /** Address predictor table size (12 = 4096 entries). */
    unsigned addrPredIndexBits = 12;
    /** Use a predicted address only when confidence > threshold. */
    unsigned addrConfidenceThreshold = 1;
    /** Which realistic predictor to use (paper: two-delta stride). */
    AddrPredKind addrPredKind = AddrPredKind::TwoDelta;

    /**
     * Canonical encoding of every behavioural knob (the display name
     * is deliberately excluded).  Two configs with equal fingerprints
     * simulate identically; ExperimentDriver uses this to detect
     * result-cache keys that alias distinct machines.
     *
     * Adding, removing, or reordering a field changes the layout:
     * bump support::version::kFingerprintSchema and kFingerprintFields
     * with it (experiment_test pins the field count).
     */
    std::string
    fingerprint() const
    {
        std::string fp;
        auto field = [&fp](const std::string &v) {
            fp += v;
            fp += '|';
        };
        field(std::to_string(issueWidth));
        field(std::to_string(windowSize));
        field(std::to_string(collapsing));
        field(std::to_string(static_cast<unsigned>(loadSpec)));
        field(std::to_string(rules.maxOperands));
        field(std::to_string(rules.narrowOperands));
        field(std::to_string(rules.maxInstructions));
        field(std::to_string(rules.zeroOpDetection));
        field(std::to_string(rules.maxCollapseDistance));
        field(std::to_string(rules.sameBasicBlockOnly));
        field(std::to_string(nodeElimination));
        field(std::to_string(loadValuePrediction));
        field(std::to_string(realCtiPrediction));
        field(std::to_string(rasDepth));
        field(std::to_string(naiveEngine));
        field(std::to_string(bpredIndexBits));
        field(std::to_string(addrPredIndexBits));
        field(std::to_string(addrConfidenceThreshold));
        field(std::to_string(static_cast<unsigned>(addrPredKind)));
        field(std::to_string(static_cast<unsigned>(memDep)));
        field(std::to_string(memDepIndexBits));
        field(std::to_string(memDepConfidenceThreshold));
        field(std::to_string(memDepTrainDistance));
        field(std::to_string(memSquashPenalty));
        field(std::to_string(static_cast<unsigned>(valuePredKind)));
        field(std::to_string(vpredIndexBits));
        field(std::to_string(vpredConfidenceThreshold));
        field(std::to_string(vpredHistoryLength));
        return fp;
    }

    /**
     * Canonical encoding of the knobs the speculative *front-end*
     * depends on (see SpecFrontEnd): branch/CTI prediction and the
     * load address/value predictor training.  Two configs with equal
     * front-end fingerprints produce identical per-record annotations
     * for any trace, so one streaming front-end pass can feed both
     * back-ends.  Knobs that only matter when a predictor is off are
     * normalized away (config A and config C group together even if
     * their unused address-predictor knobs differ).
     *
     * Grouping only — never persisted, not part of
     * kFingerprintSchema.  The paper matrix groups into two passes per
     * workload: {A, C, E} (no trained load predictor) and {B, D}.
     */
    std::string
    frontEndFingerprint() const
    {
        std::string fp;
        auto field = [&fp](unsigned v) {
            fp += std::to_string(v);
            fp += '|';
        };
        field(bpredIndexBits);
        const bool train_addr = loadSpec == LoadSpecMode::Real;
        field(train_addr);
        field(train_addr ? addrPredIndexBits : 0);
        field(train_addr ? addrConfidenceThreshold : 0);
        field(train_addr ? static_cast<unsigned>(addrPredKind) : 0);
        field(loadValuePrediction);
        field(loadValuePrediction
                  ? static_cast<unsigned>(valuePredKind) : 0);
        field(loadValuePrediction ? vpredIndexBits : 0);
        field(loadValuePrediction ? vpredConfidenceThreshold : 0);
        field(loadValuePrediction &&
                      valuePredKind == ValuePredKind::FcmStride
                  ? vpredHistoryLength : 0);
        field(realCtiPrediction);
        field(realCtiPrediction ? rasDepth : 0);
        const bool train_memdep = memDep == MemDepMode::Predicted;
        field(train_memdep);
        field(train_memdep ? memDepIndexBits : 0);
        field(train_memdep ? memDepConfidenceThreshold : 0);
        field(train_memdep ? memDepTrainDistance : 0);
        // memSquashPenalty is back-end-only: it shifts issue timing,
        // never an annotation, so it must not split front-end groups.
        return fp;
    }

    /**
     * The known configurations by letter: the paper's five (A-E) plus
     * the speculation-module extension configs (F, G, ...), which ride
     * the same char-letter plumbing through the matrix, the result
     * store, and the serving fleet with zero protocol changes.
     */
    static MachineConfig
    paper(char id, unsigned issue_width)
    {
        MachineConfig cfg;
        cfg.name = std::string(1, id);
        cfg.issueWidth = issue_width;
        cfg.windowSize = 2 * issue_width;
        switch (id) {
          case 'A':
            break;
          case 'B':
            cfg.loadSpec = LoadSpecMode::Real;
            break;
          case 'C':
            cfg.collapsing = true;
            break;
          case 'D':
            cfg.collapsing = true;
            cfg.loadSpec = LoadSpecMode::Real;
            break;
          case 'E':
            cfg.collapsing = true;
            cfg.loadSpec = LoadSpecMode::Ideal;
            break;
          case 'F':
            // D with the paper's perfect disambiguation replaced by a
            // predicted one (memory-dependence speculation module).
            cfg.collapsing = true;
            cfg.loadSpec = LoadSpecMode::Real;
            cfg.memDep = MemDepMode::Predicted;
            break;
          case 'G':
            // D plus context-based (FCM/stride hybrid) load-value
            // prediction with confidence gating.
            cfg.collapsing = true;
            cfg.loadSpec = LoadSpecMode::Real;
            cfg.loadValuePrediction = true;
            cfg.valuePredKind = ValuePredKind::FcmStride;
            break;
          default:
            ddsc_fatal("unknown configuration '%c'", id);
        }
        return cfg;
    }

    /** Every letter paper() accepts, in canonical order. */
    static const std::string &
    knownConfigs()
    {
        static const std::string letters = "ABCDEFG";
        return letters;
    }

    /** Whether @p id names a known configuration letter. */
    static bool
    isKnownConfig(char id)
    {
        return knownConfigs().find(id) != std::string::npos;
    }

    /** One-line summary of a configuration letter. */
    static const char *
    letterSummary(char id)
    {
        switch (id) {
          case 'A': return "base superscalar";
          case 'B': return "base + real load-address speculation";
          case 'C': return "base + d-collapsing";
          case 'D': return "collapsing + real load-address speculation";
          case 'E': return "collapsing + ideal load-address speculation";
          case 'F': return "D with predicted memory disambiguation "
                           "(squash on violation)";
          case 'G': return "D + context (FCM/stride) load-value "
                           "prediction";
          default:  return "unknown";
        }
    }

    /** The issue widths the paper sweeps. */
    static std::vector<unsigned>
    paperWidths()
    {
        return {4, 8, 16, 32, 2048};
    }

    /** Display label for a width ("2k" for 2048). */
    static std::string
    widthLabel(unsigned width)
    {
        return width == 2048 ? "2k" : std::to_string(width);
    }
};

} // namespace ddsc

#endif // DDSC_CORE_CONFIG_HH
