/**
 * @file
 * Machine configurations for the limit simulator.
 *
 * The paper evaluates five configurations (Section 4):
 *   A  base superscalar
 *   B  base + real load-speculation
 *   C  base + d-collapsing
 *   D  base + d-collapsing + real load-speculation
 *   E  base + d-collapsing + ideal load-speculation
 * at issue widths 4, 8, 16, 32, and 2048 with window = 2 x width.
 */

#ifndef DDSC_CORE_CONFIG_HH
#define DDSC_CORE_CONFIG_HH

#include <string>
#include <vector>

#include "addrpred/addrpred.hh"
#include "collapse/rules.hh"
#include "support/logging.hh"

namespace ddsc
{

/** Load-speculation variants. */
enum class LoadSpecMode
{
    None,   ///< loads wait for their address operands
    Real,   ///< two-delta stride table with confidence
    Ideal,  ///< every load address predicted correctly
};

/**
 * All knobs of one simulated machine.
 */
struct MachineConfig
{
    std::string name = "A";
    unsigned issueWidth = 4;
    unsigned windowSize = 8;            ///< paper: 2 x issueWidth
    bool collapsing = false;
    LoadSpecMode loadSpec = LoadSpecMode::None;

    /** Collapsing legality knobs (ablations tweak these). */
    CollapseRules rules;

    /**
     * Execute collapsed-away producers lazily and skip them entirely
     * when nothing else reads their result before it is overwritten
     * (the paper's Figure 1.f "node elimination").  Off in the paper's
     * headline configurations; exposed for the extension study.
     */
    bool nodeElimination = false;

    /**
     * Predict loaded *values* in addition to addresses (the paper's
     * Figure 1.d d-speculation flavour, not evaluated there).  A
     * correctly value-predicted load delivers its data to dependents
     * one cycle after its non-address constraints hold, without
     * waiting for the memory access.  Extension study only.
     */
    bool loadValuePrediction = false;

    /**
     * Predict non-conditional control transfers realistically instead
     * of the paper's "always predicted correctly" idealization: calls
     * are always correct (direct targets), returns use a
     * return-address stack, indirect jumps a last-target buffer.
     * Mispredictions barrier like conditional-branch mispredictions.
     */
    bool realCtiPrediction = false;
    /** Return-address-stack depth when realCtiPrediction is on. */
    unsigned rasDepth = 16;

    /**
     * Use the O(window) scan engine instead of the event-driven one.
     * Semantically identical and much slower; exists so the test
     * suite can differentially validate the event-driven engine.
     */
    bool naiveEngine = false;

    /** Branch predictor size: bimodalN/gshareN+1 (13 = 8 kByte). */
    unsigned bpredIndexBits = 13;
    /** Address predictor table size (12 = 4096 entries). */
    unsigned addrPredIndexBits = 12;
    /** Use a predicted address only when confidence > threshold. */
    unsigned addrConfidenceThreshold = 1;
    /** Which realistic predictor to use (paper: two-delta stride). */
    AddrPredKind addrPredKind = AddrPredKind::TwoDelta;

    /**
     * Canonical encoding of every behavioural knob (the display name
     * is deliberately excluded).  Two configs with equal fingerprints
     * simulate identically; ExperimentDriver uses this to detect
     * result-cache keys that alias distinct machines.
     *
     * Adding, removing, or reordering a field changes the layout:
     * bump support::version::kFingerprintSchema and kFingerprintFields
     * with it (experiment_test pins the field count).
     */
    std::string
    fingerprint() const
    {
        std::string fp;
        auto field = [&fp](const std::string &v) {
            fp += v;
            fp += '|';
        };
        field(std::to_string(issueWidth));
        field(std::to_string(windowSize));
        field(std::to_string(collapsing));
        field(std::to_string(static_cast<unsigned>(loadSpec)));
        field(std::to_string(rules.maxOperands));
        field(std::to_string(rules.narrowOperands));
        field(std::to_string(rules.maxInstructions));
        field(std::to_string(rules.zeroOpDetection));
        field(std::to_string(rules.maxCollapseDistance));
        field(std::to_string(rules.sameBasicBlockOnly));
        field(std::to_string(nodeElimination));
        field(std::to_string(loadValuePrediction));
        field(std::to_string(realCtiPrediction));
        field(std::to_string(rasDepth));
        field(std::to_string(naiveEngine));
        field(std::to_string(bpredIndexBits));
        field(std::to_string(addrPredIndexBits));
        field(std::to_string(addrConfidenceThreshold));
        field(std::to_string(static_cast<unsigned>(addrPredKind)));
        return fp;
    }

    /**
     * Canonical encoding of the knobs the speculative *front-end*
     * depends on (see SpecFrontEnd): branch/CTI prediction and the
     * load address/value predictor training.  Two configs with equal
     * front-end fingerprints produce identical per-record annotations
     * for any trace, so one streaming front-end pass can feed both
     * back-ends.  Knobs that only matter when a predictor is off are
     * normalized away (config A and config C group together even if
     * their unused address-predictor knobs differ).
     *
     * Grouping only — never persisted, not part of
     * kFingerprintSchema.  The paper matrix groups into two passes per
     * workload: {A, C, E} (no trained load predictor) and {B, D}.
     */
    std::string
    frontEndFingerprint() const
    {
        std::string fp;
        auto field = [&fp](unsigned v) {
            fp += std::to_string(v);
            fp += '|';
        };
        field(bpredIndexBits);
        const bool train_addr = loadSpec == LoadSpecMode::Real;
        field(train_addr);
        field(train_addr ? addrPredIndexBits : 0);
        field(train_addr ? addrConfidenceThreshold : 0);
        field(train_addr ? static_cast<unsigned>(addrPredKind) : 0);
        field(loadValuePrediction);
        field(realCtiPrediction);
        field(realCtiPrediction ? rasDepth : 0);
        return fp;
    }

    /** The five paper configurations by letter. */
    static MachineConfig
    paper(char id, unsigned issue_width)
    {
        MachineConfig cfg;
        cfg.name = std::string(1, id);
        cfg.issueWidth = issue_width;
        cfg.windowSize = 2 * issue_width;
        switch (id) {
          case 'A':
            break;
          case 'B':
            cfg.loadSpec = LoadSpecMode::Real;
            break;
          case 'C':
            cfg.collapsing = true;
            break;
          case 'D':
            cfg.collapsing = true;
            cfg.loadSpec = LoadSpecMode::Real;
            break;
          case 'E':
            cfg.collapsing = true;
            cfg.loadSpec = LoadSpecMode::Ideal;
            break;
          default:
            ddsc_fatal("unknown configuration '%c'", id);
        }
        return cfg;
    }

    /** The issue widths the paper sweeps. */
    static std::vector<unsigned>
    paperWidths()
    {
        return {4, 8, 16, 32, 2048};
    }

    /** Display label for a width ("2k" for 2048). */
    static std::string
    widthLabel(unsigned width)
    {
        return width == 2048 ? "2k" : std::to_string(width);
    }
};

} // namespace ddsc

#endif // DDSC_CORE_CONFIG_HH
