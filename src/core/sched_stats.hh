/**
 * @file
 * Per-run statistics produced by the limit scheduler.
 */

#ifndef DDSC_CORE_SCHED_STATS_HH
#define DDSC_CORE_SCHED_STATS_HH

#include <array>
#include <cstdint>

#include "addrpred/addrpred.hh"
#include "collapse/collapse_stats.hh"
#include "support/stats.hh"

namespace ddsc
{

/**
 * Everything one simulation run reports.
 */
struct SchedStats
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    std::uint64_t condBranches = 0;
    std::uint64_t mispredicts = 0;

    /** Non-conditional CTIs predicted when realCtiPrediction is on
     *  (returns via the RAS, indirect jumps via the target buffer). */
    std::uint64_t ctiPredictions = 0;
    std::uint64_t ctiMispredicts = 0;

    std::uint64_t loads = 0;
    std::array<std::uint64_t, kNumLoadClasses> loadClasses = {};

    /** Producers skipped by node elimination (Figure 1.f extension). */
    std::uint64_t eliminatedInstructions = 0;

    /** Value-prediction extension (Figure 1.d): loads whose *value*
     *  was delivered speculatively / predicted confidently but wrong. */
    std::uint64_t valuePredHits = 0;
    std::uint64_t valuePredWrong = 0;

    /** Memory-dependence speculation (MemDepMode::Predicted; all zero
     *  under the paper's perfect disambiguation).  Predicted = loads
     *  the predictor marked dependent; false = predicted dependent
     *  with no true producer (charged a conservative arc to the
     *  youngest store); squashes = loads that issued past a store they
     *  truly depended on and paid memSquashPenalty. */
    std::uint64_t memDepPredictedDeps = 0;
    std::uint64_t memDepFalseDeps = 0;
    std::uint64_t memDepSquashes = 0;

    CollapseStats collapse;

    /** Instructions issued per cycle (key = count, including zero). */
    Histogram issuedPerCycle;

    /**
     * Host wall-clock nanoseconds spent inside LimitScheduler::run for
     * this cell.  Purely observational: it makes the parallel engine's
     * speedup measurable (sum of cell times vs. elapsed time) and is
     * the one field excluded from serial-vs-parallel bit-identity.
     */
    std::uint64_t wallNanos = 0;

    /** Fraction of cycles with no issue at all. */
    double
    pctIdleCycles() const
    {
        return issuedPerCycle.samples() == 0 ? 0.0
            : percent(static_cast<double>(issuedPerCycle.count(0)),
                      static_cast<double>(issuedPerCycle.samples()));
    }

    /** Instructions per cycle. */
    double
    ipc() const
    {
        return cycles == 0 ? 0.0
            : static_cast<double>(instructions) /
              static_cast<double>(cycles);
    }

    /** Conditional-branch prediction accuracy in percent (Table 2). */
    double
    branchAccuracy() const
    {
        return condBranches == 0 ? 0.0
            : percent(static_cast<double>(condBranches - mispredicts),
                      static_cast<double>(condBranches));
    }

    /** Percentage of dynamic loads in a class (Tables 3 and 4). */
    double
    loadClassPct(LoadClass c) const
    {
        return loads == 0 ? 0.0
            : percent(static_cast<double>(
                          loadClasses[static_cast<unsigned>(c)]),
                      static_cast<double>(loads));
    }

    /** Percentage of instructions eliminated (extension study). */
    double
    pctEliminated() const
    {
        return instructions == 0 ? 0.0
            : percent(static_cast<double>(eliminatedInstructions),
                      static_cast<double>(instructions));
    }

    /** Percentage of instructions collapsed (Figure 8). */
    double
    pctCollapsed() const
    {
        return instructions == 0 ? 0.0
            : percent(static_cast<double>(
                          collapse.collapsedInstructions()),
                      static_cast<double>(instructions));
    }
};

/**
 * FNV-1a digest over every deterministic field of @p s — everything
 * except wallNanos, the sole field allowed to differ between runs that
 * simulated identically.  The engine-equivalence oracles (bench_sched
 * cross-checks, batched_equiv_test) compare runs by this value.
 */
std::uint64_t digestSchedStats(const SchedStats &s);

} // namespace ddsc

#endif // DDSC_CORE_SCHED_STATS_HH
