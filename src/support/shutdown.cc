#include "shutdown.hh"

#include <atomic>
#include <csignal>

#include <fcntl.h>
#include <unistd.h>

#include "support/logging.hh"

namespace ddsc::support
{

namespace
{

std::atomic<bool> g_requested{false};
std::atomic<int> g_signal{0};
int g_pipe[2] = {-1, -1};
bool g_installed = false;

extern "C" void
shutdownHandler(int signo)
{
    g_signal.store(signo, std::memory_order_relaxed);
    g_requested.store(true, std::memory_order_release);
    if (g_pipe[1] != -1) {
        const char byte = 1;
        // The result is deliberately ignored: a full pipe still means
        // the previous wake-up byte is unread, so pollers will wake.
        [[maybe_unused]] ssize_t n = ::write(g_pipe[1], &byte, 1);
    }
}

} // anonymous namespace

void
installShutdownHandler()
{
    if (g_installed)
        return;
    if (::pipe(g_pipe) != 0)
        ddsc_fatal("cannot create the shutdown self-pipe");
    ::fcntl(g_pipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(g_pipe[1], F_SETFL, O_NONBLOCK);
    ::fcntl(g_pipe[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(g_pipe[1], F_SETFD, FD_CLOEXEC);

    struct sigaction sa = {};
    sa.sa_handler = shutdownHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;    // no SA_RESTART: blocking syscalls return EINTR
    if (::sigaction(SIGINT, &sa, nullptr) != 0 ||
        ::sigaction(SIGTERM, &sa, nullptr) != 0) {
        ddsc_fatal("cannot install the SIGINT/SIGTERM handler");
    }
    g_installed = true;
}

bool
shutdownRequested()
{
    return g_requested.load(std::memory_order_acquire);
}

int
shutdownSignal()
{
    return g_signal.load(std::memory_order_relaxed);
}

int
shutdownFd()
{
    return g_pipe[0];
}

void
requestShutdown()
{
    shutdownHandler(0);
}

void
resetShutdownForTest()
{
    g_requested.store(false, std::memory_order_release);
    g_signal.store(0, std::memory_order_relaxed);
    if (g_pipe[0] != -1) {
        char drain[16];
        while (::read(g_pipe[0], drain, sizeof drain) > 0) {
        }
    }
}

void
resetShutdownAfterFork()
{
    // Same mechanics as the test reset, under the name the supervisor
    // actually means: the pipe object is shared across fork(), so a
    // byte written in the parent's (or a dead sibling's) handler must
    // not read as "drain now" to a newborn generation.  After fork
    // there is exactly one thread, so this is race-free.
    resetShutdownForTest();
}

} // namespace ddsc::support
