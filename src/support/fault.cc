#include "fault.hh"

#ifndef DDSC_NO_FAULT_INJECTION

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>

#include "support/logging.hh"

namespace ddsc::support
{

namespace
{

struct FaultState
{
    std::mutex mutex;
    std::string spec;       ///< as armed, for faultArmed()
    std::string point;
    std::string tag;        ///< tag spec; empty for nth specs
    std::uint64_t nth = 0;  ///< nth spec; 0 for tag specs
    std::uint64_t hits = 0; ///< hits of the armed point so far
    bool fired = false;     ///< nth specs fire exactly once
    bool envChecked = false;
};

FaultState &
state()
{
    static FaultState s;
    return s;
}

/** Fast path: avoids the mutex entirely while nothing is armed. */
std::atomic<bool> g_armed{false};
std::atomic<bool> g_envPending{true};

/** Parse "point:value" into @p s; returns false on malformed input. */
bool
parseSpec(const std::string &spec, FaultState &s)
{
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == spec.size()) {
        return false;
    }
    s.point = spec.substr(0, colon);
    const std::string value = spec.substr(colon + 1);
    bool numeric = true;
    for (const char c : value) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            numeric = false;
    }
    if (numeric) {
        s.nth = std::strtoull(value.c_str(), nullptr, 10);
        if (s.nth == 0)
            return false;   // "fire on the 0th hit" is meaningless
        s.tag.clear();
    } else {
        s.tag = value;
        s.nth = 0;
    }
    s.spec = spec;
    s.hits = 0;
    s.fired = false;
    return true;
}

/** Arm from $DDSC_FAULT the first time anyone asks. */
void
armFromEnvLocked(FaultState &s)
{
    if (s.envChecked)
        return;
    s.envChecked = true;
    const char *env = std::getenv("DDSC_FAULT");
    if (!env || env[0] == '\0')
        return;
    if (!parseSpec(env, s)) {
        warn("ignoring malformed DDSC_FAULT='%s' "
             "(want <point>:<nth> or <point>:<tag>)", env);
        return;
    }
    g_armed.store(true, std::memory_order_release);
}

} // anonymous namespace

bool
faultShouldFire(const char *point, const char *tag)
{
    if (g_envPending.load(std::memory_order_acquire)) {
        FaultState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        armFromEnvLocked(s);
        g_envPending.store(false, std::memory_order_release);
    }
    if (!g_armed.load(std::memory_order_acquire))
        return false;

    FaultState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.point != point)
        return false;
    if (!s.tag.empty())
        return tag != nullptr && s.tag == tag;
    if (s.fired)
        return false;
    if (++s.hits < s.nth)
        return false;
    s.fired = true;
    return true;
}

void
faultArm(const std::string &spec)
{
    FaultState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.envChecked = true;    // explicit arming overrides $DDSC_FAULT
    g_envPending.store(false, std::memory_order_release);
    if (spec.empty()) {
        s.spec.clear();
        s.point.clear();
        s.tag.clear();
        s.nth = 0;
        s.hits = 0;
        s.fired = false;
        g_armed.store(false, std::memory_order_release);
        return;
    }
    if (!parseSpec(spec, s)) {
        warn("ignoring malformed fault spec '%s' "
             "(want <point>:<nth> or <point>:<tag>)", spec.c_str());
        g_armed.store(false, std::memory_order_release);
        return;
    }
    g_armed.store(true, std::memory_order_release);
}

std::string
faultArmed()
{
    FaultState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return g_armed.load(std::memory_order_acquire) ? s.spec
                                                   : std::string();
}

} // namespace ddsc::support

#endif // DDSC_NO_FAULT_INJECTION
