/**
 * @file
 * Deterministic fault injection for the durability layer.
 *
 * Error-handling code that never runs is broken code waiting for its
 * first production outage, so the crash-safety paths (torn cache
 * writes, truncated traces, failing matrix cells) carry named
 * injection points that tests and CI can arm:
 *
 *   point                   where it fires
 *   ----------------------  -------------------------------------------
 *   trace-short-write       TraceFileWriter::emit (v3) / block flush
 *                           (v4), before the fwrite
 *   trace-short-read        TraceFileSource::next, before the fread
 *   trace-close-fail        TraceFileWriter::close, at the final
 *                           fflush — models ENOSPC/EIO surfacing only
 *                           when buffered bytes hit the disk
 *   cell-throw              the experiment prefetch worker / sim sweep,
 *                           before running one matrix cell
 *   checkpoint-torn-write   ResultStore::append: writes a partial
 *                           record then dies, simulating a mid-write
 *                           kill
 *   cell-stall              same hook as cell-throw, but sleeps the
 *                           worker 400 ms instead of throwing — the
 *                           serving deadline/single-flight tests use
 *                           it to hold a cell in flight
 *   net-torn-frame          net::writeFrame: sends only a prefix of
 *                           the frame and reports failure, as if the
 *                           writer died mid-send
 *   net-disconnect          ddsc-served session, before writing a
 *                           MatrixReply: closes the connection
 *                           instead (mid-response hang-up)
 *
 * Arming is driven by $DDSC_FAULT or faultArm(), with two spec forms:
 *
 *   DDSC_FAULT=<point>:<nth>   fire exactly once, on the nth hit of
 *                              the point (1-based).  Models a
 *                              *transient* fault: a retry succeeds.
 *   DDSC_FAULT=<point>:<tag>   fire on every hit whose tag matches
 *                              (e.g. cell-throw:li/D/16).  Models a
 *                              *persistent* fault: retries keep
 *                              failing and the cell is quarantined.
 *
 * Both forms are deterministic: the nth counter observes hits in the
 * program's own order (use --jobs 1 when which-hit-is-nth matters),
 * and tag matching does not depend on scheduling at all.
 *
 * Release deployments configure with -DDDSC_FAULT_INJECTION=OFF, which
 * defines DDSC_NO_FAULT_INJECTION and compiles every hook to a
 * constant false that the optimizer removes.
 */

#ifndef DDSC_SUPPORT_FAULT_HH
#define DDSC_SUPPORT_FAULT_HH

#include <string>

namespace ddsc::support
{

#ifndef DDSC_NO_FAULT_INJECTION

/**
 * True when the armed fault matches @p point (and @p tag, for tag
 * specs) and should fire now.  Thread-safe; unarmed calls are a single
 * relaxed atomic load.
 */
bool faultShouldFire(const char *point, const char *tag = nullptr);

/** Arm from a spec ("point:nth" or "point:tag"); "" disarms.  Resets
 *  the hit counter.  Malformed specs warn and disarm. */
void faultArm(const std::string &spec);

/** The currently armed spec ("" when disarmed). */
std::string faultArmed();

#else

inline bool
faultShouldFire(const char *, const char * = nullptr)
{
    return false;
}

inline void faultArm(const std::string &) {}
inline std::string faultArmed() { return {}; }

#endif // DDSC_NO_FAULT_INJECTION

} // namespace ddsc::support

#endif // DDSC_SUPPORT_FAULT_HH
