/**
 * @file
 * Plain-text table formatting for the benchmark harness.
 *
 * Every bench binary reproduces one table or figure of the paper; this
 * formatter keeps their output uniform and diffable.
 */

#ifndef DDSC_SUPPORT_TABLE_HH
#define DDSC_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace ddsc
{

/**
 * A simple column-aligned text table.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

    /** Format a double with @p digits fraction digits. */
    static std::string num(double value, int digits = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ddsc

#endif // DDSC_SUPPORT_TABLE_HH
