#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ddsc
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    // Column count is the widest row seen.
    std::size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> widths(cols, 0);
    auto grow = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string cell = i < r.size() ? r[i] : "";
            out << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 < cols)
                out << "  ";
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w;
        out << std::string(total + 2 * (cols - 1), '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

std::string
TextTable::num(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return buf;
}

} // namespace ddsc
