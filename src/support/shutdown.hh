/**
 * @file
 * Cooperative SIGINT/SIGTERM handling.
 *
 * A raw Ctrl-C kills a sweep wherever it happens to be — possibly in
 * the middle of a result-store fwrite, leaving a torn record for the
 * recovery path to discard.  installShutdownHandler() replaces the
 * default disposition with a handler that only sets a flag (and writes
 * one byte to a self-pipe so pollers wake); the interesting work all
 * happens at well-defined *checkpoints* on normal control flow:
 *
 *  - ExperimentDriver workers skip not-yet-started cells when the
 *    driver was marked interruptible, so prefetch() returns promptly
 *    with every finished cell already flushed to the attached store.
 *  - ddsc-matrix / ddsc-sim notice the flag after their sweep, report
 *    what was checkpointed, and exit 128+signo.
 *  - ddsc-served uses the pollable fd to leave its accept loop and
 *    drain: finish in-flight cells, flush the store, refuse new
 *    connections.
 *
 * Everything the handler itself does is async-signal-safe (a store to
 * a lock-free atomic and a write() to a pipe).  requestShutdown() sets
 * the same flag from normal code, which is what the tests use to make
 * interruption deterministic.
 */

#ifndef DDSC_SUPPORT_SHUTDOWN_HH
#define DDSC_SUPPORT_SHUTDOWN_HH

namespace ddsc::support
{

/**
 * Install the SIGINT/SIGTERM handler (idempotent).  Must be called
 * from the main thread before any worker threads exist for the
 * classic-unix signal semantics to be predictable.
 */
void installShutdownHandler();

/** True once a shutdown signal arrived (or requestShutdown() ran). */
bool shutdownRequested();

/** The signal that triggered shutdown (0 when none, or when it was
 *  requestShutdown()). */
int shutdownSignal();

/**
 * Readable end of the self-pipe: becomes readable when shutdown is
 * requested, so event loops can poll() it alongside their sockets.
 * Valid after installShutdownHandler(); -1 before.
 */
int shutdownFd();

/** Trip the flag from normal code (tests, programmatic drain). */
void requestShutdown();

/** Reset the flag (tests only; not signal-safe). */
void resetShutdownForTest();

/**
 * Start a forked child with a clean slate: clear the flag and drain
 * any wake-up byte a pre-fork signal left in the (shared) self-pipe,
 * so a supervised server generation does not inherit its predecessor's
 * shutdown and drain at birth.  Call in the child, before serving.
 */
void resetShutdownAfterFork();

} // namespace ddsc::support

#endif // DDSC_SUPPORT_SHUTDOWN_HH
