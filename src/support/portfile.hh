/**
 * @file
 * Atomic one-line runtime files (port files, pid files).
 *
 * A port file is a rendezvous: the server writes its bound port once
 * the listener is live, and polling clients treat a non-empty file as
 * the ready signal.  The obvious fopen("w")/fprintf implementation is
 * wrong twice over: the open truncates in place, so a concurrent
 * reader can observe an *empty* file between the truncate and the
 * write (a supervised restart rewrites the file on every generation,
 * so the window recurs forever), and unchecked fflush/fclose can leave
 * a torn line behind on a full disk that readers then parse as port 0
 * or garbage.
 *
 * writeOneLineAtomic() closes both holes: the line is written to a
 * temporary file in the same directory, flushed and closed with every
 * result checked, then rename(2)d over the destination.  Readers see
 * either the complete old line or the complete new line, never an
 * empty or partial file.
 *
 * readPortFile() is the tolerant reader every polling client shares:
 * missing, empty, or malformed files read as 0 ("not known yet"),
 * which retry policies treat as a transient transport failure rather
 * than an exit.
 */

#ifndef DDSC_SUPPORT_PORTFILE_HH
#define DDSC_SUPPORT_PORTFILE_HH

#include <cstdint>
#include <string>

namespace ddsc::support
{

/**
 * Atomically replace @p path with one line containing @p value.
 * Returns false (with @p err describing the failed step) on any
 * error; a failure never leaves a torn or empty file at @p path —
 * at worst a stale temporary next to it.
 */
bool writeOneLineAtomic(const std::string &path,
                        unsigned long long value,
                        std::string *err = nullptr);

/** Parse a one-line port file.  0 when the file is missing, empty,
 *  malformed, or out of range — all transient states while a server
 *  generation is (re)starting. */
std::uint16_t readPortFile(const std::string &path);

/** Best-effort unlink for stale pid/port files on clean shutdown
 *  (missing file is fine; other errors are ignored — the file is
 *  advisory, and the process is exiting). */
void removeRuntimeFile(const std::string &path);

} // namespace ddsc::support

#endif // DDSC_SUPPORT_PORTFILE_HH
