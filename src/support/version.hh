/**
 * @file
 * The single source of truth for every persistent-format and protocol
 * version in ddsc.
 *
 * A client, a server, and an on-disk cache can each be built from a
 * different checkout, and a mismatch between any pair must be
 * diagnosable from the command line (`<tool> --version`) and at
 * connection time (the ddsc-served Hello handshake).  Collecting the
 * numbers here keeps the diagnosis trustworthy: the trace reader, the
 * result store, and the wire protocol all consume these constants, so
 * the banner can never drift from what the code actually writes.
 *
 *   kTraceFormat        DDSCTRC header version written by
 *                       TraceFileWriter (readers also accept
 *                       kTraceLegacyFormat).
 *   kStoreSchema        ResultStore record-payload schema
 *                       (ResultStore::kSchema aliases it).
 *   kFingerprintSchema  layout of MachineConfig::fingerprint(); bump
 *                       it whenever a field is added, removed, or
 *                       reordered there (kFingerprintFields pins the
 *                       field count in the test suite).
 *   kProtocol           ddsc-served wire protocol (src/net/).
 */

#ifndef DDSC_SUPPORT_VERSION_HH
#define DDSC_SUPPORT_VERSION_HH

#include <cstdint>
#include <cstdio>

namespace ddsc::support::version
{

constexpr std::uint32_t kTraceFormat = 4;       ///< v4: mmap'able blocks
constexpr std::uint32_t kTraceStreamFormat = 3; ///< v3 added the CRC footer
constexpr std::uint32_t kTraceLegacyFormat = 2; ///< v2 added memValue

constexpr std::uint32_t kStoreSchema = 2;   ///< v2 added mem-dep
                                            ///< speculation counters

constexpr std::uint32_t kFingerprintSchema = 2; ///< v2 added the
                                                ///< speculation-module knobs
/** '|'-separated fields in MachineConfig::fingerprint(). */
constexpr unsigned kFingerprintFields = 28;

constexpr std::uint32_t kProtocol = 5;  ///< v5: deadlineMs became a
                                        ///< decremented end-to-end
                                        ///< budget, Cancelled replies,
                                        ///< retryAfterMs on sheds

/** The `--version` banner every CLI tool prints. */
inline void
print(const char *tool)
{
    std::printf("%s (ddsc)\n", tool);
    std::printf("trace format      : DDSCTRC v%u (reads v%u, v%u, "
                "and v%u)\n",
                kTraceFormat, kTraceLegacyFormat, kTraceStreamFormat,
                kTraceFormat);
    std::printf("result store      : DDSCRES1 schema %u\n", kStoreSchema);
    std::printf("fingerprint schema: %u (%u fields)\n",
                kFingerprintSchema, kFingerprintFields);
    std::printf("wire protocol     : DDSN v%u\n", kProtocol);
}

} // namespace ddsc::support::version

#endif // DDSC_SUPPORT_VERSION_HH
