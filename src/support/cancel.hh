/**
 * @file
 * Cooperative cancellation: a cheap, hierarchical token threaded from
 * the serving session down through the experiment driver into the
 * scheduler engines.
 *
 * A CancelToken is a small shared handle.  It cancels for one of
 * three reasons, checked in this order:
 *
 *  - someone called cancel() on it (explicit — watchdog, shutdown);
 *  - its deadline passed (a token made with withDeadline());
 *  - an ancestor cancelled (child() chains tokens, so cancelling a
 *    request fans out to every per-cell flight it spawned without the
 *    flights knowing about each other).
 *
 * The check is designed to sit inside simulation loops: a relaxed
 * atomic load on the hot path, a steady_clock read only when a
 * deadline exists, and the parent chain is typically one deep.
 * Engines poll at chunk / window-scan granularity (order 10^4
 * records), so the cancellation latency bound is one chunk.
 *
 * A default-constructed token is *null*: valid() is false and it
 * never cancels.  That keeps every existing call site working
 * unchanged — passing nothing means "run to completion", exactly the
 * pre-cancellation behaviour.
 *
 * Unwinding is by exception so partial back-end state is discarded by
 * ordinary destructors:
 *
 *  - CancelledError — the generic unwind, thrown by throwIfCancelled;
 *  - CellCancelled — the typed, cell-scoped form the driver and
 *    registry speak.  Distinct from CellStalled (retryable wait
 *    failure) and CellQuarantined (known-bad cell): a cancelled cell
 *    is *not* quarantined and *not* retried server-side; it simply
 *    re-runs cleanly on the next request that wants it.
 */

#ifndef DDSC_SUPPORT_CANCEL_HH
#define DDSC_SUPPORT_CANCEL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

namespace ddsc
{
namespace support
{

/** Thrown when a cancelled token is observed; reason() says why. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &reason)
        : std::runtime_error(reason)
    {
    }
};

class CancelToken
{
  public:
    /** The null token: never cancels, valid() == false. */
    CancelToken() = default;

    /** A live token with no deadline (explicit cancel only). */
    static CancelToken make();

    /** A live token that self-cancels once @p deadline_ms elapses.
     *  deadline_ms == 0 means no deadline (same as make()). */
    static CancelToken withDeadline(std::uint64_t deadline_ms);

    /** A child token: cancels when this token does, or on its own
     *  cancel()/deadline.  Calling child() on a null token yields a
     *  fresh parentless token, so call sites need no special case. */
    CancelToken child() const;
    CancelToken childWithDeadline(std::uint64_t deadline_ms) const;

    /** Explicitly cancel this token (and so every descendant).
     *  The first reason wins; later calls are no-ops. */
    void cancel(const std::string &reason) const;

    /** True iff this token (or an ancestor) has cancelled. */
    bool cancelled() const;

    /** Why the token cancelled; empty while it has not. */
    std::string reason() const;

    /** Milliseconds until the deadline; UINT64_MAX when no deadline
     *  binds (here or on any ancestor); 0 once expired. */
    std::uint64_t remainingMs() const;

    /** False for the default-constructed null token. */
    bool valid() const { return state_ != nullptr; }

    /** Throw CancelledError iff cancelled. */
    void throwIfCancelled() const;

  private:
    struct State
    {
        /** mutable: tokens are shared as pointer-to-const (children
         *  must never rewrite a parent's deadline or chain), but
         *  cancelling through that const view is the whole point. */
        mutable std::atomic<bool> cancelled{false};
        bool hasDeadline = false;
        std::chrono::steady_clock::time_point deadline{};
        std::shared_ptr<const State> parent;
        mutable std::mutex mutex;           ///< guards reason only
        mutable std::string reason;
    };

    explicit CancelToken(std::shared_ptr<const State> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<const State> state_;
};

} // namespace support

/**
 * A cell's computation was cancelled — by the caller's deadline, an
 * explicit request cancel, or the watchdog reclaiming a stalled
 * flight.  Not a failure of the cell itself: nothing is quarantined,
 * nothing is retried here, and the next request that wants the cell
 * re-runs it from scratch.
 */
class CellCancelled : public support::CancelledError
{
  public:
    CellCancelled(std::string cell_key, const std::string &reason)
        : support::CancelledError("cell " + cell_key +
                                  " cancelled: " + reason),
          key(std::move(cell_key))
    {
    }

    std::string key;
};

} // namespace ddsc

#endif // DDSC_SUPPORT_CANCEL_HH
