#include "stats.hh"

#include "logging.hh"

namespace ddsc
{

double
harmonicMean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double inv_sum = 0.0;
    for (double v : values) {
        ddsc_assert(v > 0.0, "harmonic mean requires positive values");
        inv_sum += 1.0 / v;
    }
    return static_cast<double>(values.size()) / inv_sum;
}

double
arithmeticMean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
percent(double part, double whole)
{
    return whole == 0.0 ? 0.0 : 100.0 * part / whole;
}

void
Histogram::add(std::uint64_t key, std::uint64_t count)
{
    bins_[key] += count;
    samples_ += count;
}

std::uint64_t
Histogram::count(std::uint64_t key) const
{
    auto it = bins_.find(key);
    return it == bins_.end() ? 0 : it->second;
}

double
Histogram::cumulativeAt(std::uint64_t key) const
{
    if (samples_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (const auto &[k, c] : bins_) {
        if (k > key)
            break;
        below += c;
    }
    return static_cast<double>(below) / static_cast<double>(samples_);
}

double
Histogram::mean() const
{
    if (samples_ == 0)
        return 0.0;
    double weighted = 0.0;
    for (const auto &[k, c] : bins_)
        weighted += static_cast<double>(k) * static_cast<double>(c);
    return weighted / static_cast<double>(samples_);
}

std::uint64_t
Histogram::maxKey() const
{
    return bins_.empty() ? 0 : bins_.rbegin()->first;
}

std::vector<double>
Histogram::bucketFractions(std::span<const std::uint64_t> edges) const
{
    ddsc_assert(!edges.empty(), "need at least one bucket edge");
    std::vector<double> fractions(edges.size(), 0.0);
    if (samples_ == 0)
        return fractions;
    for (const auto &[k, c] : bins_) {
        // Find the bucket whose [edge_i, edge_{i+1}) range contains k.
        std::size_t bucket = 0;
        for (std::size_t i = 0; i < edges.size(); ++i) {
            if (k >= edges[i])
                bucket = i;
        }
        fractions[bucket] += static_cast<double>(c);
    }
    for (double &f : fractions)
        f /= static_cast<double>(samples_);
    return fractions;
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[k, c] : other.bins_)
        bins_[k] += c;
    samples_ += other.samples_;
}

void
Histogram::encode(std::string &out) const
{
    support::wire::putU64(out, static_cast<std::uint64_t>(bins_.size()));
    for (const auto &[k, c] : bins_) {
        support::wire::putU64(out, k);
        support::wire::putU64(out, c);
    }
}

bool
Histogram::decode(support::wire::Reader &in)
{
    bins_.clear();
    samples_ = 0;
    const std::uint64_t n = in.u64();
    for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
        const std::uint64_t key = in.u64();
        const std::uint64_t count = in.u64();
        bins_[key] = count;
        samples_ += count;
    }
    if (!in.ok()) {
        bins_.clear();
        samples_ = 0;
        return false;
    }
    return true;
}

} // namespace ddsc
