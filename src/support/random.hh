/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Simulation results must be reproducible run-to-run, so all stochastic
 * components (synthetic trace generators, property-test inputs) draw from
 * this explicitly-seeded generator rather than std::random_device.
 */

#ifndef DDSC_SUPPORT_RANDOM_HH
#define DDSC_SUPPORT_RANDOM_HH

#include <cstdint>

namespace ddsc
{

/**
 * xoshiro256** by Blackman & Vigna: small, fast, and high quality.
 */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * bound
        // which is irrelevant for simulation workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability @p p in [0,1]. */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) *
            (1.0 / 9007199254740992.0) < p;
    }

  private:
    std::uint64_t state_[4];
};

} // namespace ddsc

#endif // DDSC_SUPPORT_RANDOM_HH
