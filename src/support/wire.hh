/**
 * @file
 * Little-endian byte codec and CRC32 for the durability layer.
 *
 * The persistent result cache (src/sim/result_store.cc) and the
 * checksummed trace-file footer both need a tiny, dependency-free way
 * to serialize integers, strings, and maps into a byte buffer and to
 * detect torn or corrupted bytes afterwards.  Everything here is
 * header-only and deterministic: the same values always produce the
 * same bytes, so encoded records can be compared and checksummed.
 *
 * The Reader never throws and never reads out of bounds: any
 * out-of-range read latches ok() to false and yields zero values, so
 * decoding a truncated record degrades into one failed ok() check
 * instead of undefined behaviour.
 */

#ifndef DDSC_SUPPORT_WIRE_HH
#define DDSC_SUPPORT_WIRE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ddsc::support::wire
{

inline void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

inline void
putU32(std::string &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
putU64(std::string &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** u32 length prefix + raw bytes. */
inline void
putString(std::string &out, std::string_view s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s.data(), s.size());
}

/**
 * Bounds-checked sequential reader over an encoded buffer.  After any
 * failed read, ok() is false and every subsequent read returns zero.
 */
class Reader
{
  public:
    explicit Reader(std::string_view data) : data_(data) {}

    bool ok() const { return ok_; }
    std::size_t remaining() const { return data_.size() - pos_; }

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return static_cast<std::uint8_t>(data_[pos_ - 1]);
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(data_[pos_ - 4 + i]))
                 << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(data_[pos_ - 8 + i]))
                 << (8 * i);
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        if (!take(len))
            return {};
        return std::string(data_.substr(pos_ - len, len));
    }

  private:
    bool
    take(std::size_t n)
    {
        if (!ok_ || data_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    std::string_view data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/**
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib convention).
 * Chain calls by passing the previous return value as @p seed to
 * checksum data arriving in pieces.
 */
inline std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed = 0)
{
    static const std::array<std::uint32_t, 256> table = []() {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace ddsc::support::wire

#endif // DDSC_SUPPORT_WIRE_HH
