#include "cancel.hh"

#include <limits>

namespace ddsc
{
namespace support
{

CancelToken
CancelToken::make()
{
    return CancelToken(std::make_shared<State>());
}

CancelToken
CancelToken::withDeadline(std::uint64_t deadline_ms)
{
    auto state = std::make_shared<State>();
    if (deadline_ms != 0) {
        state->hasDeadline = true;
        state->deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    }
    return CancelToken(std::move(state));
}

CancelToken
CancelToken::child() const
{
    auto state = std::make_shared<State>();
    state->parent = state_;
    return CancelToken(std::move(state));
}

CancelToken
CancelToken::childWithDeadline(std::uint64_t deadline_ms) const
{
    auto state = std::make_shared<State>();
    state->parent = state_;
    if (deadline_ms != 0) {
        state->hasDeadline = true;
        state->deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    }
    return CancelToken(std::move(state));
}

void
CancelToken::cancel(const std::string &reason) const
{
    if (!state_)
        return;
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        if (state_->reason.empty())
            state_->reason = reason.empty() ? "cancelled" : reason;
    }
    // Release: the reason is written before the flag flips, so a
    // poller that sees cancelled() == true reads a complete reason.
    state_->cancelled.store(true, std::memory_order_release);
}

bool
CancelToken::cancelled() const
{
    for (const State *s = state_.get(); s != nullptr;
         s = s->parent.get()) {
        if (s->cancelled.load(std::memory_order_acquire))
            return true;
        if (s->hasDeadline &&
            std::chrono::steady_clock::now() >= s->deadline) {
            {
                std::lock_guard<std::mutex> lock(s->mutex);
                if (s->reason.empty())
                    s->reason = "deadline exceeded";
            }
            s->cancelled.store(true, std::memory_order_release);
            return true;
        }
    }
    return false;
}

std::string
CancelToken::reason() const
{
    for (const State *s = state_.get(); s != nullptr;
         s = s->parent.get()) {
        if (!s->cancelled.load(std::memory_order_acquire))
            continue;
        std::lock_guard<std::mutex> lock(s->mutex);
        if (!s->reason.empty())
            return s->reason;
    }
    return {};
}

std::uint64_t
CancelToken::remainingMs() const
{
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    const auto now = std::chrono::steady_clock::now();
    for (const State *s = state_.get(); s != nullptr;
         s = s->parent.get()) {
        if (!s->hasDeadline)
            continue;
        if (now >= s->deadline)
            return 0;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                s->deadline - now).count();
        best = std::min(best, static_cast<std::uint64_t>(left));
    }
    return best;
}

void
CancelToken::throwIfCancelled() const
{
    if (cancelled())
        throw CancelledError(reason());
}

} // namespace support
} // namespace ddsc
