#include "portfile.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unistd.h>

namespace ddsc::support
{

bool
writeOneLineAtomic(const std::string &path, unsigned long long value,
                   std::string *err)
{
    auto fail = [&](const char *step) {
        if (err) {
            *err = std::string(step) + " '" + path +
                   "': " + std::strerror(errno);
        }
        return false;
    };

    // Same directory as the destination so the rename cannot cross a
    // filesystem; pid-suffixed so concurrent writers (two generations
    // racing a restart) never clobber each other's temporary.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr)
        return fail("cannot create");
    const bool wrote = std::fprintf(f, "%llu\n", value) > 0 &&
                       std::fflush(f) == 0;
    // fclose result matters even after a good flush: it can surface
    // the deferred write error that makes the line torn on disk.
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        ::unlink(tmp.c_str());
        errno = errno != 0 ? errno : EIO;
        return fail("cannot write");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return fail("cannot publish");
    }
    return true;
}

std::uint16_t
readPortFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return 0;
    unsigned port = 0;
    const int n = std::fscanf(f, "%u", &port);
    std::fclose(f);
    if (n != 1 || port == 0 || port > 65535)
        return 0;
    return static_cast<std::uint16_t>(port);
}

void
removeRuntimeFile(const std::string &path)
{
    if (!path.empty())
        ::unlink(path.c_str());
}

} // namespace ddsc::support
