/**
 * @file
 * Saturating counters used throughout the predictors.
 */

#ifndef DDSC_SUPPORT_SAT_COUNTER_HH
#define DDSC_SUPPORT_SAT_COUNTER_HH

#include <cstdint>

#include "logging.hh"

namespace ddsc
{

/**
 * An n-bit saturating up/down counter.
 *
 * The counter saturates at [0, 2^bits - 1].  Arbitrary step sizes are
 * supported because the paper's address-prediction confidence counter
 * increments by 1 on a correct prediction but decrements by 2 on a wrong
 * one.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param bits Width of the counter in bits (1..16).
     * @param initial Initial value; must fit in @p bits.
     */
    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : max_((1u << bits) - 1), value_(initial)
    {
        ddsc_assert(bits >= 1 && bits <= 16, "bad counter width %u", bits);
        ddsc_assert(initial <= max_, "initial %u exceeds max %u",
                    initial, max_);
    }

    /** Current counter value. */
    unsigned value() const { return value_; }

    /** Saturating maximum. */
    unsigned max() const { return max_; }

    /** Increment by @p step, saturating at max. */
    void
    increment(unsigned step = 1)
    {
        value_ = (value_ + step > max_) ? max_ : value_ + step;
    }

    /** Decrement by @p step, saturating at zero. */
    void
    decrement(unsigned step = 1)
    {
        value_ = (value_ < step) ? 0 : value_ - step;
    }

    /** True when the counter is in the upper half of its range. */
    bool taken() const { return value_ > max_ / 2; }

    /** Reset to an explicit value. */
    void
    set(unsigned v)
    {
        ddsc_assert(v <= max_, "value %u exceeds max %u", v, max_);
        value_ = v;
    }

  private:
    unsigned max_ = 3;
    unsigned value_ = 0;
};

} // namespace ddsc

#endif // DDSC_SUPPORT_SAT_COUNTER_HH
