/**
 * @file
 * A small fixed-size thread pool used to parallelize the experiment
 * matrix (each (workload, config, width) cell is an independent
 * LimitScheduler run over an immutable trace).
 *
 * Design notes:
 *  - submit() hands back a std::future so callers can collect results
 *    and exceptions per task; post() is the fire-and-forget variant.
 *  - wait() drains the queue *and* all in-flight tasks, after which
 *    the pool is reusable (the test suite exercises reuse-after-drain
 *    explicitly).
 *  - parallelFor() is the deterministic fan-out helper the experiment
 *    driver builds on: indices are claimed from an atomic counter, and
 *    when tasks throw, the exception for the *lowest* index is
 *    rethrown so failures do not depend on scheduling order.
 */

#ifndef DDSC_SUPPORT_THREAD_POOL_HH
#define DDSC_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ddsc::support
{

/**
 * Fixed set of worker threads consuming a FIFO task queue.
 */
class ThreadPool
{
  public:
    /** @param threads 0 = defaultJobs() (env DDSC_JOBS or hardware). */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending tasks are still executed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue a fire-and-forget task. */
    void post(std::function<void()> task);

    /** Enqueue a task and get a future for its result / exception. */
    template <typename F>
    auto
    submit(F &&task) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        auto packaged = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(task));
        std::future<Result> future = packaged->get_future();
        post([packaged]() { (*packaged)(); });
        return future;
    }

    /** Block until the queue is empty and no task is running.  The
     *  pool stays usable afterwards. */
    void wait();

    /** max(1, std::thread::hardware_concurrency()). */
    static unsigned hardwareJobs();

    /** $DDSC_JOBS when set to a positive integer, else hardwareJobs().
     *  Malformed or zero values fall back to the hardware count. */
    static unsigned defaultJobs();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wakeWorkers_;
    std::condition_variable idle_;
    std::size_t active_ = 0;    ///< tasks currently executing
    bool stopping_ = false;
};

/**
 * Run body(0..n-1) across up to @p jobs threads and block until all
 * indices completed.  jobs <= 1 (or n <= 1) executes inline on the
 * caller.
 *
 * Exception-ordering contract: if one or more invocations throw, the
 * exception from the *lowest-throwing index* is rethrown — and only
 * after every index has either completed or thrown (no task is left
 * running when the rethrow happens).  The choice is independent of
 * thread scheduling: two concurrent throws at indices i < j always
 * surface i's exception, on every run, so a parallel sweep fails
 * deterministically and a caller that retries "the failing cell" is
 * always retrying the same one.  Exceptions from the other indices
 * are discarded; callers that must observe every failure (the
 * experiment driver's quarantine) catch inside @p body instead of
 * relying on the rethrow.  tests/thread_pool_test.cpp pins this
 * contract, including the two-workers-throw-concurrently case.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

} // namespace ddsc::support

#endif // DDSC_SUPPORT_THREAD_POOL_HH
