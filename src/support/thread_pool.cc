#include "thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <map>

#include "support/logging.hh"

namespace ddsc::support
{

unsigned
ThreadPool::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
ThreadPool::defaultJobs()
{
    const char *value = std::getenv("DDSC_JOBS");
    if (!value)
        return hardwareJobs();
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0' || parsed == 0) {
        warn("ignoring DDSC_JOBS='%s' (want a positive integer)", value);
        return hardwareJobs();
    }
    return static_cast<unsigned>(parsed);
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = threads == 0 ? defaultJobs() : threads;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wakeWorkers_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ddsc_assert(!stopping_, "post() on a stopping ThreadPool");
        queue_.push_back(std::move(task));
    }
    wakeWorkers_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this]() {
        return queue_.empty() && active_ == 0;
    });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeWorkers_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;     // stopping_ and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idle_.notify_all();
        }
    }
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex failures_mutex;
    std::map<std::size_t, std::exception_ptr> failures;

    auto drain = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                std::unique_lock<std::mutex> lock(failures_mutex);
                failures.emplace(i, std::current_exception());
            }
        }
    };

    {
        const unsigned pool_jobs = static_cast<unsigned>(
            std::min<std::size_t>(jobs, n));
        ThreadPool pool(pool_jobs);
        for (unsigned j = 0; j < pool_jobs; ++j)
            pool.post(drain);
        pool.wait();
    }

    if (!failures.empty())
        std::rethrow_exception(failures.begin()->second);
}

} // namespace ddsc::support
