/**
 * @file
 * Statistics helpers: means, percentages, and histograms.
 *
 * The paper summarizes per-benchmark IPC with the harmonic mean and
 * reports many distributions (collapse distance, load classes); these
 * small utilities keep that arithmetic in one audited place.
 */

#ifndef DDSC_SUPPORT_STATS_HH
#define DDSC_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "support/wire.hh"

namespace ddsc
{

/** Harmonic mean of strictly positive values; 0 for an empty span. */
double harmonicMean(std::span<const double> values);

/** Arithmetic mean; 0 for an empty span. */
double arithmeticMean(std::span<const double> values);

/** 100 * part / whole, 0 when whole == 0. */
double percent(double part, double whole);

/**
 * A histogram over unsigned integer keys with sparse storage.
 *
 * Used for collapse-distance and basic-block-size distributions.
 */
class Histogram
{
  public:
    /** Record one observation of @p key. */
    void add(std::uint64_t key, std::uint64_t count = 1);

    /** Total number of observations. */
    std::uint64_t samples() const { return samples_; }

    /** Count recorded for @p key (0 when absent). */
    std::uint64_t count(std::uint64_t key) const;

    /** Fraction (0..1) of samples with key <= @p key. */
    double cumulativeAt(std::uint64_t key) const;

    /** Mean of the observed keys. */
    double mean() const;

    /** Largest observed key; 0 when empty. */
    std::uint64_t maxKey() const;

    /**
     * Bucketize into [edges[0], edges[1]), ..., [edges[n-1], inf) and
     * return the per-bucket fraction of all samples.
     */
    std::vector<double> bucketFractions(
        std::span<const std::uint64_t> edges) const;

    /** Underlying sparse key->count map (sorted by key). */
    const std::map<std::uint64_t, std::uint64_t> &raw() const
    {
        return bins_;
    }

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /** Append a canonical byte encoding (persistent result cache). */
    void encode(std::string &out) const;

    /** Rebuild from an encoding; false (and *this reset) on truncated
     *  or inconsistent bytes. */
    bool decode(support::wire::Reader &in);

  private:
    std::map<std::uint64_t, std::uint64_t> bins_;
    std::uint64_t samples_ = 0;
};

} // namespace ddsc

#endif // DDSC_SUPPORT_STATS_HH
