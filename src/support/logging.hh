/**
 * @file
 * Error / status reporting in the gem5 style.
 *
 * panic()  -- an internal invariant was violated: a ddsc bug.  Aborts.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, malformed input).  Exits with code 1.
 * warn()   -- something is suspicious but the run can continue.
 * inform() -- plain status output.
 */

#ifndef DDSC_SUPPORT_LOGGING_HH
#define DDSC_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace ddsc
{

/** Print a formatted message tagged "panic" and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted message tagged "fatal" and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace ddsc

#define ddsc_panic(...) ::ddsc::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define ddsc_fatal(...) ::ddsc::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Check an internal invariant; panic with a message when it fails. */
#define ddsc_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::ddsc::panicImpl(__FILE__, __LINE__, "assertion '" #cond       \
                              "' failed: " __VA_ARGS__);                    \
    } while (0)

#endif // DDSC_SUPPORT_LOGGING_HH
