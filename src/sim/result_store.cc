#include "result_store.hh"

#include <cstring>
#include <filesystem>
#include <vector>

#include "support/fault.hh"
#include "support/logging.hh"
#include "support/wire.hh"

namespace ddsc
{

namespace
{

constexpr char kStoreMagic[8] = {'D', 'D', 'S', 'C', 'R', 'E', 'S', '1'};
constexpr std::size_t kHeaderBytes = 16;    // magic + schema u32 + pad u32
constexpr std::size_t kRecordHeaderBytes = 8;   // length u32 + crc u32
constexpr char kFileName[] = "results.ddsc";

} // anonymous namespace

void
encodeSchedStats(std::string &out, const SchedStats &stats)
{
    using support::wire::putU32;
    using support::wire::putU64;
    putU64(out, stats.instructions);
    putU64(out, stats.cycles);
    putU64(out, stats.condBranches);
    putU64(out, stats.mispredicts);
    putU64(out, stats.ctiPredictions);
    putU64(out, stats.ctiMispredicts);
    putU64(out, stats.loads);
    putU32(out, kNumLoadClasses);
    for (unsigned i = 0; i < kNumLoadClasses; ++i)
        putU64(out, stats.loadClasses[i]);
    putU64(out, stats.eliminatedInstructions);
    putU64(out, stats.valuePredHits);
    putU64(out, stats.valuePredWrong);
    // Schema 2: memory-dependence speculation counters.
    putU64(out, stats.memDepPredictedDeps);
    putU64(out, stats.memDepFalseDeps);
    putU64(out, stats.memDepSquashes);
    stats.collapse.encode(out);
    stats.issuedPerCycle.encode(out);
    putU64(out, stats.wallNanos);
}

bool
decodeSchedStats(support::wire::Reader &in, SchedStats &stats)
{
    stats = SchedStats();
    stats.instructions = in.u64();
    stats.cycles = in.u64();
    stats.condBranches = in.u64();
    stats.mispredicts = in.u64();
    stats.ctiPredictions = in.u64();
    stats.ctiMispredicts = in.u64();
    stats.loads = in.u64();
    if (in.u32() != kNumLoadClasses) {
        stats = SchedStats();
        return false;
    }
    for (unsigned i = 0; i < kNumLoadClasses; ++i)
        stats.loadClasses[i] = in.u64();
    stats.eliminatedInstructions = in.u64();
    stats.valuePredHits = in.u64();
    stats.valuePredWrong = in.u64();
    stats.memDepPredictedDeps = in.u64();
    stats.memDepFalseDeps = in.u64();
    stats.memDepSquashes = in.u64();
    if (!stats.collapse.decode(in) ||
        !stats.issuedPerCycle.decode(in)) {
        stats = SchedStats();
        return false;
    }
    stats.wallNanos = in.u64();
    if (!in.ok()) {
        stats = SchedStats();
        return false;
    }
    return true;
}

ResultStore::ResultStore(const std::string &dir) : dir_(dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        ddsc_fatal("cannot create cache directory '%s': %s",
                   dir_.c_str(), ec.message().c_str());
    }
    path_ = (fs::path(dir_) / kFileName).string();
    std::lock_guard<std::mutex> lock(mutex_);
    report_ = loadLocked();
}

ResultStore::~ResultStore()
{
    if (file_)
        std::fclose(file_);
}

void
ResultStore::writeHeaderLocked(std::FILE *file, const std::string &path)
    const
{
    std::string hdr;
    hdr.append(kStoreMagic, sizeof kStoreMagic);
    support::wire::putU32(hdr, kSchema);
    support::wire::putU32(hdr, 0);
    ddsc_assert(hdr.size() == kHeaderBytes, "header layout changed");
    if (std::fwrite(hdr.data(), 1, hdr.size(), file) != hdr.size() ||
        std::fflush(file) != 0) {
        ddsc_fatal("cannot write result-store header to '%s'",
                   path.c_str());
    }
}

StoreLoadReport
ResultStore::loadLocked()
{
    namespace fs = std::filesystem;
    StoreLoadReport report;

    std::string bytes;
    if (std::FILE *existing = std::fopen(path_.c_str(), "rb")) {
        char buf[1 << 16];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, existing)) > 0)
            bytes.append(buf, n);
        std::fclose(existing);
    }

    bool start_fresh = bytes.empty();
    if (!bytes.empty()) {
        if (bytes.size() < kHeaderBytes ||
            std::memcmp(bytes.data(), kStoreMagic,
                        sizeof kStoreMagic) != 0) {
            // Never treat a foreign file as ours: overwriting it could
            // destroy user data over a mistyped --cache-dir.
            ddsc_fatal("'%s' is not a ddsc result store; refusing to "
                       "overwrite it (remove the file or pick another "
                       "--cache-dir)", path_.c_str());
        }
        support::wire::Reader hdr(
            std::string_view(bytes).substr(sizeof kStoreMagic));
        const std::uint32_t schema = hdr.u32();
        if (schema != kSchema) {
            warn("result store '%s' has schema %u but this build "
                 "writes schema %u; discarding all cached cells",
                 path_.c_str(), schema, kSchema);
            report.schemaReset = true;
            report.note = "schema changed; cache discarded";
            start_fresh = true;
        }
    }

    if (start_fresh) {
        std::FILE *fresh = std::fopen(path_.c_str(), "wb");
        if (!fresh)
            ddsc_fatal("cannot create result store '%s'", path_.c_str());
        writeHeaderLocked(fresh, path_);
        std::fclose(fresh);
        file_ = std::fopen(path_.c_str(), "ab");
        if (!file_)
            ddsc_fatal("cannot open result store '%s' for appending",
                       path_.c_str());
        return report;
    }

    // Walk the records.  Appends are record-atomic-or-torn, so the
    // first bad record marks the start of the torn tail: everything
    // before it is intact, everything from it on is dropped.
    std::size_t pos = kHeaderBytes;
    std::size_t intact_end = pos;
    while (pos < bytes.size()) {
        support::wire::Reader rec_hdr(
            std::string_view(bytes).substr(pos));
        if (bytes.size() - pos < kRecordHeaderBytes) {
            ++report.discarded;
            break;
        }
        const std::uint32_t len = rec_hdr.u32();
        const std::uint32_t crc = rec_hdr.u32();
        if (bytes.size() - pos - kRecordHeaderBytes < len) {
            ++report.discarded;
            break;
        }
        const std::string_view payload =
            std::string_view(bytes).substr(pos + kRecordHeaderBytes, len);
        if (support::wire::crc32(payload.data(), payload.size()) != crc) {
            ++report.discarded;
            break;
        }
        support::wire::Reader in(payload);
        std::string key = in.str();
        Entry entry;
        entry.fingerprint = in.str();
        entry.traceDigest = in.u64();
        if (!decodeSchedStats(in, entry.stats) || in.remaining() != 0) {
            ++report.discarded;
            break;
        }
        cells_[std::move(key)] = std::move(entry);
        pos += kRecordHeaderBytes + len;
        intact_end = pos;
    }
    report.loaded = cells_.size();
    if (report.discarded > 0) {
        report.note =
            "discarded a torn record at byte offset " +
            std::to_string(intact_end) + " of " +
            std::to_string(bytes.size()) +
            " (interrupted write); intact cells were kept";
        warn("result store '%s': %s", path_.c_str(),
             report.note.c_str());
        // Drop the torn tail on disk too, so the next append starts at
        // a record boundary.
        std::error_code ec;
        fs::resize_file(path_, intact_end, ec);
        if (ec) {
            ddsc_fatal("cannot truncate torn result store '%s': %s",
                       path_.c_str(), ec.message().c_str());
        }
    }

    file_ = std::fopen(path_.c_str(), "ab");
    if (!file_)
        ddsc_fatal("cannot open result store '%s' for appending",
                   path_.c_str());
    return report;
}

const SchedStats *
ResultStore::lookup(const std::string &key,
                    const std::string &fingerprint,
                    std::uint64_t trace_digest)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cells_.find(key);
    if (it == cells_.end())
        return nullptr;
    if (it->second.fingerprint != fingerprint) {
        warn("result store '%s': cached cell '%s' was produced by a "
             "different machine configuration; re-simulating",
             path_.c_str(), key.c_str());
        cells_.erase(it);
        return nullptr;
    }
    if (it->second.traceDigest != trace_digest) {
        warn("result store '%s': cached cell '%s' was produced from a "
             "different trace (digest changed); re-simulating",
             path_.c_str(), key.c_str());
        cells_.erase(it);
        return nullptr;
    }
    return &it->second.stats;
}

bool
ResultStore::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.find(key) != cells_.end();
}

void
ResultStore::appendRecordLocked(const std::string &key,
                                const Entry &entry)
{
    std::string payload;
    support::wire::putString(payload, key);
    support::wire::putString(payload, entry.fingerprint);
    support::wire::putU64(payload, entry.traceDigest);
    encodeSchedStats(payload, entry.stats);

    std::string rec;
    support::wire::putU32(rec,
                          static_cast<std::uint32_t>(payload.size()));
    support::wire::putU32(
        rec, support::wire::crc32(payload.data(), payload.size()));
    rec += payload;

    if (support::faultShouldFire("checkpoint-torn-write")) {
        // Simulate a kill mid-append: flush a partial record to disk,
        // then die the way a real SIGKILL would leave things.  The
        // resume run must detect and discard exactly this tail.
        const std::size_t torn = kRecordHeaderBytes + payload.size() / 2;
        std::fwrite(rec.data(), 1, torn, file_);
        std::fflush(file_);
        ddsc_fatal("injected fault: killed while appending '%s' to "
                   "result store '%s' (%zu of %zu bytes written)",
                   key.c_str(), path_.c_str(), torn, rec.size());
    }

    if (std::fwrite(rec.data(), 1, rec.size(), file_) != rec.size() ||
        std::fflush(file_) != 0) {
        ddsc_fatal("cannot append cell '%s' to result store '%s'",
                   key.c_str(), path_.c_str());
    }
}

void
ResultStore::append(const std::string &key,
                    const std::string &fingerprint,
                    std::uint64_t trace_digest, const SchedStats &stats)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry entry;
    entry.fingerprint = fingerprint;
    entry.traceDigest = trace_digest;
    entry.stats = stats;
    appendRecordLocked(key, entry);
    cells_[key] = std::move(entry);
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.size();
}

StoreMergeReport
ResultStore::absorb(const ResultStore &other)
{
    // scoped_lock's deadlock-avoidance covers two threads absorbing in
    // opposite directions; self-absorb would self-deadlock regardless.
    ddsc_assert(&other != this, "store cannot absorb itself");
    std::scoped_lock lock(mutex_, other.mutex_);
    StoreMergeReport report;
    for (const auto &[key, theirs] : other.cells_) {
        auto it = cells_.find(key);
        if (it == cells_.end()) {
            appendRecordLocked(key, theirs);
            cells_[key] = theirs;
            ++report.added;
            continue;
        }
        const Entry &ours = it->second;
        std::string ours_bytes, theirs_bytes;
        encodeSchedStats(ours_bytes, ours.stats);
        encodeSchedStats(theirs_bytes, theirs.stats);
        if (ours.fingerprint == theirs.fingerprint &&
            ours.traceDigest == theirs.traceDigest &&
            ours_bytes == theirs_bytes) {
            ++report.identical;
            continue;
        }
        warn("result store '%s': cell '%s' from '%s' disagrees with "
             "the entry already merged; keeping the existing entry",
             path_.c_str(), key.c_str(), other.path_.c_str());
        ++report.conflicts;
    }
    return report;
}

void
ResultStore::compact()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string tmp = path_ + ".tmp";
    std::FILE *out = std::fopen(tmp.c_str(), "wb");
    if (!out)
        ddsc_fatal("cannot create '%s' for compaction", tmp.c_str());
    writeHeaderLocked(out, tmp);

    // std::map iteration is key-sorted, so compaction is deterministic:
    // the same cells always produce the same file bytes.
    for (const auto &[key, entry] : cells_) {
        std::string payload;
        support::wire::putString(payload, key);
        support::wire::putString(payload, entry.fingerprint);
        support::wire::putU64(payload, entry.traceDigest);
        encodeSchedStats(payload, entry.stats);
        std::string rec;
        support::wire::putU32(
            rec, static_cast<std::uint32_t>(payload.size()));
        support::wire::putU32(
            rec, support::wire::crc32(payload.data(), payload.size()));
        rec += payload;
        if (std::fwrite(rec.data(), 1, rec.size(), out) != rec.size())
            ddsc_fatal("short write compacting result store to '%s'",
                       tmp.c_str());
    }
    if (std::fflush(out) != 0 || std::fclose(out) != 0)
        ddsc_fatal("cannot finish compacting result store to '%s'",
                   tmp.c_str());

    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        ddsc_fatal("cannot rename '%s' over '%s'", tmp.c_str(),
                   path_.c_str());
    file_ = std::fopen(path_.c_str(), "ab");
    if (!file_)
        ddsc_fatal("cannot reopen result store '%s' after compaction",
                   path_.c_str());
}

} // namespace ddsc
