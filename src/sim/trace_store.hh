/**
 * @file
 * Workload-trace ownership for the experiment driver.
 *
 * The store materializes each workload's trace exactly once and hands
 * it out as an immutable SharedTrace that any number of cells read
 * through private cursors.  Two concerns shape it:
 *
 *  - Concurrency: each workload has its own std::once_flag, so two
 *    sessions requesting *different* workloads build both VMs in
 *    parallel, while two requests for the *same* workload still share
 *    one build.  (The driver used to hold a single mutex across the
 *    whole VM run, serializing unrelated workloads and blocking
 *    everything else that touched the lock.)  The content digest is
 *    likewise computed exactly once per trace, under its own latch —
 *    racing callers no longer both pay the O(n) pass.
 *
 *  - Memory: with a spill directory configured, a freshly generated
 *    trace is written out as a DDSCTRC v4 file and served back as an
 *    mmap'd MappedTraceSource, so peak RSS is one workload's vector
 *    during generation instead of the whole corpus forever, and the
 *    residency manager can evict cold traces under --trace-budget-mb.
 *    An existing spill file is reused (VM output is deterministic)
 *    only when its header digest matches the fresh generation —
 *    a stale or foreign file is silently rewritten, never served.
 */

#ifndef DDSC_SIM_TRACE_STORE_HH
#define DDSC_SIM_TRACE_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/mapped.hh"
#include "trace/source.hh"
#include "workloads/workloads.hh"

namespace ddsc
{

class TraceStore
{
  public:
    TraceStore() = default;
    TraceStore(const TraceStore &) = delete;
    TraceStore &operator=(const TraceStore &) = delete;

    /** Set truncation and scale policy; call before the first get(). */
    void
    configure(std::uint64_t trace_limit, bool test_scale)
    {
        traceLimit_ = trace_limit;
        testScale_ = test_scale;
    }

    /**
     * Spill freshly generated traces to v4 files under @p dir
     * (created if missing) and serve them mmap'd.  "" restores pure
     * in-memory traces.  Affects only workloads not yet materialized.
     */
    void setSpillDir(const std::string &dir);

    /** Residency budget over the mapped traces (0 = unlimited). */
    void setBudgetBytes(std::uint64_t bytes);

    /** The trace for @p spec, built on first use (see file comment
     *  for the concurrency contract).  Valid for the store's
     *  lifetime. */
    const SharedTrace &get(const WorkloadSpec &spec);

    /** Content digest of get(spec), computed exactly once. */
    std::uint64_t digest(const WorkloadSpec &spec);

    /** LRU-touch @p trace before sweeping it (no-op for in-memory
     *  traces). */
    void touch(const SharedTrace &trace) { residency_.touch(trace); }

    TraceResidencyManager::Counters
    residency() const
    {
        return residency_.counters();
    }

  private:
    struct Slot
    {
        std::once_flag build;
        std::once_flag digestOnce;
        std::unique_ptr<const SharedTrace> trace;
        std::uint64_t digest = 0;
    };

    /** Find-or-create the slot for @p name.  The small map lock is
     *  held only for node lookup/insertion — std::map nodes are
     *  stable, so the returned reference outlives the lock and the
     *  expensive work happens under the slot's own once-latch. */
    Slot &slot(const std::string &name);

    std::unique_ptr<const SharedTrace>
    materialize(const WorkloadSpec &spec, Slot &s);

    std::uint64_t traceLimit_ = 0;
    bool testScale_ = false;
    std::string spillDir_;
    TraceResidencyManager residency_;
    mutable std::mutex mapMutex_;
    std::map<std::string, Slot> slots_;
};

} // namespace ddsc

#endif // DDSC_SIM_TRACE_STORE_HH
