#include "batched.hh"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/scheduler.hh"
#include "support/fault.hh"
#include "support/logging.hh"

namespace ddsc
{

namespace
{

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Same stall knob as the per-cell path ($DDSC_FAULT_STALL_MS). */
unsigned
faultStallMs()
{
    static const unsigned stall_ms = [] {
        const char *v = std::getenv("DDSC_FAULT_STALL_MS");
        if (v && std::isdigit(static_cast<unsigned char>(v[0])))
            return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        return 400u;
    }();
    return stall_ms;
}

} // anonymous namespace

BatchedGroupResult
runBatchedGroup(const SharedTrace &trace,
                const std::vector<MachineConfig> &configs,
                const std::vector<std::string> &keys,
                std::size_t chunk,
                const std::vector<support::CancelToken> &tokens)
{
    ddsc_assert(configs.size() == keys.size(),
                "batched group: %zu configs but %zu keys",
                configs.size(), keys.size());
    ddsc_assert(tokens.empty() || tokens.size() == configs.size(),
                "batched group: %zu configs but %zu cancel tokens",
                configs.size(), tokens.size());
    ddsc_assert(!configs.empty(), "batched group: no cells");
    ddsc_assert(chunk > 0, "batched group: zero chunk");
    const std::string fe_fp = configs.front().frontEndFingerprint();
    for (const MachineConfig &config : configs) {
        ddsc_assert(config.frontEndFingerprint() == fe_fp,
                    "batched group mixes front-end fingerprints "
                    "('%s' vs '%s')", fe_fp.c_str(),
                    config.frontEndFingerprint().c_str());
        ddsc_assert(!config.naiveEngine,
                    "batched group cannot run the naive engine");
    }

    BatchedGroupResult out;
    out.cells.resize(configs.size());

    // One back-end per cell.  `alive` drops a cell the moment its feed
    // throws; its siblings keep consuming the same batches untouched.
    std::vector<std::unique_ptr<LimitScheduler>> scheds;
    std::vector<char> alive(configs.size(), 1);
    std::vector<std::uint64_t> beNanos(configs.size(), 0);
    scheds.reserve(configs.size());
    for (const MachineConfig &config : configs)
        scheds.push_back(std::make_unique<LimitScheduler>(config));
    for (std::size_t i = 0; i < scheds.size(); ++i) {
        if (!tokens.empty())
            scheds[i]->setCancel(tokens[i]);
        scheds[i]->beginBatched();
    }

    SpecFrontEnd fe(configs.front());
    // The fingerprint does not cover collapsing (it is back-end-only
    // state), so a group can mix collapsing and plain cells; emit the
    // collapse-detection columns whenever any consumer needs them.
    bool any_collapsing = false;
    for (const MachineConfig &config : configs)
        any_collapsing = any_collapsing || config.collapsing;
    fe.setCollapseColumns(any_collapsing);
    FrontEndBatch batch;
    const std::unique_ptr<TraceSource> view = trace.cursor();

    const auto failCell = [&](std::size_t i, const char *what) {
        alive[i] = 0;
        scheds[i].reset();
        out.cells[i].ok = false;
        out.cells[i].error = what;
    };

    // A cancelled cell leaves the same way a failed one does — its
    // partial back-end state dies with the scheduler — but is flagged
    // so the caller neither retries nor quarantines it.
    const auto cancelCell = [&](std::size_t i, const std::string &why) {
        failCell(i, why.empty() ? "cancelled" : why.c_str());
        out.cells[i].cancelled = true;
    };

    const auto feedCell = [&](std::size_t i, bool finish) {
        if (!alive[i])
            return;
        // The chunk boundary is the cancellation latency bound: a
        // fired token stops this cell here, before another chunk of
        // back-end work, while the siblings keep consuming the pass.
        if (!tokens.empty() && tokens[i].valid() &&
            tokens[i].cancelled()) {
            cancelCell(i, tokens[i].reason());
            return;
        }
        const std::uint64_t start = nowNanos();
        try {
            // The same injection hooks as the per-cell path, checked
            // per feed so persistent ("cell-throw:<tag>") faults fire
            // mid-batch: the failure lands while sibling back-ends are
            // part-way through the very same front-end pass.
            if (support::faultShouldFire("cell-throw", keys[i].c_str()))
                throw std::runtime_error(
                    "injected fault: cell-throw at '" + keys[i] + "'");
            if (support::faultShouldFire("cell-stall", keys[i].c_str()))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(faultStallMs()));
            if (finish) {
                out.cells[i].stats = scheds[i]->finishBatched();
                out.cells[i].ok = true;
            } else {
                scheds[i]->feedBatched(batch);
            }
        } catch (const support::CancelledError &e) {
            // The back-end's own intra-chunk poll fired.
            cancelCell(i, e.what());
        } catch (const std::exception &e) {
            failCell(i, e.what());
        } catch (...) {
            failCell(i, "unknown exception");
        }
        beNanos[i] += nowNanos() - start;
    };

    const auto anyAlive = [&]() {
        for (const char a : alive)
            if (a)
                return true;
        return false;
    };

    std::uint64_t fe_nanos = 0;
    for (;;) {
        // Once every consumer is gone (cancelled or failed) the
        // front-end pass has no one to feed: stop decoding too,
        // instead of burning the worker on annotations nobody reads.
        if (!anyAlive())
            break;
        const std::uint64_t fill_start = nowNanos();
        const std::size_t filled = fe.fill(*view, batch, chunk);
        fe_nanos += nowNanos() - fill_start;
        if (filled == 0)
            break;
        for (std::size_t i = 0; i < configs.size(); ++i)
            feedCell(i, false);
    }
    for (std::size_t i = 0; i < configs.size(); ++i)
        feedCell(i, true);

    out.frontEndNanos = fe_nanos;
    out.trainCounts = fe.trainCounts();
    // Each cell's wall time is its own back-end work plus an equal
    // share of the single front-end pass: summing per-cell wallNanos
    // over a sweep still accounts every nanosecond exactly once.
    const std::uint64_t fe_share = fe_nanos / configs.size();
    for (std::size_t i = 0; i < configs.size(); ++i)
        if (out.cells[i].ok)
            out.cells[i].stats.wallNanos = beNanos[i] + fe_share;
    return out;
}

} // namespace ddsc
