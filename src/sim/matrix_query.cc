#include "matrix_query.hh"

#include <bit>
#include <cstdio>
#include <map>

#include "support/table.hh"

namespace ddsc
{

namespace
{

void
putF64(std::string &out, double v)
{
    support::wire::putU64(out, std::bit_cast<std::uint64_t>(v));
}

double
getF64(support::wire::Reader &in)
{
    return std::bit_cast<double>(in.u64());
}

/** Widths and quarantine lists ride length-prefixed; cap the counts
 *  so a corrupted prefix cannot become a giant allocation. */
constexpr std::uint32_t kMaxListLen = 4096;

} // anonymous namespace

void
encodeCellFailure(std::string &out, const CellFailure &f)
{
    support::wire::putString(out, f.key);
    support::wire::putString(out, f.message);
    support::wire::putU32(out, f.attempts);
}

bool
decodeCellFailure(support::wire::Reader &in, CellFailure &f)
{
    f.key = in.str();
    f.message = in.str();
    f.attempts = in.u32();
    return in.ok();
}

bool
MatrixQuery::validate(std::string *why) const
{
    auto fail = [&](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (set != "all" && set != "pc" && set != "npc")
        return fail("set must be all|pc|npc, not '" + set + "'");
    const std::string &known = MachineConfig::knownConfigs();
    if (configs.empty() || configs.size() > known.size())
        return fail("configs must name 1-" +
                    std::to_string(known.size()) + " of " + known);
    for (const char c : configs) {
        if (!MachineConfig::isKnownConfig(c))
            return fail(std::string("unknown configuration '") + c +
                        "'");
    }
    if (widths.empty() || widths.size() > 16)
        return fail("widths must name 1-16 issue widths");
    for (const unsigned w : widths) {
        if (w == 0 || w > 1u << 20)
            return fail("width " + std::to_string(w) +
                        " out of range");
    }
    if (metric != "ipc" && metric != "speedup" && metric != "collapsed")
        return fail("metric must be ipc|speedup|collapsed, not '" +
                    metric + "'");
    return true;
}

std::vector<const WorkloadSpec *>
MatrixQuery::workloads() const
{
    return set == "all" ? ExperimentDriver::everything()
                        : workloadSubset(set == "pc");
}

std::string
MatrixQuery::neededConfigs() const
{
    // Speedup is measured against the base machine at each width.
    std::string needed = configs;
    if (metric == "speedup" && needed.find('A') == std::string::npos)
        needed += 'A';
    return needed;
}

std::vector<ExperimentCell>
MatrixQuery::cells() const
{
    return ExperimentDriver::cellsFor(workloads(), neededConfigs(),
                                      widths);
}

void
MatrixQuery::encode(std::string &out) const
{
    using namespace support::wire;
    putString(out, set);
    putString(out, configs);
    putU32(out, static_cast<std::uint32_t>(widths.size()));
    for (const unsigned w : widths)
        putU32(out, w);
    putString(out, metric);
    putU64(out, deadlineMs);
}

bool
MatrixQuery::decode(support::wire::Reader &in)
{
    set = in.str();
    configs = in.str();
    const std::uint32_t n = in.u32();
    if (!in.ok() || n > kMaxListLen)
        return false;
    widths.clear();
    for (std::uint32_t i = 0; i < n; ++i)
        widths.push_back(in.u32());
    metric = in.str();
    deadlineMs = in.u64();
    return in.ok();
}

void
MatrixSummary::encode(std::string &out) const
{
    using namespace support::wire;
    putU64(out, cells);
    putU64(out, simulated);
    putU64(out, storeHits);
    putU64(out, coalesced);
    putF64(out, cellSeconds);
}

bool
MatrixSummary::decode(support::wire::Reader &in)
{
    cells = in.u64();
    simulated = in.u64();
    storeHits = in.u64();
    coalesced = in.u64();
    cellSeconds = getF64(in);
    return in.ok();
}

void
MatrixResult::encode(std::string &out) const
{
    using namespace support::wire;
    query.encode(out);
    putU32(out, static_cast<std::uint32_t>(values.size()));
    for (std::size_t i = 0; i < values.size(); ++i) {
        putU8(out, valid[i]);
        putF64(out, values[i]);
    }
    summary.encode(out);
    putU32(out, static_cast<std::uint32_t>(quarantined.size()));
    for (const CellFailure &f : quarantined)
        encodeCellFailure(out, f);
    putU8(out, interrupted ? 1 : 0);
}

bool
MatrixResult::decode(support::wire::Reader &in)
{
    if (!query.decode(in))
        return false;
    const std::uint32_t n = in.u32();
    if (!in.ok() || n > kMaxListLen)
        return false;
    values.clear();
    valid.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        valid.push_back(in.u8());
        values.push_back(getF64(in));
    }
    if (!summary.decode(in))
        return false;
    const std::uint32_t nq = in.u32();
    if (!in.ok() || nq > kMaxListLen)
        return false;
    quarantined.clear();
    for (std::uint32_t i = 0; i < nq; ++i) {
        CellFailure f;
        if (!decodeCellFailure(in, f))
            return false;
        quarantined.push_back(std::move(f));
    }
    interrupted = in.u8() != 0;
    if (!in.ok())
        return false;
    // The value grid must match the echoed query's shape, or render()
    // would index out of bounds on a crafted reply.
    return values.size() ==
           query.configs.size() * query.widths.size();
}

std::string
MatrixResult::render(bool csv) const
{
    const std::size_t ncols = query.widths.size();
    auto at = [&](std::size_t row, std::size_t col) {
        return row * ncols + col;
    };
    std::string out;
    char buf[64];
    if (csv) {
        out += "config";
        for (const unsigned w : query.widths) {
            out += ',';
            out += MachineConfig::widthLabel(w);
        }
        out += '\n';
        for (std::size_t r = 0; r < query.configs.size(); ++r) {
            out += query.configs[r];
            for (std::size_t c = 0; c < ncols; ++c) {
                if (valid[at(r, c)]) {
                    std::snprintf(buf, sizeof buf, ",%.4f",
                                  values[at(r, c)]);
                    out += buf;
                } else {
                    out += ",n/a";
                }
            }
            out += '\n';
        }
        return out;
    }
    TextTable table;
    std::vector<std::string> header = {"config"};
    for (const unsigned w : query.widths)
        header.push_back("w=" + MachineConfig::widthLabel(w));
    table.header(std::move(header));
    for (std::size_t r = 0; r < query.configs.size(); ++r) {
        std::vector<std::string> row = {std::string(1, query.configs[r])};
        for (std::size_t c = 0; c < ncols; ++c) {
            row.push_back(valid[at(r, c)]
                              ? TextTable::num(values[at(r, c)])
                              : std::string("n/a"));
        }
        table.row(std::move(row));
    }
    out = query.metric + " (" + query.set +
          ", harmonic mean over the set)\n" + table.render();
    return out;
}

std::string
quarantineSummary(const std::vector<CellFailure> &cells,
                  const std::string &tool)
{
    if (cells.empty())
        return {};
    std::string out = tool + ": " + std::to_string(cells.size()) +
                      " cell" + (cells.size() == 1 ? "" : "s") +
                      " quarantined:\n";
    for (const CellFailure &f : cells) {
        out += "  " + f.key + ": " + f.message + " (after " +
               std::to_string(f.attempts) + " attempts)\n";
    }
    return out;
}

MatrixResult
aggregateMatrixResult(const MatrixQuery &query, const CellStatsFn &stats)
{
    MatrixResult result;
    result.query = query;

    const std::vector<const WorkloadSpec *> set = query.workloads();
    for (const char config : query.configs) {
        for (const unsigned width : query.widths) {
            double v = 0.0;
            bool ok = true;
            try {
                if (query.metric == "ipc")
                    v = hmeanIpcOver(set, config, width, stats);
                else if (query.metric == "speedup")
                    v = hmeanSpeedupOver(set, config, width, stats);
                else
                    v = pctCollapsedOver(set, config, width, stats);
            } catch (const CellQuarantined &) {
                ok = false;
            }
            result.values.push_back(v);
            result.valid.push_back(ok ? 1 : 0);
        }
    }

    // Summed scheduler time, and the quarantine list restricted to
    // this query's own cells (a resident server may be carrying other
    // requests' quarantines too).  The map keeps the list sorted by
    // key — the same order ExperimentDriver::quarantineReport() uses —
    // so local and routed sweeps render identical stderr blocks.
    const std::vector<ExperimentCell> cells = query.cells();
    result.summary.cells = cells.size();
    std::map<std::string, CellFailure> quarantined;
    for (const ExperimentCell &cell : cells) {
        try {
            result.summary.cellSeconds +=
                static_cast<double>(
                    stats(*cell.spec, cell.config, cell.width)
                        .wallNanos) * 1e-9;
        } catch (const CellQuarantined &e) {
            quarantined.emplace(e.failure.key, e.failure);
        }
    }
    for (const auto &[key, failure] : quarantined)
        result.quarantined.push_back(failure);
    return result;
}

MatrixResult
runMatrixQuery(
    ExperimentDriver &driver, const MatrixQuery &query,
    const std::function<void(const std::vector<ExperimentCell> &)>
        &prefetch)
{
    const std::vector<ExperimentCell> cells = query.cells();
    const std::size_t hits0 = driver.storeHits();
    const std::size_t sims0 = driver.simulatedCells();
    if (prefetch)
        prefetch(cells);
    else
        driver.prefetch(cells);

    // An interrupted (Ctrl-C) sweep leaves cells unresolved; going on
    // would re-simulate them serially through stats(), defeating the
    // point of stopping.  Report what the caller can act on instead.
    for (const ExperimentCell &cell : cells) {
        if (!driver.cellResolved(*cell.spec, cell.config, cell.width)) {
            MatrixResult result;
            result.query = query;
            result.summary.cells = cells.size();
            result.summary.storeHits = driver.storeHits() - hits0;
            result.summary.simulated =
                driver.simulatedCells() - sims0;
            result.interrupted = true;
            return result;
        }
    }

    MatrixResult result = aggregateMatrixResult(
        query, [&driver](const WorkloadSpec &spec, char config,
                         unsigned width) -> const SchedStats & {
            return driver.stats(spec, config, width);
        });
    result.summary.storeHits = driver.storeHits() - hits0;
    result.summary.simulated = driver.simulatedCells() - sims0;
    return result;
}

} // namespace ddsc
