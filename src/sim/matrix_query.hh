/**
 * @file
 * The experiment-matrix query: one struct describing "which slice of
 * the A..E matrix, aggregated how", the code that runs it against an
 * ExperimentDriver, and the renderer that turns the answer into the
 * exact bytes ddsc-matrix prints.
 *
 * This is the layer ddsc-matrix and the ddsc-served/ddsc-client pair
 * share.  Byte-identity between a served sweep and a fresh CLI sweep
 * is not an aspiration enforced by tests alone: both paths parse into
 * the same MatrixQuery, aggregate through the same runMatrixQuery(),
 * and render through the same MatrixResult::render(), so the only
 * thing the wire adds is transport.  The structs carry little-endian
 * wire codecs (support/wire.hh) for exactly that reason.
 */

#ifndef DDSC_SIM_MATRIX_QUERY_HH
#define DDSC_SIM_MATRIX_QUERY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "support/wire.hh"

namespace ddsc
{

/**
 * One matrix request: the slice (set x configs x widths) and the
 * aggregation metric.  Mirrors the ddsc-matrix flags one-to-one.
 */
struct MatrixQuery
{
    std::string set = "all";        ///< all | pc | npc
    std::string configs = "ABCDE";  ///< subset of A..E, in print order
    std::vector<unsigned> widths = MachineConfig::paperWidths();
    std::string metric = "ipc";     ///< ipc | speedup | collapsed
    /** Serving only: how long the client is willing to wait, in
     *  milliseconds (0 = forever).  Bounds the *wait*, not the
     *  simulation — an expired cell keeps computing and lands in the
     *  server's cache for the next request. */
    std::uint64_t deadlineMs = 0;

    /** False (with a reason) when any field is out of range; the
     *  server turns this into a typed BadRequest error. */
    bool validate(std::string *why = nullptr) const;

    /** The workload set the query names. */
    std::vector<const WorkloadSpec *> workloads() const;

    /** configs plus the base machine 'A' when the metric needs it. */
    std::string neededConfigs() const;

    /** Every cell the query must resolve (workloads x neededConfigs x
     *  widths). */
    std::vector<ExperimentCell> cells() const;

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/** Per-request serving counters (all zero for a plain CLI run). */
struct MatrixSummary
{
    std::uint64_t cells = 0;        ///< unique cells the query needed
    std::uint64_t simulated = 0;    ///< cells this request computed
    std::uint64_t storeHits = 0;    ///< cells served from the store
    std::uint64_t coalesced = 0;    ///< cells single-flighted onto
                                    ///< another request's simulation
    double cellSeconds = 0.0;       ///< summed scheduler wall time

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/**
 * The answer to a MatrixQuery: one aggregated value per
 * (config, width), row-major in the query's config order.  A cell
 * whose aggregate touched a quarantined simulation is invalid and
 * renders as "n/a", with the underlying failures listed.
 */
struct MatrixResult
{
    MatrixQuery query;              ///< echoed for self-description
    std::vector<double> values;     ///< configs x widths, row-major
    std::vector<std::uint8_t> valid;///< parallel to values
    MatrixSummary summary;
    std::vector<CellFailure> quarantined;
    /** True when a shutdown request interrupted the sweep before all
     *  cells resolved; values are absent. */
    bool interrupted = false;

    /**
     * Exactly what ddsc-matrix prints on stdout for this query: the
     * CSV block or the metric header plus the text table.  Status,
     * timing, and quarantine reporting are stderr concerns left to
     * the tools.
     */
    std::string render(bool csv) const;

    void encode(std::string &out) const;
    bool decode(support::wire::Reader &in);
};

/** The stderr block ddsc-matrix and ddsc-client print for quarantined
 *  cells ("" when none). */
std::string quarantineSummary(const std::vector<CellFailure> &cells,
                              const std::string &tool);

/** Wire codec for one CellFailure (shared by MatrixResult and the
 *  fleet CellsReply). */
void encodeCellFailure(std::string &out, const CellFailure &f);
bool decodeCellFailure(support::wire::Reader &in, CellFailure &f);

/**
 * Aggregate @p query from already-resolved per-cell stats: the value
 * grid, the quarantine list (cells for which @p stats threw
 * CellQuarantined, sorted by key), and summary.cells/cellSeconds.
 * summary.simulated/storeHits are the caller's to fill — it knows
 * where the cells came from.
 *
 * runMatrixQuery() funnels through this with the driver's stats();
 * the fleet router calls it with a lookup over shard-returned stats.
 * One reduction path is what makes a routed sweep byte-identical to a
 * local one.
 */
MatrixResult aggregateMatrixResult(const MatrixQuery &query,
                                   const CellStatsFn &stats);

/**
 * Resolve every cell of @p query against @p driver and aggregate.
 *
 * @param prefetch how to resolve the cell set; defaults to
 *        driver.prefetch().  ddsc-served passes its single-flight
 *        CellRegistry here so concurrent identical requests share one
 *        simulation.
 *
 * If a shutdown request made the (interruptible) driver skip cells,
 * the result comes back with interrupted = true and no values rather
 * than re-simulating the skipped cells serially.
 */
MatrixResult runMatrixQuery(
    ExperimentDriver &driver, const MatrixQuery &query,
    const std::function<void(const std::vector<ExperimentCell> &)>
        &prefetch = {});

} // namespace ddsc

#endif // DDSC_SIM_MATRIX_QUERY_HH
