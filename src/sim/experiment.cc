#include "experiment.hh"

#include <cstdlib>

#include "support/logging.hh"
#include "support/stats.hh"

namespace ddsc
{

std::uint64_t
envTraceLimit()
{
    const char *value = std::getenv("DDSC_TRACE_LIMIT");
    if (!value)
        return 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value) {
        warn("ignoring malformed DDSC_TRACE_LIMIT='%s'", value);
        return 0;
    }
    return parsed;
}

ExperimentDriver::ExperimentDriver(std::uint64_t trace_limit,
                                   bool test_scale)
    : traceLimit_(trace_limit != 0 ? trace_limit : envTraceLimit()),
      testScale_(test_scale)
{
}

VectorTraceSource &
ExperimentDriver::trace(const WorkloadSpec &spec)
{
    auto it = traces_.find(spec.name);
    if (it != traces_.end())
        return it->second;
    VectorTraceSource full =
        traceWorkload(spec, testScale_ ? spec.testScale : 0);
    if (traceLimit_ != 0 && full.size() > traceLimit_) {
        std::vector<TraceRecord> truncated(
            full.records().begin(),
            full.records().begin() +
                static_cast<std::ptrdiff_t>(traceLimit_));
        full = VectorTraceSource(std::move(truncated));
    }
    return traces_.emplace(spec.name, std::move(full)).first->second;
}

const SchedStats &
ExperimentDriver::statsFor(const WorkloadSpec &spec,
                           const MachineConfig &config,
                           const std::string &key)
{
    const std::string cache_key = spec.name + "/" + key;
    const auto it = cache_.find(cache_key);
    if (it != cache_.end())
        return it->second;
    VectorTraceSource &src = trace(spec);
    src.reset();
    LimitScheduler scheduler(config);
    return cache_.emplace(cache_key, scheduler.run(src)).first->second;
}

const SchedStats &
ExperimentDriver::stats(const WorkloadSpec &spec, char config,
                        unsigned width)
{
    return statsFor(spec, MachineConfig::paper(config, width),
                    std::string(1, config) + "/" + std::to_string(width));
}

double
ExperimentDriver::hmeanIpc(const std::vector<const WorkloadSpec *> &set,
                           char config, unsigned width)
{
    std::vector<double> ipcs;
    ipcs.reserve(set.size());
    for (const WorkloadSpec *spec : set)
        ipcs.push_back(stats(*spec, config, width).ipc());
    return harmonicMean(ipcs);
}

double
ExperimentDriver::hmeanSpeedup(
    const std::vector<const WorkloadSpec *> &set, char config,
    unsigned width)
{
    std::vector<double> speedups;
    speedups.reserve(set.size());
    for (const WorkloadSpec *spec : set) {
        const double base = stats(*spec, 'A', width).ipc();
        const double that = stats(*spec, config, width).ipc();
        ddsc_assert(base > 0.0, "zero base IPC for %s",
                    spec->name.c_str());
        speedups.push_back(that / base);
    }
    return harmonicMean(speedups);
}

CollapseStats
ExperimentDriver::mergedCollapse(
    const std::vector<const WorkloadSpec *> &set, char config,
    unsigned width)
{
    CollapseStats merged;
    for (const WorkloadSpec *spec : set)
        merged.merge(stats(*spec, config, width).collapse);
    return merged;
}

double
ExperimentDriver::pctCollapsed(
    const std::vector<const WorkloadSpec *> &set, char config,
    unsigned width)
{
    std::uint64_t collapsed = 0;
    std::uint64_t total = 0;
    for (const WorkloadSpec *spec : set) {
        const SchedStats &s = stats(*spec, config, width);
        collapsed += s.collapse.collapsedInstructions();
        total += s.instructions;
    }
    return percent(static_cast<double>(collapsed),
                   static_cast<double>(total));
}

double
ExperimentDriver::meanLoadClassPct(
    const std::vector<const WorkloadSpec *> &set, char config,
    unsigned width, LoadClass cls)
{
    std::vector<double> pcts;
    pcts.reserve(set.size());
    for (const WorkloadSpec *spec : set)
        pcts.push_back(stats(*spec, config, width).loadClassPct(cls));
    return arithmeticMean(pcts);
}

std::vector<const WorkloadSpec *>
ExperimentDriver::everything()
{
    std::vector<const WorkloadSpec *> set;
    for (const WorkloadSpec &spec : allWorkloads())
        set.push_back(&spec);
    return set;
}

} // namespace ddsc
