#include "experiment.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <set>
#include <thread>
#include <utility>

#include "sim/batched.hh"
#include "support/fault.hh"
#include "support/logging.hh"
#include "support/shutdown.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"

namespace ddsc
{

std::uint64_t
envTraceLimit()
{
    const char *value = std::getenv("DDSC_TRACE_LIMIT");
    if (!value)
        return 0;
    // Insist on a plain decimal count: strtoull alone would skip
    // leading whitespace and silently wrap negatives to huge values.
    if (!std::isdigit(static_cast<unsigned char>(value[0]))) {
        warn("ignoring malformed DDSC_TRACE_LIMIT='%s'", value);
        return 0;
    }
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') {
        warn("ignoring malformed DDSC_TRACE_LIMIT='%s'", value);
        return 0;
    }
    if (errno == ERANGE) {
        warn("DDSC_TRACE_LIMIT='%s' out of range; treating as unlimited",
             value);
        return std::numeric_limits<std::uint64_t>::max();
    }
    return parsed;
}

ExperimentDriver::ExperimentDriver(std::uint64_t trace_limit,
                                   bool test_scale, unsigned jobs)
    : traceLimit_(trace_limit != 0 ? trace_limit : envTraceLimit()),
      testScale_(test_scale),
      jobs_(jobs != 0 ? jobs : support::ThreadPool::defaultJobs())
{
    traceStore_.configure(traceLimit_, testScale_);
}

void
ExperimentDriver::setJobs(unsigned jobs)
{
    jobs_ = jobs != 0 ? jobs : support::ThreadPool::defaultJobs();
    std::lock_guard<std::mutex> lock(poolMutex_);
    pool_.reset();      // next prefetch() rebuilds at the new size
}

support::ThreadPool &
ExperimentDriver::pool()
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (!pool_)
        pool_ = std::make_unique<support::ThreadPool>(jobs_);
    return *pool_;
}

const SharedTrace &
ExperimentDriver::trace(const WorkloadSpec &spec)
{
    return traceStore_.get(spec);
}

std::uint64_t
ExperimentDriver::traceDigest(const WorkloadSpec &spec)
{
    return traceStore_.digest(spec);
}

void
ExperimentDriver::setTraceDir(const std::string &dir)
{
    traceStore_.setSpillDir(dir);
}

void
ExperimentDriver::setTraceBudgetMb(std::uint64_t mb)
{
    traceStore_.setBudgetBytes(mb * 1024 * 1024);
}

TraceResidencyManager::Counters
ExperimentDriver::traceResidency() const
{
    return traceStore_.residency();
}

std::string
ExperimentDriver::cellKey(char config, unsigned width)
{
    return std::string(1, config) + "/" + std::to_string(width);
}

std::string
ExperimentDriver::guardKey(const std::string &cache_key,
                           const MachineConfig &config)
{
    const std::string fp = config.fingerprint();
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = fingerprints_.try_emplace(cache_key, fp);
    if (inserted || it->second == fp)
        return cache_key;
#ifndef NDEBUG
    ddsc_panic("statsFor key '%s' aliases two different MachineConfigs",
               cache_key.c_str());
#else
    warn("statsFor key '%s' aliases two different MachineConfigs; "
         "disambiguating by fingerprint", cache_key.c_str());
    const std::string disambiguated = cache_key + "#" + fp;
    fingerprints_.try_emplace(disambiguated, fp);
    return disambiguated;
#endif
}

SchedStats
ExperimentDriver::runCell(const SharedTrace &trace,
                          const MachineConfig &config,
                          const support::CancelToken &token) const
{
    const std::unique_ptr<TraceSource> view = trace.cursor();
    LimitScheduler scheduler(config);
    scheduler.setCancel(token);
    return scheduler.run(*view);
}

SchedStats
ExperimentDriver::runCellChecked(const std::string &key,
                                 const SharedTrace &trace,
                                 const MachineConfig &config,
                                 const support::CancelToken &token) const
{
    if (token.valid())
        token.throwIfCancelled();
    if (support::faultShouldFire("cell-throw", key.c_str()))
        throw std::runtime_error("injected fault: cell-throw at '" +
                                 key + "'");
    if (support::faultShouldFire("cell-stall", key.c_str())) {
        // Hold the cell in flight for a while: the deadline,
        // single-flight, and watchdog tests use this to widen the
        // race window deterministically.  $DDSC_FAULT_STALL_MS
        // tunes the duration (default 400 ms) so watchdog tests can
        // stall well past their budgets without slowing the rest of
        // the suite.  The sleep is sliced so a firing token can
        // interrupt it: the injected stall is exactly what the
        // watchdog's active cancel exists to reclaim.
        static const unsigned stall_ms = [] {
            const char *v = std::getenv("DDSC_FAULT_STALL_MS");
            if (v && std::isdigit(static_cast<unsigned char>(v[0])))
                return static_cast<unsigned>(
                    std::strtoul(v, nullptr, 10));
            return 400u;
        }();
        for (unsigned slept = 0; slept < stall_ms; slept += 20) {
            if (token.valid())
                token.throwIfCancelled();
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min(20u, stall_ms - slept)));
        }
    }
    return runCell(trace, config, token);
}

bool
ExperimentDriver::attemptCell(const std::string &key,
                              const SharedTrace &trace,
                              const MachineConfig &config,
                              SchedStats &out,
                              CellFailure &failure,
                              unsigned first_attempt,
                              const support::CancelToken &token) const
{
    for (unsigned attempt = first_attempt; attempt <= kCellAttempts;
         ++attempt) {
        try {
            out = runCellChecked(key, trace, config, token);
            if (attempt > 1) {
                warn("cell '%s' recovered on attempt %u of %u",
                     key.c_str(), attempt, kCellAttempts);
            }
            return true;
        } catch (const support::CancelledError &) {
            // Not a cell failure: retrying under the same fired token
            // would cancel again, and quarantining would poison a
            // healthy cell.  Let the caller unwind.
            throw;
        } catch (const std::exception &e) {
            failure = {key, e.what(), attempt};
        } catch (...) {
            failure = {key, "unknown exception", attempt};
        }
        warn("cell '%s' failed (attempt %u of %u): %s", key.c_str(),
             attempt, kCellAttempts, failure.message.c_str());
    }
    return false;
}

const SchedStats &
ExperimentDriver::statsFor(const WorkloadSpec &spec,
                           const MachineConfig &config,
                           const std::string &key,
                           const support::CancelToken &token)
{
    const std::string cache_key =
        guardKey(spec.name + "/" + key, config);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = cache_.find(cache_key);
        if (it != cache_.end())
            return it->second;
        const auto bad = quarantine_.find(cache_key);
        if (bad != quarantine_.end())
            throw CellQuarantined(bad->second);
    }
    const SharedTrace &src = trace(spec);
    if (store_) {
        const SchedStats *stored = store_->lookup(
            cache_key, config.fingerprint(), traceDigest(spec));
        if (stored) {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto [it, inserted] =
                cache_.emplace(cache_key, *stored);
            if (inserted)
                ++storeHits_;
            return it->second;
        }
    }
    SchedStats stats;
    CellFailure failure;
    traceStore_.touch(src);
    bool ran = false;
    try {
        ran = attemptCell(cache_key, src, config, stats, failure, 1,
                          token);
    } catch (const support::CancelledError &e) {
        // The cell is left exactly as if it had never been asked for:
        // the next request that wants it simulates from scratch.
        throw CellCancelled(cache_key, e.what());
    }
    if (!ran) {
        std::lock_guard<std::mutex> lock(mutex_);
        quarantine_.emplace(cache_key, failure);
        throw CellQuarantined(failure);
    }
    if (store_) {
        store_->append(cache_key, config.fingerprint(),
                       traceDigest(spec), stats);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++simulated_;
    // A successful publish clears any provisional quarantine the
    // watchdog applied while this very simulation was stuck: the
    // result in hand proves the cell is healthy.
    quarantine_.erase(cache_key);
    return cache_.emplace(cache_key, std::move(stats)).first->second;
}

const SchedStats &
ExperimentDriver::stats(const WorkloadSpec &spec, char config,
                        unsigned width,
                        const support::CancelToken &token)
{
    return statsFor(spec, MachineConfig::paper(config, width),
                    cellKey(config, width), token);
}

bool
ExperimentDriver::cellResolved(const WorkloadSpec &spec, char config,
                               unsigned width) const
{
    const std::string key = spec.name + "/" + cellKey(config, width);
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.find(key) != cache_.end() ||
           quarantine_.find(key) != quarantine_.end();
}

bool
ExperimentDriver::cellDurable(const WorkloadSpec &spec, char config,
                              unsigned width) const
{
    if (cellResolved(spec, config, width))
        return true;
    // Key-only store probe: staleness (fingerprint/digest drift) is
    // caught at real lookup time; here a false positive just admits
    // one request that then simulates — fine for a brownout check.
    return store_ != nullptr &&
           store_->contains(spec.name + "/" + cellKey(config, width));
}

std::vector<ExperimentCell>
ExperimentDriver::cellsFor(const std::vector<const WorkloadSpec *> &set,
                           const std::string &configs,
                           const std::vector<unsigned> &widths)
{
    std::vector<ExperimentCell> cells;
    cells.reserve(set.size() * configs.size() * widths.size());
    for (const WorkloadSpec *spec : set)
        for (const char config : configs)
            for (const unsigned width : widths)
                cells.push_back({spec, config, width});
    return cells;
}

void
ExperimentDriver::prefetch(const std::vector<ExperimentCell> &cells)
{
    prefetch(cells, {});
}

void
ExperimentDriver::prefetch(const std::vector<ExperimentCell> &cells,
                           const std::vector<support::CancelToken> &tokens)
{
    ddsc_assert(tokens.empty() || tokens.size() == cells.size(),
                "prefetch: %zu cells but %zu cancel tokens",
                cells.size(), tokens.size());

    struct Task
    {
        const SharedTrace *trace;
        MachineConfig config;
        std::string key;
        std::string fingerprint;
        std::uint64_t digest;
        support::CancelToken token;     ///< null when uncancellable
    };

    // Enumerate the missing cells and materialize their traces from
    // this thread (trace generation runs the VM and is kept serial;
    // it is shared across the 25 cells of each workload anyway).
    // Cells found intact in the attached persistent store are copied
    // into the in-memory cache here and never reach the workers —
    // this is what --resume resumes.  Quarantined cells are skipped
    // too: a known-poisoned simulation is not retried every sweep.
    std::vector<Task> missing;
    std::set<std::string> queued;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const ExperimentCell &cell = cells[c];
        ddsc_assert(cell.spec != nullptr, "null workload in cell");
        const std::string cache_key =
            cell.spec->name + "/" + cellKey(cell.config, cell.width);
        if (!queued.insert(cache_key).second)
            continue;
        MachineConfig config =
            MachineConfig::paper(cell.config, cell.width);
        // The guarded key is where statsFor() will look: when the raw
        // key aliases a different machine (release builds), the result
        // must be cached under the disambiguated key, or the cell
        // would silently re-simulate on every statsFor() while the
        // aliased entry lingers.
        const std::string guarded_key = guardKey(cache_key, config);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (cache_.find(guarded_key) != cache_.end())
                continue;
            if (quarantine_.find(guarded_key) != quarantine_.end())
                continue;
        }
        const SharedTrace &src = trace(*cell.spec);
        std::string fingerprint = config.fingerprint();
        const std::uint64_t digest = traceDigest(*cell.spec);
        if (store_) {
            const SchedStats *stored =
                store_->lookup(guarded_key, fingerprint, digest);
            if (stored) {
                // A concurrent prefetch may have cached this cell
                // between our cache check and here; only the emplace
                // that actually lands counts as a hit, so storeHits()
                // never exceeds the number of unique cells loaded.
                std::lock_guard<std::mutex> lock(mutex_);
                if (cache_.emplace(guarded_key, *stored).second)
                    ++storeHits_;
                continue;
            }
        }
        missing.push_back({&src, std::move(config), guarded_key,
                           std::move(fingerprint), digest,
                           tokens.empty() ? support::CancelToken()
                                          : tokens[c]});
    }
    if (missing.empty())
        return;

    // Run the missing cells concurrently on the shared pool.  Each
    // task owns a private trace cursor and scheduler and writes only
    // its own result slot, so the computation is race-free by
    // construction; the shared cache is filled afterwards, under the
    // mutex, in enumeration order (a std::map is insertion-order
    // independent anyway).  attemptCell() contains worker exceptions:
    // a throwing cell is retried, then quarantined, and never takes
    // the sweep down with it, so every other slot still holds its
    // bit-exact result.  Waiting on this batch's own futures (rather
    // than pool.wait()) is what lets several prefetch() calls share
    // the workers: each caller blocks only until *its* cells are done.
    std::vector<SchedStats> results(missing.size());
    std::vector<CellFailure> failures(missing.size());
    std::vector<char> succeeded(missing.size(), 0);
    std::vector<char> skipped(missing.size(), 0);
    // Cancelled cells are published like skipped ones — neither
    // cached, nor quarantined, nor appended to the store — so the
    // next request re-runs them cleanly.
    std::vector<char> cancelled(missing.size(), 0);
    support::ThreadPool &workers = pool();
    std::vector<std::future<void>> batch;
    // Lives past the submit loop: group tasks index into it from
    // worker threads until every future below is collected.
    std::vector<std::vector<std::size_t>> groups;
    if (batched_) {
        // Group the missing cells by (workload, front-end
        // fingerprint): each group is one streaming front-end pass
        // feeding all its back-end window engines, so the paper
        // matrix costs two trace decodes per workload instead of 25.
        // Groups are pool tasks (they are the natural parallel unit —
        // sibling cells of a group share one pass by construction);
        // a cell that fails inside its group is retried alone on the
        // per-cell path, continuing the attempt count, so transient
        // faults recover and persistent ones quarantine exactly as on
        // the legacy path.
        {
            std::map<std::pair<const SharedTrace *, std::string>,
                     std::size_t> index;
            for (std::size_t i = 0; i < missing.size(); ++i) {
                const auto [it, inserted] = index.try_emplace(
                    {missing[i].trace,
                     missing[i].config.frontEndFingerprint()},
                    groups.size());
                if (inserted)
                    groups.emplace_back();
                groups[it->second].push_back(i);
            }
        }
        batch.reserve(groups.size());
        for (std::size_t g = 0; g < groups.size(); ++g) {
            batch.push_back(workers.submit([&, g]() {
                const std::vector<std::size_t> &group = groups[g];
                if (interruptible_ && support::shutdownRequested()) {
                    for (const std::size_t i : group)
                        skipped[i] = 1;
                    return;
                }
                std::vector<MachineConfig> configs;
                std::vector<std::string> keys;
                std::vector<support::CancelToken> group_tokens;
                bool any_token = false;
                configs.reserve(group.size());
                keys.reserve(group.size());
                group_tokens.reserve(group.size());
                for (const std::size_t i : group) {
                    configs.push_back(missing[i].config);
                    keys.push_back(missing[i].key);
                    group_tokens.push_back(missing[i].token);
                    any_token = any_token || missing[i].token.valid();
                }
                if (!any_token)
                    group_tokens.clear();
                // LRU-touch at execution (not enumeration) time, so
                // the residency budget tracks the order traces are
                // actually swept in.
                traceStore_.touch(*missing[group[0]].trace);
                const BatchedGroupResult out = runBatchedGroup(
                    *missing[group[0]].trace, configs, keys,
                    kBatchedChunk, group_tokens);
                for (std::size_t k = 0; k < group.size(); ++k) {
                    const std::size_t i = group[k];
                    if (out.cells[k].ok) {
                        results[i] = out.cells[k].stats;
                        succeeded[i] = 1;
                        continue;
                    }
                    if (out.cells[k].cancelled) {
                        cancelled[i] = 1;
                        continue;
                    }
                    failures[i] = {missing[i].key,
                                   out.cells[k].error, 1};
                    warn("cell '%s' failed (attempt 1 of %u): %s",
                         missing[i].key.c_str(), kCellAttempts,
                         out.cells[k].error.c_str());
                    try {
                        succeeded[i] =
                            attemptCell(missing[i].key,
                                        *missing[i].trace,
                                        missing[i].config, results[i],
                                        failures[i], 2,
                                        missing[i].token)
                                ? 1 : 0;
                    } catch (const support::CancelledError &) {
                        cancelled[i] = 1;
                    }
                }
            }));
        }
    } else {
        batch.reserve(missing.size());
        for (std::size_t i = 0; i < missing.size(); ++i) {
            batch.push_back(workers.submit([&, i]() {
                // An interruptible driver (the CLI tools after Ctrl-C)
                // abandons cells it has not started; whatever already
                // finished is still published and flushed below.
                if (interruptible_ && support::shutdownRequested()) {
                    skipped[i] = 1;
                    return;
                }
                traceStore_.touch(*missing[i].trace);
                try {
                    succeeded[i] = attemptCell(missing[i].key,
                                               *missing[i].trace,
                                               missing[i].config,
                                               results[i], failures[i],
                                               1, missing[i].token)
                                       ? 1 : 0;
                } catch (const support::CancelledError &) {
                    cancelled[i] = 1;
                }
            }));
        }
    }
    for (std::future<void> &done : batch)
        done.get();

    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < missing.size(); ++i) {
        if (skipped[i])
            continue;   // neither cached nor quarantined: never ran
        if (cancelled[i])
            continue;   // ditto: partial state was discarded, the
                        // cell re-runs cleanly on the next request
        if (!succeeded[i]) {
            quarantine_.emplace(missing[i].key, failures[i]);
            continue;
        }
        // Persist before publishing, in enumeration order: a kill
        // between cells loses at most the one record being written,
        // and the store contents are deterministic for a given sweep.
        if (store_) {
            store_->append(missing[i].key, missing[i].fingerprint,
                           missing[i].digest, results[i]);
        }
        ++simulated_;
        // The finished result clears any provisional watchdog
        // quarantine applied while this cell was stuck in flight.
        quarantine_.erase(missing[i].key);
        cache_.emplace(missing[i].key, std::move(results[i]));
    }
}

std::size_t
ExperimentDriver::simulatedCells() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return simulated_;
}

std::size_t
ExperimentDriver::storeHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return storeHits_;
}

std::size_t
ExperimentDriver::quarantineCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantine_.size();
}

void
ExperimentDriver::quarantineCell(const std::string &key,
                                 const std::string &message)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (cache_.find(key) != cache_.end())
        return;     // already finished: nothing to poison
    quarantine_.emplace(key, CellFailure{key, message, 0});
}

std::uint64_t
ExperimentDriver::maxCellWallNanos() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t max = 0;
    for (const auto &[key, stats] : cache_)
        if (stats.wallNanos > max)
            max = stats.wallNanos;
    return max;
}

std::vector<CellFailure>
ExperimentDriver::quarantineReport() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<CellFailure> report;
    report.reserve(quarantine_.size());
    for (const auto &[key, failure] : quarantine_)
        report.push_back(failure);
    return report;
}

double
ExperimentDriver::cachedCellSeconds() const
{
    // Callers may poll progress while a prefetch() is filling cache_
    // on worker threads; iterating unlocked would be a data race.
    std::lock_guard<std::mutex> lock(mutex_);
    double seconds = 0.0;
    for (const auto &[key, stats] : cache_)
        seconds += static_cast<double>(stats.wallNanos) * 1e-9;
    return seconds;
}

std::size_t
ExperimentDriver::cachedCells() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

// The aggregation math lives in these free functions so the local
// driver and the fleet router reduce cells through the *same* code:
// the driver binds stats() below, the router binds a lookup over
// shard-returned stats, and both produce identical doubles (hence
// identical rendered bytes) by construction.

double
hmeanIpcOver(const std::vector<const WorkloadSpec *> &set, char config,
             unsigned width, const CellStatsFn &stats)
{
    std::vector<double> ipcs;
    ipcs.reserve(set.size());
    for (const WorkloadSpec *spec : set)
        ipcs.push_back(stats(*spec, config, width).ipc());
    return harmonicMean(ipcs);
}

double
hmeanSpeedupOver(const std::vector<const WorkloadSpec *> &set,
                 char config, unsigned width, const CellStatsFn &stats)
{
    std::vector<double> speedups;
    speedups.reserve(set.size());
    for (const WorkloadSpec *spec : set) {
        const double base = stats(*spec, 'A', width).ipc();
        const double that = stats(*spec, config, width).ipc();
        ddsc_assert(base > 0.0, "zero base IPC for %s",
                    spec->name.c_str());
        speedups.push_back(that / base);
    }
    return harmonicMean(speedups);
}

CollapseStats
mergedCollapseOver(const std::vector<const WorkloadSpec *> &set,
                   char config, unsigned width,
                   const CellStatsFn &stats)
{
    CollapseStats merged;
    for (const WorkloadSpec *spec : set)
        merged.merge(stats(*spec, config, width).collapse);
    return merged;
}

double
pctCollapsedOver(const std::vector<const WorkloadSpec *> &set,
                 char config, unsigned width, const CellStatsFn &stats)
{
    std::uint64_t collapsed = 0;
    std::uint64_t total = 0;
    for (const WorkloadSpec *spec : set) {
        const SchedStats &s = stats(*spec, config, width);
        collapsed += s.collapse.collapsedInstructions();
        total += s.instructions;
    }
    return percent(static_cast<double>(collapsed),
                   static_cast<double>(total));
}

double
meanLoadClassPctOver(const std::vector<const WorkloadSpec *> &set,
                     char config, unsigned width, LoadClass cls,
                     const CellStatsFn &stats)
{
    std::vector<double> pcts;
    pcts.reserve(set.size());
    for (const WorkloadSpec *spec : set)
        pcts.push_back(stats(*spec, config, width).loadClassPct(cls));
    return arithmeticMean(pcts);
}

double
ExperimentDriver::hmeanIpc(const std::vector<const WorkloadSpec *> &set,
                           char config, unsigned width)
{
    prefetch(cellsFor(set, std::string(1, config), {width}));
    return hmeanIpcOver(set, config, width,
                        [this](const WorkloadSpec &s, char c,
                               unsigned w) -> const SchedStats & {
                            return stats(s, c, w);
                        });
}

double
ExperimentDriver::hmeanSpeedup(
    const std::vector<const WorkloadSpec *> &set, char config,
    unsigned width)
{
    prefetch(cellsFor(set, std::string("A") + config, {width}));
    return hmeanSpeedupOver(set, config, width,
                            [this](const WorkloadSpec &s, char c,
                                   unsigned w) -> const SchedStats & {
                                return stats(s, c, w);
                            });
}

CollapseStats
ExperimentDriver::mergedCollapse(
    const std::vector<const WorkloadSpec *> &set, char config,
    unsigned width)
{
    prefetch(cellsFor(set, std::string(1, config), {width}));
    return mergedCollapseOver(set, config, width,
                              [this](const WorkloadSpec &s, char c,
                                     unsigned w) -> const SchedStats & {
                                  return stats(s, c, w);
                              });
}

double
ExperimentDriver::pctCollapsed(
    const std::vector<const WorkloadSpec *> &set, char config,
    unsigned width)
{
    prefetch(cellsFor(set, std::string(1, config), {width}));
    return pctCollapsedOver(set, config, width,
                            [this](const WorkloadSpec &s, char c,
                                   unsigned w) -> const SchedStats & {
                                return stats(s, c, w);
                            });
}

double
ExperimentDriver::meanLoadClassPct(
    const std::vector<const WorkloadSpec *> &set, char config,
    unsigned width, LoadClass cls)
{
    prefetch(cellsFor(set, std::string(1, config), {width}));
    return meanLoadClassPctOver(
        set, config, width, cls,
        [this](const WorkloadSpec &s, char c,
               unsigned w) -> const SchedStats & {
            return stats(s, c, w);
        });
}

std::vector<const WorkloadSpec *>
ExperimentDriver::everything()
{
    std::vector<const WorkloadSpec *> set;
    for (const WorkloadSpec &spec : allWorkloads())
        set.push_back(&spec);
    return set;
}

} // namespace ddsc
