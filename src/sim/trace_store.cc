#include "trace_store.hh"

#include <cstdio>
#include <filesystem>
#include <vector>

#include "support/logging.hh"

namespace ddsc
{

void
TraceStore::setSpillDir(const std::string &dir)
{
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec)
            ddsc_fatal("cannot create trace spill directory '%s': %s",
                       dir.c_str(), ec.message().c_str());
    }
    spillDir_ = dir;
}

void
TraceStore::setBudgetBytes(std::uint64_t bytes)
{
    residency_.setBudgetBytes(bytes);
}

TraceStore::Slot &
TraceStore::slot(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mapMutex_);
    return slots_[name];
}

const SharedTrace &
TraceStore::get(const WorkloadSpec &spec)
{
    Slot &s = slot(spec.name);
    std::call_once(s.build, [&]() { s.trace = materialize(spec, s); });
    return *s.trace;
}

std::uint64_t
TraceStore::digest(const WorkloadSpec &spec)
{
    Slot &s = slot(spec.name);
    std::call_once(s.build, [&]() { s.trace = materialize(spec, s); });
    std::call_once(s.digestOnce,
                   [&]() { s.digest = s.trace->digest(); });
    return s.digest;
}

std::unique_ptr<const SharedTrace>
TraceStore::materialize(const WorkloadSpec &spec, Slot &s)
{
    VectorTraceSource full =
        traceWorkload(spec, testScale_ ? spec.testScale : 0);
    if (traceLimit_ != 0 && full.size() > traceLimit_) {
        std::vector<TraceRecord> truncated(
            full.records().begin(),
            full.records().begin() +
                static_cast<std::ptrdiff_t>(traceLimit_));
        full = VectorTraceSource(std::move(truncated));
    }
    if (spillDir_.empty())
        return std::make_unique<VectorTraceSource>(std::move(full));

    // Spill: the vector lives only through this scope; afterwards the
    // workload is served from the mapped file and its pages answer to
    // the residency budget.  The digest doubles as the staleness
    // check and the memoized value (the writer stamps exactly this
    // digest into the v4 header, so mapped.digest() == digest here).
    const std::uint64_t digest = full.digest();
    const std::string path =
        spillDir_ + "/" + spec.name +
        (testScale_ ? "-t1" : "-t0") +
        "-l" + std::to_string(traceLimit_) + ".trc";
    std::uint64_t haveDigest = 0;
    std::uint64_t haveCount = 0;
    const bool reusable =
        MappedTraceSource::probe(path, &haveDigest, &haveCount) &&
        haveDigest == digest && haveCount == full.size();
    if (!reusable) {
        // Write to a temp name and rename into place, so a crash
        // mid-spill leaves no half-file under the served name and a
        // concurrent store on the same directory never maps a
        // partially written trace.
        const std::string tmp = path + ".tmp";
        {
            TraceFileWriter writer(tmp);
            for (const TraceRecord &rec : full.records())
                writer.emit(rec);
            writer.close();
        }
        if (std::rename(tmp.c_str(), path.c_str()) != 0)
            ddsc_fatal("cannot rename spilled trace '%s' into place",
                       tmp.c_str());
    }
    std::call_once(s.digestOnce, [&]() { s.digest = digest; });
    return std::make_unique<MappedTraceSource>(path);
}

} // namespace ddsc
