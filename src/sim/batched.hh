/**
 * @file
 * One-pass multi-cell simulation: a single streaming SpecFrontEnd
 * pass over one workload trace feeds any number of back-end window
 * engines whose configs share a front-end fingerprint (typically the
 * width sweep of one paper configuration, or {A, C, E} together since
 * none of them trains a load predictor).
 *
 * runBatchedGroup() is the shared engine behind ExperimentDriver's
 * batched prefetch, ddsc-sim's --batched sweep, and bench_sched's
 * `batched` series.  Per-cell results are bit-identical to the
 * one-cell-at-a-time path (tests/batched_equiv_test.cpp is the
 * oracle); only wallNanos differs, carrying each cell's own back-end
 * time plus an equal share of the single front-end pass.
 *
 * Fault containment matches the per-cell path's first attempt: the
 * "cell-throw"/"cell-stall" injection hooks fire per cell inside the
 * batch, and a cell that throws mid-batch is dropped from the group
 * without disturbing its siblings (each back-end owns all its window
 * state; the front-end is read-only to them).  The caller retries
 * failed cells on the legacy path for their remaining attempts.
 */

#ifndef DDSC_SIM_BATCHED_HH
#define DDSC_SIM_BATCHED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/frontend.hh"
#include "core/sched_stats.hh"
#include "support/cancel.hh"
#include "trace/source.hh"

namespace ddsc
{

/** Outcome of one cell of a batched group. */
struct BatchedCellResult
{
    SchedStats stats;           ///< valid when ok
    bool ok = false;
    /** The cell's CancelToken fired mid-pass: its partial window was
     *  discarded and it must be neither retried nor quarantined
     *  (distinct from !ok && !cancelled, a real failure). */
    bool cancelled = false;
    std::string error;          ///< what the feed threw when !ok
};

/** Outcome of one front-end pass over a group of cells. */
struct BatchedGroupResult
{
    std::vector<BatchedCellResult> cells;   ///< parallel to configs
    std::uint64_t frontEndNanos = 0;        ///< one shared pass
    FrontEndTrainCounts trainCounts;        ///< post-pass totals
};

/** Default records per streamed chunk. */
constexpr std::size_t kBatchedChunk = 16384;

/**
 * Run every (config, key) cell over @p trace with one shared
 * front-end pass.  All configs must agree on frontEndFingerprint()
 * (asserted).  @p keys label the cells for fault-injection hooks and
 * error messages, parallel to @p configs.  The trace is consumed
 * through one fresh cursor, so in-memory and mmap'd traces feed the
 * pass identically.
 *
 * @p tokens, when non-empty, is parallel to @p configs: each cell's
 * token is checked at every chunk boundary (and polled inside the
 * back-end), so a cancelled cell stops consuming its back-end within
 * one chunk while its siblings ride the same front-end pass to
 * completion.  When every cell is gone (cancelled or failed) the
 * front-end pass itself stops.  An empty vector means no cell can be
 * cancelled — the pre-cancellation behaviour.
 */
BatchedGroupResult runBatchedGroup(
    const SharedTrace &trace,
    const std::vector<MachineConfig> &configs,
    const std::vector<std::string> &keys,
    std::size_t chunk = kBatchedChunk,
    const std::vector<support::CancelToken> &tokens = {});

} // namespace ddsc

#endif // DDSC_SIM_BATCHED_HH
