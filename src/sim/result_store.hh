/**
 * @file
 * Persistent, checksummed result cache for experiment cells.
 *
 * A sweep over the full paper matrix can run for hours; this store
 * makes it killable.  Every finished (workload, config, width) cell is
 * appended to one on-disk file as soon as it is computed, and a
 * restarted sweep with --resume reloads the file, skips every cell
 * that is still valid, and re-simulates only what is missing.
 *
 * File format ("results.ddsc" inside the cache directory):
 *
 *   header   16 bytes: magic "DDSCRES1", schema u32, pad u32
 *   records  each: payload length u32, CRC32(payload) u32, payload
 *
 * A record's payload is: cache key (string), machine-configuration
 * fingerprint (string), trace digest (u64), then the serialized
 * SchedStats.  Appends are flushed record-at-a-time, so a kill leaves
 * at most one torn record at the tail; load() detects it by length or
 * CRC, reports it, and truncates the file back to the intact prefix.
 *
 * Staleness is caught at lookup time, not load time: an entry whose
 * stored fingerprint or trace digest no longer matches the caller's is
 * dropped with a warning and treated as a miss, so changed machine
 * knobs or a rebuilt trace can never resurrect stale numbers.
 *
 * A schema bump (kSchema) invalidates the whole file loudly.  A file
 * that is not a result store at all (wrong magic) is a fatal error:
 * the store never clobbers a file it did not write.
 */

#ifndef DDSC_SIM_RESULT_STORE_HH
#define DDSC_SIM_RESULT_STORE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "core/sched_stats.hh"
#include "support/version.hh"

namespace ddsc
{

/** What load() found on disk. */
struct StoreLoadReport
{
    std::size_t loaded = 0;     ///< intact cells now available
    std::size_t discarded = 0;  ///< torn/corrupt records dropped
    bool schemaReset = false;   ///< file had an old schema; started fresh
    std::string note;           ///< human-readable diagnosis ("" if clean)
};

/** What absorb() did with the other store's cells. */
struct StoreMergeReport
{
    std::size_t added = 0;      ///< new cells appended to this store
    std::size_t identical = 0;  ///< duplicates with matching payloads
    /** Same key, different fingerprint/digest/stats.  This store's
     *  entry was kept; a nonzero count means the inputs disagree about
     *  a cell and the caller should refuse to bless the merge. */
    std::size_t conflicts = 0;
};

/**
 * The on-disk cell cache.  Thread-safe; every mutation is flushed
 * before it is visible in memory, so the disk never lags the cache.
 */
class ResultStore
{
  public:
    /** Bump support::version::kStoreSchema when the record payload
     *  layout changes; this alias keeps old call sites working. */
    static constexpr std::uint32_t kSchema =
        support::version::kStoreSchema;

    /**
     * Open (creating if needed) the store inside @p dir.  The
     * directory itself is created when missing.  Existing contents
     * are validated and loaded; see the returned report.  fatal() if
     * @p dir is unusable or the file is not a result store.
     */
    explicit ResultStore(const std::string &dir);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** What the constructor found on disk. */
    const StoreLoadReport &loadReport() const { return report_; }

    /** Full path of the backing file. */
    const std::string &path() const { return path_; }

    /**
     * The cached stats for @p key, or nullptr when absent or stale.
     * A fingerprint or digest mismatch warns, drops the entry, and
     * returns nullptr so the caller re-simulates.
     */
    const SchedStats *lookup(const std::string &key,
                             const std::string &fingerprint,
                             std::uint64_t trace_digest);

    /** True when a record for @p key is present, with *no* staleness
     *  check (and no side effects).  The serving layer's brownout
     *  admission uses this as a cheap "could we answer this without
     *  simulating?" probe; real reads still go through lookup(). */
    bool contains(const std::string &key) const;

    /**
     * Persist one cell and make it visible to lookup().  The record is
     * written and flushed before the in-memory map is updated.  Fault
     * point "checkpoint-torn-write" makes this write a partial record
     * and die, simulating a kill mid-append.
     */
    void append(const std::string &key, const std::string &fingerprint,
                std::uint64_t trace_digest, const SchedStats &stats);

    /** Number of cells currently cached. */
    std::size_t size() const;

    /**
     * Rewrite the file with exactly one record per live cell (appends
     * and stale-drops leave dead bytes behind).  Atomic: writes a
     * temporary file, then rename()s it over the store.
     */
    void compact();

    /**
     * Fold every live cell of @p other into this store (the heart of
     * `ddsc-store merge`, which folds per-shard fleet stores back into
     * one resumable store).  New cells are appended and flushed;
     * duplicates with byte-identical payloads are skipped; a duplicate
     * that *disagrees* keeps this store's entry and is counted as a
     * conflict.  After a compact() the file bytes are a deterministic
     * function of the merged entries (key-sorted, canonical payloads),
     * so merging the same inputs always yields the same file, and a
     * --resume run over it re-simulates nothing.
     */
    StoreMergeReport absorb(const ResultStore &other);

  private:
    struct Entry
    {
        std::string fingerprint;
        std::uint64_t traceDigest;
        SchedStats stats;
    };

    StoreLoadReport loadLocked();
    void writeHeaderLocked(std::FILE *file, const std::string &path) const;
    void appendRecordLocked(const std::string &key, const Entry &entry);

    std::string dir_;
    std::string path_;
    std::FILE *file_ = nullptr;     ///< open in append mode
    std::map<std::string, Entry> cells_;
    StoreLoadReport report_;
    mutable std::mutex mutex_;
};

/** Append the canonical byte encoding of @p stats (exposed for
 *  tests; the store uses it for record payloads). */
void encodeSchedStats(std::string &out, const SchedStats &stats);

/** Rebuild @p stats from an encoding; false (stats reset) on
 *  truncated or inconsistent bytes. */
bool decodeSchedStats(support::wire::Reader &in, SchedStats &stats);

} // namespace ddsc

#endif // DDSC_SIM_RESULT_STORE_HH
