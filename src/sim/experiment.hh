/**
 * @file
 * Experiment driver: runs the paper's configuration matrix over the
 * workload set with trace and result caching, and provides the
 * aggregations the paper reports (harmonic-mean IPC and speedup over
 * the base machine, merged collapse statistics, mean load-class
 * percentages).
 *
 * The driver is parallel: every (workload, config, width) cell is an
 * independent LimitScheduler run over an immutable cached trace, so
 * prefetch() farms missing cells out to one persistent, driver-owned
 * thread pool (`--jobs` / $DDSC_JOBS, default hardware_concurrency)
 * and the aggregation helpers prefetch their whole cell set before
 * reducing serially.  prefetch() may be called from several threads
 * at once (the ddsc-served sessions do): each call waits only for its
 * own batch, every batch shares the same workers, and trace
 * materialization is latched per workload (TraceStore) — concurrent
 * requests for the same workload share one VM build while distinct
 * workloads build in parallel.  Concurrent calls
 * racing on the *same* missing cell may both simulate it (last write
 * is a no-op; results are identical) — the serving layer's
 * CellRegistry exists to single-flight that case.
 * Results are bit-identical to a serial run regardless of job count
 * (tests/parallel_equiv_test.cpp is the oracle): each cell is computed
 * by the same deterministic scheduler over a private trace cursor, and
 * the reductions always read cells in the caller-given set order.
 *
 * The environment variable DDSC_TRACE_LIMIT truncates every trace to
 * at most that many instructions — the same rule the paper applied at
 * 250M ("only the first 250 million instructions of each benchmark
 * trace were simulated").  Use it to make quick bench runs cheap.
 *
 * Durability: attachStore() plugs in a persistent ResultStore.  Every
 * finished cell is appended to it immediately, and cells whose stored
 * fingerprint and trace digest still match are served from it without
 * re-simulating, which is what makes an interrupted sweep resumable
 * (--cache-dir/--resume in the tools).
 *
 * Fault containment: a cell whose simulation throws no longer kills
 * the whole sweep.  The worker retries it up to kCellAttempts times
 * (a transient fault recovers invisibly), then quarantines it; every
 * other cell completes bit-identical to a serial run, and stats() for
 * a quarantined cell throws CellQuarantined instead of returning
 * garbage or silently re-running a known-bad simulation.
 */

#ifndef DDSC_SIM_EXPERIMENT_HH
#define DDSC_SIM_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/scheduler.hh"
#include "core/sched_stats.hh"
#include "sim/result_store.hh"
#include "sim/trace_store.hh"
#include "support/cancel.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

namespace ddsc
{

/** One cell of the experiment matrix. */
struct ExperimentCell
{
    const WorkloadSpec *spec;
    char config;        ///< paper configuration letter A..E
    unsigned width;     ///< issue width
};

/** Why one cell is quarantined. */
struct CellFailure
{
    std::string key;        ///< cache key, e.g. "li/D/16"
    std::string message;    ///< what the last attempt threw
    unsigned attempts = 0;  ///< how many times it was tried
};

/** Thrown by stats()/statsFor() for a quarantined cell. */
class CellQuarantined : public std::runtime_error
{
  public:
    explicit CellQuarantined(const CellFailure &f)
        : std::runtime_error("cell '" + f.key + "' is quarantined "
                             "after " + std::to_string(f.attempts) +
                             " failed attempts: " + f.message),
          failure(f)
    {}

    const CellFailure failure;
};

/**
 * Runs and caches simulations of the A..E matrix.
 */
class ExperimentDriver
{
  public:
    /**
     * @param trace_limit 0 = unlimited (or $DDSC_TRACE_LIMIT).
     * @param test_scale build workloads at their small test scale
     *        instead of the default experiment scale (used by the
     *        test suite to keep the matrix cheap).
     * @param jobs worker threads for prefetch(); 0 = $DDSC_JOBS or
     *        hardware_concurrency, 1 = fully serial.
     */
    explicit ExperimentDriver(std::uint64_t trace_limit = 0,
                              bool test_scale = false,
                              unsigned jobs = 0);

    /** Worker threads used by prefetch() (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** Change the worker-thread count (0 = default policy).  Rebuilds
     *  the shared pool; safe only between sweeps, not during a
     *  prefetch(). */
    void setJobs(unsigned jobs);

    /**
     * Make prefetch() honour support::shutdownRequested(): workers
     * skip cells they have not started yet, so the call returns
     * promptly with every *finished* cell published (and flushed to
     * the attached store).  Off by default — a draining ddsc-served
     * wants the opposite, to finish its in-flight cells.
     */
    void setInterruptible(bool on) { interruptible_ = on; }

    /**
     * Batched prefetch (default on): missing cells that share a
     * workload and a front-end fingerprint are simulated as one group
     * — a single streaming SpecFrontEnd pass feeding all their
     * back-end window engines (sim/batched.hh) — instead of one full
     * front-end replay per cell.  The paper matrix needs two passes
     * per workload ({A, C, E} and {B, D}) to cover all 25 cells.
     * Per-cell results are bit-identical either way (wallNanos
     * excepted); tests/batched_equiv_test.cpp holds the driver to
     * that.  A cell that fails inside its group falls back to the
     * per-cell path for its remaining attempts, so fault containment
     * and quarantine behave exactly as before.  setBatched(false)
     * restores the historical cell-at-a-time path (the benchmark's
     * event-engine baseline uses this).
     */
    void setBatched(bool on) { batched_ = on; }
    bool batched() const { return batched_; }

    /** Times a cell simulation is attempted before quarantine. */
    static constexpr unsigned kCellAttempts = 3;

    /**
     * Plug in a persistent result cache (nullptr detaches).  Not
     * owned; must outlive the driver or the next attachStore().  Safe
     * only between sweeps, not during a prefetch().
     */
    void attachStore(ResultStore *store) { store_ = store; }

    /** The attached store (nullptr when none). */
    ResultStore *store() const { return store_; }

    /** Cells served from the attached store instead of simulated. */
    std::size_t storeHits() const;

    /** Cells actually simulated by this driver (cache misses that were
     *  not store hits).  The serving layer's single-flight tests use
     *  this as ground truth: K concurrent identical requests must
     *  raise it by the number of *unique* cells only. */
    std::size_t simulatedCells() const;

    /** Snapshot of the quarantined cells, sorted by key.  Empty means
     *  every requested cell simulated cleanly. */
    std::vector<CellFailure> quarantineReport() const;

    /** Number of quarantined cells (cheaper than quarantineReport()
     *  when only the count is wanted, e.g. a health probe). */
    std::size_t quarantineCount() const;

    /**
     * Quarantine @p key from outside the simulation path — the
     * serving watchdog uses this for a cell stuck past its hard
     * budget.  The quarantine is *provisional*: should the stuck
     * simulation ever finish, its published result clears the entry
     * again (see prefetch()/statsFor()), so a transient stall
     * self-heals while a true hang degrades to the same n/a
     * aggregation as any other poisoned cell.  No-op when the cell is
     * already cached or quarantined.
     */
    void quarantineCell(const std::string &key,
                        const std::string &message);

    /** Largest scheduler wall time of any cached cell, in
     *  nanoseconds (0 with an empty cache).  Feeds the serving
     *  watchdog's adaptive budget: a cell in flight for many times
     *  the slowest cell ever observed is stuck, not slow. */
    std::uint64_t maxCellWallNanos() const;

    /**
     * Simulate every not-yet-cached cell of @p cells concurrently on
     * up to jobs() threads, filling the result cache.  Subsequent
     * stats()/aggregation calls for those cells are cache hits.  Safe
     * to call with duplicate or already-cached cells.
     */
    void prefetch(const std::vector<ExperimentCell> &cells);

    /**
     * As above with per-cell cancellation: @p tokens is parallel to
     * @p cells (empty = no cancellation; asserted otherwise).  A cell
     * whose token fires mid-simulation stops consuming its worker
     * within one chunk, discards its partial state, and is left
     * *unresolved* — neither cached, nor quarantined, nor appended to
     * the store — so the next request that wants it re-runs it
     * cleanly.  Sibling cells of the same batched group are
     * unaffected, exactly like the fault-containment path.  When the
     * same cell appears twice the first occurrence's token governs it.
     */
    void prefetch(const std::vector<ExperimentCell> &cells,
                  const std::vector<support::CancelToken> &tokens);

    /** Enumerate @p set x @p configs x @p widths as cells. */
    static std::vector<ExperimentCell>
    cellsFor(const std::vector<const WorkloadSpec *> &set,
             const std::string &configs,
             const std::vector<unsigned> &widths);

    /** Simulate (cached) one workload under one configuration.
     *  @p token, when valid, cancels a simulation this call itself
     *  runs (cache and store hits never cancel); the cell is left
     *  unresolved and CellCancelled is thrown. */
    const SchedStats &stats(const WorkloadSpec &spec, char config,
                            unsigned width,
                            const support::CancelToken &token = {});

    /** True when the cell is already cached or quarantined — i.e. a
     *  stats() call would not have to simulate.  Lets callers detect
     *  an interrupted prefetch() without triggering serial
     *  re-simulation. */
    bool cellResolved(const WorkloadSpec &spec, char config,
                      unsigned width) const;

    /** True when answering stats() for the cell needs no fresh
     *  simulation: it is cached, quarantined, or present in the
     *  attached store.  The admission controller's brownout mode uses
     *  this to keep answering already-computed cells while shedding
     *  fresh work.  The store probe is by key only (no staleness
     *  check) — a stale record admits one request that then simulates,
     *  an acceptable heuristic error under overload.  Cheap: never
     *  materializes a trace. */
    bool cellDurable(const WorkloadSpec &spec, char config,
                     unsigned width) const;

    /** As above with an arbitrary MachineConfig (ablation studies).
     *  @param key must uniquely identify the configuration; the driver
     *  cross-checks it against MachineConfig::fingerprint() and panics
     *  (debug) or warns and disambiguates (release) on collisions.
     *  @param token as in stats(). */
    const SchedStats &statsFor(const WorkloadSpec &spec,
                               const MachineConfig &config,
                               const std::string &key,
                               const support::CancelToken &token = {});

    /** Harmonic-mean IPC over @p set (paper Figures 2, 4, 6). */
    double hmeanIpc(const std::vector<const WorkloadSpec *> &set,
                    char config, unsigned width);

    /** Harmonic mean of per-benchmark speedups versus configuration A
     *  at the same width (paper Figures 3, 5, 7). */
    double hmeanSpeedup(const std::vector<const WorkloadSpec *> &set,
                        char config, unsigned width);

    /** Collapse statistics merged across @p set (Figures 8-10 and
     *  Tables 5-6 aggregate over all benchmarks). */
    CollapseStats mergedCollapse(
        const std::vector<const WorkloadSpec *> &set, char config,
        unsigned width);

    /** Aggregate percentage of instructions collapsed (Figure 8). */
    double pctCollapsed(const std::vector<const WorkloadSpec *> &set,
                        char config, unsigned width);

    /** Arithmetic mean over @p set of a load-class percentage under
     *  configuration D-style runs (Tables 3 and 4). */
    double meanLoadClassPct(const std::vector<const WorkloadSpec *> &set,
                            char config, unsigned width, LoadClass cls);

    /** The trace (cached, truncated) for one workload; read it
     *  through cursor(). */
    const SharedTrace &trace(const WorkloadSpec &spec);

    /** Content digest of trace(spec), computed exactly once per
     *  workload (TraceStore latches it).  Keys the persistent result
     *  store together with the machine fingerprint. */
    std::uint64_t traceDigest(const WorkloadSpec &spec);

    /**
     * Spill VM-generated traces to DDSCTRC v4 files under @p dir and
     * serve them mmap'd (--trace-dir in the tools): peak RSS becomes
     * one workload's vector during generation instead of the whole
     * corpus, and the residency budget below can evict cold traces.
     * "" restores in-memory traces.  Affects only workloads not yet
     * materialized — set it before the first sweep.
     */
    void setTraceDir(const std::string &dir);

    /** Page-residency budget over mapped traces in MiB, enforced by
     *  LRU eviction at cell start (--trace-budget-mb; 0 = unlimited).
     *  In-memory traces are not charged. */
    void setTraceBudgetMb(std::uint64_t mb);

    /** Residency counters for the health endpoint. */
    TraceResidencyManager::Counters traceResidency() const;

    /** Pointers to all six workloads. */
    static std::vector<const WorkloadSpec *> everything();

    /** The configured trace limit (0 = none). */
    std::uint64_t traceLimit() const { return traceLimit_; }

    /** Number of cached cells (safe to call during a prefetch). */
    std::size_t cachedCells() const;

    /** Cumulative scheduler wall time over all cached cells, in
     *  seconds — compare against elapsed time to see the parallel
     *  speedup.  Safe to call during a prefetch. */
    double cachedCellSeconds() const;

  private:
    /** Cache key for a paper cell. */
    static std::string cellKey(char config, unsigned width);

    /** Look up / verify the fingerprint for @p cache_key, returning
     *  the (possibly disambiguated) key to use.  Caller holds no
     *  lock; this takes mutex_ itself. */
    std::string guardKey(const std::string &cache_key,
                         const MachineConfig &config);

    /** Run one cell over a fresh cursor (no caching, no locking).
     *  @p token is polled by the scheduler at chunk granularity;
     *  unwinds with support::CancelledError when it fires. */
    SchedStats runCell(const SharedTrace &trace,
                       const MachineConfig &config,
                       const support::CancelToken &token) const;

    /** runCell plus the "cell-throw"/"cell-stall" fault-injection
     *  hooks (@p key is the hook's tag, e.g. "li/D/16").  The
     *  injected stall sleeps in slices so a firing @p token
     *  interrupts it — the watchdog's active cancel must be able to
     *  reclaim exactly the flights that are stuck. */
    SchedStats runCellChecked(const std::string &key,
                              const SharedTrace &trace,
                              const MachineConfig &config,
                              const support::CancelToken &token) const;

    /** Try a cell up to kCellAttempts times, starting the count at
     *  @p first_attempt (the batched path burns attempt 1 inside its
     *  group and retries here from 2).  True with @p out filled on
     *  success; false with @p failure describing the last error when
     *  every attempt threw.  A firing @p token is *not* a failure:
     *  support::CancelledError propagates out immediately without
     *  consuming attempts (the same budget would just cancel again).
     *  Thread-safe (touches no driver state). */
    bool attemptCell(const std::string &key,
                     const SharedTrace &trace,
                     const MachineConfig &config, SchedStats &out,
                     CellFailure &failure,
                     unsigned first_attempt = 1,
                     const support::CancelToken &token = {}) const;

    /** The shared worker pool, created on first use with jobs_
     *  threads.  Persistent across prefetch() calls so concurrent
     *  batches (ddsc-served sessions) share one set of workers
     *  instead of spawning pools per sweep. */
    support::ThreadPool &pool();

    std::uint64_t traceLimit_;
    bool testScale_;
    unsigned jobs_;
    bool interruptible_ = false;
    bool batched_ = true;
    std::unique_ptr<support::ThreadPool> pool_;
    /** Guards pool_ creation only; traces live in traceStore_, which
     *  latches materialization per workload so unrelated workloads no
     *  longer serialize behind one lock. */
    mutable std::mutex poolMutex_;
    /** Owns the workload traces (build-once, digest-once, optional
     *  spill-to-v4 + mmap, residency budget). */
    TraceStore traceStore_;
    std::map<std::string, SchedStats> cache_;
    /** cache key -> MachineConfig::fingerprint() that filled it. */
    std::map<std::string, std::string> fingerprints_;
    /** cache key -> why the cell is poisoned. */
    std::map<std::string, CellFailure> quarantine_;
    ResultStore *store_ = nullptr;      ///< optional, not owned
    std::size_t storeHits_ = 0;
    std::size_t simulated_ = 0;         ///< cells actually run
    /** Guards cache_ / fingerprints_ / quarantine_ / storeHits_ /
     *  simulated_ during parallel prefetch (mutable: const observers
     *  lock it too). */
    mutable std::mutex mutex_;
};

/** Parse $DDSC_TRACE_LIMIT (0 when unset/invalid/trailing garbage;
 *  out-of-range values clamp to UINT64_MAX = effectively unlimited). */
std::uint64_t envTraceLimit();

/**
 * Per-cell stats access for the aggregation helpers below: return the
 * stats for (workload, config, width) or throw CellQuarantined.  The
 * local path binds ExperimentDriver::stats(); the fleet router binds
 * a lookup over stats shipped back from its shards — both aggregate
 * through the same functions, which is what makes a routed sweep
 * byte-identical to a fresh local one.
 */
using CellStatsFn = std::function<const SchedStats &(
    const WorkloadSpec &, char config, unsigned width)>;

/** Harmonic-mean IPC over @p set (paper Figures 2, 4, 6). */
double hmeanIpcOver(const std::vector<const WorkloadSpec *> &set,
                    char config, unsigned width,
                    const CellStatsFn &stats);

/** Harmonic mean of per-benchmark speedups versus configuration A at
 *  the same width (paper Figures 3, 5, 7). */
double hmeanSpeedupOver(const std::vector<const WorkloadSpec *> &set,
                        char config, unsigned width,
                        const CellStatsFn &stats);

/** Collapse statistics merged across @p set. */
CollapseStats mergedCollapseOver(
    const std::vector<const WorkloadSpec *> &set, char config,
    unsigned width, const CellStatsFn &stats);

/** Aggregate percentage of instructions collapsed (Figure 8). */
double pctCollapsedOver(const std::vector<const WorkloadSpec *> &set,
                        char config, unsigned width,
                        const CellStatsFn &stats);

/** Arithmetic mean over @p set of a load-class percentage. */
double meanLoadClassPctOver(
    const std::vector<const WorkloadSpec *> &set, char config,
    unsigned width, LoadClass cls, const CellStatsFn &stats);

} // namespace ddsc

#endif // DDSC_SIM_EXPERIMENT_HH
