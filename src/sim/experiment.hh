/**
 * @file
 * Experiment driver: runs the paper's configuration matrix over the
 * workload set with trace and result caching, and provides the
 * aggregations the paper reports (harmonic-mean IPC and speedup over
 * the base machine, merged collapse statistics, mean load-class
 * percentages).
 *
 * The environment variable DDSC_TRACE_LIMIT truncates every trace to
 * at most that many instructions — the same rule the paper applied at
 * 250M ("only the first 250 million instructions of each benchmark
 * trace were simulated").  Use it to make quick bench runs cheap.
 */

#ifndef DDSC_SIM_EXPERIMENT_HH
#define DDSC_SIM_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/scheduler.hh"
#include "core/sched_stats.hh"
#include "workloads/workloads.hh"

namespace ddsc
{

/**
 * Runs and caches simulations of the A..E matrix.
 */
class ExperimentDriver
{
  public:
    /**
     * @param trace_limit 0 = unlimited (or $DDSC_TRACE_LIMIT).
     * @param test_scale build workloads at their small test scale
     *        instead of the default experiment scale (used by the
     *        test suite to keep the matrix cheap).
     */
    explicit ExperimentDriver(std::uint64_t trace_limit = 0,
                              bool test_scale = false);

    /** Simulate (cached) one workload under one configuration. */
    const SchedStats &stats(const WorkloadSpec &spec, char config,
                            unsigned width);

    /** As above with an arbitrary MachineConfig (ablation studies).
     *  @param key must uniquely identify the configuration. */
    const SchedStats &statsFor(const WorkloadSpec &spec,
                               const MachineConfig &config,
                               const std::string &key);

    /** Harmonic-mean IPC over @p set (paper Figures 2, 4, 6). */
    double hmeanIpc(const std::vector<const WorkloadSpec *> &set,
                    char config, unsigned width);

    /** Harmonic mean of per-benchmark speedups versus configuration A
     *  at the same width (paper Figures 3, 5, 7). */
    double hmeanSpeedup(const std::vector<const WorkloadSpec *> &set,
                        char config, unsigned width);

    /** Collapse statistics merged across @p set (Figures 8-10 and
     *  Tables 5-6 aggregate over all benchmarks). */
    CollapseStats mergedCollapse(
        const std::vector<const WorkloadSpec *> &set, char config,
        unsigned width);

    /** Aggregate percentage of instructions collapsed (Figure 8). */
    double pctCollapsed(const std::vector<const WorkloadSpec *> &set,
                        char config, unsigned width);

    /** Arithmetic mean over @p set of a load-class percentage under
     *  configuration D-style runs (Tables 3 and 4). */
    double meanLoadClassPct(const std::vector<const WorkloadSpec *> &set,
                            char config, unsigned width, LoadClass cls);

    /** The trace (cached, truncated) for one workload. */
    VectorTraceSource &trace(const WorkloadSpec &spec);

    /** Pointers to all six workloads. */
    static std::vector<const WorkloadSpec *> everything();

    /** The configured trace limit (0 = none). */
    std::uint64_t traceLimit() const { return traceLimit_; }

  private:
    std::uint64_t traceLimit_;
    bool testScale_;
    std::map<std::string, VectorTraceSource> traces_;
    std::map<std::string, SchedStats> cache_;
};

/** Parse $DDSC_TRACE_LIMIT (0 when unset/invalid). */
std::uint64_t envTraceLimit();

} // namespace ddsc

#endif // DDSC_SIM_EXPERIMENT_HH
