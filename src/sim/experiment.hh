/**
 * @file
 * Experiment driver: runs the paper's configuration matrix over the
 * workload set with trace and result caching, and provides the
 * aggregations the paper reports (harmonic-mean IPC and speedup over
 * the base machine, merged collapse statistics, mean load-class
 * percentages).
 *
 * The driver is parallel: every (workload, config, width) cell is an
 * independent LimitScheduler run over an immutable cached trace, so
 * prefetch() farms missing cells out to a thread pool (`--jobs` /
 * $DDSC_JOBS, default hardware_concurrency) and the aggregation
 * helpers prefetch their whole cell set before reducing serially.
 * Results are bit-identical to a serial run regardless of job count
 * (tests/parallel_equiv_test.cpp is the oracle): each cell is computed
 * by the same deterministic scheduler over a private trace cursor, and
 * the reductions always read cells in the caller-given set order.
 *
 * The environment variable DDSC_TRACE_LIMIT truncates every trace to
 * at most that many instructions — the same rule the paper applied at
 * 250M ("only the first 250 million instructions of each benchmark
 * trace were simulated").  Use it to make quick bench runs cheap.
 */

#ifndef DDSC_SIM_EXPERIMENT_HH
#define DDSC_SIM_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/scheduler.hh"
#include "core/sched_stats.hh"
#include "workloads/workloads.hh"

namespace ddsc
{

/** One cell of the experiment matrix. */
struct ExperimentCell
{
    const WorkloadSpec *spec;
    char config;        ///< paper configuration letter A..E
    unsigned width;     ///< issue width
};

/**
 * Runs and caches simulations of the A..E matrix.
 */
class ExperimentDriver
{
  public:
    /**
     * @param trace_limit 0 = unlimited (or $DDSC_TRACE_LIMIT).
     * @param test_scale build workloads at their small test scale
     *        instead of the default experiment scale (used by the
     *        test suite to keep the matrix cheap).
     * @param jobs worker threads for prefetch(); 0 = $DDSC_JOBS or
     *        hardware_concurrency, 1 = fully serial.
     */
    explicit ExperimentDriver(std::uint64_t trace_limit = 0,
                              bool test_scale = false,
                              unsigned jobs = 0);

    /** Worker threads used by prefetch() (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** Change the worker-thread count (0 = default policy). */
    void setJobs(unsigned jobs);

    /**
     * Simulate every not-yet-cached cell of @p cells concurrently on
     * up to jobs() threads, filling the result cache.  Subsequent
     * stats()/aggregation calls for those cells are cache hits.  Safe
     * to call with duplicate or already-cached cells.
     */
    void prefetch(const std::vector<ExperimentCell> &cells);

    /** Enumerate @p set x @p configs x @p widths as cells. */
    static std::vector<ExperimentCell>
    cellsFor(const std::vector<const WorkloadSpec *> &set,
             const std::string &configs,
             const std::vector<unsigned> &widths);

    /** Simulate (cached) one workload under one configuration. */
    const SchedStats &stats(const WorkloadSpec &spec, char config,
                            unsigned width);

    /** As above with an arbitrary MachineConfig (ablation studies).
     *  @param key must uniquely identify the configuration; the driver
     *  cross-checks it against MachineConfig::fingerprint() and panics
     *  (debug) or warns and disambiguates (release) on collisions. */
    const SchedStats &statsFor(const WorkloadSpec &spec,
                               const MachineConfig &config,
                               const std::string &key);

    /** Harmonic-mean IPC over @p set (paper Figures 2, 4, 6). */
    double hmeanIpc(const std::vector<const WorkloadSpec *> &set,
                    char config, unsigned width);

    /** Harmonic mean of per-benchmark speedups versus configuration A
     *  at the same width (paper Figures 3, 5, 7). */
    double hmeanSpeedup(const std::vector<const WorkloadSpec *> &set,
                        char config, unsigned width);

    /** Collapse statistics merged across @p set (Figures 8-10 and
     *  Tables 5-6 aggregate over all benchmarks). */
    CollapseStats mergedCollapse(
        const std::vector<const WorkloadSpec *> &set, char config,
        unsigned width);

    /** Aggregate percentage of instructions collapsed (Figure 8). */
    double pctCollapsed(const std::vector<const WorkloadSpec *> &set,
                        char config, unsigned width);

    /** Arithmetic mean over @p set of a load-class percentage under
     *  configuration D-style runs (Tables 3 and 4). */
    double meanLoadClassPct(const std::vector<const WorkloadSpec *> &set,
                            char config, unsigned width, LoadClass cls);

    /** The trace (cached, truncated) for one workload. */
    VectorTraceSource &trace(const WorkloadSpec &spec);

    /** Pointers to all six workloads. */
    static std::vector<const WorkloadSpec *> everything();

    /** The configured trace limit (0 = none). */
    std::uint64_t traceLimit() const { return traceLimit_; }

    /** Number of cached cells (safe to call during a prefetch). */
    std::size_t cachedCells() const;

    /** Cumulative scheduler wall time over all cached cells, in
     *  seconds — compare against elapsed time to see the parallel
     *  speedup.  Safe to call during a prefetch. */
    double cachedCellSeconds() const;

  private:
    /** Cache key for a paper cell. */
    static std::string cellKey(char config, unsigned width);

    /** Look up / verify the fingerprint for @p cache_key, returning
     *  the (possibly disambiguated) key to use.  Caller holds no
     *  lock; this takes mutex_ itself. */
    std::string guardKey(const std::string &cache_key,
                         const MachineConfig &config);

    /** Run one cell (no caching, no locking). */
    SchedStats runCell(const VectorTraceSource &trace,
                       const MachineConfig &config) const;

    std::uint64_t traceLimit_;
    bool testScale_;
    unsigned jobs_;
    std::map<std::string, VectorTraceSource> traces_;
    std::map<std::string, SchedStats> cache_;
    /** cache key -> MachineConfig::fingerprint() that filled it. */
    std::map<std::string, std::string> fingerprints_;
    /** Guards cache_ / fingerprints_ during parallel prefetch
     *  (mutable: the const observers lock it too). */
    mutable std::mutex mutex_;
};

/** Parse $DDSC_TRACE_LIMIT (0 when unset/invalid/trailing garbage;
 *  out-of-range values clamp to UINT64_MAX = effectively unlimited). */
std::uint64_t envTraceLimit();

} // namespace ddsc

#endif // DDSC_SIM_EXPERIMENT_HH
