#include "cti_pred.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ddsc
{

ReturnAddressStack::ReturnAddressStack(unsigned depth)
    : entries_(depth, 0)
{
    ddsc_assert(depth >= 1, "RAS needs at least one entry");
}

void
ReturnAddressStack::pushCall(std::uint64_t return_pc)
{
    entries_[top_] = return_pc;
    top_ = (top_ + 1) % entries_.size();
    occupancy_ = std::min<unsigned>(occupancy_ + 1,
                                    static_cast<unsigned>(
                                        entries_.size()));
}

std::uint64_t
ReturnAddressStack::popReturn()
{
    if (occupancy_ == 0)
        return 0;
    top_ = (top_ + static_cast<unsigned>(entries_.size()) - 1) %
        entries_.size();
    --occupancy_;
    return entries_[top_];
}

void
ReturnAddressStack::reset()
{
    std::fill(entries_.begin(), entries_.end(), 0);
    top_ = 0;
    occupancy_ = 0;
}

IndirectTargetBuffer::IndirectTargetBuffer(unsigned index_bits)
    : indexBits_(index_bits),
      targets_(std::size_t{1} << index_bits, 0)
{
    ddsc_assert(index_bits >= 1 && index_bits <= 24,
                "unreasonable buffer size 2^%u", index_bits);
}

std::size_t
IndirectTargetBuffer::indexOf(std::uint64_t pc) const
{
    return (pc >> 2) & ((std::size_t{1} << indexBits_) - 1);
}

std::uint64_t
IndirectTargetBuffer::predict(std::uint64_t pc) const
{
    return targets_[indexOf(pc)];
}

void
IndirectTargetBuffer::update(std::uint64_t pc, std::uint64_t target)
{
    targets_[indexOf(pc)] = target;
}

void
IndirectTargetBuffer::reset()
{
    std::fill(targets_.begin(), targets_.end(), 0);
}

} // namespace ddsc
