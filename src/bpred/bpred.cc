#include "bpred.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ddsc
{

namespace
{

/** Weakly-not-taken initial state for 2-bit counters. */
constexpr unsigned kWeaklyNotTaken = 1;

std::vector<SatCounter>
makeTable(unsigned index_bits)
{
    ddsc_assert(index_bits >= 1 && index_bits <= 24,
                "unreasonable predictor size 2^%u", index_bits);
    return std::vector<SatCounter>(std::size_t{1} << index_bits,
                                   SatCounter(2, kWeaklyNotTaken));
}

} // anonymous namespace

BimodalPredictor::BimodalPredictor(unsigned index_bits)
    : indexBits_(index_bits), table_(makeTable(index_bits))
{}

std::size_t
BimodalPredictor::indexOf(std::uint64_t pc) const
{
    return (pc >> 2) & ((std::size_t{1} << indexBits_) - 1);
}

bool
BimodalPredictor::predict(std::uint64_t pc)
{
    return table_[indexOf(pc)].taken();
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    SatCounter &ctr = table_[indexOf(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

void
BimodalPredictor::reset()
{
    for (auto &ctr : table_)
        ctr.set(kWeaklyNotTaken);
}

std::string
BimodalPredictor::name() const
{
    return "bimodal" + std::to_string(indexBits_);
}

GsharePredictor::GsharePredictor(unsigned index_bits)
    : indexBits_(index_bits), table_(makeTable(index_bits))
{}

std::size_t
GsharePredictor::indexOf(std::uint64_t pc) const
{
    const std::size_t mask = (std::size_t{1} << indexBits_) - 1;
    return ((pc >> 2) ^ history_) & mask;
}

bool
GsharePredictor::predict(std::uint64_t pc)
{
    return table_[indexOf(pc)].taken();
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    SatCounter &ctr = table_[indexOf(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
        ((std::uint64_t{1} << indexBits_) - 1);
}

void
GsharePredictor::reset()
{
    for (auto &ctr : table_)
        ctr.set(kWeaklyNotTaken);
    history_ = 0;
}

std::string
GsharePredictor::name() const
{
    return "gshare" + std::to_string(indexBits_);
}

LocalPredictor::LocalPredictor(unsigned history_bits,
                               unsigned index_bits)
    : historyBits_(history_bits),
      indexBits_(index_bits),
      histories_(std::size_t{1} << index_bits, 0),
      patterns_(makeTable(history_bits))
{
    ddsc_assert(history_bits >= 1 && history_bits <= 24,
                "unreasonable history length %u", history_bits);
}

std::size_t
LocalPredictor::historyIndexOf(std::uint64_t pc) const
{
    return (pc >> 2) & ((std::size_t{1} << indexBits_) - 1);
}

bool
LocalPredictor::predict(std::uint64_t pc)
{
    const std::uint32_t history = histories_[historyIndexOf(pc)];
    return patterns_[history].taken();
}

void
LocalPredictor::update(std::uint64_t pc, bool taken)
{
    std::uint32_t &history = histories_[historyIndexOf(pc)];
    SatCounter &ctr = patterns_[history];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history = ((history << 1) | (taken ? 1 : 0)) &
        ((std::uint32_t{1} << historyBits_) - 1);
}

void
LocalPredictor::reset()
{
    std::fill(histories_.begin(), histories_.end(), 0);
    for (auto &ctr : patterns_)
        ctr.set(kWeaklyNotTaken);
}

std::string
LocalPredictor::name() const
{
    return "local" + std::to_string(indexBits_) + "/" +
        std::to_string(historyBits_);
}

CombiningPredictor::CombiningPredictor(unsigned bimodal_bits)
    : bimodalBits_(bimodal_bits),
      bimodal_(bimodal_bits),
      gshare_(bimodal_bits + 1),
      chooser_(makeTable(bimodal_bits))
{}

bool
CombiningPredictor::predict(std::uint64_t pc)
{
    const std::size_t mask = (std::size_t{1} << bimodalBits_) - 1;
    const SatCounter &choice = chooser_[(pc >> 2) & mask];
    // Chooser in the upper half selects gshare.
    return choice.taken() ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
CombiningPredictor::update(std::uint64_t pc, bool taken)
{
    const bool bim_correct = bimodal_.predict(pc) == taken;
    const bool gsh_correct = gshare_.predict(pc) == taken;

    // Train the chooser toward the component that was right when they
    // disagree (McFarling's update rule).
    if (bim_correct != gsh_correct) {
        const std::size_t mask = (std::size_t{1} << bimodalBits_) - 1;
        SatCounter &choice = chooser_[(pc >> 2) & mask];
        if (gsh_correct)
            choice.increment();
        else
            choice.decrement();
    }

    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

void
CombiningPredictor::reset()
{
    bimodal_.reset();
    gshare_.reset();
    for (auto &ctr : chooser_)
        ctr.set(kWeaklyNotTaken);
}

std::string
CombiningPredictor::name() const
{
    return "bimodal" + std::to_string(bimodalBits_) + "/gshare" +
        std::to_string(bimodalBits_ + 1);
}

std::size_t
CombiningPredictor::costBytes() const
{
    const std::size_t counters = (std::size_t{1} << bimodalBits_) +
        (std::size_t{1} << (bimodalBits_ + 1)) +
        (std::size_t{1} << bimodalBits_);
    return counters * 2 / 8;
}

std::unique_ptr<BranchPredictor>
makePaperPredictor()
{
    return std::make_unique<CombiningPredictor>(13);
}

} // namespace ddsc
