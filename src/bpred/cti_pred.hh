/**
 * @file
 * Control-transfer target prediction: a return-address stack for
 * call/return pairs and a last-target buffer for indirect jumps.
 *
 * The paper assumes all non-conditional control transfers are
 * "always predicted correctly" (section 4).  These structures let the
 * simulator relax that assumption and measure what the idealization is
 * worth (022.li spends ~7% of its instructions in calls/returns, which
 * the paper cites as a reason its collapsing gains are small).
 */

#ifndef DDSC_BPRED_CTI_PRED_HH
#define DDSC_BPRED_CTI_PRED_HH

#include <cstdint>
#include <vector>

namespace ddsc
{

/**
 * A fixed-depth return-address stack.  Overflow wraps (oldest entry is
 * overwritten), underflow predicts 0 (always wrong), both as in real
 * hardware.
 */
class ReturnAddressStack
{
  public:
    /** @param depth number of entries (default 16, a mid-90s size). */
    explicit ReturnAddressStack(unsigned depth = 16);

    /** Record the return address of a call being fetched. */
    void pushCall(std::uint64_t return_pc);

    /**
     * Predict the target of a return and pop the stack.
     * @return the predicted return address (0 when empty).
     */
    std::uint64_t popReturn();

    /** Current occupancy (for tests). */
    unsigned occupancy() const { return occupancy_; }

    /** Clear the stack. */
    void reset();

  private:
    std::vector<std::uint64_t> entries_;
    unsigned top_ = 0;          ///< next push slot
    unsigned occupancy_ = 0;
};

/**
 * A direct-mapped last-target buffer for indirect jumps.
 */
class IndirectTargetBuffer
{
  public:
    /** @param index_bits log2 of the entry count. */
    explicit IndirectTargetBuffer(unsigned index_bits = 9);

    /** Predicted target for the indirect jump at @p pc (0 = cold). */
    std::uint64_t predict(std::uint64_t pc) const;

    /** Train with the resolved target. */
    void update(std::uint64_t pc, std::uint64_t target);

    /** Clear all entries. */
    void reset();

  private:
    std::size_t indexOf(std::uint64_t pc) const;

    unsigned indexBits_;
    std::vector<std::uint64_t> targets_;
};

} // namespace ddsc

#endif // DDSC_BPRED_CTI_PRED_HH
