/**
 * @file
 * Conditional-branch direction predictors.
 *
 * The paper predicts conditional branches with McFarling's
 * "bimodalN/gshareN+1" combining scheme at an 8 kByte hardware cost;
 * all other control transfers are assumed perfectly predicted.  We
 * provide the component predictors individually as well, both for unit
 * testing and for ablation benchmarks.
 */

#ifndef DDSC_BPRED_BPRED_HH
#define DDSC_BPRED_BPRED_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/sat_counter.hh"

namespace ddsc
{

/**
 * Direction predictor interface for conditional branches.
 */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /** Train with the resolved direction. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Clear all state. */
    virtual void reset() = 0;

    /** Human-readable configuration name. */
    virtual std::string name() const = 0;

    /**
     * Convenience: predict, train, and report whether the prediction
     * was correct.  This is the only call the simulator makes.
     */
    bool
    predictAndUpdate(std::uint64_t pc, bool taken)
    {
        const bool predicted = predict(pc);
        update(pc, taken);
        return predicted == taken;
    }
};

/** A predictor that is always right (the paper's non-conditional CTIs). */
class PerfectPredictor : public BranchPredictor
{
  public:
    bool predict(std::uint64_t) override { return last_; }
    void update(std::uint64_t, bool) override {}
    void reset() override {}
    std::string name() const override { return "perfect"; }

    /** Perfect prediction is modeled at the call site. */
    bool
    predictPerfectly(bool actual)
    {
        last_ = actual;
        return actual;
    }

  private:
    bool last_ = false;
};

/** Static always-taken / always-not-taken baseline. */
class StaticPredictor : public BranchPredictor
{
  public:
    explicit StaticPredictor(bool taken) : taken_(taken) {}
    bool predict(std::uint64_t) override { return taken_; }
    void update(std::uint64_t, bool) override {}
    void reset() override {}
    std::string name() const override
    {
        return taken_ ? "always-taken" : "always-not-taken";
    }

  private:
    bool taken_;
};

/**
 * Bimodal predictor: a table of 2-bit counters indexed by pc.
 */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param index_bits log2 of the number of counters. */
    explicit BimodalPredictor(unsigned index_bits);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;

  private:
    std::size_t indexOf(std::uint64_t pc) const;

    unsigned indexBits_;
    std::vector<SatCounter> table_;
};

/**
 * Gshare predictor: 2-bit counters indexed by pc XOR global history.
 */
class GsharePredictor : public BranchPredictor
{
  public:
    /** @param index_bits log2 table size; also the history length. */
    explicit GsharePredictor(unsigned index_bits);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;

  private:
    std::size_t indexOf(std::uint64_t pc) const;

    unsigned indexBits_;
    std::uint64_t history_ = 0;
    std::vector<SatCounter> table_;
};

/**
 * Two-level local-history predictor (PAg style): a per-branch history
 * table indexed by pc feeds a shared pattern table of 2-bit counters.
 * Captures per-branch periodic patterns (loop trip counts) that the
 * global-history gshare dilutes.  Not used by the paper's machines;
 * provided for the predictor-comparison study.
 */
class LocalPredictor : public BranchPredictor
{
  public:
    /**
     * @param history_bits history length and log2 pattern-table size.
     * @param index_bits log2 of the per-branch history table size.
     */
    explicit LocalPredictor(unsigned history_bits = 10,
                            unsigned index_bits = 10);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;

  private:
    std::size_t historyIndexOf(std::uint64_t pc) const;

    unsigned historyBits_;
    unsigned indexBits_;
    std::vector<std::uint32_t> histories_;
    std::vector<SatCounter> patterns_;
};

/**
 * McFarling combining predictor: bimodal(N) + gshare(N+1) + a chooser
 * table of 2-bit counters indexed like the bimodal component.
 *
 * With N = 13 the cost is (2^13 + 2^14 + 2^13) 2-bit counters
 * = 65536 bits = 8 kBytes, the budget quoted in the paper.
 */
class CombiningPredictor : public BranchPredictor
{
  public:
    explicit CombiningPredictor(unsigned bimodal_bits = 13);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;

    /** Total predictor cost in bytes (for reporting). */
    std::size_t costBytes() const;

  private:
    unsigned bimodalBits_;
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<SatCounter> chooser_;
};

/** Build the paper's default 8 kByte combining predictor. */
std::unique_ptr<BranchPredictor> makePaperPredictor();

} // namespace ddsc

#endif // DDSC_BPRED_BPRED_HH
