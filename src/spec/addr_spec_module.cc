#include "addr_spec_module.hh"

#include <cstdio>

namespace ddsc::spec
{

AddrSpecModule::AddrSpecModule(const MachineConfig &config,
                               FrontEndTrainCounts &trains)
    : kind_(config.addrPredKind),
      predictor_(makeAddressPredictor(config.addrPredKind,
                                      config.addrPredIndexBits,
                                      config.addrConfidenceThreshold)),
      trains_(trains)
{
}

std::string
AddrSpecModule::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "addr-spec(%.*s)",
                  static_cast<int>(addrPredKindName(kind_).size()),
                  addrPredKindName(kind_).data());
    return buf;
}

void
AddrSpecModule::reset()
{
    predictor_->reset();
}

void
AddrSpecModule::proposeRelaxations(const TraceRecord &rec, std::uint64_t,
                                   const MemDepObservation &,
                                   InsertAnnotation &ann)
{
    if (!rec.isLoad())
        return;
    // Trained by every load, in program order, whether or not the
    // prediction is used (the paper's Section 3 discipline).
    const AddrPrediction pred = predictor_->predict(rec.pc);
    if (pred.usable) {
        ann.flags |= InsertAnnotation::kFlagPredUsable;
        if (pred.addr == rec.ea)
            ann.flags |= InsertAnnotation::kFlagPredCorrect;
    }
    predictor_->update(rec.pc, rec.ea);
    ++trains_.address;
}

} // namespace ddsc::spec
