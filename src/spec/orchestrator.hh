/**
 * @file
 * The speculation-module orchestrator: composes an ordered stack of
 * SpeculationModules for one MachineConfig.
 *
 * Stack order is fixed and mirrors the order the historical hard-wired
 * front-end did the same work (so the paper configs A-E annotate
 * byte-identically through the refactored path):
 *
 *   phase 1 (before dependence computation)
 *     collapse      expr sizes + signature columns   (collapsing on)
 *   phase 2 (after RAW producers and perfect disambiguation resolve)
 *     mem-dep       the memory arc (always present: Perfect mode is
 *                   the paper's exact arc, Predicted mode config F)
 *     addr-spec     two-delta address prediction     (loadSpec Real)
 *     value-pred    last-value or FCM/stride hybrid  (loadValuePrediction)
 *
 * The stack is owned by SpecFrontEnd; one stack serves one front-end
 * fingerprint group, so each module trains exactly once per record no
 * matter how many back-end cells consume the batch.
 */

#ifndef DDSC_SPEC_ORCHESTRATOR_HH
#define DDSC_SPEC_ORCHESTRATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "spec/module.hh"

namespace ddsc::spec
{

/** The ordered, config-selected module stack. */
class SpeculationStack
{
  public:
    /**
     * Build the stack @p config calls for, wiring predictor training
     * counters into @p trains (whose lifetime must cover the stack's).
     */
    SpeculationStack(const MachineConfig &config,
                     FrontEndTrainCounts &trains);
    ~SpeculationStack();

    SpeculationStack(const SpeculationStack &) = delete;
    SpeculationStack &operator=(const SpeculationStack &) = delete;

    /** Restart every module for a new trace. */
    void reset();

    /**
     * Enable/disable the phase-1 collapse columns after construction
     * (the batched multi-config front-end enables them when *any*
     * consumer cell collapses, mirroring the historical
     * setCollapseColumns).
     */
    void setCollapseColumns(bool on);
    /** Whether phase 1 currently annotates collapse columns. */
    bool collapseColumns() const { return collapseOn_; }

    /** Phase 1: pure-function-of-record columns. */
    void
    annotateRecord(const TraceRecord &rec, InsertAnnotation &ann)
    {
        if (collapseOn_)
            collapse_->annotateRecord(rec, ann);
    }

    /** Phase 2: dependence relaxations + predictor training. */
    void
    proposeRelaxations(const TraceRecord &rec, std::uint64_t seq,
                       const MemDepObservation &mem,
                       InsertAnnotation &ann)
    {
        for (SpeculationModule *module : phase2_)
            module->proposeRelaxations(rec, seq, mem, ann);
    }

    /** The active modules, in stack order (phase 1 then phase 2). */
    std::vector<const SpeculationModule *> activeModules() const;

    /** "collapse -> mem-dep(...) -> addr-spec(...)" (for tooling). */
    std::string describe() const;

  private:
    std::vector<std::unique_ptr<SpeculationModule>> owned_;
    SpeculationModule *collapse_ = nullptr;     ///< phase 1 (or null)
    std::vector<SpeculationModule *> phase2_;   ///< in stack order
    bool collapseOn_ = false;
};

/**
 * One-line summary of the module stack a config letter activates,
 * without building predictor tables (for `--list-configs`).
 */
std::string moduleStackSummary(const MachineConfig &config);

} // namespace ddsc::spec

#endif // DDSC_SPEC_ORCHESTRATOR_HH
