#include "mem_dep_module.hh"

#include <cstdio>

#include "support/logging.hh"

namespace ddsc::spec
{

MemDepPredictor::MemDepPredictor(unsigned index_bits,
                                 unsigned confidence_threshold)
    : threshold_(confidence_threshold)
{
    ddsc_assert(index_bits >= 1 && index_bits <= 24,
                "unreasonable predictor size 2^%u", index_bits);
    table_.assign(std::size_t{1} << index_bits, SatCounter{2, 0});
}

std::size_t
MemDepPredictor::indexOf(std::uint64_t pc) const
{
    // Instructions are word aligned; drop the two dead bits.
    return (pc >> 2) & (table_.size() - 1);
}

bool
MemDepPredictor::predictDependent(std::uint64_t pc) const
{
    return table_[indexOf(pc)].value() > threshold_;
}

void
MemDepPredictor::update(std::uint64_t pc, bool dependent)
{
    SatCounter &counter = table_[indexOf(pc)];
    if (dependent)
        counter.increment(2);   // learn collisions fast: squashes are
    else                        // much dearer than false dependences
        counter.decrement(1);
}

void
MemDepPredictor::reset()
{
    for (SatCounter &counter : table_)
        counter = SatCounter{2, 0};
}

MemDepModule::MemDepModule(const MachineConfig &config,
                           FrontEndTrainCounts &trains)
    : mode_(config.memDep),
      trainDistance_(config.memDepTrainDistance),
      predictor_(config.memDepIndexBits, config.memDepConfidenceThreshold),
      trains_(trains)
{
}

std::string
MemDepModule::describe() const
{
    if (mode_ == MemDepMode::Perfect)
        return "mem-dep(perfect disambiguation)";
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "mem-dep(predicted, %zu entries, train-dist %u)",
                  predictor_.entries(), trainDistance_);
    return buf;
}

void
MemDepModule::reset()
{
    predictor_.reset();
}

void
MemDepModule::proposeRelaxations(const TraceRecord &rec, std::uint64_t seq,
                                 const MemDepObservation &mem,
                                 InsertAnnotation &ann)
{
    if (!rec.isLoad())
        return;
    if (mode_ == MemDepMode::Perfect) {
        // The paper's model, byte-for-byte: the memory arc (if any) is
        // the last arc, appended after data/address/cc producers.
        ann.addDep(mem.perfectDepSeq, false);
        return;
    }

    const bool predicted = predictor_.predictDependent(rec.pc);
    // A producer far enough in the past has long since retired, so
    // issuing past it cannot squash; train "independent" for those.
    const bool dependent = mem.perfectDepSeq != 0 &&
                           seq - mem.perfectDepSeq <= trainDistance_;
    predictor_.update(rec.pc, dependent);
    ++trains_.memdep;

    if (predicted)
        ann.flags |= InsertAnnotation::kFlagMemDepPredicted;
    if (mem.perfectDepSeq != 0) {
        // The true arc always travels with the annotation; the back-end
        // enforces it (predicted dependent) or speculates past it and
        // squashes on violation (predicted independent).
        ann.flags |= InsertAnnotation::kFlagMemDepActual;
        ann.addDep(mem.perfectDepSeq, false);
    } else if (predicted && mem.lastStoreSeq != 0 && ann.depCount < 4) {
        // Predicted dependent, but no store actually conflicts: charge
        // the classic false-dependence cost by waiting on the youngest
        // store.
        ann.flags |= InsertAnnotation::kFlagMemDepFalse;
        ann.addDep(mem.lastStoreSeq, false);
    }
}

} // namespace ddsc::spec
