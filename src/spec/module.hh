/**
 * @file
 * The pluggable speculation-module interface.
 *
 * The paper studies exactly two dependence-relaxing mechanisms —
 * two-delta load-address speculation and 3-1/4-1 collapsing — both
 * historically hard-wired into the front-end's annotate() loop.  This
 * interface generalizes them, following SCAF-style speculation
 * frameworks: each module is an independent unit that *proposes*
 * removable or relaxable dependences for the record being annotated,
 * trains its own predictor structures exactly once per record, and
 * describes itself for tooling.  An ordered stack of modules
 * (spec/orchestrator.hh) is composed inside SpecFrontEnd; the window
 * back-ends consume only the annotation the stack produced, so a
 * module never sees (or depends on) issue width or window state, and
 * one front-end pass still feeds any number of back-end cells.
 *
 * A module participates in up to two per-record phases, both in
 * program order:
 *
 *  1. annotateRecord() — before dependence computation.  For columns
 *     that are pure functions of the record (the collapse module's
 *     expression sizes and signature fragments).
 *  2. proposeRelaxations() — after the core front-end has resolved the
 *     record's register/cc RAW producers and (for loads) the
 *     perfect-disambiguation memory producer.  Modules append arcs,
 *     set outcome flags, and train their predictors here.  The memory
 *     module owns the memory arc outright: in Perfect mode it appends
 *     the paper's exact arc, in Predicted mode it may withhold it
 *     (speculating no-dependence) or add a conservative arc to the
 *     youngest store (a predicted dependence that does not exist).
 *
 * Misspeculation *costs* are modeled in the back-end (a withheld arc
 * that turns out unsatisfied at issue time squashes the load —
 * LimitScheduler::issue), because cost is a property of issue timing,
 * which the width-independent front-end cannot see.  Misspeculation
 * *outcomes*, however, are decided entirely here, from the annotation
 * flags, so every engine agrees by construction.
 */

#ifndef DDSC_SPEC_MODULE_HH
#define DDSC_SPEC_MODULE_HH

#include <cstdint>
#include <string>

#include "core/annotation.hh"
#include "trace/record.hh"

namespace ddsc::spec
{

/** Ground truth the core front-end hands the phase-2 modules: the
 *  perfect-disambiguation answer for this record (loads) and the most
 *  recent store in program order (the conservative fallback producer
 *  for falsely predicted dependences). */
struct MemDepObservation
{
    /** The most recent store that wrote one of this load's bytes
     *  (0 = none).  Meaningful only for loads. */
    std::uint64_t perfectDepSeq = 0;
    /** The most recent store of any address (0 = none). */
    std::uint64_t lastStoreSeq = 0;
};

/**
 * One speculation module.  Stateful (predictor tables); reset()
 * restarts it for a new trace.  Modules are composed by
 * SpeculationStack and must stay width-independent: everything they
 * compute may depend only on the trace prefix.
 */
class SpeculationModule
{
  public:
    virtual ~SpeculationModule() = default;

    /** Short stable identifier ("collapse", "addr-spec", ...). */
    virtual const char *name() const = 0;

    /** One-line human description including the active knobs, shown
     *  by `--list-configs` ("addr-spec(two-delta, 4096 entries, ...)"). */
    virtual std::string describe() const = 0;

    /** Restart for a new trace (predictor tables cleared). */
    virtual void reset() {}

    /** Phase 1: annotate columns that are pure functions of @p rec. */
    virtual void
    annotateRecord(const TraceRecord &rec, InsertAnnotation &ann)
    {
        (void)rec;
        (void)ann;
    }

    /** Phase 2: propose dependence relaxations for @p rec (sequence
     *  number @p seq), training predictors as a side effect.  Runs for
     *  every record so modules can observe non-loads too; most check
     *  rec.isLoad() first. */
    virtual void
    proposeRelaxations(const TraceRecord &rec, std::uint64_t seq,
                       const MemDepObservation &mem,
                       InsertAnnotation &ann)
    {
        (void)rec;
        (void)seq;
        (void)mem;
        (void)ann;
    }
};

} // namespace ddsc::spec

#endif // DDSC_SPEC_MODULE_HH
