#include "orchestrator.hh"

#include "spec/addr_spec_module.hh"
#include "spec/collapse_module.hh"
#include "spec/mem_dep_module.hh"
#include "spec/value_pred_module.hh"

namespace ddsc::spec
{

SpeculationStack::SpeculationStack(const MachineConfig &config,
                                   FrontEndTrainCounts &trains)
{
    // Phase 1: the collapse columns.  Always constructed so
    // setCollapseColumns() can enable them later (the batched front-end
    // turns them on when any consumer cell collapses); active only when
    // the config itself collapses.
    auto collapse = std::make_unique<CollapseModule>();
    collapse_ = collapse.get();
    owned_.push_back(std::move(collapse));
    collapseOn_ = config.collapsing;

    // Phase 2, in the order the historical front-end did the work:
    // memory arc first, then address prediction, then value prediction.
    auto memdep = std::make_unique<MemDepModule>(config, trains);
    phase2_.push_back(memdep.get());
    owned_.push_back(std::move(memdep));

    if (config.loadSpec == LoadSpecMode::Real) {
        auto addr = std::make_unique<AddrSpecModule>(config, trains);
        phase2_.push_back(addr.get());
        owned_.push_back(std::move(addr));
    }

    if (config.loadValuePrediction) {
        auto value = std::make_unique<ValuePredModule>(config, trains);
        phase2_.push_back(value.get());
        owned_.push_back(std::move(value));
    }
}

SpeculationStack::~SpeculationStack() = default;

void
SpeculationStack::reset()
{
    for (auto &module : owned_)
        module->reset();
}

void
SpeculationStack::setCollapseColumns(bool on)
{
    collapseOn_ = on;
}

std::vector<const SpeculationModule *>
SpeculationStack::activeModules() const
{
    std::vector<const SpeculationModule *> active;
    if (collapseOn_)
        active.push_back(collapse_);
    for (const SpeculationModule *module : phase2_)
        active.push_back(module);
    return active;
}

std::string
SpeculationStack::describe() const
{
    std::string out;
    for (const SpeculationModule *module : activeModules()) {
        if (!out.empty())
            out += " -> ";
        out += module->describe();
    }
    return out;
}

std::string
moduleStackSummary(const MachineConfig &config)
{
    FrontEndTrainCounts scratch;
    SpeculationStack stack(config, scratch);
    std::string out = stack.describe();
    // Ideal address speculation bypasses the module stack (the
    // back-end treats every load as predicted correctly); say so
    // rather than listing nothing for it.
    if (config.loadSpec == LoadSpecMode::Ideal)
        out += " [+ ideal address oracle in back-end]";
    return out;
}

} // namespace ddsc::spec
