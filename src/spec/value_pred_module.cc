#include "value_pred_module.hh"

#include <cstdio>

#include "support/logging.hh"

namespace ddsc::spec
{

FcmStrideValuePredictor::FcmStrideValuePredictor(
    unsigned index_bits, unsigned confidence_threshold,
    unsigned history_length)
    : threshold_(confidence_threshold), historyLength_(history_length)
{
    ddsc_assert(index_bits >= 1 && index_bits <= 24,
                "unreasonable predictor size 2^%u", index_bits);
    ddsc_assert(history_length >= 1 && history_length <= 16,
                "unreasonable FCM history length %u", history_length);
    table_.assign(std::size_t{1} << index_bits, Entry{});
    // The shared context table is 4x the first level: contexts from
    // different pcs intentionally share (constructive aliasing), but a
    // too-small table would thrash.
    contexts_.assign(std::size_t{4} << index_bits, ContextEntry{});
}

std::size_t
FcmStrideValuePredictor::indexOf(std::uint64_t pc) const
{
    return (pc >> 2) & (table_.size() - 1);
}

std::uint32_t
FcmStrideValuePredictor::foldHistory(std::uint32_t history,
                                     std::uint32_t value)
{
    // Rotate-and-xor folding (Sazeides & Smith's hashed FCM): old
    // values age out of the context after historyLength_ shifts.
    return (history << 5 | history >> 27) ^ value * 2654435761u;
}

std::size_t
FcmStrideValuePredictor::contextOf(const Entry &e) const
{
    // Mix the pc-agnostic history with nothing else: sharing contexts
    // across static loads is what lets one load train another's
    // repeating sequence.
    std::uint32_t h = e.history;
    h ^= h >> 15;
    return h & (contexts_.size() - 1);
}

ValuePrediction
FcmStrideValuePredictor::predict(std::uint64_t pc) const
{
    const Entry &e = table_[indexOf(pc)];
    if (!e.valid)
        return {};
    const ContextEntry &ctx = contexts_[contextOf(e)];
    const bool fcm_usable = ctx.confidence.value() > threshold_;
    const bool stride_usable = e.strideConf.value() > threshold_;
    // Tournament: prefer the context prediction when it is at least as
    // confident -- it subsumes strides it has seen, and only it can
    // catch non-stride repetition.
    if (fcm_usable &&
        (!stride_usable ||
         ctx.confidence.value() >= e.strideConf.value()))
        return {true, ctx.value};
    if (stride_usable)
        return {true, e.lastValue + static_cast<std::uint32_t>(e.stride)};
    return {};
}

void
FcmStrideValuePredictor::update(std::uint64_t pc, std::uint32_t actual)
{
    Entry &e = table_[indexOf(pc)];
    if (!e.valid) {
        e.lastValue = actual;
        e.stride = 0;
        e.history = foldHistory(0, actual);
        e.strideConf = SatCounter{2, 0};
        e.valid = true;
        return;
    }

    // Second level first, keyed by the *pre-update* context.
    ContextEntry &ctx = contexts_[contextOf(e)];
    if (ctx.value == actual) {
        ctx.confidence.increment(1);
    } else {
        ctx.confidence.decrement(2);
        if (ctx.confidence.value() == 0)
            ctx.value = actual;
    }

    // Stride side: two-delta-style confirmation.
    const std::int32_t delta = static_cast<std::int32_t>(
        actual - e.lastValue);
    if (delta == e.stride)
        e.strideConf.increment(1);
    else
        e.strideConf.decrement(2);
    e.stride = delta;
    e.lastValue = actual;

    // Age the context: keep only the last historyLength_ values by
    // re-folding from scratch is O(n); instead rely on the rotate
    // width (32 / 5 shifts ~ 6 values) and mask the tail by folding
    // the new value in.
    e.history = foldHistory(e.history, actual);
    if (historyLength_ < 6) {
        // Short histories: clear high bits so old values age out
        // faster than the rotate period alone would allow.
        e.history &= (1u << (5 * historyLength_ + 2)) - 1;
    }
}

void
FcmStrideValuePredictor::reset()
{
    for (Entry &e : table_)
        e = Entry{};
    for (ContextEntry &c : contexts_)
        c = ContextEntry{};
}

ValuePredModule::ValuePredModule(const MachineConfig &config,
                                 FrontEndTrainCounts &trains)
    : kind_(config.valuePredKind),
      lastValue_(config.vpredIndexBits, config.vpredConfidenceThreshold),
      fcmStride_(config.vpredIndexBits, config.vpredConfidenceThreshold,
                 config.vpredHistoryLength),
      trains_(trains)
{
}

std::string
ValuePredModule::describe() const
{
    char buf[96];
    if (kind_ == ValuePredKind::LastValue)
        std::snprintf(buf, sizeof(buf),
                      "value-pred(last-value, %zu entries)",
                      lastValue_.entries());
    else
        std::snprintf(buf, sizeof(buf),
                      "value-pred(fcm/stride hybrid, %zu entries)",
                      fcmStride_.entries());
    return buf;
}

void
ValuePredModule::reset()
{
    lastValue_.reset();
    fcmStride_.reset();
}

void
ValuePredModule::proposeRelaxations(const TraceRecord &rec, std::uint64_t,
                                    const MemDepObservation &,
                                    InsertAnnotation &ann)
{
    if (!rec.isLoad())
        return;
    const ValuePrediction vp = kind_ == ValuePredKind::LastValue
                                   ? lastValue_.predict(rec.pc)
                                   : fcmStride_.predict(rec.pc);
    if (vp.usable) {
        ann.flags |= InsertAnnotation::kFlagVpredUsable;
        if (vp.value == rec.memValue)
            ann.flags |= InsertAnnotation::kFlagVpredCorrect;
    }
    if (kind_ == ValuePredKind::LastValue)
        lastValue_.update(rec.pc, rec.memValue);
    else
        fcmStride_.update(rec.pc, rec.memValue);
    ++trains_.value;
}

} // namespace ddsc::spec
