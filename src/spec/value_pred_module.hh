/**
 * @file
 * The load-value-prediction speculation module.
 *
 * Wraps the historical last-value predictor (src/vpred/) and adds a
 * context-based FCM/stride *hybrid* (config G): a per-pc first level
 * tracks the last value, the current stride, and a hashed history of
 * recent values; a shared second-level table keyed by that history
 * predicts context-correlated (non-stride) value sequences.  Each side
 * carries its own confidence, and the hybrid uses whichever confident
 * component is stronger — the standard FCM/stride tournament after
 * Sazeides & Smith, the natural "how far can value prediction go"
 * companion to the paper's address-stride study.
 *
 * The module only sets the kFlagVpredUsable/kFlagVpredCorrect outcome
 * flags; the back-end's value-prediction timing (a correct prediction
 * frees dependents one cycle after non-address constraints resolve) is
 * unchanged and shared by both predictor kinds.
 */

#ifndef DDSC_SPEC_VALUE_PRED_MODULE_HH
#define DDSC_SPEC_VALUE_PRED_MODULE_HH

#include <vector>

#include "core/config.hh"
#include "spec/module.hh"
#include "support/sat_counter.hh"
#include "vpred/vpred.hh"

namespace ddsc::spec
{

/**
 * Context(FCM)/stride hybrid load-value predictor.
 */
class FcmStrideValuePredictor
{
  public:
    /**
     * @param index_bits log2 first-level (per-pc) entries.
     * @param confidence_threshold use a component only when its
     *        counter > this.
     * @param history_length values folded into the FCM context hash.
     */
    explicit FcmStrideValuePredictor(unsigned index_bits = 12,
                                     unsigned confidence_threshold = 1,
                                     unsigned history_length = 4);

    /** Look up a prediction for the load at @p pc. */
    ValuePrediction predict(std::uint64_t pc) const;

    /** Train with the actually loaded value (every dynamic load). */
    void update(std::uint64_t pc, std::uint32_t actual);

    /** Clear all state. */
    void reset();

    /** First-level entry count (for reporting). */
    std::size_t entries() const { return table_.size(); }

  private:
    struct Entry
    {
        std::uint32_t lastValue = 0;
        std::int32_t stride = 0;
        std::uint32_t history = 0;      ///< hashed value context
        SatCounter strideConf{2, 0};
        bool valid = false;
    };

    struct ContextEntry
    {
        std::uint32_t value = 0;
        SatCounter confidence{2, 0};
    };

    std::size_t indexOf(std::uint64_t pc) const;
    std::size_t contextOf(const Entry &e) const;
    static std::uint32_t foldHistory(std::uint32_t history,
                                     std::uint32_t value);

    unsigned threshold_;
    unsigned historyLength_;
    std::vector<Entry> table_;
    std::vector<ContextEntry> contexts_;
};

/** The module: sets value-prediction outcome flags on loads. */
class ValuePredModule final : public SpeculationModule
{
  public:
    ValuePredModule(const MachineConfig &config,
                    FrontEndTrainCounts &trains);

    const char *name() const override { return "value-pred"; }
    std::string describe() const override;
    void reset() override;

    void proposeRelaxations(const TraceRecord &rec, std::uint64_t seq,
                            const MemDepObservation &mem,
                            InsertAnnotation &ann) override;

  private:
    ValuePredKind kind_;
    LoadValuePredictor lastValue_;
    FcmStrideValuePredictor fcmStride_;
    FrontEndTrainCounts &trains_;
};

} // namespace ddsc::spec

#endif // DDSC_SPEC_VALUE_PRED_MODULE_HH
