/**
 * @file
 * The load-address speculation module (the paper's d-speculation).
 *
 * Owns the realistic address predictor (two-delta by default) and sets
 * the kFlagPredUsable/kFlagPredCorrect outcome flags the back-end's
 * load classifier consumes.  Ideal address speculation (config E) needs
 * no module: the back-end treats every load as predicted correctly.
 */

#ifndef DDSC_SPEC_ADDR_SPEC_MODULE_HH
#define DDSC_SPEC_ADDR_SPEC_MODULE_HH

#include <memory>

#include "addrpred/addrpred.hh"
#include "core/config.hh"
#include "spec/module.hh"

namespace ddsc::spec
{

/** Two-delta (or selected-kind) load-address speculation. */
class AddrSpecModule final : public SpeculationModule
{
  public:
    AddrSpecModule(const MachineConfig &config,
                   FrontEndTrainCounts &trains);

    const char *name() const override { return "addr-spec"; }
    std::string describe() const override;
    void reset() override;

    void proposeRelaxations(const TraceRecord &rec, std::uint64_t seq,
                            const MemDepObservation &mem,
                            InsertAnnotation &ann) override;

  private:
    AddrPredKind kind_;
    std::unique_ptr<AddressPredictor> predictor_;
    FrontEndTrainCounts &trains_;
};

} // namespace ddsc::spec

#endif // DDSC_SPEC_ADDR_SPEC_MODULE_HH
