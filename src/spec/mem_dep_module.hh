/**
 * @file
 * The memory-dependence speculation module.
 *
 * The paper assumes *perfect* memory disambiguation: a load waits for
 * exactly the most recent store that wrote one of its bytes, nothing
 * else.  This module owns that memory arc and offers two modes:
 *
 *  - Perfect (default, all paper configs): append the perfect arc the
 *    paper's model prescribes.  Byte-identical to the historical
 *    hard-wired behaviour.
 *
 *  - Predicted (config F): a store-set-style collision-history
 *    predictor, indexed by load pc, guesses whether the load depends
 *    on a recent store.  A load predicted *independent* keeps its true
 *    arc in the annotation but flagged speculative — the back-end
 *    issues it without waiting and squashes it when the store's value
 *    was genuinely not available yet (see LimitScheduler::issue).  A
 *    load predicted *dependent* that really is dependent simply keeps
 *    its arc; one predicted dependent with no true producer gets a
 *    conservative arc to the youngest store (the classic store-barrier
 *    false-dependence cost), flagged so SchedStats can count it.
 *
 * Training is width-independent: the predictor learns "dependent" when
 * the perfect producer is within memDepTrainDistance dynamic
 * instructions (a farther store has long since resolved, so
 * speculating past it can never squash), and "independent" otherwise.
 * The counter moves up by 2 and down by 1, biasing toward predicting
 * dependences — a squash costs far more than a false dependence, the
 * same asymmetry store-set predictors encode.
 */

#ifndef DDSC_SPEC_MEM_DEP_MODULE_HH
#define DDSC_SPEC_MEM_DEP_MODULE_HH

#include <vector>

#include "core/config.hh"
#include "spec/module.hh"
#include "support/sat_counter.hh"

namespace ddsc::spec
{

/**
 * Direct-mapped collision-history table: one saturating confidence
 * counter per load pc, predicting "this load collides with a recent
 * store".
 */
class MemDepPredictor
{
  public:
    /**
     * @param index_bits log2 of the entry count.
     * @param confidence_threshold predict dependent when counter >
     *        this.
     */
    explicit MemDepPredictor(unsigned index_bits = 12,
                             unsigned confidence_threshold = 1);

    /** Would this load collide with a recent store? */
    bool predictDependent(std::uint64_t pc) const;

    /** Train with the perfect-disambiguation outcome (every load). */
    void update(std::uint64_t pc, bool dependent);

    /** Clear all state. */
    void reset();

    /** Entry count (for reporting). */
    std::size_t entries() const { return table_.size(); }

  private:
    std::size_t indexOf(std::uint64_t pc) const;

    unsigned threshold_;
    std::vector<SatCounter> table_;
};

/** The module: owns the memory arc of every load's annotation. */
class MemDepModule final : public SpeculationModule
{
  public:
    MemDepModule(const MachineConfig &config,
                 FrontEndTrainCounts &trains);

    const char *name() const override { return "mem-dep"; }
    std::string describe() const override;
    void reset() override;

    void proposeRelaxations(const TraceRecord &rec, std::uint64_t seq,
                            const MemDepObservation &mem,
                            InsertAnnotation &ann) override;

  private:
    MemDepMode mode_;
    unsigned trainDistance_;
    MemDepPredictor predictor_;
    FrontEndTrainCounts &trains_;
};

} // namespace ddsc::spec

#endif // DDSC_SPEC_MEM_DEP_MODULE_HH
