/**
 * @file
 * The dependence-collapsing speculation module (phase 1).
 *
 * Collapsing is the paper's second mechanism: a consumer "collapses"
 * into its producer's issue slot when the pair (or triple) fits the
 * 3-1/4-1 interlock, removing the serialization between them.  The
 * legality decision and pairing live in the back-end (collapse rules
 * need window state); what is width-independent — the record's
 * compound-expression size and its paper signature fragment — is
 * annotated here, once, for every collapsing back-end cell.
 */

#ifndef DDSC_SPEC_COLLAPSE_MODULE_HH
#define DDSC_SPEC_COLLAPSE_MODULE_HH

#include "spec/module.hh"

namespace ddsc::spec
{

/** Annotates the collapse-detection columns (phase 1 only). */
class CollapseModule final : public SpeculationModule
{
  public:
    const char *name() const override { return "collapse"; }

    std::string
    describe() const override
    {
        return "collapse(3-1/4-1 interlock columns)";
    }

    void
    annotateRecord(const TraceRecord &rec, InsertAnnotation &ann) override
    {
        ann.expr = ExprSize::of(rec);
        ann.sigLen = static_cast<std::uint8_t>(
            appendInstructionSignature(rec, ann.sig.data()));
    }
};

} // namespace ddsc::spec

#endif // DDSC_SPEC_COLLAPSE_MODULE_HH
