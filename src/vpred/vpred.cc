#include "vpred.hh"

#include "support/logging.hh"

namespace ddsc
{

LoadValuePredictor::LoadValuePredictor(unsigned index_bits,
                                       unsigned confidence_threshold)
    : indexBits_(index_bits),
      threshold_(confidence_threshold),
      table_(std::size_t{1} << index_bits)
{
    ddsc_assert(index_bits >= 1 && index_bits <= 24,
                "unreasonable table size 2^%u", index_bits);
}

std::size_t
LoadValuePredictor::indexOf(std::uint64_t pc) const
{
    return (pc >> 2) & ((std::size_t{1} << indexBits_) - 1);
}

ValuePrediction
LoadValuePredictor::predict(std::uint64_t pc) const
{
    const Entry &e = table_[indexOf(pc)];
    ValuePrediction p;
    p.usable = e.valid && e.confidence.value() > threshold_;
    p.value = e.lastValue;
    return p;
}

void
LoadValuePredictor::update(std::uint64_t pc, std::uint32_t actual)
{
    Entry &e = table_[indexOf(pc)];
    if (!e.valid) {
        e.valid = true;
        e.lastValue = actual;
        e.confidence.set(0);
        return;
    }
    if (e.lastValue == actual)
        e.confidence.increment(1);
    else
        e.confidence.decrement(2);
    e.lastValue = actual;
}

void
LoadValuePredictor::reset()
{
    for (auto &e : table_)
        e = Entry{};
}

} // namespace ddsc
