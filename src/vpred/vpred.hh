/**
 * @file
 * Load-value prediction (the paper's Figure 1.d d-speculation flavour,
 * after Lipasti et al.'s value-locality observation, reference [9] of
 * the paper).
 *
 * Unlike address prediction, a correct value prediction removes the
 * memory access from the consumer's critical path entirely: dependents
 * can proceed the moment the predicted value is supplied, without
 * waiting even for the cache.  The paper describes the mechanism but
 * evaluates only address prediction; this module enables the
 * evaluation as an extension.
 */

#ifndef DDSC_VPRED_VPRED_HH
#define DDSC_VPRED_VPRED_HH

#include <cstdint>
#include <vector>

#include "support/sat_counter.hh"

namespace ddsc
{

/** Result of a value-prediction lookup. */
struct ValuePrediction
{
    bool usable = false;        ///< confidence above the threshold
    std::uint32_t value = 0;    ///< predicted loaded value
};

/**
 * Last-value load-value predictor with 2-bit confidence, structured
 * like the paper's address table: direct-mapped on the load pc,
 * confidence +1 on a correct check and -2 on a wrong one, predictions
 * used only above the threshold.
 */
class LoadValuePredictor
{
  public:
    /**
     * @param index_bits log2 of the entry count (default 12 = 4096).
     * @param confidence_threshold predict only when counter > this.
     */
    explicit LoadValuePredictor(unsigned index_bits = 12,
                                unsigned confidence_threshold = 1);

    /** Look up a prediction for the load at @p pc. */
    ValuePrediction predict(std::uint64_t pc) const;

    /** Train with the actually loaded value (every dynamic load). */
    void update(std::uint64_t pc, std::uint32_t actual);

    /** Clear all state. */
    void reset();

    /** Entry count (for reporting). */
    std::size_t entries() const { return table_.size(); }

  private:
    struct Entry
    {
        std::uint32_t lastValue = 0;
        SatCounter confidence{2, 0};
        bool valid = false;
    };

    std::size_t indexOf(std::uint64_t pc) const;

    unsigned indexBits_;
    unsigned threshold_;
    std::vector<Entry> table_;
};

} // namespace ddsc

#endif // DDSC_VPRED_VPRED_HH
