/**
 * @file
 * The 023.eqntott analogue: quicksort of integer keys.
 *
 * eqntott spends its time in qsort comparing PLA terms through a
 * comparison callback.  The analogue quicksorts an LCG-filled array of
 * 16-bit keys with an explicit worklist stack and a compare subroutine
 * invoked per element, giving the comparison-dominated, call-heavy,
 * well-predicted profile of the original.  Scale = key count.
 */

#include "workloads.hh"

namespace ddsc
{

namespace
{

const char kSource[] = R"(
; eqntott: quicksort with a compare subroutine.
; r1=lo r2=hi r3=keys r4=sp(worklist) r5=i r6=j r7=pivot
; r8/r9/r14/r19=tmp r10=N r11-r13=lcg r16/r17=compare args
; r18=compare result r21=worklist base r25=checksum
main:
    li   r10, {SCALE}
    la   r3, keys

    ; fill with 16-bit keys (duplicates likely, like PLA terms)
    li   r11, 555
    li   r12, 1664525
    li   r13, 1013904223
    mov  r1, 0
fill:
    mul  r11, r11, r12
    add  r11, r11, r13
    srl  r9, r11, 16
    sll  r8, r1, 2
    add  r8, r3, r8
    stw  r9, [r8]
    add  r1, r1, 1
    cmp  r1, r10
    blt  fill

    ; eqntott calls its comparator through qsort's function pointer;
    ; model that with an indirect call through a data word.
    la   r22, cmpfn
    ldw  r23, [r22]

    ; worklist holds (lo, hi) ranges
    la   r21, qstack
    mov  r4, r21
    mov  r1, 0
    sub  r2, r10, 1
    stw  r1, [r4]
    stw  r2, [r4 + 4]
    add  r4, r4, 8

qloop:
    cmp  r4, r21
    bleu qdone                 ; worklist empty
    sub  r4, r4, 8
    ldw  r1, [r4]              ; lo
    ldw  r2, [r4 + 4]          ; hi
    cmp  r1, r2
    bge  qloop

    ; Lomuto partition with pivot = keys[hi]
    sll  r9, r2, 2
    add  r9, r3, r9
    ldw  r7, [r9]
    sub  r5, r1, 1             ; i = lo - 1
    mov  r6, r1                ; j = lo
part:
    sll  r9, r6, 2
    add  r9, r3, r9
    ldw  r16, [r9]
    mov  r17, r7
    calli [r23]                ; r18 = compare(keys[j], pivot)
    cmp  r18, 0
    beq  noswap
    add  r5, r5, 1
    sll  r8, r5, 2
    add  r8, r3, r8
    ldw  r9, [r8]
    sll  r14, r6, 2
    add  r14, r3, r14
    ldw  r19, [r14]
    stw  r19, [r8]
    stw  r9, [r14]
noswap:
    add  r6, r6, 1
    cmp  r6, r2
    blt  part

    ; place the pivot at i+1
    add  r5, r5, 1
    sll  r8, r5, 2
    add  r8, r3, r8
    ldw  r9, [r8]
    sll  r14, r2, 2
    add  r14, r3, r14
    ldw  r19, [r14]
    stw  r19, [r8]
    stw  r9, [r14]

    ; push (lo, p-1) and (p+1, hi)
    sub  r9, r5, 1
    stw  r1, [r4]
    stw  r9, [r4 + 4]
    add  r4, r4, 8
    add  r9, r5, 1
    stw  r9, [r4]
    stw  r2, [r4 + 4]
    add  r4, r4, 8
    ba   qloop

compare:
    mov  r18, 0
    cmp  r16, r17
    bgt  cmp_done
    mov  r18, 1
cmp_done:
    ret

qdone:
    ; checksum: fold the sorted array and count ordered neighbours
    mov  r25, 0
    mov  r1, 0
    mov  r5, 0
check:
    sll  r9, r1, 2
    add  r9, r3, r9
    ldw  r6, [r9]
    xor  r9, r6, r1
    add  r25, r25, r9
    cmp  r5, r6
    bgt  out_of_order
    add  r25, r25, 1
out_of_order:
    mov  r5, r6
    add  r1, r1, 1
    cmp  r1, r10
    blt  check
    halt

.data
.align 8
cmpfn:  .word compare
keys:   .space 32768
qstack: .space 65536
)";

} // anonymous namespace

const WorkloadSpec &
eqntottWorkload()
{
    static const WorkloadSpec spec = {
        "eqntott",
        "023.eqntott",
        "quicksort of 16-bit keys through a compare subroutine",
        false,
        2600,           // default scale: keys (fits the 32 kB array)
        64,             // test scale
        kSource,
    };
    return spec;
}

} // namespace ddsc
