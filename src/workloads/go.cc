/**
 * @file
 * The 099.go analogue: flood-fill liberty counting on a go board.
 *
 * Game-tree evaluators spend their time in branchy board-scanning code
 * whose outcomes depend on data, not on loop structure, which is why
 * go has the worst branch-prediction rate in the paper's Table 2
 * (83.7%).  The analogue scans a bordered 21x21 board, flood-fills the
 * group under every stone with an explicit worklist, and counts its
 * liberties with generation-stamped visited marks.  Between passes a
 * random cell mutates, so the work changes continuously.
 * Scale = board passes.
 */

#include "workloads.hh"

namespace ddsc
{

namespace
{

const char kSource[] = R"(
; go: liberty counting via flood fill.
; Board: 21x21 bytes, value 0=empty 1=black 2=white 3=border.
; Visited: 21x21 words holding the generation that last saw the point.
; r1=idx r2=passes r3=board r4=visited r6=sp r7=gen r8=point r9=color
; r10=libs r11-r13=lcg r14/r19=tmp r16=pass r18=neighbor (subroutine arg)
; r21=worklist base r25=checksum
main:
    li   r2, {SCALE}
    la   r3, board
    la   r4, visited
    la   r21, worklist

    ; paint the border (rows 0 and 20, columns 0 and 20)
    mov  r1, 0
    mov  r9, 3
border_top:
    add  r14, r3, r1
    stb  r9, [r14]
    add  r14, r14, 420
    stb  r9, [r14]             ; bottom row (idx + 20*21)
    add  r1, r1, 1
    cmp  r1, 21
    blt  border_top
    mov  r1, 0
border_side:
    mul  r14, r1, 21           ; hmm: keep mul for row stride
    add  r14, r3, r14
    stb  r9, [r14]
    add  r14, r14, 20
    stb  r9, [r14]
    add  r1, r1, 1
    cmp  r1, 21
    blt  border_side

    ; fill the interior from the LCG: 0..2 with empty bias
    li   r11, 777
    li   r12, 1664525
    li   r13, 1013904223
    mov  r1, 22                ; first interior point
fill:
    ; skip border cells
    add  r14, r3, r1
    ldb  r9, [r14]
    cmp  r9, 3
    beq  fill_next
    mul  r11, r11, r12
    add  r11, r11, r13
    srl  r9, r11, 28
    and  r9, r9, 3
    cmp  r9, 3
    bne  fill_store
    mov  r9, 0
fill_store:
    stb  r9, [r14]
fill_next:
    add  r1, r1, 1
    cmp  r1, 419               ; last interior point is 418
    blt  fill

    mov  r25, 0
    mov  r7, 0                 ; generation
    mov  r16, 0                ; pass counter
pass:
    mov  r1, 22
scan:
    add  r14, r3, r1
    ldb  r9, [r14]             ; color at the scan point
    cmp  r9, 1
    beq  flood
    cmp  r9, 2
    beq  flood
    ba   scan_next

flood:
    ; flood-fill the group rooted at r1, counting liberties
    add  r7, r7, 1             ; new generation
    mov  r10, 0                ; liberties
    mov  r6, r21               ; worklist sp
    stw  r1, [r6]
    add  r6, r6, 4
    sll  r14, r1, 2
    add  r14, r4, r14
    stw  r7, [r14]             ; mark the root visited
floodloop:
    cmp  r6, r21
    bleu flood_done
    sub  r6, r6, 4
    ldw  r8, [r6]              ; pop a group point
    sub  r18, r8, 1
    call neigh
    add  r18, r8, 1
    call neigh
    sub  r18, r8, 21
    call neigh
    add  r18, r8, 21
    call neigh
    ba   floodloop
flood_done:
    add  r25, r25, r10
    ba   scan_next

; neighbor check: r18 = point.  Empty and unseen => liberty; same
; color and unseen => push onto the worklist.
neigh:
    add  r14, r3, r18
    ldb  r19, [r14]
    cmp  r19, 0
    bne  nb_stone
    sll  r14, r18, 2
    add  r14, r4, r14
    ldw  r19, [r14]
    cmp  r19, r7
    beq  nb_done
    stw  r7, [r14]
    add  r10, r10, 1
    ret
nb_stone:
    cmp  r19, r9
    bne  nb_done
    sll  r14, r18, 2
    add  r14, r4, r14
    ldw  r19, [r14]
    cmp  r19, r7
    beq  nb_done
    stw  r7, [r14]
    stw  r18, [r6]
    add  r6, r6, 4
nb_done:
    ret

scan_next:
    add  r1, r1, 1
    cmp  r1, 419
    blt  scan

    ; mutate one non-border cell so the next pass differs
    mul  r11, r11, r12
    add  r11, r11, r13
    srl  r14, r11, 16
    and  r14, r14, 255
    add  r14, r14, 100         ; 100..355: inside the array
    add  r14, r3, r14
    ldb  r19, [r14]
    cmp  r19, 3
    beq  mutate_done           ; never touch the border
    srl  r19, r11, 28
    and  r19, r19, 3
    cmp  r19, 3
    bne  mutate_store
    mov  r19, 0
mutate_store:
    stb  r19, [r14]
mutate_done:

    add  r16, r16, 1
    cmp  r16, r2
    blt  pass
    halt

.data
.align 8
board:    .space 441
.align 8
visited:  .space 1764
worklist: .space 2048
)";

} // anonymous namespace

const WorkloadSpec &
goWorkload()
{
    static const WorkloadSpec spec = {
        "go",
        "099.go",
        "flood-fill liberty counting with data-dependent branches",
        true,           // pointer chasing
        36,             // default scale: board passes
        2,              // test scale
        kSource,
    };
    return spec;
}

} // namespace ddsc
