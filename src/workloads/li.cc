/**
 * @file
 * The 022.li analogue: cons-cell list processing (pointer chasing).
 *
 * A lisp interpreter's time goes into walking cons cells scattered
 * through the heap.  The analogue lays N cells out in a multiplicative
 * permutation of a heap region (so successive cdr links jump around in
 * memory), then repeatedly traverses, reverses in place, and maps over
 * the list.  The cdr-chasing loads have no stride, defeating the
 * two-delta predictor exactly as li defeats it in the paper.
 * Scale = cell count; must be a power of two.
 */

#include "workloads.hh"

namespace ddsc
{

namespace
{

const char kSource[] = R"(
; li: cons-cell list processing.
; Cell layout: [car, cdr], 8 bytes.  The list visits heap slots along
; a full-period LCG walk,
;   slot' = (slot * 1103515245 + 12345) & (N-1)
; (a = 1 mod 4, c odd => period N), so successive cdr links jump
; around the heap with non-repeating deltas: genuine pointer chasing
; that defeats a stride predictor.
; r1=i r2=N r3=heap r4=mask r6=slot r7=cur r8=next-slot r9=tmp
; r10=round r11-r13=lcg r16=prev r22/r23=walk-consts r24=head
; r25=checksum
main:
    li   r2, {SCALE}
    la   r3, heap
    sub  r4, r2, 1             ; mask (N is a power of two)
    li   r22, 1103515245       ; walk multiplier (= 1 mod 4)
    li   r23, 12345            ; walk increment (odd)

    ; build the list along the walk
    li   r11, 24680
    li   r12, 1664525
    li   r13, 1013904223
    mov  r6, 0                 ; current slot
    mov  r1, 0
build:
    sll  r9, r6, 3
    add  r7, r3, r9            ; cell address
    mul  r11, r11, r12
    add  r11, r11, r13
    srl  r9, r11, 20
    stw  r9, [r7]              ; car = lcg value
    mul  r8, r6, r22
    add  r8, r8, r23
    and  r8, r8, r4            ; next slot on the walk
    add  r9, r1, 1
    cmp  r9, r2
    beq  lastcell
    sll  r9, r8, 3
    add  r9, r3, r9
    stw  r9, [r7 + 4]          ; cdr = next cell
    ba   builtlink
lastcell:
    stw  r0, [r7 + 4]          ; nil-terminate
builtlink:
    mov  r6, r8
    add  r1, r1, 1
    cmp  r1, r2
    blt  build

    mov  r24, r3               ; head = cell at slot 0
    mov  r25, 0
    mov  r10, 0
round:
    ; traverse and sum the cars
    mov  r7, r24
trav:
    cmp  r7, 0
    beq  trav_done
    ldw  r9, [r7]
    add  r25, r25, r9
    ldw  r7, [r7 + 4]
    ba   trav
trav_done:

    ; reverse the list in place
    mov  r16, 0                ; prev
    mov  r7, r24               ; cur
rev:
    cmp  r7, 0
    beq  rev_done
    ldw  r8, [r7 + 4]          ; next
    stw  r16, [r7 + 4]
    mov  r16, r7
    mov  r7, r8
    ba   rev
rev_done:
    mov  r24, r16              ; new head

    ; map: car += 1 down the (now reversed) list
    mov  r7, r24
map:
    cmp  r7, 0
    beq  map_done
    ldw  r9, [r7]
    add  r9, r9, 1
    stw  r9, [r7]
    ldw  r7, [r7 + 4]
    ba   map
map_done:

    ; eval: tag-dispatch on (car & 3) through a jump table, the way a
    ; lisp interpreter dispatches on object type.  The indirect-jump
    ; target is data dependent, so a last-target buffer mispredicts
    ; most of the time -- li's signature control behaviour.
    la   r17, evaltab
    mov  r7, r24
eval:
    cmp  r7, 0
    beq  eval_done
    ldw  r9, [r7]              ; car
    and  r8, r9, 3             ; type tag
    sll  r8, r8, 2
    add  r8, r17, r8
    ldw  r8, [r8]
    jmpi [r8]
ev_fixnum:
    add  r25, r25, r9          ; fixnum: accumulate the value
    ba   eval_next
ev_cons:
    xor  r25, r25, r9          ; cons: fold the pointer bits
    ba   eval_next
ev_symbol:
    add  r25, r25, 1           ; symbol: count it
    ba   eval_next
ev_string:
    srl  r9, r9, 2
    add  r25, r25, r9          ; string: add its length field
eval_next:
    ldw  r7, [r7 + 4]
    ba   eval
eval_done:

    add  r10, r10, 1
    cmp  r10, 8
    blt  round
    halt

.data
.align 8
evaltab: .word ev_fixnum, ev_cons, ev_symbol, ev_string
heap:    .space 65536
)";

} // anonymous namespace

const WorkloadSpec &
liWorkload()
{
    static const WorkloadSpec spec = {
        "li",
        "022.li",
        "cons-cell traversal/reversal over a permuted heap",
        true,           // pointer chasing
        4096,           // default scale: cells (power of two)
        128,            // test scale (power of two)
        kSource,
    };
    return spec;
}

} // namespace ddsc
