/**
 * @file
 * The 132.ijpeg analogue: 8x8 integer butterfly transforms.
 *
 * JPEG encoding is dominated by blocked integer DCTs: long stretches
 * of add/sub/shift on register-resident pixels with strided row and
 * column walks.  The analogue applies a fixed 8-point butterfly to
 * every row and then every column of each 8x8 block of a 64x64 image,
 * folds the outputs into a checksum, and writes truncated results
 * back so successive rounds transform new data.
 * Scale = rounds over the image.
 */

#include "workloads.hh"

namespace ddsc
{

namespace
{

const char kSource[] = R"(
; ijpeg: 8x8 butterfly transform.
; r2=rounds r3=image r4=work r24=round r26=block r27=row/col
; r5-r12=x0..x7 then y's, r16-r23=t0..t7, r14/r19=tmp, r28=base
; r25=checksum, r11-r13=lcg (fill phase only)
main:
    li   r2, {SCALE}
    la   r3, image

    ; fill the 64x64 image from the LCG
    li   r11, 31415
    li   r12, 1664525
    li   r13, 1013904223
    mov  r1, 0
    li   r20, 4096
fill:
    mul  r11, r11, r12
    add  r11, r11, r13
    srl  r9, r11, 24
    add  r14, r3, r1
    stb  r9, [r14]
    add  r1, r1, 1
    cmp  r1, r20
    blt  fill

    la   r4, work
    mov  r25, 0
    mov  r24, 0
round:
    mov  r26, 0                ; block index (8x8 grid of blocks)
block:
    ; base = image + (block>>3)*512 + (block&7)*8
    srl  r28, r26, 3
    sll  r28, r28, 9
    and  r14, r26, 7
    sll  r14, r14, 3
    add  r28, r28, r14
    add  r28, r3, r28

    ; --- row pass: butterfly each row into the work buffer ---
    mov  r27, 0
row:
    sll  r14, r27, 6           ; row offset in the image (stride 64)
    add  r14, r28, r14
    ldb  r5, [r14]
    ldb  r6, [r14 + 1]
    ldb  r7, [r14 + 2]
    ldb  r8, [r14 + 3]
    ldb  r9, [r14 + 4]
    ldb  r10, [r14 + 5]
    ldb  r11, [r14 + 6]
    ldb  r12, [r14 + 7]
    call butterfly
    sll  r14, r27, 5           ; row offset in work (stride 32)
    add  r14, r4, r14
    stw  r9, [r14]             ; y0
    stw  r5, [r14 + 4]         ; y1
    stw  r11, [r14 + 8]        ; y2
    stw  r7, [r14 + 12]        ; y3
    stw  r10, [r14 + 16]       ; y4
    stw  r6, [r14 + 20]        ; y5
    stw  r12, [r14 + 24]       ; y6
    stw  r8, [r14 + 28]        ; y7
    add  r27, r27, 1
    cmp  r27, 8
    blt  row

    ; --- column pass: butterfly work columns, fold, write back ---
    mov  r27, 0
col:
    sll  r14, r27, 2           ; column offset in work
    add  r14, r4, r14
    ldw  r5, [r14]
    ldw  r6, [r14 + 32]
    ldw  r7, [r14 + 64]
    ldw  r8, [r14 + 96]
    ldw  r9, [r14 + 128]
    ldw  r10, [r14 + 160]
    ldw  r11, [r14 + 192]
    ldw  r12, [r14 + 224]
    call butterfly
    ; fold the outputs into the checksum
    add  r25, r25, r9
    add  r25, r25, r5
    add  r25, r25, r11
    add  r25, r25, r7
    add  r25, r25, r10
    add  r25, r25, r6
    add  r25, r25, r12
    add  r25, r25, r8
    ; write truncated outputs back down the image column
    add  r14, r28, r27
    stb  r9, [r14]
    stb  r5, [r14 + 64]
    stb  r11, [r14 + 128]
    stb  r7, [r14 + 192]
    stb  r10, [r14 + 256]
    stb  r6, [r14 + 320]
    stb  r12, [r14 + 384]
    stb  r8, [r14 + 448]
    add  r27, r27, 1
    cmp  r27, 8
    blt  col

    add  r26, r26, 1
    cmp  r26, 64
    blt  block

    add  r24, r24, 1
    cmp  r24, r2
    blt  round
    halt

; 8-point butterfly on x0..x7 = r5..r12.
; Outputs: y0=r9 y1=r5 y2=r11 y3=r7 y4=r10 y5=r6 y6=r12 y7=r8.
butterfly:
    add  r16, r5, r12          ; t0 = x0 + x7
    sub  r23, r5, r12          ; t7 = x0 - x7
    add  r17, r6, r11          ; t1 = x1 + x6
    sub  r22, r6, r11          ; t6 = x1 - x6
    add  r18, r7, r10          ; t2 = x2 + x5
    sub  r21, r7, r10          ; t5 = x2 - x5
    add  r19, r8, r9           ; t3 = x3 + x4
    sub  r20, r8, r9           ; t4 = x3 - x4
    add  r5, r16, r19          ; u0
    sub  r8, r16, r19          ; u3
    add  r6, r17, r18          ; u1
    sub  r7, r17, r18          ; u2
    add  r9, r5, r6            ; y0 = u0 + u1
    sub  r10, r5, r6           ; y4 = u0 - u1
    sra  r14, r8, 1
    add  r11, r7, r14          ; y2 = u2 + (u3 >> 1)
    sra  r14, r7, 1
    sub  r12, r8, r14          ; y6 = u3 - (u2 >> 1)
    sra  r14, r21, 1
    add  r5, r20, r14          ; y1 = t4 + (t5 >> 1)
    sra  r14, r22, 1
    sub  r6, r21, r14          ; y5 = t5 - (t6 >> 1)
    sra  r14, r23, 2
    add  r7, r22, r14          ; y3 = t6 + (t7 >> 2)
    sra  r14, r20, 2
    sub  r8, r23, r14          ; y7 = t7 - (t4 >> 2)
    ret

.data
.align 8
image: .space 4096
work:  .space 256
)";

} // anonymous namespace

const WorkloadSpec &
ijpegWorkload()
{
    static const WorkloadSpec spec = {
        "ijpeg",
        "132.ijpeg",
        "blocked 8x8 integer butterfly transform over an image",
        false,
        22,             // default scale: rounds over the image
        1,              // test scale
        kSource,
    };
    return spec;
}

} // namespace ddsc
