/**
 * @file
 * The 026.compress analogue: LZW-style dictionary compression.
 *
 * An LCG fills an input buffer with a 16-symbol alphabet; the main
 * loop then hashes (code << 8 | symbol) into a 4096-entry direct-mapped
 * dictionary, extending matches on hits and emitting codes on misses.
 * The hashed dictionary probes give the irregular-but-repeating load
 * address behaviour characteristic of compress, while the input scan
 * is strided.  Scale = input length in bytes.
 */

#include "workloads.hh"

namespace ddsc
{

namespace
{

const char kSource[] = R"(
; compress: LZW-style compression.
; r1=i  r2=N  r3=input  r4=table  r5=code  r6=symbol  r7=key  r8=entry
; r9=tmp  r10=nextcode  r11=lcg-x  r12/r13=lcg-consts  r14=hash-const
; r25=checksum
main:
    li   r2, {SCALE}
    la   r3, input
    la   r4, table

    ; generate the input: x = x*1664525 + 1013904223; sym = (x>>24)&15
    li   r11, 12345
    li   r12, 1664525
    li   r13, 1013904223
    mov  r1, 0
gen:
    mul  r11, r11, r12
    add  r11, r11, r13
    srl  r6, r11, 24
    and  r6, r6, 15
    add  r9, r3, r1
    stb  r6, [r9]
    add  r1, r1, 1
    cmp  r1, r2
    blt  gen

    ; clear dictionary keys to -1 (4096 entries of 8 bytes)
    mov  r1, 0
    mov  r8, -1
    li   r20, 4096
init:
    sll  r9, r1, 3
    add  r9, r4, r9
    stw  r8, [r9]
    add  r1, r1, 1
    cmp  r1, r20
    blt  init

    ; main compression loop
    mov  r25, 0
    li   r10, 256              ; next free code
    li   r14, 0x9e3779b1       ; hash multiplier
    ldb  r5, [r3]              ; code = input[0]
    mov  r1, 1
loop:
    add  r9, r3, r1
    ldb  r6, [r9]              ; symbol
    sll  r7, r5, 8
    or   r7, r7, r6            ; key = code<<8 | symbol
    mul  r8, r7, r14
    srl  r8, r8, 20
    and  r8, r8, 0xfff
    sll  r8, r8, 3
    add  r8, r4, r8            ; entry address
    ldw  r9, [r8]
    cmp  r9, r7
    bne  miss
    ldw  r5, [r8 + 4]          ; hit: extend the match
    ba   next
miss:
    add  r25, r25, r5          ; emit current code
    stw  r7, [r8]
    stw  r10, [r8 + 4]
    add  r10, r10, 1
    and  r10, r10, 0xfff       ; wrap the code space
    mov  r5, r6
next:
    add  r1, r1, 1
    cmp  r1, r2
    blt  loop

    add  r25, r25, r5          ; emit the final code
    halt

.data
input: .space 70000
.align 8
table: .space 32768
)";

} // anonymous namespace

const WorkloadSpec &
compressWorkload()
{
    static const WorkloadSpec spec = {
        "compress",
        "026.compress",
        "LZW-style dictionary compression of an LCG input stream",
        false,          // not pointer chasing
        60000,          // default scale: input bytes
        600,            // test scale
        kSource,
    };
    return spec;
}

} // namespace ddsc
