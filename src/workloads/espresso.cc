/**
 * @file
 * The 008.espresso analogue: bitset cover operations.
 *
 * Two cube arrays of 64 words each are combined repeatedly with the
 * and/or/andn/shift mix a two-level logic minimizer spends its time
 * in, plus a containment test per word pair.  Accesses are strided and
 * branches well predicted, matching espresso's profile in Table 2.
 * Scale = number of rounds over the arrays.
 */

#include "workloads.hh"

namespace ddsc
{

namespace
{

const char kSource[] = R"(
; espresso: bitset cover operations.
; r1=i  r2=rounds  r3=A  r4=B  r5=a  r6=b  r7/r8=tmp  r9=addr
; r10=round  r11=lcg-x  r12/r13=lcg-consts  r25=checksum
main:
    li   r2, {SCALE}
    la   r3, cubes_a
    la   r4, cubes_b

    ; fill both arrays from the LCG
    li   r11, 98765
    li   r12, 1664525
    li   r13, 1013904223
    mov  r1, 0
fill:
    mul  r11, r11, r12
    add  r11, r11, r13
    sll  r9, r1, 2
    add  r9, r3, r9
    stw  r11, [r9]
    mul  r11, r11, r12
    add  r11, r11, r13
    sll  r9, r1, 2
    add  r9, r4, r9
    stw  r11, [r9]
    add  r1, r1, 1
    cmp  r1, 64
    blt  fill

    mov  r25, 0
    mov  r10, 0
round:
    mov  r1, 0
word:
    sll  r9, r1, 2
    add  r9, r3, r9
    ldw  r5, [r9]              ; a = A[i]
    sll  r9, r1, 2
    add  r9, r4, r9
    ldw  r6, [r9]              ; b = B[i]

    andn r7, r5, r6            ; cover:  a & ~b
    srl  r8, r6, 1
    or   r8, r5, r8            ; merge:  a | (b >> 1)
    xor  r7, r7, r8
    sll  r9, r1, 2
    add  r9, r3, r9
    stw  r7, [r9]              ; A[i] = cover ^ merge

    ; containment test: (a & b) == b means b is covered by a
    and  r8, r5, r6
    cmp  r8, r6
    bne  notcov
    add  r25, r25, 1
notcov:
    srl  r8, r7, 16
    add  r25, r25, r8          ; fold the new word into the checksum

    add  r1, r1, 1
    cmp  r1, 64
    blt  word

    ; rotate B by one word each round so patterns shift
    ldw  r5, [r4]
    mov  r1, 0
rot:
    add  r9, r1, 1
    and  r9, r9, 63
    sll  r9, r9, 2
    add  r9, r4, r9
    ldw  r6, [r9]
    sll  r9, r1, 2
    add  r9, r4, r9
    stw  r6, [r9]
    add  r1, r1, 1
    cmp  r1, 63
    blt  rot
    sll  r9, r1, 2
    add  r9, r4, r9
    stw  r5, [r9]

    add  r10, r10, 1
    cmp  r10, r2
    blt  round
    halt

.data
.align 8
cubes_a: .space 256
cubes_b: .space 256
)";

} // anonymous namespace

const WorkloadSpec &
espressoWorkload()
{
    static const WorkloadSpec spec = {
        "espresso",
        "008.espresso",
        "bitset cover/containment operations over cube arrays",
        false,
        900,            // default scale: rounds
        12,             // test scale
        kSource,
    };
    return spec;
}

} // namespace ddsc
