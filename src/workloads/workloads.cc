#include "workloads.hh"

#include "masm/assembler.hh"
#include "support/logging.hh"
#include "vm/vm.hh"

namespace ddsc
{

const std::vector<WorkloadSpec> &
allWorkloads()
{
    static const std::vector<WorkloadSpec> workloads = {
        compressWorkload(),
        espressoWorkload(),
        eqntottWorkload(),
        liWorkload(),
        goWorkload(),
        ijpegWorkload(),
    };
    return workloads;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    const WorkloadSpec *spec = findWorkloadOrNull(name);
    if (!spec)
        ddsc_fatal("unknown workload '%s'", name.c_str());
    return *spec;
}

const WorkloadSpec *
findWorkloadOrNull(const std::string &name)
{
    for (const WorkloadSpec &spec : allWorkloads()) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

std::vector<const WorkloadSpec *>
workloadSubset(bool pointer_chasing)
{
    std::vector<const WorkloadSpec *> subset;
    for (const WorkloadSpec &spec : allWorkloads()) {
        if (spec.pointerChasing == pointer_chasing)
            subset.push_back(&spec);
    }
    return subset;
}

Program
buildWorkload(const WorkloadSpec &spec, unsigned scale)
{
    if (scale == 0)
        scale = spec.defaultScale;
    std::string source = spec.source;
    const std::string hole = "{SCALE}";
    const std::string value = std::to_string(scale);
    std::size_t pos = 0;
    while ((pos = source.find(hole, pos)) != std::string::npos) {
        source.replace(pos, hole.size(), value);
        pos += value.size();
    }
    return assembleOrDie(source);
}

VectorTraceSource
traceWorkload(const WorkloadSpec &spec, unsigned scale,
              std::uint32_t *checksum)
{
    const Program program = buildWorkload(spec, scale);
    VectorTraceSource trace;
    VectorTraceSink sink(trace);
    Vm vm(program);
    const Vm::RunResult result = vm.run(&sink, 2'000'000'000ull);
    if (!result.halted)
        ddsc_fatal("workload '%s' did not halt", spec.name.c_str());
    if (checksum)
        *checksum = vm.reg(kChecksumReg);
    return trace;
}

} // namespace ddsc
