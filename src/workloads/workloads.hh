/**
 * @file
 * The six benchmark analogues.
 *
 * The paper evaluates on SPECINT92/95 binaries (compress, espresso,
 * eqntott, li, go, ijpeg) traced with qpt2.  We cannot ship SPEC, so
 * each benchmark is replaced by an analogue written in the ddsc mini
 * ISA that reproduces the property the paper's mechanisms key on:
 *
 *  - compress  LZW-style hash-table compression over an LCG-generated
 *              input stream (mixed strided/hashed load addresses).
 *  - espresso  bitset cover operations over word arrays (strided,
 *              logic/shift heavy, well-predicted branches).
 *  - eqntott   quicksort of an integer key array with a compare
 *              subroutine (comparison-dominated, call/ret traffic).
 *  - li        cons-cell list building, traversal, and in-place
 *              reversal over a permuted heap (pointer chasing).
 *  - go        flood-fill liberty counting on a go board (pointer-ish
 *              worklist, data-dependent hard-to-predict branches).
 *  - ijpeg     8x8 integer butterfly transform over an image (strided
 *              rows/columns, shift/add dominated).
 *
 * Each program seeds its own data with a deterministic LCG, leaves a
 * checksum in register r25, and halts.  The checksums are verified
 * against plain C++ mirrors of the same algorithms in the test suite,
 * which validates the assembler, the VM, and the workload code end to
 * end.
 */

#ifndef DDSC_WORKLOADS_WORKLOADS_HH
#define DDSC_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "trace/source.hh"

namespace ddsc
{

/** Register in which every workload leaves its checksum. */
constexpr unsigned kChecksumReg = 25;

/**
 * One benchmark analogue.
 */
struct WorkloadSpec
{
    std::string name;           ///< "compress", "espresso", ...
    std::string paperName;      ///< "026.compress", ...
    std::string description;
    bool pointerChasing;        ///< go and li (paper section 5.2)
    unsigned defaultScale;      ///< scale for the full experiments
    unsigned testScale;         ///< small scale for unit tests
    std::string source;         ///< assembly with a "{SCALE}" hole
};

/** All six workloads, in the paper's Table 1 order. */
const std::vector<WorkloadSpec> &allWorkloads();

/** Look up one workload by name; fatal() when unknown. */
const WorkloadSpec &findWorkload(const std::string &name);

/** As findWorkload(), but nullptr when unknown — for callers handling
 *  names that arrived over the wire, where "unknown" is the peer's
 *  bug, not ours. */
const WorkloadSpec *findWorkloadOrNull(const std::string &name);

/** The pointer-chasing subset (go, li) or its complement. */
std::vector<const WorkloadSpec *> workloadSubset(bool pointer_chasing);

/**
 * Assemble a workload at the given scale (0 = its default scale).
 */
Program buildWorkload(const WorkloadSpec &spec, unsigned scale = 0);

/**
 * Assemble, execute, and return the dynamic trace of a workload.
 * @param scale 0 = the workload's default scale.
 * @param checksum optional out-parameter receiving r25.
 */
VectorTraceSource traceWorkload(const WorkloadSpec &spec,
                                unsigned scale = 0,
                                std::uint32_t *checksum = nullptr);

/** The individual specs (defined one per source file). */
const WorkloadSpec &compressWorkload();
const WorkloadSpec &espressoWorkload();
const WorkloadSpec &eqntottWorkload();
const WorkloadSpec &liWorkload();
const WorkloadSpec &goWorkload();
const WorkloadSpec &ijpegWorkload();

} // namespace ddsc

#endif // DDSC_WORKLOADS_WORKLOADS_HH
