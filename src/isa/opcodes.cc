#include "opcodes.hh"

#include "support/logging.hh"

namespace ddsc
{

namespace
{

constexpr std::string_view kCondNames[kNumConds] = {
    "eq", "ne", "lt", "le", "gt", "ge",
    "ltu", "leu", "gtu", "geu", "neg", "pos",
};

} // anonymous namespace

std::string_view
opClassSignature(OpClass cls)
{
    switch (cls) {
      case OpClass::Arith: return "ar";
      case OpClass::Logic: return "lg";
      case OpClass::Shift: return "sh";
      case OpClass::Move:  return "mv";
      case OpClass::Load:  return "ld";
      case OpClass::Store: return "st";
      case OpClass::Branch: return "brc";
      case OpClass::Mul:   return "mul";
      case OpClass::Div:   return "div";
      case OpClass::Jump:  return "jmp";
      case OpClass::IndirectJump: return "jmpi";
      case OpClass::Call:  return "call";
      case OpClass::CallIndirect: return "calli";
      case OpClass::Ret:   return "ret";
      case OpClass::Halt:  return "halt";
      case OpClass::Nop:   return "nop";
    }
    return "?";
}

std::string_view
condName(Cond c)
{
    const auto idx = static_cast<unsigned>(c);
    ddsc_assert(idx < kNumConds, "condition %u out of range", idx);
    return kCondNames[idx];
}

bool
isCollapsibleClass(OpClass cls)
{
    switch (cls) {
      case OpClass::Arith:
      case OpClass::Logic:
      case OpClass::Shift:
      case OpClass::Move:
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::Branch:
        return true;
      default:
        return false;
    }
}

bool
writesRegister(OpClass cls)
{
    switch (cls) {
      case OpClass::Arith:
      case OpClass::Logic:
      case OpClass::Shift:
      case OpClass::Move:
      case OpClass::Mul:
      case OpClass::Div:
      case OpClass::Load:
      case OpClass::Call:           // writes the link register
      case OpClass::CallIndirect:   // likewise
        return true;
      default:
        return false;
    }
}

bool
isControl(OpClass cls)
{
    switch (cls) {
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::IndirectJump:
      case OpClass::Call:
      case OpClass::CallIndirect:
      case OpClass::Ret:
        return true;
      default:
        return false;
    }
}

} // namespace ddsc
