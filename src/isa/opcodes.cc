#include "opcodes.hh"

#include "support/logging.hh"

namespace ddsc
{

namespace
{

constexpr OpTraits kTraits[kNumOpcodes] = {
    // mnemonic  class                 setsCC readsCC
    {"add",    OpClass::Arith,        false, false},  // ADD
    {"sub",    OpClass::Arith,        false, false},  // SUB
    {"addcc",  OpClass::Arith,        true,  false},  // ADDCC
    {"subcc",  OpClass::Arith,        true,  false},  // SUBCC
    {"and",    OpClass::Logic,        false, false},  // AND
    {"or",     OpClass::Logic,        false, false},  // OR
    {"xor",    OpClass::Logic,        false, false},  // XOR
    {"andn",   OpClass::Logic,        false, false},  // ANDN
    {"andcc",  OpClass::Logic,        true,  false},  // ANDCC
    {"orcc",   OpClass::Logic,        true,  false},  // ORCC
    {"xorcc",  OpClass::Logic,        true,  false},  // XORCC
    {"sll",    OpClass::Shift,        false, false},  // SLL
    {"srl",    OpClass::Shift,        false, false},  // SRL
    {"sra",    OpClass::Shift,        false, false},  // SRA
    {"mov",    OpClass::Move,         false, false},  // MOV
    {"sethi",  OpClass::Move,         false, false},  // SETHI
    {"mul",    OpClass::Mul,          false, false},  // MUL
    {"div",    OpClass::Div,          false, false},  // DIV
    {"ldw",    OpClass::Load,         false, false},  // LDW
    {"ldb",    OpClass::Load,         false, false},  // LDB
    {"stw",    OpClass::Store,        false, false},  // STW
    {"stb",    OpClass::Store,        false, false},  // STB
    {"bcc",    OpClass::Branch,       false, true},   // BCC
    {"ba",     OpClass::Jump,         false, false},  // BA
    {"jmpi",   OpClass::IndirectJump, false, false},  // JMPI
    {"call",   OpClass::Call,         false, false},  // CALL
    {"calli",  OpClass::CallIndirect, false, false},  // CALLI
    {"ret",    OpClass::Ret,          false, false},  // RET
    {"halt",   OpClass::Halt,         false, false},  // HALT
    {"nop",    OpClass::Nop,          false, false},  // NOP
};

constexpr std::string_view kCondNames[kNumConds] = {
    "eq", "ne", "lt", "le", "gt", "ge",
    "ltu", "leu", "gtu", "geu", "neg", "pos",
};

} // anonymous namespace

const OpTraits &
opTraits(Opcode op)
{
    const auto idx = static_cast<unsigned>(op);
    ddsc_assert(idx < kNumOpcodes, "opcode %u out of range", idx);
    return kTraits[idx];
}

unsigned
opLatency(Opcode op)
{
    switch (opTraits(op).cls) {
      case OpClass::Load:
      case OpClass::Mul:
        return 2;
      case OpClass::Div:
        return 12;
      default:
        return 1;
    }
}

std::string_view
opClassSignature(OpClass cls)
{
    switch (cls) {
      case OpClass::Arith: return "ar";
      case OpClass::Logic: return "lg";
      case OpClass::Shift: return "sh";
      case OpClass::Move:  return "mv";
      case OpClass::Load:  return "ld";
      case OpClass::Store: return "st";
      case OpClass::Branch: return "brc";
      case OpClass::Mul:   return "mul";
      case OpClass::Div:   return "div";
      case OpClass::Jump:  return "jmp";
      case OpClass::IndirectJump: return "jmpi";
      case OpClass::Call:  return "call";
      case OpClass::CallIndirect: return "calli";
      case OpClass::Ret:   return "ret";
      case OpClass::Halt:  return "halt";
      case OpClass::Nop:   return "nop";
    }
    return "?";
}

std::string_view
condName(Cond c)
{
    const auto idx = static_cast<unsigned>(c);
    ddsc_assert(idx < kNumConds, "condition %u out of range", idx);
    return kCondNames[idx];
}

bool
isCollapsibleClass(OpClass cls)
{
    switch (cls) {
      case OpClass::Arith:
      case OpClass::Logic:
      case OpClass::Shift:
      case OpClass::Move:
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::Branch:
        return true;
      default:
        return false;
    }
}

bool
writesRegister(OpClass cls)
{
    switch (cls) {
      case OpClass::Arith:
      case OpClass::Logic:
      case OpClass::Shift:
      case OpClass::Move:
      case OpClass::Mul:
      case OpClass::Div:
      case OpClass::Load:
      case OpClass::Call:           // writes the link register
      case OpClass::CallIndirect:   // likewise
        return true;
      default:
        return false;
    }
}

bool
isControl(OpClass cls)
{
    switch (cls) {
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::IndirectJump:
      case OpClass::Call:
      case OpClass::CallIndirect:
      case OpClass::Ret:
        return true;
      default:
        return false;
    }
}

} // namespace ddsc
