/**
 * @file
 * Opcode definitions and static traits for the ddsc mini ISA.
 *
 * The ISA is a SPARC-v8-flavoured integer RISC: 32 registers with r0
 * hardwired to zero, a single integer condition-code register written by
 * the "cc" opcode variants and read by conditional branches, and format-3
 * style instructions whose second source is either a register or a signed
 * immediate.  These are exactly the properties the paper's mechanisms key
 * on: the zero register feeds 0-op detection, cc generation feeds the
 * arrr-brc style collapses, and reg+imm addressing feeds address-generation
 * collapsing into loads and stores.
 */

#ifndef DDSC_ISA_OPCODES_HH
#define DDSC_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace ddsc
{

/**
 * Coarse operation classes.  These drive latency, collapsibility, and the
 * signature letters used by Tables 5 and 6 of the paper (ar, lg, sh, mv,
 * ld, st, brc).
 */
enum class OpClass : std::uint8_t
{
    Arith,      ///< add/sub (not mul/div); signature "ar"
    Logic,      ///< and/or/xor/andn; signature "lg"
    Shift,      ///< sll/srl/sra; signature "sh"
    Move,       ///< mov/sethi; signature "mv"
    Mul,        ///< integer multiply; 2-cycle, not collapsible
    Div,        ///< integer divide; 12-cycle, not collapsible
    Load,       ///< ldw/ldb; 2-cycle; address generation collapsible
    Store,      ///< stw/stb; address generation collapsible
    Branch,     ///< conditional branch on cc; cc use collapsible
    Jump,       ///< unconditional direct branch (ba)
    IndirectJump, ///< register-indirect jump
    Call,       ///< direct call, writes the link register
    CallIndirect, ///< register-indirect call (SPARC jmpl style)
    Ret,        ///< return via the link register
    Halt,       ///< terminate the traced program
    Nop,        ///< assembler-accepted, never traced
};

/** Condition codes for conditional branches (subset of SPARC icc tests). */
enum class Cond : std::uint8_t
{
    EQ, NE,
    LT, LE, GT, GE,         // signed
    LTU, LEU, GTU, GEU,     // unsigned
    NEG, POS,               // sign bit of the last cc result
};

/** Number of condition codes. */
constexpr unsigned kNumConds = 12;

/** Architected opcodes. */
enum class Opcode : std::uint8_t
{
    // arithmetic
    ADD, SUB, ADDCC, SUBCC,
    // logic
    AND, OR, XOR, ANDN, ANDCC, ORCC, XORCC,
    // shift
    SLL, SRL, SRA,
    // move
    MOV, SETHI,
    // long-latency
    MUL, DIV,
    // memory
    LDW, LDB, STW, STB,
    // control
    BCC, BA, JMPI, CALL, CALLI, RET, HALT, NOP,
};

/** Number of opcodes. */
constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::NOP) + 1;

/** Static per-opcode properties. */
struct OpTraits
{
    std::string_view mnemonic;
    OpClass cls;
    bool setsCC;
    bool readsCC;
};

namespace detail
{

/** The static trait table (indexed by Opcode).  Lives in the header so
 *  the accessors below inline to a single indexed load on the
 *  scheduler hot path, where cls()/opLatency() run per dependence-arc
 *  evaluation. */
inline constexpr OpTraits kOpTraits[kNumOpcodes] = {
    // mnemonic  class                 setsCC readsCC
    {"add",    OpClass::Arith,        false, false},  // ADD
    {"sub",    OpClass::Arith,        false, false},  // SUB
    {"addcc",  OpClass::Arith,        true,  false},  // ADDCC
    {"subcc",  OpClass::Arith,        true,  false},  // SUBCC
    {"and",    OpClass::Logic,        false, false},  // AND
    {"or",     OpClass::Logic,        false, false},  // OR
    {"xor",    OpClass::Logic,        false, false},  // XOR
    {"andn",   OpClass::Logic,        false, false},  // ANDN
    {"andcc",  OpClass::Logic,        true,  false},  // ANDCC
    {"orcc",   OpClass::Logic,        true,  false},  // ORCC
    {"xorcc",  OpClass::Logic,        true,  false},  // XORCC
    {"sll",    OpClass::Shift,        false, false},  // SLL
    {"srl",    OpClass::Shift,        false, false},  // SRL
    {"sra",    OpClass::Shift,        false, false},  // SRA
    {"mov",    OpClass::Move,         false, false},  // MOV
    {"sethi",  OpClass::Move,         false, false},  // SETHI
    {"mul",    OpClass::Mul,          false, false},  // MUL
    {"div",    OpClass::Div,          false, false},  // DIV
    {"ldw",    OpClass::Load,         false, false},  // LDW
    {"ldb",    OpClass::Load,         false, false},  // LDB
    {"stw",    OpClass::Store,        false, false},  // STW
    {"stb",    OpClass::Store,        false, false},  // STB
    {"bcc",    OpClass::Branch,       false, true},   // BCC
    {"ba",     OpClass::Jump,         false, false},  // BA
    {"jmpi",   OpClass::IndirectJump, false, false},  // JMPI
    {"call",   OpClass::Call,         false, false},  // CALL
    {"calli",  OpClass::CallIndirect, false, false},  // CALLI
    {"ret",    OpClass::Ret,          false, false},  // RET
    {"halt",   OpClass::Halt,         false, false},  // HALT
    {"nop",    OpClass::Nop,          false, false},  // NOP
};

} // namespace detail

/** Look up the traits of @p op. */
inline const OpTraits &
opTraits(Opcode op)
{
    return detail::kOpTraits[static_cast<unsigned>(op)];
}

/** Execution latency in cycles (paper section 4): 1, loads/mul 2, div 12. */
inline unsigned
opLatency(Opcode op)
{
    switch (opTraits(op).cls) {
      case OpClass::Load:
      case OpClass::Mul:
        return 2;
      case OpClass::Div:
        return 12;
      default:
        return 1;
    }
}

/** The paper's signature letters for an operation class ("ar", "ld", ...). */
std::string_view opClassSignature(OpClass cls);

/** Mnemonic of a condition code ("eq", "ltu", ...). */
std::string_view condName(Cond c);

/**
 * True when the opcode belongs to the collapsible classes of the paper:
 * shift, arithmetic (not mul/div), logic, move, address generation of
 * loads and stores, and condition-code use by conditional branches.
 */
bool isCollapsibleClass(OpClass cls);

/** True for classes that produce a register result. */
bool writesRegister(OpClass cls);

/** True for any control-transfer class. */
bool isControl(OpClass cls);

} // namespace ddsc

#endif // DDSC_ISA_OPCODES_HH
