/**
 * @file
 * Static instruction representation and program images.
 */

#ifndef DDSC_ISA_INSTRUCTION_HH
#define DDSC_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcodes.hh"

namespace ddsc
{

/** Number of architected integer registers; r0 is hardwired to zero. */
constexpr unsigned kNumRegs = 32;

/** Register conventions used by the assembler and the workloads. */
constexpr std::uint8_t kRegZero = 0;   ///< always reads 0
constexpr std::uint8_t kRegSp   = 14;  ///< stack pointer by convention
constexpr std::uint8_t kRegLink = 15;  ///< written by call, read by ret

/** Base virtual address of the text segment. */
constexpr std::uint64_t kTextBase = 0x10000;
/** Base virtual address of the data segment. */
constexpr std::uint64_t kDataBase = 0x40000000;
/** Initial stack pointer (grows down). */
constexpr std::uint64_t kStackTop = 0x7fff0000;

/**
 * One static instruction.
 *
 * Format-3 style: a destination, a register first source, and a second
 * source that is either a register or a signed immediate (@ref useImm).
 * For stores, @ref rd names the register holding the value to be stored;
 * rs1/src2 form the address, as in SPARC.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    Cond cond = Cond::EQ;       ///< condition for BCC
    std::uint8_t rd = 0;        ///< destination (source for stores)
    std::uint8_t rs1 = 0;       ///< first source
    std::uint8_t rs2 = 0;       ///< second source when !useImm
    bool useImm = false;        ///< second source is @ref imm
    std::int32_t imm = 0;       ///< immediate second source
    std::uint64_t target = 0;   ///< absolute target for bcc/ba/call

    /** Render as assembly text (for debugging and error messages). */
    std::string toString() const;
};

/**
 * An assembled program: text, initialized data, and the entry point.
 */
struct Program
{
    std::vector<Instruction> text;
    /** Initialized data bytes placed at kDataBase. */
    std::vector<std::uint8_t> data;
    std::uint64_t entry = kTextBase;

    /** Byte address of instruction index @p idx. */
    static std::uint64_t
    pcOf(std::size_t idx)
    {
        return kTextBase + 4 * idx;
    }

    /** Instruction index of byte address @p pc. */
    static std::size_t
    indexOf(std::uint64_t pc)
    {
        return static_cast<std::size_t>((pc - kTextBase) / 4);
    }

    /** True when @p pc falls inside the text segment. */
    bool
    contains(std::uint64_t pc) const
    {
        return pc >= kTextBase && pc < kTextBase + 4 * text.size() &&
            (pc & 3) == 0;
    }
};

/** Register name ("r0".."r31", with sp/lr aliases resolved by number). */
std::string regName(std::uint8_t reg);

} // namespace ddsc

#endif // DDSC_ISA_INSTRUCTION_HH
