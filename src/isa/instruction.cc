#include "instruction.hh"

#include <sstream>

namespace ddsc
{

std::string
regName(std::uint8_t reg)
{
    return "r" + std::to_string(static_cast<unsigned>(reg));
}

std::string
Instruction::toString() const
{
    const OpTraits &traits = opTraits(op);
    std::ostringstream out;
    auto src2 = [&]() -> std::string {
        return useImm ? std::to_string(imm) : regName(rs2);
    };

    switch (traits.cls) {
      case OpClass::Arith:
      case OpClass::Logic:
      case OpClass::Shift:
      case OpClass::Mul:
      case OpClass::Div:
        out << traits.mnemonic << ' ' << regName(rd) << ", "
            << regName(rs1) << ", " << src2();
        break;
      case OpClass::Move:
        if (op == Opcode::SETHI)
            out << "sethi " << regName(rd) << ", " << imm;
        else
            out << "mov " << regName(rd) << ", " << src2();
        break;
      case OpClass::Load:
        out << traits.mnemonic << ' ' << regName(rd) << ", ["
            << regName(rs1) << " + " << src2() << ']';
        break;
      case OpClass::Store:
        out << traits.mnemonic << ' ' << regName(rd) << ", ["
            << regName(rs1) << " + " << src2() << ']';
        break;
      case OpClass::Branch:
        out << 'b' << condName(cond) << " 0x" << std::hex << target;
        break;
      case OpClass::Jump:
        out << "ba 0x" << std::hex << target;
        break;
      case OpClass::IndirectJump:
        out << "jmpi [" << regName(rs1) << " + " << src2() << ']';
        break;
      case OpClass::CallIndirect:
        out << "calli [" << regName(rs1) << " + " << src2() << ']';
        break;
      case OpClass::Call:
        out << "call 0x" << std::hex << target;
        break;
      case OpClass::Ret:
        out << "ret";
        break;
      case OpClass::Halt:
        out << "halt";
        break;
      case OpClass::Nop:
        out << "nop";
        break;
    }
    return out.str();
}

} // namespace ddsc
