/**
 * @file
 * Tests for the return-address stack and indirect-target buffer, plus
 * their effect when the scheduler's realCtiPrediction flag relaxes the
 * paper's "non-conditional transfers always predict" idealization.
 */

#include <gtest/gtest.h>

#include "bpred/cti_pred.hh"
#include "core/scheduler.hh"
#include "masm/assembler.hh"
#include "vm/vm.hh"

namespace ddsc
{
namespace
{

TEST(ReturnAddressStack, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.pushCall(0x100);
    ras.pushCall(0x200);
    ras.pushCall(0x300);
    EXPECT_EQ(ras.occupancy(), 3u);
    EXPECT_EQ(ras.popReturn(), 0x300u);
    EXPECT_EQ(ras.popReturn(), 0x200u);
    EXPECT_EQ(ras.popReturn(), 0x100u);
    EXPECT_EQ(ras.occupancy(), 0u);
}

TEST(ReturnAddressStack, UnderflowPredictsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.popReturn(), 0u);
    ras.pushCall(0x100);
    EXPECT_EQ(ras.popReturn(), 0x100u);
    EXPECT_EQ(ras.popReturn(), 0u);
}

TEST(ReturnAddressStack, OverflowWrapsAndLosesTheOldest)
{
    ReturnAddressStack ras(2);
    ras.pushCall(0x100);
    ras.pushCall(0x200);
    ras.pushCall(0x300);    // evicts 0x100
    EXPECT_EQ(ras.popReturn(), 0x300u);
    EXPECT_EQ(ras.popReturn(), 0x200u);
    // The 0x100 frame was lost to the wrap: deep recursion pays.
    EXPECT_EQ(ras.popReturn(), 0u);
}

TEST(ReturnAddressStack, Reset)
{
    ReturnAddressStack ras(4);
    ras.pushCall(0x100);
    ras.reset();
    EXPECT_EQ(ras.occupancy(), 0u);
    EXPECT_EQ(ras.popReturn(), 0u);
}

TEST(IndirectTargetBuffer, RemembersLastTarget)
{
    IndirectTargetBuffer itb(4);
    EXPECT_EQ(itb.predict(0x1000), 0u);     // cold
    itb.update(0x1000, 0x2000);
    EXPECT_EQ(itb.predict(0x1000), 0x2000u);
    itb.update(0x1000, 0x3000);
    EXPECT_EQ(itb.predict(0x1000), 0x3000u);
}

TEST(IndirectTargetBuffer, DirectMappedAliasing)
{
    IndirectTargetBuffer itb(2);    // 4 entries
    itb.update(0x1000, 0xaaaa);
    itb.update(0x1000 + 4 * 4, 0xbbbb);     // same index
    EXPECT_EQ(itb.predict(0x1000), 0xbbbbu);
}

// --- scheduler integration --------------------------------------------

SchedStats
runCti(const char *source, bool real_cti)
{
    const Program program = assembleOrDie(source);
    VectorTraceSource trace;
    VectorTraceSink sink(trace);
    Vm vm(program);
    EXPECT_TRUE(vm.run(&sink).halted);

    MachineConfig config = MachineConfig::paper('A', 8);
    config.realCtiPrediction = true;
    if (!real_cti)
        config.realCtiPrediction = false;
    LimitScheduler scheduler(config);
    return scheduler.run(trace);
}

const char kCallHeavy[] = R"(
main:
    mov  r1, 0
loop:
    call work
    add  r1, r1, 1
    cmp  r1, 50
    blt  loop
    halt
work:
    add  r2, r2, 1
    ret
)";

TEST(RealCti, WellNestedCallsPredictPerfectly)
{
    const SchedStats stats = runCti(kCallHeavy, true);
    EXPECT_GT(stats.ctiPredictions, 49u);
    EXPECT_EQ(stats.ctiMispredicts, 0u);
    // And therefore timing matches the idealized machine.
    EXPECT_EQ(stats.cycles, runCti(kCallHeavy, false).cycles);
}

const char kIndirectHeavy[] = R"(
; alternate between two jump-table targets: the last-target buffer
; mispredicts every time once the pattern alternates.
main:
    la   r1, table
    mov  r2, 0             ; i
    mov  r5, 0             ; selector 0/1
loop:
    sll  r4, r5, 2
    add  r4, r1, r4
    ldw  r4, [r4]
    jmpi [r4]
back0:
    mov  r5, 1
    ba   next
back1:
    mov  r5, 0
next:
    add  r2, r2, 1
    cmp  r2, 40
    blt  loop
    halt
.data
table: .word back0, back1
)";

TEST(RealCti, AlternatingIndirectJumpsMispredict)
{
    const SchedStats real = runCti(kIndirectHeavy, true);
    EXPECT_GT(real.ctiPredictions, 39u);
    // After warm-up every jump flips targets: mostly mispredicted.
    EXPECT_GT(real.ctiMispredicts, 30u);
    // The idealized machine is strictly faster.
    const SchedStats ideal = runCti(kIndirectHeavy, false);
    EXPECT_GT(real.cycles, ideal.cycles);
}

const char kDeepRecursion[] = R"(
main:
    mov  r1, 30            ; depth beyond a 16-entry RAS
    call recurse
    halt
recurse:
    cmp  r1, 0
    beq  base
    sub  r1, r1, 1
    sub  sp, sp, 4
    stw  lr, [sp]
    call recurse
    ldw  lr, [sp]
    add  sp, sp, 4
base:
    ret
)";

TEST(RealCti, DeepRecursionOverflowsTheRas)
{
    const SchedStats stats = runCti(kDeepRecursion, true);
    // 31 returns; the 16-entry stack wraps, so the returns beyond its
    // depth mispredict.
    EXPECT_GT(stats.ctiMispredicts, 10u);
    EXPECT_LT(stats.ctiMispredicts, 31u);
}

const char kPolymorphicCalls[] = R"(
; alternate between two callees through one indirect call site: the
; last-target buffer mispredicts the callee every time, but the
; return-address stack still predicts every return.
main:
    la   r1, fns
    mov  r2, 0
    mov  r5, 0
loop:
    sll  r4, r5, 2
    add  r4, r1, r4
    ldw  r4, [r4]
    calli [r4]
    xor  r5, r5, 1         ; flip the callee selector
    add  r2, r2, 1
    cmp  r2, 40
    blt  loop
    halt
fn_a:
    add  r6, r6, 1
    ret
fn_b:
    add  r7, r7, 1
    ret
.data
fns: .word fn_a, fn_b
)";

TEST(RealCti, PolymorphicIndirectCallsMispredictButReturnsDoNot)
{
    const SchedStats stats = runCti(kPolymorphicCalls, true);
    // 40 indirect calls + 40 returns are predicted; the alternating
    // callee defeats the target buffer while the RAS keeps the
    // returns perfect, so mispredicts land between 30 and 50.
    EXPECT_EQ(stats.ctiPredictions, 80u);
    EXPECT_GT(stats.ctiMispredicts, 30u);
    EXPECT_LT(stats.ctiMispredicts, 50u);
}

TEST(RealCti, DefaultConfigurationKeepsThePaperIdealization)
{
    const SchedStats stats = runCti(kIndirectHeavy, false);
    EXPECT_EQ(stats.ctiPredictions, 0u);
    EXPECT_EQ(stats.ctiMispredicts, 0u);
}

} // anonymous namespace
} // namespace ddsc
