/**
 * @file
 * Property test: Instruction::toString() output reassembles to the
 * identical instruction.  Exercises the disassembler and the
 * assembler's operand grammar against each other over randomly
 * generated instructions.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "masm/assembler.hh"
#include "support/random.hh"

namespace ddsc
{
namespace
{

/** Generate a random but well-formed instruction. */
Instruction
randomInstruction(Rng &rng)
{
    // Opcodes whose textual form is self-contained (branch/call/jump
    // targets must land inside the reassembled 2-instruction program,
    // so control ops are pinned to a valid target below).
    constexpr Opcode kOps[] = {
        Opcode::ADD, Opcode::SUB, Opcode::ADDCC, Opcode::SUBCC,
        Opcode::AND, Opcode::OR, Opcode::XOR, Opcode::ANDN,
        Opcode::ANDCC, Opcode::ORCC, Opcode::XORCC,
        Opcode::SLL, Opcode::SRL, Opcode::SRA,
        Opcode::MOV, Opcode::SETHI,
        Opcode::MUL, Opcode::DIV,
        Opcode::LDW, Opcode::LDB, Opcode::STW, Opcode::STB,
        Opcode::BCC, Opcode::BA, Opcode::JMPI, Opcode::CALLI,
        Opcode::RET, Opcode::HALT, Opcode::NOP,
    };
    Instruction inst;
    inst.op = kOps[rng.below(std::size(kOps))];
    inst.rd = static_cast<std::uint8_t>(rng.below(kNumRegs));
    inst.rs1 = static_cast<std::uint8_t>(rng.below(kNumRegs));
    inst.useImm = rng.chance(0.5);
    if (inst.useImm)
        inst.imm = static_cast<std::int32_t>(rng.range(-4096, 4095));
    else
        inst.rs2 = static_cast<std::uint8_t>(rng.below(kNumRegs));
    if (inst.op == Opcode::SETHI) {
        inst.useImm = true;
        inst.imm = static_cast<std::int32_t>(rng.below(1 << 20));
    }
    if (inst.op == Opcode::BCC)
        inst.cond = static_cast<Cond>(rng.below(kNumConds));
    if (inst.op == Opcode::BCC || inst.op == Opcode::BA) {
        // Point at the second instruction of the reassembled program.
        inst.target = Program::pcOf(1);
    }
    // Clear the fields the textual form does not carry, so the
    // reassembled instruction (which leaves them defaulted) compares
    // equal on every meaningful field.
    switch (opTraits(inst.op).cls) {
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::Ret:
      case OpClass::Halt:
      case OpClass::Nop:
        inst.rd = 0;
        inst.rs1 = 0;
        inst.rs2 = 0;
        inst.useImm = false;
        inst.imm = 0;
        break;
      default:
        break;
    }
    return inst;
}

bool
equivalent(const Instruction &a, const Instruction &b)
{
    if (a.op != b.op || a.useImm != b.useImm)
        return false;
    const OpClass cls = opTraits(a.op).cls;
    switch (cls) {
      case OpClass::Arith:
      case OpClass::Logic:
      case OpClass::Shift:
      case OpClass::Mul:
      case OpClass::Div:
        if (a.rd != b.rd || a.rs1 != b.rs1)
            return false;
        break;
      case OpClass::Move:
        if (a.rd != b.rd)
            return false;
        break;
      case OpClass::Load:
      case OpClass::Store:
        if (a.rd != b.rd || a.rs1 != b.rs1)
            return false;
        break;
      case OpClass::IndirectJump:
      case OpClass::CallIndirect:
        if (a.rs1 != b.rs1)
            return false;
        break;
      case OpClass::Branch:
        if (a.cond != b.cond || a.target != b.target)
            return false;
        break;
      case OpClass::Jump:
        if (a.target != b.target)
            return false;
        break;
      default:
        break;      // ret/halt/nop carry no operands
    }
    if (a.useImm)
        return a.imm == b.imm;
    // Register src2 applies to the classes with a second source.
    switch (cls) {
      case OpClass::Arith:
      case OpClass::Logic:
      case OpClass::Shift:
      case OpClass::Mul:
      case OpClass::Div:
      case OpClass::Move:
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::IndirectJump:
      case OpClass::CallIndirect:
        return a.rs2 == b.rs2;
      default:
        return true;
    }
}

TEST(Roundtrip, DisassembledInstructionsReassembleIdentically)
{
    Rng rng(20260704);
    int checked = 0;
    for (int i = 0; i < 2000; ++i) {
        const Instruction original = randomInstruction(rng);
        const std::string text = "  " + original.toString() +
            "\n  halt\n";
        const AsmResult result = assemble(text);
        ASSERT_TRUE(result.ok())
            << "failed to reassemble: " << original.toString()
            << "\n" << result.errorText();
        ASSERT_GE(result.program.text.size(), 1u);
        const Instruction &reassembled = result.program.text[0];
        EXPECT_TRUE(equivalent(original, reassembled))
            << original.toString() << "  vs  "
            << reassembled.toString();
        ++checked;
    }
    EXPECT_EQ(checked, 2000);
}

} // anonymous namespace
} // namespace ddsc
