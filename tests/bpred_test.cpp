/**
 * @file
 * Unit tests for the branch direction predictors.
 */

#include <gtest/gtest.h>

#include "bpred/bpred.hh"

namespace ddsc
{
namespace
{

TEST(Bimodal, LearnsAStrongDirection)
{
    BimodalPredictor pred(4);
    const std::uint64_t pc = 0x10000;
    // Initially weakly-not-taken.
    EXPECT_FALSE(pred.predict(pc));
    pred.update(pc, true);
    pred.update(pc, true);
    EXPECT_TRUE(pred.predict(pc));
    // One not-taken does not flip a saturated counter.
    pred.update(pc, true);
    pred.update(pc, false);
    EXPECT_TRUE(pred.predict(pc));
}

TEST(Bimodal, DistinctPcsAreIndependent)
{
    BimodalPredictor pred(8);
    const std::uint64_t a = 0x10000, b = 0x10004;
    pred.update(a, true);
    pred.update(a, true);
    EXPECT_TRUE(pred.predict(a));
    EXPECT_FALSE(pred.predict(b));
}

TEST(Bimodal, AliasingWrapsModuloTableSize)
{
    BimodalPredictor pred(2);       // 4 entries
    const std::uint64_t a = 0x10000;
    const std::uint64_t b = a + 4 * 4;  // same index mod 4
    pred.update(a, true);
    pred.update(a, true);
    EXPECT_TRUE(pred.predict(b));
}

TEST(Bimodal, ResetRestoresInitialState)
{
    BimodalPredictor pred(4);
    pred.update(0x10000, true);
    pred.update(0x10000, true);
    pred.reset();
    EXPECT_FALSE(pred.predict(0x10000));
}

TEST(Gshare, LearnsAlternatingPatternBimodalCannot)
{
    // A strictly alternating branch: bimodal hovers around 50%,
    // gshare keys on the history and becomes perfect.
    GsharePredictor gshare(10);
    BimodalPredictor bimodal(10);
    const std::uint64_t pc = 0x20000;
    int gshare_hits = 0, bimodal_hits = 0;
    bool dir = false;
    for (int i = 0; i < 2000; ++i) {
        dir = !dir;
        gshare_hits += gshare.predictAndUpdate(pc, dir) ? 1 : 0;
        bimodal_hits += bimodal.predictAndUpdate(pc, dir) ? 1 : 0;
    }
    EXPECT_GT(gshare_hits, 1900);
    EXPECT_LT(bimodal_hits, 1300);
}

TEST(Gshare, ResetClearsHistory)
{
    GsharePredictor pred(6);
    for (int i = 0; i < 50; ++i)
        pred.update(0x30000, i % 2 == 0);
    pred.reset();
    EXPECT_FALSE(pred.predict(0x30000));
}

TEST(Local, LearnsAPeriodicLoopPattern)
{
    // A loop taken 7 times then not taken once: local history nails
    // the exit after warm-up; bimodal mispredicts every exit.
    LocalPredictor local(10, 8);
    BimodalPredictor bimodal(10);
    const std::uint64_t pc = 0x70000;
    int local_hits = 0, bimodal_hits = 0;
    int phase = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool taken = (phase = (phase + 1) % 8) != 0;
        const bool l = local.predictAndUpdate(pc, taken);
        const bool b = bimodal.predictAndUpdate(pc, taken);
        if (i >= 2000) {
            local_hits += l ? 1 : 0;
            bimodal_hits += b ? 1 : 0;
        }
    }
    EXPECT_EQ(local_hits, 2000);
    EXPECT_LT(bimodal_hits, 1800);
}

TEST(Local, ResetForgets)
{
    LocalPredictor local(8, 8);
    for (int i = 0; i < 100; ++i)
        local.update(0x70000, true);
    local.reset();
    EXPECT_FALSE(local.predict(0x70000));
}

TEST(Local, Name)
{
    EXPECT_EQ(LocalPredictor(10, 12).name(), "local12/10");
}

TEST(Combining, NameAndCost)
{
    CombiningPredictor pred(13);
    EXPECT_EQ(pred.name(), "bimodal13/gshare14");
    // (2^13 + 2^14 + 2^13) two-bit counters = 8 kBytes (paper budget).
    EXPECT_EQ(pred.costBytes(), 8192u);
}

TEST(Combining, AtLeastAsGoodAsWorstComponentOnBiasedStream)
{
    CombiningPredictor comb(10);
    const std::uint64_t pc = 0x40000;
    int hits = 0;
    for (int i = 0; i < 1000; ++i)
        hits += comb.predictAndUpdate(pc, true) ? 1 : 0;
    EXPECT_GT(hits, 980);
}

TEST(Combining, TracksAlternatingPatternViaGshare)
{
    CombiningPredictor comb(10);
    const std::uint64_t pc = 0x50000;
    int hits = 0;
    bool dir = false;
    for (int i = 0; i < 4000; ++i) {
        dir = !dir;
        const bool correct = comb.predictAndUpdate(pc, dir);
        if (i >= 2000)
            hits += correct ? 1 : 0;
    }
    // After warm-up the chooser should have moved to gshare.
    EXPECT_GT(hits, 1900);
}

TEST(Combining, ResetForgetsEverything)
{
    CombiningPredictor comb(8);
    for (int i = 0; i < 100; ++i)
        comb.update(0x60000, true);
    comb.reset();
    EXPECT_FALSE(comb.predict(0x60000));
}

TEST(Static, FixedAnswers)
{
    StaticPredictor taken(true), not_taken(false);
    EXPECT_TRUE(taken.predict(0x1234));
    EXPECT_FALSE(not_taken.predict(0x1234));
    EXPECT_EQ(taken.name(), "always-taken");
}

TEST(Factory, PaperPredictorIs8kBytes)
{
    auto pred = makePaperPredictor();
    EXPECT_EQ(pred->name(), "bimodal13/gshare14");
}

TEST(PredictAndUpdate, ReportsCorrectness)
{
    StaticPredictor taken(true);
    EXPECT_TRUE(taken.predictAndUpdate(0x1000, true));
    EXPECT_FALSE(taken.predictAndUpdate(0x1000, false));
}

} // anonymous namespace
} // namespace ddsc
