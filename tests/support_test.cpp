/**
 * @file
 * Unit tests for the support library: saturating counters, statistics
 * helpers, the deterministic RNG, and table formatting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "support/portfile.hh"
#include "support/random.hh"
#include "support/sat_counter.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace ddsc
{
namespace
{

TEST(SatCounter, StartsAtInitialValue)
{
    SatCounter ctr(2, 1);
    EXPECT_EQ(ctr.value(), 1u);
    EXPECT_EQ(ctr.max(), 3u);
}

TEST(SatCounter, SaturatesAtMax)
{
    SatCounter ctr(2, 3);
    ctr.increment();
    EXPECT_EQ(ctr.value(), 3u);
}

TEST(SatCounter, SaturatesAtZero)
{
    SatCounter ctr(2, 0);
    ctr.decrement();
    EXPECT_EQ(ctr.value(), 0u);
}

TEST(SatCounter, AsymmetricSteps)
{
    // The address-prediction confidence rule: +1 correct, -2 wrong.
    SatCounter ctr(2, 0);
    ctr.increment(1);
    ctr.increment(1);
    ctr.increment(1);
    EXPECT_EQ(ctr.value(), 3u);
    ctr.decrement(2);
    EXPECT_EQ(ctr.value(), 1u);
    ctr.decrement(2);
    EXPECT_EQ(ctr.value(), 0u);
}

TEST(SatCounter, TakenThreshold)
{
    SatCounter ctr(2, 0);
    EXPECT_FALSE(ctr.taken());
    ctr.set(1);
    EXPECT_FALSE(ctr.taken());
    ctr.set(2);
    EXPECT_TRUE(ctr.taken());
    ctr.set(3);
    EXPECT_TRUE(ctr.taken());
}

TEST(SatCounter, WidthOne)
{
    SatCounter ctr(1, 0);
    EXPECT_EQ(ctr.max(), 1u);
    ctr.increment();
    EXPECT_TRUE(ctr.taken());
}

TEST(Stats, HarmonicMeanMatchesHandComputation)
{
    const double values[] = {1.0, 2.0, 4.0};
    // 3 / (1 + 0.5 + 0.25) = 3 / 1.75
    EXPECT_NEAR(harmonicMean(values), 3.0 / 1.75, 1e-12);
}

TEST(Stats, HarmonicMeanOfEqualValuesIsThatValue)
{
    const double values[] = {2.5, 2.5, 2.5, 2.5};
    EXPECT_NEAR(harmonicMean(values), 2.5, 1e-12);
}

TEST(Stats, HarmonicMeanEmptyIsZero)
{
    EXPECT_EQ(harmonicMean({}), 0.0);
}

TEST(Stats, HarmonicMeanIsAtMostArithmetic)
{
    const double values[] = {0.5, 3.0, 7.0, 2.2};
    EXPECT_LE(harmonicMean(values), arithmeticMean(values));
}

TEST(Stats, PercentHandlesZeroWhole)
{
    EXPECT_EQ(percent(5, 0), 0.0);
    EXPECT_NEAR(percent(1, 4), 25.0, 1e-12);
}

TEST(Histogram, CountsAndSamples)
{
    Histogram h;
    h.add(1);
    h.add(1);
    h.add(7, 3);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(7), 3u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.maxKey(), 7u);
}

TEST(Histogram, CumulativeFractions)
{
    Histogram h;
    h.add(1, 2);
    h.add(4, 2);
    EXPECT_NEAR(h.cumulativeAt(0), 0.0, 1e-12);
    EXPECT_NEAR(h.cumulativeAt(1), 0.5, 1e-12);
    EXPECT_NEAR(h.cumulativeAt(3), 0.5, 1e-12);
    EXPECT_NEAR(h.cumulativeAt(4), 1.0, 1e-12);
}

TEST(Histogram, Mean)
{
    Histogram h;
    h.add(2, 1);
    h.add(4, 1);
    EXPECT_NEAR(h.mean(), 3.0, 1e-12);
}

TEST(Histogram, BucketFractions)
{
    Histogram h;
    h.add(1, 5);    // bucket [1,2)
    h.add(3, 3);    // bucket [2,8)
    h.add(9, 2);    // bucket [8,inf)
    const std::uint64_t edges[] = {1, 2, 8};
    const auto fractions = h.bucketFractions(edges);
    ASSERT_EQ(fractions.size(), 3u);
    EXPECT_NEAR(fractions[0], 0.5, 1e-12);
    EXPECT_NEAR(fractions[1], 0.3, 1e-12);
    EXPECT_NEAR(fractions[2], 0.2, 1e-12);
}

TEST(Histogram, Merge)
{
    Histogram a, b;
    a.add(1, 2);
    b.add(1, 1);
    b.add(5, 4);
    a.merge(b);
    EXPECT_EQ(a.samples(), 7u);
    EXPECT_EQ(a.count(1), 3u);
    EXPECT_EQ(a.count(5), 4u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceRoughlyUnbiased)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"long-name", "2.50"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Every line has the same length (trailing pad included).
    std::size_t first_len = out.find('\n');
    std::size_t pos = first_len + 1;
    while (pos < out.size()) {
        const std::size_t next = out.find('\n', pos);
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

TEST(TextTable, NumFormatsDigits)
{
    EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
}

TEST(PortFile, ReadToleratesMissingEmptyAndMalformed)
{
    const std::string path =
        "/tmp/ddsc-portfile-test-" + std::to_string(::getpid());
    std::remove(path.c_str());
    EXPECT_EQ(support::readPortFile(path), 0);        // missing

    for (const char *bytes : {"", "banana\n", "0\n", "70000\n"}) {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs(bytes, f);
        std::fclose(f);
        EXPECT_EQ(support::readPortFile(path), 0) << bytes;
    }

    ASSERT_TRUE(support::writeOneLineAtomic(path, 7411));
    EXPECT_EQ(support::readPortFile(path), 7411);

    support::removeRuntimeFile(path);
    EXPECT_EQ(support::readPortFile(path), 0);
    support::removeRuntimeFile(path);   // idempotent on missing
}

TEST(PortFile, ConcurrentPollNeverSeesTornOrEmptyLine)
{
    // Regression for the original fopen("w")/fprintf port-file write:
    // the in-place truncate let a concurrent poller read an *empty*
    // file between open and write, which parses as port 0 and — in a
    // retry loop riding a supervised restart — as a spurious dead
    // generation.  With the atomic temp+rename write, a poller
    // hammering the file while every generation rewrites it must only
    // ever see a complete old line or a complete new line.
    const std::string path =
        "/tmp/ddsc-portfile-race-" + std::to_string(::getpid());
    ASSERT_TRUE(support::writeOneLineAtomic(path, 1024));

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> bad{0};
    std::thread poller([&]() {
        while (!done.load()) {
            const std::uint16_t port = support::readPortFile(path);
            ++reads;
            if (port < 1024)
                ++bad;      // 0 = torn/empty/missing observed
        }
    });

    // "Generations": rewrite the file a few thousand times with
    // distinct valid ports while the poller hammers it.
    for (unsigned generation = 0; generation < 4000; ++generation) {
        ASSERT_TRUE(
            support::writeOneLineAtomic(path,
                                        1024 + (generation % 60000)));
    }
    done.store(true);
    poller.join();

    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(bad.load(), 0u);
    support::removeRuntimeFile(path);
}

} // anonymous namespace
} // namespace ddsc
