/**
 * @file
 * The speculation-module subsystem: predictor unit behaviour, stack
 * composition, engine-equivalence for the module-backed configs F/G,
 * the train-once property through the batched pass, and the
 * misspeculation accounting of predicted memory disambiguation.
 *
 * The misspeculation tests are the subsystem's semantic anchor: a
 * crafted trace where the cold collision-history predictor *provably*
 * lets a dependent load issue early pins both the squash counters and
 * the direction of the cost (predicted disambiguation can never beat
 * the paper's perfect disambiguation on that trace).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/config.hh"
#include "core/frontend.hh"
#include "core/sched_stats.hh"
#include "core/scheduler.hh"
#include "sim/batched.hh"
#include "spec/mem_dep_module.hh"
#include "spec/orchestrator.hh"
#include "spec/value_pred_module.hh"
#include "test_helpers.hh"
#include "trace/synthetic.hh"
#include "workloads/workloads.hh"

namespace ddsc
{
namespace
{

using test::alu;
using test::load;
using test::store;
using test::traceOf;

// ---------------------------------------------------------------------
// MemDepPredictor unit behaviour.
// ---------------------------------------------------------------------

TEST(MemDepPredictor, ColdTablePredictsIndependent)
{
    spec::MemDepPredictor pred(8, 1);
    EXPECT_FALSE(pred.predictDependent(0x1000));
    EXPECT_EQ(pred.entries(), 256u);
}

TEST(MemDepPredictor, OneCollisionFlipsToDependent)
{
    // +2 on a collision: a single observed dependence crosses the
    // default threshold of 1 — squashes are dear, so the predictor
    // turns conservative immediately.
    spec::MemDepPredictor pred(8, 1);
    pred.update(0x1000, true);
    EXPECT_TRUE(pred.predictDependent(0x1000));
    // Unrelated pcs (different index) stay independent.
    EXPECT_FALSE(pred.predictDependent(0x1004));
}

TEST(MemDepPredictor, IndependenceDecaysSlowly)
{
    // +2 up, -1 down: a saturated (repeatedly colliding) entry
    // survives one clean run but not two (the store-set asymmetry).
    spec::MemDepPredictor pred(8, 1);
    pred.update(0x2000, true);
    pred.update(0x2000, true);      // saturated at 3
    pred.update(0x2000, false);     // 2: still above threshold
    EXPECT_TRUE(pred.predictDependent(0x2000));
    pred.update(0x2000, false);     // 1: gone
    EXPECT_FALSE(pred.predictDependent(0x2000));
}

TEST(MemDepPredictor, ResetForgets)
{
    spec::MemDepPredictor pred(8, 1);
    pred.update(0x3000, true);
    ASSERT_TRUE(pred.predictDependent(0x3000));
    pred.reset();
    EXPECT_FALSE(pred.predictDependent(0x3000));
}

// ---------------------------------------------------------------------
// FcmStrideValuePredictor unit behaviour.
// ---------------------------------------------------------------------

TEST(FcmStrideValuePredictor, ColdTableIsNotConfident)
{
    spec::FcmStrideValuePredictor pred(8, 1, 4);
    EXPECT_FALSE(pred.predict(0x1000).usable);
}

TEST(FcmStrideValuePredictor, LearnsStrideSequences)
{
    spec::FcmStrideValuePredictor pred(8, 1, 4);
    const std::uint64_t pc = 0x1000;
    std::uint32_t v = 100;
    for (int i = 0; i < 8; ++i, v += 12)
        pred.update(pc, v);
    const ValuePrediction p = pred.predict(pc);
    ASSERT_TRUE(p.usable);
    EXPECT_EQ(p.value, v) << "next element of the +12 stride";
}

TEST(FcmStrideValuePredictor, LearnsRepeatingNonStridePattern)
{
    // {7, 3, 9} repeating has no consistent stride; only the
    // context (FCM) side can predict it.  After a warm-up the hybrid
    // must track the pattern essentially perfectly.
    spec::FcmStrideValuePredictor pred(8, 1, 4);
    const std::uint64_t pc = 0x2000;
    const std::uint32_t pattern[3] = {7, 3, 9};
    for (int i = 0; i < 24; ++i)
        pred.update(pc, pattern[i % 3]);
    unsigned hits = 0;
    for (int i = 24; i < 48; ++i) {
        const ValuePrediction p = pred.predict(pc);
        if (p.usable && p.value == pattern[i % 3])
            ++hits;
        pred.update(pc, pattern[i % 3]);
    }
    EXPECT_GE(hits, 22u) << "FCM side should own a period-3 pattern";
}

TEST(FcmStrideValuePredictor, ConfidenceGatesAfterMisses)
{
    // A stream that keeps changing behaviour must not stay confident:
    // after a burst of unpredictable values the predictor should
    // withhold (usable == false) rather than guess.
    spec::FcmStrideValuePredictor pred(8, 1, 4);
    const std::uint64_t pc = 0x3000;
    for (int i = 0; i < 8; ++i)
        pred.update(pc, 50 + 4 * i);            // confident stride
    ASSERT_TRUE(pred.predict(pc).usable);
    const std::uint32_t noise[] = {911, 17, 60000, 5, 12345, 777,
                                   31, 9999};
    for (const std::uint32_t v : noise)
        pred.update(pc, v);
    EXPECT_FALSE(pred.predict(pc).usable);
}

// ---------------------------------------------------------------------
// Stack composition and summaries.
// ---------------------------------------------------------------------

std::string
describeLetter(char id)
{
    const MachineConfig cfg = MachineConfig::paper(id, 8);
    FrontEndTrainCounts trains;
    const spec::SpeculationStack stack(cfg, trains);
    return stack.describe();
}

TEST(SpeculationStack, ComposesPerConfigLetter)
{
    const std::string a = describeLetter('A');
    EXPECT_NE(a.find("mem-dep(perfect"), std::string::npos) << a;
    EXPECT_EQ(a.find("addr-spec"), std::string::npos) << a;
    EXPECT_EQ(a.find("collapse"), std::string::npos) << a;

    const std::string d = describeLetter('D');
    EXPECT_NE(d.find("collapse"), std::string::npos) << d;
    EXPECT_NE(d.find("mem-dep(perfect"), std::string::npos) << d;
    EXPECT_NE(d.find("addr-spec"), std::string::npos) << d;
    EXPECT_LT(d.find("collapse"), d.find("mem-dep")) << d;
    EXPECT_LT(d.find("mem-dep"), d.find("addr-spec")) << d;

    const std::string f = describeLetter('F');
    EXPECT_NE(f.find("mem-dep(predicted"), std::string::npos) << f;

    const std::string g = describeLetter('G');
    EXPECT_NE(g.find("value-pred(fcm/stride"), std::string::npos) << g;
}

TEST(SpeculationStack, SummaryNotesIdealOracle)
{
    // Config E's ideal address speculation lives in the back-end, not
    // in a module; --list-configs must still say so.
    const std::string e =
        spec::moduleStackSummary(MachineConfig::paper('E', 8));
    EXPECT_NE(e.find("ideal address oracle"), std::string::npos) << e;
    const std::string d =
        spec::moduleStackSummary(MachineConfig::paper('D', 8));
    EXPECT_EQ(d.find("ideal"), std::string::npos) << d;
}

TEST(SpeculationStack, EveryKnownConfigBuildsAndDescribes)
{
    for (const char id : MachineConfig::knownConfigs()) {
        const std::string s = describeLetter(id);
        EXPECT_FALSE(s.empty()) << id;
        const std::string summary =
            spec::moduleStackSummary(MachineConfig::paper(id, 8));
        EXPECT_FALSE(summary.empty()) << id;
    }
}

// ---------------------------------------------------------------------
// Cache-identity of the new knobs.
// ---------------------------------------------------------------------

TEST(SpecModuleFingerprint, NewKnobsFeedTheFingerprint)
{
    const MachineConfig d = MachineConfig::paper('D', 8);
    const MachineConfig f = MachineConfig::paper('F', 8);
    const MachineConfig g = MachineConfig::paper('G', 8);
    EXPECT_NE(d.fingerprint(), f.fingerprint());
    EXPECT_NE(d.fingerprint(), g.fingerprint());
    EXPECT_NE(f.fingerprint(), g.fingerprint());

    // Every module knob is cell identity: a tweak must miss the
    // store (stale entries resimulate rather than resurrect).
    MachineConfig tweaked = f;
    tweaked.memDepConfidenceThreshold += 1;
    EXPECT_NE(f.fingerprint(), tweaked.fingerprint());
    tweaked = g;
    tweaked.vpredHistoryLength += 1;
    EXPECT_NE(g.fingerprint(), tweaked.fingerprint());

    // The squash penalty is back-end-only: still cell identity, but
    // it must not split batched front-end groups.
    tweaked = f;
    tweaked.memSquashPenalty += 4;
    EXPECT_NE(f.fingerprint(), tweaked.fingerprint());
    EXPECT_EQ(f.frontEndFingerprint(), tweaked.frontEndFingerprint());

    // D and G share front-end work only if the fingerprints say so:
    // G's value predictor trains during the pass, so they must not.
    EXPECT_NE(d.frontEndFingerprint(), g.frontEndFingerprint());
}

// ---------------------------------------------------------------------
// Engine equivalence for the module-backed configs.
// ---------------------------------------------------------------------

void
expectEnginesAgree(const VectorTraceSource &trace,
                   const MachineConfig &config, const std::string &what)
{
    // Event-driven vs naive reference engine.
    MachineConfig naive_config = config;
    naive_config.naiveEngine = true;

    VectorTraceView fast_view(trace);
    LimitScheduler fast(config);
    const SchedStats fast_stats = fast.run(fast_view);

    VectorTraceView naive_view(trace);
    LimitScheduler naive(naive_config);
    const SchedStats naive_stats = naive.run(naive_view);

    EXPECT_EQ(digestSchedStats(fast_stats),
              digestSchedStats(naive_stats))
        << what << " (event vs naive)";

    // Batched wakeup-list engine via the shared front-end pass.
    const BatchedGroupResult out = runBatchedGroup(
        trace, {config}, {what});
    ASSERT_TRUE(out.cells[0].ok) << what << ": " << out.cells[0].error;
    EXPECT_EQ(digestSchedStats(fast_stats),
              digestSchedStats(out.cells[0].stats))
        << what << " (event vs batched)";
}

TEST(SpecModuleEngines, RandomTracesAgreeOnFAndG)
{
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
        SyntheticTraceConfig config;
        config.instructions = 20000;
        config.seed = seed;
        const VectorTraceSource trace = generateSynthetic(config);
        for (const char id : {'F', 'G'}) {
            for (const unsigned width : {4u, 16u}) {
                expectEnginesAgree(
                    trace, MachineConfig::paper(id, width),
                    std::string("seed ") + std::to_string(seed) +
                        " config " + id + " width " +
                        std::to_string(width));
            }
        }
    }
}

TEST(SpecModuleEngines, WorkloadTracesAgreeOnFAndG)
{
    const WorkloadSpec &spec = findWorkload("li");
    const VectorTraceSource trace = traceWorkload(spec, spec.testScale);
    for (const char id : {'F', 'G'})
        expectEnginesAgree(trace, MachineConfig::paper(id, 8),
                           std::string("li ") + id);
}

// ---------------------------------------------------------------------
// Train-once through the batched pass.
// ---------------------------------------------------------------------

TEST(SpecModuleTraining, BatchedGroupTrainsOncePerRecord)
{
    SyntheticTraceConfig tconfig;
    tconfig.instructions = 8000;
    tconfig.seed = 21;
    const VectorTraceSource trace = generateSynthetic(tconfig);

    for (const char id : {'F', 'G'}) {
        // Reference: one solo front-end pass over the trace.
        const MachineConfig cfg = MachineConfig::paper(id, 4);
        SpecFrontEnd solo(cfg);
        FrontEndBatch batch;
        VectorTraceView view(trace);
        while (solo.fill(view, batch, 4096) != 0) {
        }
        const FrontEndTrainCounts &expect = solo.trainCounts();

        // Three widths share cfg's front-end fingerprint, so the
        // batched group must run (and train) the pass exactly once.
        std::vector<MachineConfig> configs;
        std::vector<std::string> keys;
        for (const unsigned w : {4u, 8u, 16u}) {
            configs.push_back(MachineConfig::paper(id, w));
            keys.push_back(std::string(1, id) + "/" +
                           std::to_string(w));
        }
        const BatchedGroupResult out =
            runBatchedGroup(trace, configs, keys);
        for (const BatchedCellResult &cell : out.cells)
            ASSERT_TRUE(cell.ok) << cell.error;

        EXPECT_EQ(out.trainCounts.memdep, expect.memdep) << id;
        EXPECT_EQ(out.trainCounts.value, expect.value) << id;
        EXPECT_EQ(out.trainCounts.address, expect.address) << id;
        if (id == 'F') {
            EXPECT_EQ(expect.memdep, out.cells[0].stats.loads)
                << "predicted mem-dep trains on every dynamic load";
        }
        if (id == 'G') {
            EXPECT_EQ(expect.value, out.cells[0].stats.loads)
                << "value predictor trains on every dynamic load";
        }
    }
}

// ---------------------------------------------------------------------
// Misspeculation accounting (the semantic anchor).
// ---------------------------------------------------------------------

/**
 * One iteration of the collision kernel at @p pc_base: a multiply
 * chain produces the store's data, and the very next instruction
 * loads the freshly stored address.  The load's own address operand
 * (r1) is never written, so the only thing keeping it honest is the
 * memory arc — exactly what the predicted mode speculates past.
 */
void
appendCollisionIteration(std::vector<TraceRecord> &recs,
                         std::uint64_t pc_base, std::uint64_t ea,
                         std::uint32_t stored)
{
    recs.push_back(alu(Opcode::MUL, 2, 2, 3, pc_base));
    recs.push_back(store(2, 1, 0, ea, pc_base + 4));
    TraceRecord ld = load(4, 1, 0, ea, pc_base + 8);
    ld.memValue = stored;
    recs.push_back(ld);
    recs.push_back(alu(Opcode::ADD, 5, 5, 4, pc_base + 12));
}

SchedStats
runRecords(const std::vector<TraceRecord> &recs,
           const MachineConfig &config)
{
    VectorTraceSource trace = traceOf(recs);
    LimitScheduler sched(config);
    return sched.run(trace);
}

TEST(MemDepMisspeculation, ColdPredictorSquashesEveryColdLoad)
{
    // Fresh pc per iteration: the collision-history table never warms
    // up, so every load is provably predicted independent, issues
    // before its store, and must be squashed.
    constexpr unsigned kIters = 64;
    std::vector<TraceRecord> recs;
    for (unsigned i = 0; i < kIters; ++i)
        appendCollisionIteration(recs, 0x10000 + 0x40ull * i,
                                 0x8000 + 8ull * i, 100 + i);

    MachineConfig predicted = MachineConfig::paper('A', 4);
    predicted.memDep = MemDepMode::Predicted;
    const MachineConfig perfect = MachineConfig::paper('A', 4);

    const SchedStats p = runRecords(recs, predicted);
    EXPECT_EQ(p.memDepSquashes, kIters)
        << "every cold dependent load must squash exactly once";
    EXPECT_EQ(p.memDepPredictedDeps, 0u)
        << "a cold table never predicts a dependence";

    const SchedStats ideal = runRecords(recs, perfect);
    EXPECT_EQ(ideal.memDepSquashes, 0u);
    EXPECT_EQ(ideal.instructions, p.instructions);
    EXPECT_LE(p.ipc(), ideal.ipc())
        << "predicted disambiguation can never beat perfect here";
    EXPECT_GT(p.cycles, ideal.cycles)
        << "the squash penalty must actually cost cycles";
}

TEST(MemDepMisspeculation, PredictorLearnsAfterFirstViolation)
{
    // Same kernel, same pc every iteration: the first collision
    // trains the predictor (+2 crosses the threshold), so iterations
    // after the first keep their arc and never squash again.
    constexpr unsigned kIters = 16;
    std::vector<TraceRecord> recs;
    for (unsigned i = 0; i < kIters; ++i)
        appendCollisionIteration(recs, 0x10000, 0x8000, 100 + i);

    MachineConfig predicted = MachineConfig::paper('A', 4);
    predicted.memDep = MemDepMode::Predicted;
    const SchedStats p = runRecords(recs, predicted);

    EXPECT_EQ(p.memDepSquashes, 1u)
        << "only the cold first iteration may squash";
    EXPECT_GE(p.memDepPredictedDeps, kIters - 1)
        << "warm iterations are predicted dependent";
    EXPECT_EQ(p.memDepFalseDeps, 0u)
        << "every predicted dependence here is real";
}

TEST(MemDepMisspeculation, FalseDependenceIsCountedNotSquashed)
{
    // Warm the predictor with real collisions at one pc, then reuse
    // that pc for loads with no producing store: while the counter
    // stays above threshold the loads pick up a conservative arc to
    // the youngest store (counted as false dependences), but nothing
    // squashes.  The -1 decay then self-limits the cost: a saturated
    // counter (3) survives exactly two clean runs, so exactly two of
    // the eight loads pay the false arc.
    std::vector<TraceRecord> recs;
    for (unsigned i = 0; i < 4; ++i)
        appendCollisionIteration(recs, 0x10000, 0x8000, 100 + i);
    for (unsigned i = 0; i < 8; ++i) {
        TraceRecord ld = load(6, 1, 0, 0x9000 + 8ull * i, 0x10008);
        ld.memValue = 7;
        recs.push_back(ld);
    }

    MachineConfig predicted = MachineConfig::paper('A', 4);
    predicted.memDep = MemDepMode::Predicted;
    const SchedStats p = runRecords(recs, predicted);

    EXPECT_EQ(p.memDepSquashes, 1u) << "only the first cold collision";
    EXPECT_EQ(p.memDepFalseDeps, 2u)
        << "the decay bounds the false-dependence cost";
}

TEST(MemDepMisspeculation, ConfigFNeverBeatsPerfectDisambiguation)
{
    // The whole-config version of the anchor, on a synthetic trace:
    // F is exactly D with predicted disambiguation, so D's IPC bounds
    // F's from above on any trace (speculating past a store can only
    // cost; it never reveals a value earlier than perfect knowledge).
    SyntheticTraceConfig tconfig;
    tconfig.instructions = 20000;
    tconfig.seed = 31;
    tconfig.storeFraction = 0.2;
    tconfig.loadFraction = 0.3;
    VectorTraceSource trace = generateSynthetic(tconfig);

    VectorTraceView f_view(trace);
    LimitScheduler f_sched(MachineConfig::paper('F', 8));
    const SchedStats f = f_sched.run(f_view);

    VectorTraceView d_view(trace);
    LimitScheduler d_sched(MachineConfig::paper('D', 8));
    const SchedStats d = d_sched.run(d_view);

    EXPECT_GT(f.memDepSquashes + f.memDepPredictedDeps, 0u)
        << "the predictor must actually be exercised";
    EXPECT_LE(f.ipc(), d.ipc());
}

} // anonymous namespace
} // namespace ddsc
