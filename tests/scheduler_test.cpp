/**
 * @file
 * Unit tests for the limit scheduler: hand-computed issue schedules for
 * micro-traces covering width limits, latencies, branch barriers,
 * memory dependences, load speculation, and collapsing.
 *
 * Timing conventions under test (DESIGN.md section 5): the initial
 * window fill can issue at cycle 0; a producer issuing at cycle t with
 * latency L feeds consumers from cycle t+L; refilled instructions issue
 * no earlier than the cycle after insertion; cycles = last issue + 1.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/scheduler.hh"
#include "test_helpers.hh"

namespace ddsc
{
namespace
{

using test::Rec;
using test::alu;
using test::aluImm;
using test::branch;
using test::load;
using test::store;
using test::traceOf;

SchedStats
runOn(const MachineConfig &config, std::vector<TraceRecord> records)
{
    VectorTraceSource trace = traceOf(std::move(records));
    LimitScheduler scheduler(config);
    return scheduler.run(trace);
}

MachineConfig
cfg(char id, unsigned width)
{
    return MachineConfig::paper(id, width);
}

TEST(Scheduler, EmptyTrace)
{
    // A run in which nothing ever issues occupies zero cycles; the
    // "last issue cycle + 1" accounting must not report a phantom
    // cycle.  Both engines agree.
    for (const bool naive : {false, true}) {
        MachineConfig config = cfg('A', 4);
        config.naiveEngine = naive;
        const SchedStats stats = runOn(config, {});
        EXPECT_EQ(stats.instructions, 0u) << "naive=" << naive;
        EXPECT_EQ(stats.cycles, 0u) << "naive=" << naive;
        EXPECT_EQ(stats.ipc(), 0.0) << "naive=" << naive;
    }
}

TEST(Scheduler, SingleInstructionTrace)
{
    // One instruction issues at cycle 0 => exactly one cycle, IPC 1,
    // in both engines.
    for (const bool naive : {false, true}) {
        MachineConfig config = cfg('A', 4);
        config.naiveEngine = naive;
        const SchedStats stats =
            runOn(config, {aluImm(Opcode::ADD, 1, 0, 5, 0x10000)});
        EXPECT_EQ(stats.instructions, 1u) << "naive=" << naive;
        EXPECT_EQ(stats.cycles, 1u) << "naive=" << naive;
        EXPECT_NEAR(stats.ipc(), 1.0, 1e-12) << "naive=" << naive;
    }
}

TEST(Scheduler, IndependentInstructionsSaturateWidth)
{
    // 8 independent adds, width 4, window 8: 4 issue at cycle 0 and 4
    // at cycle 1 => IPC 4.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 8; ++i)
        recs.push_back(alu(Opcode::ADD, 1 + i % 8, 0, 0,
                           0x10000 + 4 * i));
    const SchedStats stats = runOn(cfg('A', 4), recs);
    EXPECT_EQ(stats.instructions, 8u);
    EXPECT_EQ(stats.cycles, 2u);
    EXPECT_NEAR(stats.ipc(), 4.0, 1e-12);
}

TEST(Scheduler, WidthOneSerializes)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 5; ++i)
        recs.push_back(alu(Opcode::ADD, 1, 0, 0, 0x10000 + 4 * i));
    const SchedStats stats = runOn(cfg('A', 1), recs);
    EXPECT_EQ(stats.cycles, 5u);
}

TEST(Scheduler, DependentChainIssuesOnePerCycle)
{
    // add r1 = r1 + 1, six times: RAW chain, 1-cycle latency.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 6; ++i)
        recs.push_back(aluImm(Opcode::ADD, 1, 1, 1, 0x10000 + 4 * i));
    const SchedStats stats = runOn(cfg('A', 4), recs);
    EXPECT_EQ(stats.cycles, 6u);
    EXPECT_NEAR(stats.ipc(), 1.0, 1e-12);
}

TEST(Scheduler, WritesToR0CreateNoDependence)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 4; ++i)
        recs.push_back(aluImm(Opcode::ADD, 0, 0, 1, 0x10000 + 4 * i));
    const SchedStats stats = runOn(cfg('A', 4), recs);
    EXPECT_EQ(stats.cycles, 1u);
}

TEST(Scheduler, LoadLatencyIsTwoCycles)
{
    // ld r1 (cycle 0, completes for consumers at 2); add r2 = r1 + 1
    // at cycle 2.
    const SchedStats stats = runOn(cfg('A', 4), {
        load(1, 0, 0, 0x1000, 0x10000),
        aluImm(Opcode::ADD, 2, 1, 1, 0x10004),
    });
    EXPECT_EQ(stats.cycles, 3u);
}

TEST(Scheduler, DivideLatencyIsTwelveCycles)
{
    const SchedStats stats = runOn(cfg('A', 4), {
        alu(Opcode::DIV, 1, 2, 3, 0x10000),
        aluImm(Opcode::ADD, 4, 1, 1, 0x10004),
    });
    // div at 0, add at 12 => 13 cycles.
    EXPECT_EQ(stats.cycles, 13u);
}

TEST(Scheduler, MultiplyLatencyIsTwoCycles)
{
    const SchedStats stats = runOn(cfg('A', 4), {
        alu(Opcode::MUL, 1, 2, 3, 0x10000),
        aluImm(Opcode::ADD, 4, 1, 1, 0x10004),
    });
    EXPECT_EQ(stats.cycles, 3u);
}

TEST(Scheduler, IdealRenamingIgnoresWarAndWaw)
{
    // WAW on r1 and WAR on r2 must not serialize anything.
    const SchedStats stats = runOn(cfg('A', 4), {
        alu(Opcode::ADD, 1, 2, 3, 0x10000),
        alu(Opcode::ADD, 1, 4, 5, 0x10004),    // WAW with 0
        alu(Opcode::ADD, 2, 6, 7, 0x10008),    // WAR with 0
    });
    EXPECT_EQ(stats.cycles, 1u);
}

TEST(Scheduler, StoreToLoadDependenceHonored)
{
    // store to 0x1000 at cycle 0 (latency 1), aliasing load issues at
    // cycle 1, dependent add at 3.
    const SchedStats stats = runOn(cfg('A', 4), {
        store(5, 0, 0, 0x1000, 0x10000),
        load(1, 0, 0, 0x1000, 0x10004),
        aluImm(Opcode::ADD, 2, 1, 1, 0x10008),
    });
    EXPECT_EQ(stats.cycles, 4u);
}

TEST(Scheduler, NonAliasingLoadIgnoresStore)
{
    const SchedStats stats = runOn(cfg('A', 4), {
        store(5, 0, 0, 0x1000, 0x10000),
        load(1, 0, 0, 0x2000, 0x10004),
    });
    EXPECT_EQ(stats.cycles, 1u);
}

TEST(Scheduler, PartialOverlapIsADependence)
{
    // Byte store into the middle of the word the load reads.
    const SchedStats stats = runOn(cfg('A', 4), {
        Rec(Opcode::STB).rd(5).rs1(0).imm(0).ea(0x1002).pc(0x10000),
        load(1, 0, 0, 0x1000, 0x10004),
    });
    // store at 0, load at 1 => 2 cycles.
    EXPECT_EQ(stats.cycles, 2u);
}

TEST(Scheduler, MispredictedBranchBarriers)
{
    // The predictor starts weakly-not-taken, so a taken branch
    // mispredicts.  Younger instructions cannot issue before or during
    // the branch's issue cycle.
    const SchedStats stats = runOn(cfg('A', 4), {
        aluImm(Opcode::SUBCC, 0, 5, 1, 0x10000),     // cmp: cycle 0
        branch(Cond::EQ, true, 0x10004),             // cc at 1: cycle 1
        alu(Opcode::ADD, 1, 0, 0, 0x10008),          // barrier: cycle 2
    });
    EXPECT_EQ(stats.cycles, 3u);
    EXPECT_EQ(stats.condBranches, 1u);
    EXPECT_EQ(stats.mispredicts, 1u);
}

TEST(Scheduler, CorrectlyPredictedBranchDoesNotBarrier)
{
    // A not-taken branch agrees with the weakly-not-taken initial
    // prediction: the younger add can issue immediately.
    const SchedStats stats = runOn(cfg('A', 4), {
        aluImm(Opcode::SUBCC, 0, 5, 1, 0x10000),
        branch(Cond::EQ, false, 0x10004),
        alu(Opcode::ADD, 1, 0, 0, 0x10008),
    });
    EXPECT_EQ(stats.cycles, 2u);    // cmp+add at 0, branch at 1
    EXPECT_EQ(stats.mispredicts, 0u);
}

TEST(Scheduler, WindowLimitsLookahead)
{
    // Width 1, window 2.  A long chain head blocks the window, so the
    // independent tail cannot be seen until the chain drains.
    std::vector<TraceRecord> recs;
    recs.push_back(alu(Opcode::DIV, 1, 2, 3, 0x10000));
    recs.push_back(aluImm(Opcode::ADD, 4, 1, 1, 0x10004)); // waits 12
    recs.push_back(alu(Opcode::ADD, 5, 0, 0, 0x10008));
    const SchedStats narrow = runOn(cfg('A', 1), recs);
    // div at 0; the dependent add issues at 12; the independent add
    // only entered the window after the div issued (cycle 1) and
    // issues at... width 1: div@0, indep-add enters at 1 and issues at
    // 1, dep-add at 12 => cycles 13.
    EXPECT_EQ(narrow.cycles, 13u);
}

TEST(Scheduler, RefilledInstructionsWaitOneCycle)
{
    // Width 4 / window 8 with 12 independent adds: 4+4 issue in cycles
    // 0 and 1; the 4 refilled at the end of cycle 0 issue at cycle 1?
    // No: refills happen after issue each cycle, so entries inserted
    // during cycle 0 become eligible at cycle 1, and the last 4 issue
    // at cycle 2.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 12; ++i)
        recs.push_back(alu(Opcode::ADD, 1 + i % 4, 0, 0,
                           0x10000 + 4 * i));
    const SchedStats stats = runOn(cfg('A', 4), recs);
    EXPECT_EQ(stats.cycles, 3u);
    EXPECT_NEAR(stats.ipc(), 4.0, 1e-12);
}

// --- collapsing ------------------------------------------------------

TEST(Scheduler, CollapsePairIssuesTogether)
{
    // Producer/consumer adds: base takes 2 cycles, collapsing 1.
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADD, 1, 2, 3, 0x10000),
        alu(Opcode::ADD, 4, 1, 5, 0x10004),
    };
    EXPECT_EQ(runOn(cfg('A', 4), recs).cycles, 2u);
    const SchedStats c = runOn(cfg('C', 4), recs);
    EXPECT_EQ(c.cycles, 1u);
    EXPECT_EQ(c.collapse.events(), 1u);
    EXPECT_EQ(c.collapse.eventsOf(CollapseCategory::ThreeOne), 1u);
    EXPECT_EQ(c.collapse.collapsedInstructions(), 2u);
    EXPECT_NEAR(c.pctCollapsed(), 100.0, 1e-9);
    EXPECT_EQ(c.collapse.pairSignatures().at("arrr-arrr"), 1u);
    EXPECT_EQ(c.collapse.distances().count(1), 1u);
}

TEST(Scheduler, CollapseTripleChain)
{
    // Three chained arri adds: 2+1+1 = 4 operands, a 4-1 triple; all
    // three issue in cycle 0.
    std::vector<TraceRecord> recs = {
        aluImm(Opcode::ADD, 1, 2, 5, 0x10000),
        aluImm(Opcode::ADD, 3, 1, 6, 0x10004),
        aluImm(Opcode::ADD, 4, 3, 7, 0x10008),
    };
    EXPECT_EQ(runOn(cfg('A', 4), recs).cycles, 3u);
    const SchedStats c = runOn(cfg('C', 4), recs);
    EXPECT_EQ(c.cycles, 1u);
    EXPECT_EQ(c.collapse.events(), 2u);   // the pair, then the triple
    EXPECT_EQ(c.collapse.tripleSignatures().at("arri-arri-arri"), 1u);
    EXPECT_EQ(c.collapse.collapsedInstructions(), 3u);
}

TEST(Scheduler, FourChainCannotFullyCollapse)
{
    // A fourth chained add exceeds the 3-instruction group limit; it
    // must wait for the triple's head to produce a value.
    std::vector<TraceRecord> recs = {
        aluImm(Opcode::ADD, 1, 2, 5, 0x10000),
        aluImm(Opcode::ADD, 3, 1, 6, 0x10004),
        aluImm(Opcode::ADD, 4, 3, 7, 0x10008),
        aluImm(Opcode::ADD, 5, 4, 8, 0x1000c),
    };
    const SchedStats c = runOn(cfg('C', 4), recs);
    // Triple at cycle 0; instruction 3 (producer of r4) issues at 0,
    // so the fourth issues at 1 => 2 cycles.
    EXPECT_EQ(c.cycles, 2u);
}

TEST(Scheduler, WidePairRejectedByOperandCount)
{
    // arrr feeding arrr: 2 + 2 - 1 = 3 ok.  But arrr feeding both
    // slots (Rc = Rb + Rb) is 4 operands: still legal on the 4-1
    // device, categorized FourOne.
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADD, 1, 2, 3, 0x10000),
        alu(Opcode::ADD, 4, 1, 1, 0x10004),
    };
    const SchedStats c = runOn(cfg('C', 4), recs);
    EXPECT_EQ(c.cycles, 1u);
    EXPECT_EQ(c.collapse.eventsOf(CollapseCategory::FourOne), 1u);
}

TEST(Scheduler, CmpBranchCollapse)
{
    // cmp + mispredicted branch: collapsing lets the branch issue with
    // the cmp at cycle 0, shrinking the misprediction barrier.
    std::vector<TraceRecord> recs = {
        alu(Opcode::SUBCC, 0, 5, 6, 0x10000),
        branch(Cond::EQ, true, 0x10004),
        alu(Opcode::ADD, 1, 0, 0, 0x10008),
    };
    EXPECT_EQ(runOn(cfg('A', 4), recs).cycles, 3u);
    const SchedStats c = runOn(cfg('C', 4), recs);
    // cmp+branch at 0, barrier lifts at 1 => 2 cycles.
    EXPECT_EQ(c.cycles, 2u);
    EXPECT_EQ(c.collapse.pairSignatures().at("arrr-brc"), 1u);
}

TEST(Scheduler, AddressGenerationCollapsesIntoLoad)
{
    // add r1 = r2 + r3 ; ld r4, [r1 + 8]: shri/arri->ld is the
    // paper's address-generation collapse.
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADD, 1, 2, 3, 0x10000),
        load(4, 1, 8, 0x1008, 0x10004),
        aluImm(Opcode::ADD, 5, 4, 1, 0x10008),
    };
    // Base: add@0, ld@1, add@3 => 4 cycles.
    EXPECT_EQ(runOn(cfg('A', 4), recs).cycles, 4u);
    // Collapsed: add+ld@0, consumer at 2 => 3 cycles.
    const SchedStats c = runOn(cfg('C', 4), recs);
    EXPECT_EQ(c.cycles, 3u);
    EXPECT_EQ(c.collapse.pairSignatures().at("arrr-ldri"), 1u);
}

TEST(Scheduler, MulIsNotACollapseProducer)
{
    std::vector<TraceRecord> recs = {
        alu(Opcode::MUL, 1, 2, 3, 0x10000),
        aluImm(Opcode::ADD, 4, 1, 1, 0x10004),
    };
    const SchedStats c = runOn(cfg('C', 4), recs);
    EXPECT_EQ(c.cycles, 3u);    // same as base
    EXPECT_EQ(c.collapse.events(), 0u);
}

TEST(Scheduler, StoreDataArcDoesNotCollapse)
{
    // The stored value comes from an add: address generation may
    // collapse but the data arc may not.
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADD, 1, 2, 3, 0x10000),          // data producer
        store(1, 0, 0, 0x1000, 0x10004),             // st r1, [r0+0]
    };
    const SchedStats c = runOn(cfg('C', 4), recs);
    EXPECT_EQ(c.cycles, 2u);
    EXPECT_EQ(c.collapse.events(), 0u);
}

TEST(Scheduler, ZeroOpCollapse)
{
    // st r0, [r1 + r2] with both address registers produced by adds:
    // raw 3 + 2 + 2 - 2 = 5 operands, nonzero 4 (store data is r0):
    // legal only via 0-op detection.
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADD, 1, 3, 4, 0x10000),
        alu(Opcode::ADD, 2, 5, 6, 0x10004),
        Rec(Opcode::STW).rd(0).rs1(1).rs2(2).ea(0x1000).pc(0x10008),
    };
    const SchedStats c = runOn(cfg('C', 4), recs);
    EXPECT_EQ(c.cycles, 1u);
    EXPECT_EQ(c.collapse.eventsOf(CollapseCategory::ZeroOp), 1u);
    EXPECT_EQ(c.collapse.tripleSignatures().count("arrr-arrr-strr"), 1u);
}

TEST(Scheduler, CollapseRequiresCoResidency)
{
    // Producer long issued before the consumer enters the window:
    // no collapse event recorded.
    std::vector<TraceRecord> recs;
    recs.push_back(alu(Opcode::ADD, 1, 2, 3, 0x10000));
    // Filler to push the consumer out of the initial window (window 8).
    for (int i = 0; i < 20; ++i)
        recs.push_back(alu(Opcode::ADD, 10 + i % 4, 0, 0,
                           0x10004 + 4 * i));
    recs.push_back(aluImm(Opcode::ADD, 4, 1, 1, 0x10100));
    const SchedStats c = runOn(cfg('C', 4), recs);
    EXPECT_EQ(c.collapse.events(), 0u);
}

// --- load speculation -------------------------------------------------

/** A div-delayed strided load stream: the address register is always
 *  late, so loads are speculation candidates at every iteration. */
std::vector<TraceRecord>
stridedLateAddressLoads(int iterations)
{
    std::vector<TraceRecord> recs;
    std::uint64_t ea = 0x40000000;
    for (int i = 0; i < iterations; ++i) {
        // div makes the address register late by 12 cycles.
        recs.push_back(alu(Opcode::DIV, 1, 1, 2, 0x10000));
        recs.push_back(load(3, 1, 0, ea, 0x10004));
        recs.push_back(aluImm(Opcode::ADD, 4, 3, 1, 0x10008));
        ea += 4;
    }
    return recs;
}

TEST(Scheduler, RealLoadSpeculationBeatsBase)
{
    const auto recs = stridedLateAddressLoads(40);
    const SchedStats base = runOn(cfg('A', 4), recs);
    const SchedStats spec = runOn(cfg('B', 4), recs);
    EXPECT_LT(spec.cycles, base.cycles);
    EXPECT_EQ(spec.loads, 40u);
    // The stride predictor warms up, then predicts correctly.
    EXPECT_GT(spec.loadClasses[static_cast<unsigned>(
                  LoadClass::PredictedCorrect)], 30u);
    EXPECT_GT(spec.loadClasses[static_cast<unsigned>(
                  LoadClass::NotPredicted)], 0u);
}

TEST(Scheduler, LoadClassesPartitionAllLoads)
{
    const auto recs = stridedLateAddressLoads(25);
    const SchedStats spec = runOn(cfg('B', 4), recs);
    std::uint64_t sum = 0;
    for (const auto n : spec.loadClasses)
        sum += n;
    EXPECT_EQ(sum, spec.loads);
}

TEST(Scheduler, EarlyAddressLoadsAreReady)
{
    // The address register is ready from the start: every load is
    // "ready" and speculation changes nothing.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 10; ++i) {
        recs.push_back(load(3, 1, 4 * i, 0x40000000 + 4 * i,
                            0x10000 + 8 * i));
        recs.push_back(alu(Opcode::DIV, 4, 3, 2, 0x10004 + 8 * i));
    }
    const SchedStats spec = runOn(cfg('B', 4), recs);
    EXPECT_EQ(spec.loadClasses[static_cast<unsigned>(LoadClass::Ready)],
              spec.loads);
    EXPECT_EQ(runOn(cfg('A', 4), recs).cycles, spec.cycles);
}

TEST(Scheduler, IdealSpeculationAtLeastAsGoodAsReal)
{
    const auto recs = stridedLateAddressLoads(40);
    const SchedStats real = runOn(cfg('D', 4), recs);
    const SchedStats ideal = runOn(cfg('E', 4), recs);
    EXPECT_LE(ideal.cycles, real.cycles);
}

TEST(Scheduler, RandomAddressesAreNotPredicted)
{
    std::vector<TraceRecord> recs;
    std::uint64_t ea = 0x40000000;
    for (int i = 0; i < 30; ++i) {
        ea = (ea * 2654435761u + 12345) & 0xfffffffcu;
        recs.push_back(alu(Opcode::DIV, 1, 1, 2, 0x10000));
        recs.push_back(load(3, 1, 0, ea, 0x10004));
    }
    const SchedStats spec = runOn(cfg('B', 4), recs);
    EXPECT_EQ(spec.loadClasses[static_cast<unsigned>(
                  LoadClass::PredictedCorrect)], 0u);
    EXPECT_GT(spec.loadClasses[static_cast<unsigned>(
                  LoadClass::NotPredicted)], 25u);
}

TEST(Scheduler, MispredictedSpeculationMatchesNoSpeculationTiming)
{
    // A stream that builds confidence, then breaks stride: the broken
    // load must be classed predicted-incorrectly and timing must not
    // be worse than config A.
    std::vector<TraceRecord> recs;
    std::uint64_t ea = 0x40000000;
    for (int i = 0; i < 20; ++i) {
        recs.push_back(alu(Opcode::DIV, 1, 1, 2, 0x10000));
        recs.push_back(load(3, 1, 0, i == 15 ? 0x50000000 : ea,
                            0x10004));
        ea += 4;
    }
    const SchedStats base = runOn(cfg('A', 4), recs);
    const SchedStats spec = runOn(cfg('B', 4), recs);
    EXPECT_GT(spec.loadClasses[static_cast<unsigned>(
                  LoadClass::PredictedIncorrect)], 0u);
    EXPECT_LE(spec.cycles, base.cycles);
}

// --- cross-config invariants on synthetic micro-traces ----------------

TEST(Scheduler, IssuedPerCycleHistogram)
{
    // 8 independent adds at width 4: two cycles of exactly 4 issues.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 8; ++i)
        recs.push_back(alu(Opcode::ADD, 1 + i % 8, 0, 0,
                           0x10000 + 4 * i));
    const SchedStats stats = runOn(cfg('A', 4), recs);
    EXPECT_EQ(stats.issuedPerCycle.count(4), 2u);
    EXPECT_EQ(stats.issuedPerCycle.maxKey(), 4u);
    // A divide chain at width 4: 11 idle cycles while the divide runs.
    const SchedStats divs = runOn(cfg('A', 4), {
        alu(Opcode::DIV, 1, 2, 3, 0x10000),
        aluImm(Opcode::ADD, 4, 1, 1, 0x10004),
    });
    EXPECT_EQ(divs.issuedPerCycle.count(0), 11u);
    EXPECT_GT(divs.pctIdleCycles(), 80.0);
}

TEST(Scheduler, ConsecutiveMispredictedBranchesStackBarriers)
{
    // Two taken branches in a row (both mispredicted cold): each
    // serializes what follows it.
    const SchedStats stats = runOn(cfg('A', 8), {
        aluImm(Opcode::SUBCC, 0, 5, 1, 0x10000),    // cmp @0
        branch(Cond::EQ, true, 0x10004),            // @1 (cc at 1)
        aluImm(Opcode::SUBCC, 0, 6, 1, 0x10008),    // barrier: @2
        branch(Cond::EQ, true, 0x1000c),            // cc at 3: @3
        alu(Opcode::ADD, 1, 0, 0, 0x10010),         // barrier: @4
    });
    EXPECT_EQ(stats.mispredicts, 2u);
    EXPECT_EQ(stats.cycles, 5u);
}

TEST(Scheduler, CollapseShrinksBothBarriersInAChain)
{
    // Same stream under collapsing: each cmp fuses into its branch,
    // halving the serialization.
    std::vector<TraceRecord> recs = {
        aluImm(Opcode::SUBCC, 0, 5, 1, 0x10000),    // @0 (fused)
        branch(Cond::EQ, true, 0x10004),            // @0
        aluImm(Opcode::SUBCC, 0, 6, 1, 0x10008),    // barrier: @1 (fused)
        branch(Cond::EQ, true, 0x1000c),            // @1
        alu(Opcode::ADD, 1, 0, 0, 0x10010),         // barrier: @2
    };
    const SchedStats stats = runOn(cfg('C', 8), recs);
    EXPECT_EQ(stats.cycles, 3u);
    EXPECT_EQ(stats.collapse.pairSignatures().at("arri-brc"), 2u);
}

TEST(Scheduler, SpeculatedLoadStillRespectsTheBarrier)
{
    // A confidently predicted load after a mispredicted branch must
    // not deliver data before the barrier lifts ("a load-speculated
    // load needs to respect all dependences with the exception of
    // address generation").
    std::vector<TraceRecord> recs;
    // Warm the stride table at this pc first (ready loads, no deps).
    std::uint64_t ea = 0x40000000;
    for (int i = 0; i < 8; ++i) {
        recs.push_back(load(3, 0, 0, ea, 0x20000));
        ea += 4;
    }
    // Now: mispredicted branch, then the load (address late via div).
    recs.push_back(aluImm(Opcode::SUBCC, 0, 5, 1, 0x10000));
    recs.push_back(branch(Cond::EQ, true, 0x10004));
    recs.push_back(alu(Opcode::DIV, 1, 2, 3, 0x10008));
    recs.push_back(load(3, 1, 0, ea, 0x20000));     // same table entry
    recs.push_back(aluImm(Opcode::ADD, 4, 3, 1, 0x1000c));
    const SchedStats stats = runOn(cfg('B', 8), recs);
    // The 8 warm-up loads fill cycle 0's issue slots; cmp @1; branch
    // @2 (cc ready at 2); the barrier lifts at 3, so the divide
    // issues @3 and the chased load's address is ready @15.  The load
    // classifies at cycle 3 (its non-address constraints INCLUDE the
    // barrier), so speculative data reaches the consumer at 5 -- but
    // the load itself still issues @15: 16 cycles total.
    EXPECT_EQ(stats.cycles, 16u);
}

TEST(Scheduler, ConsecutiveOnlyRestrictionBlocksDistantCollapse)
{
    // Producer and consumer separated by an unrelated instruction:
    // the full model collapses (distance 2), the prior-work
    // "consecutive only" model does not.
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADD, 1, 2, 3, 0x10000),
        alu(Opcode::ADD, 9, 10, 11, 0x10004),   // unrelated filler
        alu(Opcode::ADD, 4, 1, 5, 0x10008),     // consumer, distance 2
    };
    const SchedStats full = runOn(cfg('C', 4), recs);
    EXPECT_EQ(full.collapse.events(), 1u);
    EXPECT_EQ(full.collapse.distances().count(2), 1u);

    MachineConfig restricted = cfg('C', 4);
    restricted.rules.maxCollapseDistance = 1;
    VectorTraceSource trace = traceOf(recs);
    LimitScheduler sched(restricted);
    const SchedStats adj = sched.run(trace);
    EXPECT_EQ(adj.collapse.events(), 0u);
}

TEST(Scheduler, SameBasicBlockRestrictionBlocksCrossBlockCollapse)
{
    // The producer sits before a (perfectly predicted) branch; the
    // consumer after it.  Cross-block collapsing is what the paper
    // added over prior work.
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADD, 1, 2, 3, 0x10000),
        aluImm(Opcode::SUBCC, 0, 5, 1, 0x10004),
        branch(Cond::EQ, false, 0x10008),       // block boundary
        alu(Opcode::ADD, 4, 1, 5, 0x1000c),     // consumer, next block
    };
    const SchedStats full = runOn(cfg('C', 4), recs);
    // Two collapses: cmp-branch and the cross-block add pair.
    EXPECT_EQ(full.collapse.events(), 2u);

    MachineConfig restricted = cfg('C', 4);
    restricted.rules.sameBasicBlockOnly = true;
    VectorTraceSource trace = traceOf(recs);
    LimitScheduler sched(restricted);
    const SchedStats bb = sched.run(trace);
    // Only the within-block cmp-branch pair survives.
    EXPECT_EQ(bb.collapse.events(), 1u);
    EXPECT_EQ(bb.collapse.pairSignatures().count("arri-brc"), 1u);
}

TEST(Scheduler, IpcNeverExceedsWidth)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 64; ++i)
        recs.push_back(alu(Opcode::ADD, 1 + i % 8, 0, 0,
                           0x10000 + 4 * (i % 16)));
    for (const unsigned width : {1u, 2u, 4u, 8u}) {
        const SchedStats stats = runOn(cfg('E', width), recs);
        EXPECT_LE(stats.ipc(), static_cast<double>(width) + 1e-9);
    }
}

} // anonymous namespace
} // namespace ddsc
